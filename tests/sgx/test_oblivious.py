"""Oblivious sort/shuffle: correctness and access-pattern independence."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.sgx.oblivious import TraceRecorder, oblivious_shuffle, oblivious_sort


def test_sorts_correctly():
    assert oblivious_sort([3, 1, 2]) == [1, 2, 3]
    assert oblivious_sort([]) == []
    assert oblivious_sort([42]) == [42]
    assert oblivious_sort(list(range(10))[::-1]) == list(range(10))


def test_sort_with_key():
    items = [("b", 2), ("a", 9), ("c", 1)]
    assert oblivious_sort(items, key=lambda pair: pair[1]) == [
        ("c", 1), ("b", 2), ("a", 9),
    ]


def test_non_power_of_two_lengths():
    for n in (3, 5, 6, 7, 9, 13):
        values = [(i * 7) % n for i in range(n)]
        assert oblivious_sort(values) == sorted(values)


@settings(max_examples=40)
@given(st.lists(st.integers(-100, 100), max_size=40))
def test_sort_matches_builtin_property(values):
    assert oblivious_sort(values) == sorted(values)


def test_access_pattern_is_data_independent():
    """The compare-exchange sequence depends only on the length."""
    traces = []
    for values in ([4, 3, 2, 1, 0], [0, 1, 2, 3, 4], [7, 7, 7, 7, 7],
                   [-5, 100, 0, 3, -2]):
        recorder = TraceRecorder()
        oblivious_sort(values, trace=recorder)
        traces.append(tuple(recorder.accesses))
    assert len(set(traces)) == 1


def test_access_pattern_differs_only_by_length():
    recorder_a, recorder_b = TraceRecorder(), TraceRecorder()
    oblivious_sort(list(range(5)), trace=recorder_a)
    oblivious_sort(list(range(9)), trace=recorder_b)
    assert recorder_a.accesses != recorder_b.accesses


def test_shuffle_is_permutation():
    items = list(range(30))
    shuffled = oblivious_shuffle(items, HmacDrbg(b"s"))
    assert sorted(shuffled) == items
    assert shuffled != items


def test_shuffle_reproducible_and_seed_sensitive():
    items = list(range(20))
    assert oblivious_shuffle(items, HmacDrbg(b"a")) == oblivious_shuffle(
        items, HmacDrbg(b"a")
    )
    assert oblivious_shuffle(items, HmacDrbg(b"a")) != oblivious_shuffle(
        items, HmacDrbg(b"b")
    )


def test_shuffle_trace_is_input_independent():
    recorder_a, recorder_b = TraceRecorder(), TraceRecorder()
    oblivious_shuffle(["x"] * 8, HmacDrbg(b"a"), trace=recorder_a)
    oblivious_shuffle(list(range(8)), HmacDrbg(b"zzz"), trace=recorder_b)
    assert recorder_a.accesses == recorder_b.accesses


def test_shuffle_roughly_uniform():
    """Each element lands in each position with similar frequency."""
    rng = HmacDrbg(b"uniformity")
    position_counts = {i: [0] * 4 for i in range(4)}
    for _ in range(400):
        shuffled = oblivious_shuffle([0, 1, 2, 3], rng)
        for position, element in enumerate(shuffled):
            position_counts[element][position] += 1
    for element, counts in position_counts.items():
        for count in counts:
            assert 55 <= count <= 145, position_counts  # expected 100


def test_merge_keeps_columns_row_aligned():
    """The oblivious merge shuffle must not desynchronize table columns."""
    from repro import EncDBDBSystem

    system = EncDBDBSystem.create(seed=99)
    system.execute("CREATE TABLE t (a ED2 VARCHAR(8), b ED9 INTEGER)")
    rows = [("x1", 1), ("x2", 2), ("x3", 3), ("x4", 4), ("x5", 5)]
    system.execute(
        "INSERT INTO t VALUES " + ", ".join(f"('{a}', {b})" for a, b in rows)
    )
    system.merge("t")
    for a, b in rows:
        result = system.query(f"SELECT b FROM t WHERE a = '{a}'")
        assert result.rows == [(b,)], (a, b)

"""Unit tests of the EPC-budgeted enclave LRU cache."""

from __future__ import annotations

import pytest

from repro.exceptions import EnclaveMemoryError
from repro.sgx.cache import EnclaveLruCache, FastPathConfig
from repro.sgx.costs import CostModel
from repro.sgx.memory import EPC_USABLE_BYTES, PAGE_BYTES, EpcModel


def test_get_put_and_lru_order():
    cache = EnclaveLruCache(budget_bytes=100)
    assert cache.get("a") is None
    assert cache.put("a", 1, 40)
    assert cache.put("b", 2, 40)
    assert cache.get("a") == 1  # refreshes "a"; "b" is now LRU
    assert cache.put("c", 3, 40)  # evicts "b"
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.stats.evictions == 1


def test_used_bytes_never_exceeds_budget():
    cache = EnclaveLruCache(budget_bytes=100)
    for i in range(50):
        cache.put(i, i, 30)
        assert cache.used_bytes <= cache.budget_bytes
    assert cache.stats.peak_bytes <= cache.budget_bytes
    assert len(cache) == 3  # 3 * 30 <= 100 < 4 * 30


def test_replacing_a_key_releases_its_bytes():
    cache = EnclaveLruCache(budget_bytes=100)
    cache.put("a", 1, 60)
    cache.put("a", 2, 30)
    assert cache.used_bytes == 30
    assert cache.get("a") == 2


def test_oversized_entry_rejected_without_wiping_cache():
    cache = EnclaveLruCache(budget_bytes=100)
    cache.put("a", 1, 50)
    assert not cache.put("huge", 2, 101)
    assert cache.get("a") == 1
    assert cache.get("huge") is None
    assert cache.stats.rejected == 1


def test_eviction_charges_cost_model_as_paging():
    cost = CostModel()
    cache = EnclaveLruCache(budget_bytes=100, cost_model=cost)
    cache.put("a", 1, 60)
    cache.put("b", 2, 60)  # evicts "a"
    assert cost.epc_page_faults == 1


def test_budget_charged_against_epc_model():
    cost = CostModel()
    epc = EpcModel(cost, strict=True)
    budget = 8 * PAGE_BYTES
    cache = EnclaveLruCache(budget_bytes=budget, cost_model=cost, epc=epc)
    assert epc.allocated_pages == 8
    assert cache.budget_bytes == budget


def test_budget_beyond_epc_fails_in_strict_mode():
    cost = CostModel()
    epc = EpcModel(cost, strict=True)
    with pytest.raises(EnclaveMemoryError):
        EnclaveLruCache(
            budget_bytes=EPC_USABLE_BYTES + PAGE_BYTES,
            cost_model=cost,
            epc=epc,
        )


def test_invalidate_by_predicate():
    cache = EnclaveLruCache(budget_bytes=1000)
    cache.put(("t1", "c1", 0, b"x"), 1, 10)
    cache.put(("t1", "c2", 0, b"y"), 2, 10)
    cache.put(("t2", "c1", 0, b"z"), 3, 10)
    dropped = cache.invalidate(lambda key: key[0] == "t1")
    assert dropped == 2
    assert cache.get(("t1", "c1", 0, b"x")) is None
    assert cache.get(("t2", "c1", 0, b"z")) == 3
    assert cache.used_bytes == 10


def test_clear_drops_everything():
    cache = EnclaveLruCache(budget_bytes=1000)
    cache.put("a", 1, 10)
    cache.put("b", 2, 10)
    assert cache.clear() == 2
    assert len(cache) == 0
    assert cache.used_bytes == 0
    assert cache.stats.invalidations == 2


def test_nonpositive_budget_rejected():
    with pytest.raises(EnclaveMemoryError):
        EnclaveLruCache(budget_bytes=0)


def test_fastpath_config_master_flag_gates_every_layer():
    # The default worker count is host-clamped (1 on a single-core runner),
    # so pin an explicit multi-worker config when asserting the gate.
    on = FastPathConfig(scan_max_workers=2)
    assert on.entry_cache_enabled
    assert on.key_cache_enabled
    assert on.batching_enabled
    assert on.parallel_scan_enabled
    assert on.scan_mask_reuse_enabled
    assert on.vectorized_kernels_enabled

    off = FastPathConfig.disabled()
    assert not off.entry_cache_enabled
    assert not off.key_cache_enabled
    assert not off.batching_enabled
    assert not off.parallel_scan_enabled
    assert not off.scan_mask_reuse_enabled
    assert not off.vectorized_kernels_enabled

    single_worker = FastPathConfig(scan_max_workers=1)
    assert not single_worker.parallel_scan_enabled


def test_invalidate_prefix_evicts_one_partition():
    cache = EnclaveLruCache(budget_bytes=1000)
    cache.put(("t", "c", 0, 5, b"x"), 1, 10)
    cache.put(("t", "c", 0, 5, b"y"), 2, 10)
    cache.put(("t", "c", 1, 5, b"x"), 3, 10)
    cache.put(("t", "d", 0, 5, b"x"), 4, 10)
    cache.put("plain-key", 5, 10)
    assert cache.invalidate_prefix(("t", "c", 0)) == 2
    assert cache.get(("t", "c", 0, 5, b"x")) is None
    assert cache.get(("t", "c", 1, 5, b"x")) == 3
    assert cache.get(("t", "d", 0, 5, b"x")) == 4
    assert cache.get("plain-key") == 5


def test_invalidate_prefix_never_matches_non_tuple_keys():
    cache = EnclaveLruCache(budget_bytes=1000)
    cache.put("abc", 1, 10)
    cache.put(("a",), 2, 10)
    assert cache.invalidate_prefix(("a",)) == 1
    assert cache.get("abc") == 1


def test_group_usage_reports_bytes_per_partition():
    cache = EnclaveLruCache(budget_bytes=1000)
    cache.put(("t", "c", 0, 5, b"x"), 1, 10)
    cache.put(("t", "c", 0, 5, b"y"), 2, 15)
    cache.put(("t", "c", 1, 5, b"x"), 3, 20)
    cache.put("plain-key", 4, 7)
    usage = cache.group_usage()
    assert usage[("t", "c", 0)] == 25
    assert usage[("t", "c", 1)] == 20
    assert usage[()] == 7

"""Attestation, sealing, and secure-channel tests."""

from __future__ import annotations

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.exceptions import AttestationError, AuthenticationError, EnclaveSecurityError
from repro.sgx.attestation import AttestationService, Quote
from repro.sgx.channel import MODP_2048_PRIME, SecureChannel, SecureChannelListener
from repro.sgx.enclave import Enclave, EnclaveHost, ecall
from repro.sgx.sealing import seal, unseal


class QuotedEnclave(Enclave):
    @ecall
    def ping(self) -> str:
        return "pong"


class ImposterEnclave(Enclave):
    @ecall
    def ping(self) -> str:
        return "pong... definitely the real enclave"


def test_quote_verifies():
    service = AttestationService()
    enclave = QuotedEnclave()
    quote = service.quote(enclave, b"report-data")
    service.verify(quote)  # does not raise
    service.verify(quote, expected_measurement=enclave.measurement)


def test_forged_signature_rejected():
    service = AttestationService()
    quote = service.quote(QuotedEnclave(), b"rd")
    forged = Quote(quote.measurement, quote.report_data, bytes(32))
    with pytest.raises(AttestationError):
        service.verify(forged)


def test_report_data_substitution_rejected():
    """Reusing a signature with different report data must fail."""
    service = AttestationService()
    quote = service.quote(QuotedEnclave(), b"original")
    spliced = Quote(quote.measurement, b"malicious", quote.signature)
    with pytest.raises(AttestationError):
        service.verify(spliced)


def test_wrong_measurement_rejected():
    service = AttestationService()
    quote = service.quote(ImposterEnclave(), b"rd")
    with pytest.raises(AttestationError):
        service.verify(quote, expected_measurement=QuotedEnclave().measurement)


def test_different_service_keys_do_not_cross_verify():
    quote = AttestationService(b"key-a").quote(QuotedEnclave(), b"rd")
    with pytest.raises(AttestationError):
        AttestationService(b"key-b").verify(quote)


# ----------------------------------------------------------------------
# Sealing
# ----------------------------------------------------------------------


def test_seal_unseal_roundtrip():
    measurement = QuotedEnclave().measurement
    blob = seal(measurement, b"SKDB-bytes")
    assert unseal(measurement, blob) == b"SKDB-bytes"


def test_unseal_rejects_other_enclave():
    blob = seal(QuotedEnclave().measurement, b"SKDB-bytes")
    with pytest.raises(AuthenticationError):
        unseal(ImposterEnclave().measurement, blob)


def test_unseal_rejects_other_platform():
    measurement = QuotedEnclave().measurement
    blob = seal(measurement, b"SKDB-bytes", platform_secret=b"platform-a" * 3)
    with pytest.raises(AuthenticationError):
        unseal(measurement, blob, platform_secret=b"platform-b" * 3)


# ----------------------------------------------------------------------
# Secure channel
# ----------------------------------------------------------------------


def _handshake(expected=None):
    service = AttestationService()
    enclave = QuotedEnclave()
    listener = SecureChannelListener(service, HmacDrbg(b"enclave-side"))
    offer = listener.offer(enclave)
    client_channel, client_public = SecureChannel.connect(
        offer,
        service,
        expected if expected is not None else enclave.measurement,
        rng=HmacDrbg(b"client-side"),
    )
    enclave_channel = listener.accept(client_public)
    return client_channel, enclave_channel


def test_channel_delivers_messages_both_ways():
    client, enclave_side = _handshake()
    wire = client.send(b"SKDB:" + bytes(16))
    assert enclave_side.receive(wire) == b"SKDB:" + bytes(16)
    wire_back = enclave_side.send(b"ack")
    assert client.receive(wire_back) == b"ack"


def test_channel_messages_tamperproof():
    client, enclave_side = _handshake()
    wire = bytearray(client.send(b"secret"))
    wire[-1] ^= 1
    with pytest.raises(AuthenticationError):
        enclave_side.receive(bytes(wire))


def test_connect_rejects_wrong_expected_measurement():
    with pytest.raises(AttestationError):
        _handshake(expected=ImposterEnclave().measurement)


def test_accept_requires_offer_first():
    listener = SecureChannelListener(AttestationService(), HmacDrbg(b"e"))
    with pytest.raises(EnclaveSecurityError):
        listener.accept(12345)


def test_accept_rejects_degenerate_public_values():
    service = AttestationService()
    listener = SecureChannelListener(service, HmacDrbg(b"e"))
    listener.offer(QuotedEnclave())
    for bad in (0, 1, MODP_2048_PRIME - 1, MODP_2048_PRIME):
        with pytest.raises(EnclaveSecurityError):
            listener.accept(bad)


def test_eavesdropper_sees_only_ciphertext():
    client, enclave_side = _handshake()
    plaintext = b"the-database-master-key!"
    wire = client.send(plaintext)
    assert plaintext not in wire

"""CostModel counters stay exactly additive under concurrent recorders.

The net server runs RPC bodies on worker threads and the build/scan pools
charge the same model; a single lost increment would silently break the
paper's cost accounting, so the hammer asserts byte-exact totals.
"""

from __future__ import annotations

import threading

from repro.sgx.costs import CostModel

THREADS = 8
ROUNDS = 300


def test_counters_exactly_additive_under_eight_threads():
    model = CostModel()
    barrier = threading.Barrier(THREADS)

    def worker(index: int) -> None:
        barrier.wait()
        for i in range(ROUNDS):
            model.record_ecall(bytes_in=3, bytes_out=2, name=f"op{index % 2}")
            model.record_ocall()
            model.record_page_fault(2)
            model.record_untrusted_load(5)
            model.record_decryption(10)
            model.record_comparison(7)
            if i % 50 == 0:
                model.snapshot()  # concurrent readers must not corrupt

    pool = [
        threading.Thread(target=worker, args=(index,)) for index in range(THREADS)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()

    total = THREADS * ROUNDS
    snapshot = model.snapshot()
    assert snapshot["ecalls"] == total
    assert snapshot["ocalls"] == total
    assert snapshot["epc_page_faults"] == 2 * total
    assert snapshot["untrusted_loads"] == 5 * total
    assert snapshot["decryptions"] == total
    assert snapshot["decrypted_bytes"] == 10 * total
    assert snapshot["comparisons"] == 7 * total
    assert snapshot["bytes_copied_in"] == 3 * total
    assert snapshot["bytes_copied_out"] == 2 * total
    assert sum(model.ecalls_by_name.values()) == total


def test_reset_is_safe_and_reentrant():
    model = CostModel()
    model.record_ecall(name="x")
    model.record_decryption(4)
    model.reset()  # reset() snapshots under the same reentrant lock
    assert model.snapshot() == dict.fromkeys(model.snapshot(), 0)
    assert model.ecalls_by_name == {}

"""EPC model and cost accounting tests."""

from __future__ import annotations

import pytest

from repro.exceptions import EnclaveMemoryError
from repro.sgx.costs import CostModel, CostParameters
from repro.sgx.memory import EPC_USABLE_BYTES, PAGE_BYTES, EpcModel


def test_allocate_and_free():
    epc = EpcModel()
    allocation = epc.allocate(10_000)
    assert epc.allocated_bytes == 10_000
    assert epc.allocated_pages == 3  # ceil(10000 / 4096)
    epc.free(allocation)
    assert epc.allocated_bytes == 0


def test_zero_byte_allocation_takes_one_page():
    epc = EpcModel()
    epc.allocate(0)
    assert epc.allocated_pages == 1


def test_negative_allocation_rejected():
    with pytest.raises(EnclaveMemoryError):
        EpcModel().allocate(-1)


def test_double_free_rejected():
    epc = EpcModel()
    allocation = epc.allocate(100)
    epc.free(allocation)
    with pytest.raises(EnclaveMemoryError):
        epc.free(allocation)


def test_strict_mode_enforces_usable_epc():
    epc = EpcModel(strict=True)
    epc.allocate(EPC_USABLE_BYTES - PAGE_BYTES)
    with pytest.raises(EnclaveMemoryError):
        epc.allocate(2 * PAGE_BYTES)


def test_default_usable_epc_is_96_mib():
    epc = EpcModel(strict=True)
    assert epc.allocate(EPC_USABLE_BYTES) > 0  # exactly fits


def test_paging_penalty_beyond_usable_epc():
    """Non-strict allocations beyond usable EPC cause faults on re-touch."""
    cost = CostModel()
    epc = EpcModel(cost, usable_bytes=2 * PAGE_BYTES, strict=False)
    a = epc.allocate(PAGE_BYTES)
    b = epc.allocate(PAGE_BYTES)
    c = epc.allocate(PAGE_BYTES)  # evicts a (LRU)
    assert epc.resident_pages == 2
    faults_before = cost.epc_page_faults
    epc.touch(a)  # page of `a` was evicted -> fault
    assert cost.epc_page_faults == faults_before + 1
    epc.touch(a)  # now resident -> no fault
    assert cost.epc_page_faults == faults_before + 1
    epc.touch(b)  # b was evicted when a came back in
    assert cost.epc_page_faults == faults_before + 2
    epc.touch(c)  # c evicted by b's return
    assert cost.epc_page_faults == faults_before + 3


def test_touch_validates_bounds():
    epc = EpcModel()
    allocation = epc.allocate(100)
    with pytest.raises(EnclaveMemoryError):
        epc.touch(allocation, offset=PAGE_BYTES)
    with pytest.raises(EnclaveMemoryError):
        epc.touch(999)


def test_peak_tracking():
    epc = EpcModel()
    a = epc.allocate(PAGE_BYTES * 3)
    epc.free(a)
    epc.allocate(PAGE_BYTES)
    assert epc.peak_pages == 3


def test_cost_model_cycle_estimate():
    cost = CostModel(parameters=CostParameters(ecall_cycles=1000, compare_cycles=1))
    cost.record_ecall()
    cost.record_comparison(5)
    assert cost.estimated_cycles() == 1005
    assert cost.estimated_seconds() == pytest.approx(1005 / 3.7e9)


def test_cost_model_decryption_accounting():
    cost = CostModel()
    cost.record_decryption(100)
    cost.record_decryption(50)
    assert cost.decryptions == 2
    assert cost.decrypted_bytes == 150


def test_cost_model_snapshot_diff_reset():
    cost = CostModel()
    cost.record_ecall(bytes_in=10, bytes_out=20)
    before = cost.snapshot()
    cost.record_untrusted_load(3)
    delta = cost.diff(before)
    assert delta["untrusted_loads"] == 3
    assert delta["ecalls"] == 0
    cost.reset()
    assert cost.estimated_cycles() == 0
    assert cost.snapshot()["bytes_copied_in"] == 0

"""Enclave isolation, ecall registry, and measurement tests."""

from __future__ import annotations

import pytest

from repro.exceptions import EnclaveSecurityError
from repro.sgx.enclave import Enclave, EnclaveHost, ecall, measure_enclave_class


class ToyEnclave(Enclave):
    """Minimal enclave used by the isolation tests."""

    @ecall
    def store_secret(self, value: int) -> None:
        self.protected_set("secret", value)

    @ecall
    def add_to_secret(self, delta: int) -> int:
        return self.protected_get("secret") + delta

    @ecall
    def roll(self) -> int:
        return self.enclave_randint(1, 6)

    def not_an_ecall(self) -> str:
        return "untrusted-callable"


class OtherEnclave(Enclave):
    @ecall
    def store_secret(self, value: int) -> None:  # same name, different body
        self.protected_set("secret", value * 2)


@pytest.fixture
def host() -> EnclaveHost:
    return EnclaveHost(ToyEnclave())


def test_ecall_roundtrip(host: EnclaveHost):
    host.ecall("store_secret", 41)
    assert host.ecall("add_to_secret", 1) == 42


def test_unregistered_method_rejected(host: EnclaveHost):
    with pytest.raises(EnclaveSecurityError):
        host.ecall("not_an_ecall")


def test_unknown_ecall_rejected(host: EnclaveHost):
    with pytest.raises(EnclaveSecurityError):
        host.ecall("does_not_exist")


def test_protected_memory_unreachable_from_outside():
    enclave = ToyEnclave()
    EnclaveHost(enclave).ecall("store_secret", 7)
    with pytest.raises(EnclaveSecurityError):
        enclave.protected_get("secret")
    with pytest.raises(EnclaveSecurityError):
        enclave.protected_set("secret", 0)
    with pytest.raises(EnclaveSecurityError):
        enclave.protected_has("secret")


def test_enclave_rng_unreachable_from_outside():
    enclave = ToyEnclave()
    with pytest.raises(EnclaveSecurityError):
        enclave.enclave_random_bytes(4)
    assert 1 <= EnclaveHost(enclave).ecall("roll") <= 6


def test_missing_protected_value_is_security_error(host: EnclaveHost):
    with pytest.raises(EnclaveSecurityError):
        host.ecall("add_to_secret", 1)


def test_ecalls_are_counted(host: EnclaveHost):
    host.ecall("store_secret", 1)
    host.ecall("add_to_secret", 1)
    assert host.cost_model.ecalls == 2


def test_ecall_names(host: EnclaveHost):
    assert set(host.ecall_names()) == {"store_secret", "add_to_secret", "roll"}


def test_measurement_is_deterministic():
    assert ToyEnclave().measurement == ToyEnclave().measurement
    assert ToyEnclave().measurement == measure_enclave_class(ToyEnclave)


def test_measurement_reflects_code_identity():
    """Two enclaves with different trusted code measure differently."""
    assert ToyEnclave().measurement != OtherEnclave().measurement


def test_host_exposes_measurement(host: EnclaveHost):
    assert host.measurement == ToyEnclave().measurement

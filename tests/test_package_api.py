"""Top-level package API: lazy exports, version, error hierarchy."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import (
    AttestationError,
    AuthenticationError,
    CatalogError,
    CryptoError,
    EncDBDBError,
    EnclaveMemoryError,
    EnclaveSecurityError,
    PlanError,
    QueryError,
    SqlSyntaxError,
    StorageError,
)


def test_version():
    assert repro.__version__ == "1.0.0"


def test_lazy_exports_resolve():
    assert repro.EncDBDBSystem.__name__ == "EncDBDBSystem"
    assert repro.ED1.name == "ED1"
    assert repro.ED9.number == 9
    assert repro.RepetitionOption.HIDING.frequency_leakage == "none"
    assert repro.OrderOption.SORTED.order_leakage == "full"
    assert repro.EncryptedDictionaryKind is not None


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.does_not_exist


def test_all_exports_are_reachable():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_exception_hierarchy():
    assert issubclass(AuthenticationError, CryptoError)
    assert issubclass(CryptoError, EncDBDBError)
    assert issubclass(AttestationError, EnclaveSecurityError)
    assert issubclass(EnclaveMemoryError, EnclaveSecurityError)
    assert issubclass(EnclaveSecurityError, EncDBDBError)
    assert issubclass(SqlSyntaxError, QueryError)
    assert issubclass(PlanError, QueryError)
    assert issubclass(QueryError, EncDBDBError)
    assert issubclass(StorageError, EncDBDBError)
    assert issubclass(CatalogError, EncDBDBError)


def test_one_base_class_catches_everything():
    """Callers can catch EncDBDBError for any library failure."""
    with pytest.raises(EncDBDBError):
        system = repro.EncDBDBSystem.create(seed=1)
        system.execute("SELEKT nonsense")

"""Value types: domains, serialization, ordinal embedding, specs."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.columnstore.types import (
    ColumnSpec,
    IntegerType,
    VarcharType,
    parse_type,
)
from repro.encdict.options import ED5
from repro.exceptions import CatalogError


def test_integer_roundtrip_and_domain():
    it = IntegerType()
    assert it.domain_size == 2**32
    for value in (0, -1, 1, it.INT_MIN, it.INT_MAX):
        assert it.from_bytes(it.to_bytes(value)) == value
        assert it.from_ordinal(it.ordinal(value)) == value
    assert it.min_value == it.INT_MIN
    assert it.max_value == it.INT_MAX


def test_integer_rejects_out_of_domain():
    it = IntegerType()
    with pytest.raises(CatalogError):
        it.validate(2**31)
    with pytest.raises(CatalogError):
        it.validate(-(2**31) - 1)
    with pytest.raises(CatalogError):
        it.validate("5")
    with pytest.raises(CatalogError):
        it.validate(True)  # bool is not an INTEGER
    with pytest.raises(CatalogError):
        it.from_bytes(b"\x00" * 3)


def test_varchar_roundtrip():
    vt = VarcharType(10)
    for value in ("", "a", "Jessica", "ümlaut"):
        assert vt.from_bytes(vt.to_bytes(value)) == value
        assert vt.from_ordinal(vt.ordinal(value)) == value


def test_varchar_rejects_bad_values():
    vt = VarcharType(4)
    with pytest.raises(CatalogError):
        vt.validate("too long")
    with pytest.raises(CatalogError):
        vt.validate("nul\x00")
    with pytest.raises(CatalogError):
        vt.validate(5)
    with pytest.raises(CatalogError):
        VarcharType(0)


def test_varchar_utf8_length_counts_bytes():
    vt = VarcharType(2)
    vt.validate("ü")  # 2 UTF-8 bytes: fits
    with pytest.raises(CatalogError):
        vt.validate("üa")  # 3 bytes


@given(st.text(alphabet=st.characters(min_codepoint=1, max_codepoint=0x7F), max_size=6))
def test_varchar_ordinal_bijective_on_values(value: str):
    vt = VarcharType(6)
    assert vt.from_ordinal(vt.ordinal(value)) == value


def test_min_max_values():
    vt = VarcharType(3)
    assert vt.min_value == ""
    assert vt.ordinal(vt.max_value) == vt.domain_size - 1


def test_parse_type():
    assert parse_type("INTEGER") == IntegerType()
    assert parse_type("int") == IntegerType()
    assert parse_type("VARCHAR(12)") == VarcharType(12)
    assert parse_type(" varchar(3) ") == VarcharType(3)
    with pytest.raises(CatalogError):
        parse_type("FLOAT")
    with pytest.raises(CatalogError):
        parse_type("VARCHAR(x)")


def test_type_equality_and_hash():
    assert VarcharType(5) == VarcharType(5)
    assert VarcharType(5) != VarcharType(6)
    assert IntegerType() != VarcharType(5)
    assert len({VarcharType(5), VarcharType(5), IntegerType()}) == 2


def test_column_spec_validation():
    spec = ColumnSpec("price", IntegerType(), protection=ED5, bsmax=7)
    assert spec.is_encrypted
    assert ColumnSpec("name", VarcharType(5)).is_encrypted is False
    with pytest.raises(CatalogError):
        ColumnSpec("bad name", IntegerType())
    with pytest.raises(CatalogError):
        ColumnSpec("x", IntegerType(), bsmax=0)

"""Persistence-layer tests including a property-based roundtrip."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.columnstore.catalog import Catalog
from repro.columnstore.column import EncryptedStoredColumn, PlainStoredColumn
from repro.columnstore.storage import load_database, save_database
from repro.columnstore.types import ColumnSpec, IntegerType, VarcharType
from repro.crypto.drbg import HmacDrbg
from repro.crypto.pae import default_pae, pae_gen
from repro.encdict.builder import encdb_build
from repro.encdict.options import ED2, ED7


def _catalog_with_data(values, numbers):
    catalog = Catalog()
    specs = [
        ColumnSpec("v", VarcharType(12), protection=ED2),
        ColumnSpec("n", IntegerType()),
    ]
    table = catalog.create_table("t", specs)
    rng = HmacDrbg(b"storage-tests")
    pae = default_pae(rng=rng.fork("pae"))
    key = pae_gen(rng=rng.fork("key"))
    build = encdb_build(
        values,
        ED2,
        value_type=VarcharType(12),
        key=key,
        pae=pae,
        rng=rng.fork("build"),
        table_name="t",
        column_name="v",
    )
    encrypted = EncryptedStoredColumn(specs[0], build)
    encrypted.bind("t")
    plain = PlainStoredColumn(specs[1], numbers)
    table.attach_columns({"v": encrypted, "n": plain}, len(values))
    return catalog, key, pae


def test_roundtrip_preserves_everything(tmp_path):
    catalog, key, pae = _catalog_with_data(["aa", "bb", "aa"], [1, 2, 3])
    table = catalog.table("t")
    table.column("n").append(9)
    # Every column must grow for a row insert; store the delta blob directly
    # (the enclave re-encryption path is exercised in the system tests).
    table.column("v").delta_blobs.append(pae.encrypt(key, b"cc"))
    table.register_insert()
    table.delete_rows(np.array([1]))
    path = tmp_path / "db.encdbdb"
    save_database(catalog, path)

    loaded = load_database(path)
    loaded_table = loaded.table("t")
    assert loaded_table.column_names == ["v", "n"]
    assert loaded_table.row_count == 4
    assert loaded_table.live_row_count == 3
    assert loaded_table.validity.tolist() == [True, False, True, True]

    original_column = table.column("v")
    loaded_column = loaded_table.column("v")
    assert bytes(loaded_column.main_build.dictionary.tail) == bytes(
        original_column.main_build.dictionary.tail
    )
    assert (
        loaded_column.main_build.attribute_vector.tolist()
        == original_column.main_build.attribute_vector.tolist()
    )
    assert loaded_column.main_build.dictionary.enc_rnd_offset is not None
    assert loaded_table.column("n").delta_values == [9]
    # The loaded encrypted dictionary still decrypts under the same key.
    blob = loaded_column.main_build.dictionary.entry(0)
    assert pae.decrypt(key, blob) in (b"aa", b"bb")


def test_loaded_spec_metadata(tmp_path):
    catalog, _, _ = _catalog_with_data(["x"], [0])
    path = tmp_path / "db.encdbdb"
    save_database(catalog, path)
    loaded = load_database(path)
    spec = loaded.table("t").spec("v")
    assert spec.protection == ED2
    assert spec.value_type == VarcharType(12)
    assert loaded.table("t").spec("n").protection is None


def test_empty_catalog_roundtrip(tmp_path):
    path = tmp_path / "empty.encdbdb"
    save_database(Catalog(), path)
    assert load_database(path).table_names() == []


@settings(max_examples=15, deadline=None)
@given(
    values=st.lists(
        st.text(alphabet="abc", min_size=1, max_size=6), min_size=1, max_size=15
    ),
    numbers=st.lists(st.integers(-1000, 1000), min_size=1, max_size=15),
)
def test_roundtrip_property(tmp_path_factory, values, numbers):
    numbers = (numbers * ((len(values) // len(numbers)) + 1))[: len(values)]
    catalog, key, pae = _catalog_with_data(values, numbers)
    path = tmp_path_factory.mktemp("prop") / "db.encdbdb"
    save_database(catalog, path)
    loaded = load_database(path)
    table = loaded.table("t")
    assert table.row_count == len(values)
    # Plain column content survives exactly.
    plain = table.column("n")
    assert [plain.value_at(i) for i in range(len(values))] == numbers
    # Encrypted column round-trips blob-for-blob.
    original = catalog.table("t").column("v").main_build.dictionary
    reloaded = table.column("v").main_build.dictionary
    assert bytes(reloaded.tail) == bytes(original.tail)
    assert reloaded.offsets.tolist() == original.offsets.tolist()


def test_hiding_kind_roundtrip(tmp_path):
    """ED7 columns (|D| = |AV|) persist and reload correctly."""
    catalog = Catalog()
    spec = ColumnSpec("v", VarcharType(6), protection=ED7)
    table = catalog.create_table("t", [spec])
    rng = HmacDrbg(b"ed7")
    pae = default_pae(rng=rng.fork("pae"))
    key = pae_gen(rng=rng.fork("key"))
    build = encdb_build(
        ["x", "x", "y"], ED7, value_type=VarcharType(6), key=key, pae=pae,
        rng=rng.fork("b"), table_name="t", column_name="v",
    )
    column = EncryptedStoredColumn(spec, build)
    column.bind("t")
    table.attach_columns({"v": column}, 3)
    path = tmp_path / "ed7.encdbdb"
    save_database(catalog, path)
    loaded = load_database(path)
    assert len(loaded.table("t").column("v").main_build.dictionary) == 3

def test_storage_bytes_unchanged_by_batched_encryption(tmp_path):
    """Byte-identity of storage files across the batch-IV change (PR 6).

    The same seeded build, once with the vectorized ``encrypt_many`` and once
    with it forced back to the per-item ``encrypt`` loop, must produce
    byte-for-byte identical database files: the batched DRBG draw replays the
    exact sequential IV stream.
    """
    from repro import EncDBDBSystem
    from repro.crypto.pae import Pae

    def _build_and_save(path):
        system = EncDBDBSystem.create(seed=47)
        system.execute("CREATE TABLE b (v ED3 VARCHAR(10), u ED8 VARCHAR(10))")
        system.bulk_load(
            "b",
            {
                "v": [f"v{i % 7:03d}" for i in range(25)],
                "u": [f"u{(i * 5) % 11:03d}" for i in range(25)],
            },
            partition_rows=8,
        )
        system.save(path)

    batched_path = tmp_path / "batched.encdbdb"
    _build_and_save(batched_path)

    naive_path = tmp_path / "naive.encdbdb"
    original = Pae.encrypt_many

    def per_item_loop(self, key, plaintexts, aad=b"", *, rng=None):
        return [self.encrypt(key, pt, aad, rng=rng) for pt in plaintexts]

    Pae.encrypt_many = per_item_loop
    try:
        _build_and_save(naive_path)
    finally:
        Pae.encrypt_many = original

    assert batched_path.read_bytes() == naive_path.read_bytes()


def test_partitioned_roundtrip_preserves_layout_and_answers(tmp_path):
    """Save/load of a multi-partition table keeps partition ids, layout,
    and query answers intact (the v2 storage frames)."""
    from repro import EncDBDBSystem
    from repro.server.dbms import EncDBDBServer

    system = EncDBDBSystem.create(seed=31)
    system.execute("CREATE TABLE p (v ED2 VARCHAR(10), n INTEGER)")
    system.bulk_load(
        "p",
        {"v": [f"v{i:03d}" for i in range(20)], "n": list(range(20))},
        partition_rows=6,
    )
    system.execute("INSERT INTO p VALUES ('extra', 99)")
    system.execute("DELETE FROM p WHERE n = 3")
    path = tmp_path / "parts.encdbdb"
    system.save(path)

    original = system.server.catalog.table("p")
    restored_server = EncDBDBServer()
    restored_server.load(path)
    restored = restored_server.catalog.table("p")
    column = restored.column("v")
    assert column.partition_lengths == original.column("v").partition_lengths
    assert column.partition_ids == original.column("v").partition_ids
    assert column._next_partition_id == original.column("v")._next_partition_id
    assert restored.partition_rows == original.partition_rows
    assert restored.column("n").partition_lengths == [6, 6, 6, 2]
    assert restored.validity.tolist() == original.validity.tolist()
    assert len(column.delta_blobs) == 1

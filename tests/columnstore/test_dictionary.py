"""Plaintext dictionary encoding (paper §2.1) reference behaviour."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.columnstore.dictionary import (
    DictionaryEncodedColumn,
    attribute_vector_bits,
    attribute_vector_bytes_per_entry,
    split_column,
)


def test_paper_figure1_split():
    column = ["Hans", "Jessica", "Archie", "Jessica", "Jessica", "Archie"]
    dictionary, av = split_column(column)
    assert dictionary == ["Archie", "Hans", "Jessica"]
    assert av.tolist() == [1, 2, 0, 2, 2, 0]


def test_split_correctness_definition1():
    column = ["b", "a", "c", "a", "b"]
    dictionary, av = split_column(column)
    for j, value in enumerate(column):
        assert dictionary[av[j]] == value


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=60))
def test_split_roundtrip_property(values):
    encoded = DictionaryEncodedColumn.from_values(values)
    assert encoded.values() == values
    assert len(encoded) == len(values)
    assert sorted(set(values)) == encoded.dictionary


def test_paper_figure1_search():
    """R = [Archie, Hans] -> vid {0,1} (sorted dict) -> rid {0, 2, 5}."""
    column = ["Hans", "Jessica", "Archie", "Jessica", "Jessica", "Archie"]
    encoded = DictionaryEncodedColumn.from_values(column)
    vid_min, vid_max = encoded.dictionary_search("Archie", "Hans")
    assert (vid_min, vid_max) == (0, 1)
    assert encoded.range_search("Archie", "Hans").tolist() == [0, 2, 5]


def test_empty_range():
    encoded = DictionaryEncodedColumn.from_values(["a", "c"])
    vid_min, vid_max = encoded.dictionary_search("b", "b")
    assert vid_min > vid_max
    assert encoded.range_search("b", "b").tolist() == []
    assert encoded.attribute_vector_search(5, 2).tolist() == []


def test_range_endpoints_absent_from_dictionary():
    encoded = DictionaryEncodedColumn.from_values([10, 20, 30])
    assert encoded.range_search(11, 29).tolist() == [1]
    assert encoded.range_search(-5, 100).tolist() == [0, 1, 2]


def test_value_at_tuple_reconstruction():
    encoded = DictionaryEncodedColumn.from_values(["x", "y", "x"])
    assert [encoded.value_at(i) for i in range(3)] == ["x", "y", "x"]


@given(
    values=st.lists(st.integers(-50, 50), min_size=1, max_size=50),
    low=st.integers(-60, 60),
    span=st.integers(0, 40),
)
def test_range_search_matches_linear_scan(values, low, span):
    encoded = DictionaryEncodedColumn.from_values(values)
    high = low + span
    expected = [i for i, v in enumerate(values) if low <= v <= high]
    assert encoded.range_search(low, high).tolist() == expected


def test_attribute_vector_width_accounting():
    """A ValueID of i bits represents 2^i values (paper §2.1 example)."""
    assert attribute_vector_bits(1) == 1
    assert attribute_vector_bits(2) == 1
    assert attribute_vector_bits(256) == 8
    assert attribute_vector_bits(257) == 9
    assert attribute_vector_bytes_per_entry(256) == 1
    assert attribute_vector_bytes_per_entry(257) == 2
    assert attribute_vector_bytes_per_entry(2**16 + 1) == 3


def test_paper_storage_example():
    """10,000 strings of 10 chars with 256 uniques: 100,000 B -> 12,560 B."""
    values = [f"string{i % 256:04d}" for i in range(10_000)]
    encoded = DictionaryEncodedColumn.from_values(values)
    size = encoded.storage_bytes(lambda v: len(v.encode()))
    assert size == 256 * 10 + 10_000 * 1


def test_storage_bytes_integer_column():
    encoded = DictionaryEncodedColumn.from_values([1, 2, 3, 1])
    assert encoded.storage_bytes(lambda v: 4) == 3 * 4 + 4 * 1

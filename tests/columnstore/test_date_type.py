"""DATE column type: domain, coercion, and end-to-end behaviour."""

from __future__ import annotations

import datetime

import pytest
from hypothesis import given, strategies as st

from repro import EncDBDBSystem
from repro.columnstore.types import DateType, parse_type
from repro.encdict.options import ED2
from repro.exceptions import CatalogError, PlanError

from tests.encdict.conftest import EdHarness, reference_range_search


def test_parse_type_date():
    assert parse_type("DATE") == DateType()
    assert parse_type(" date ") == DateType()


def test_roundtrip_and_ordinal():
    dt = DateType()
    for value in (
        datetime.date(1, 1, 1),
        datetime.date(1970, 1, 1),
        datetime.date(2026, 7, 5),
        datetime.date(9999, 12, 31),
    ):
        assert dt.from_bytes(dt.to_bytes(value)) == value
        assert dt.from_ordinal(dt.ordinal(value)) == value
    assert dt.ordinal(datetime.date(1, 1, 1)) == 0
    assert dt.ordinal(dt.max_value) == dt.domain_size - 1


def test_ordinal_preserves_date_order():
    dt = DateType()
    a = datetime.date(2020, 5, 17)
    b = datetime.date(2020, 5, 18)
    assert dt.ordinal(a) < dt.ordinal(b)


@given(
    days_a=st.integers(0, 3_000_000),
    days_b=st.integers(0, 3_000_000),
)
def test_ordinal_order_property(days_a: int, days_b: int):
    dt = DateType()
    a = datetime.date.fromordinal(days_a + 1)
    b = datetime.date.fromordinal(days_b + 1)
    assert (a < b) == (dt.ordinal(a) < dt.ordinal(b))


def test_coercion_from_iso_strings():
    dt = DateType()
    assert dt.coerce("2026-07-05") == datetime.date(2026, 7, 5)
    assert dt.coerce(datetime.date(2020, 1, 1)) == datetime.date(2020, 1, 1)
    with pytest.raises(CatalogError):
        dt.coerce("05/07/2026")
    with pytest.raises(CatalogError):
        dt.coerce("not a date")


def test_validation():
    dt = DateType()
    with pytest.raises(CatalogError):
        dt.validate("2026-07-05")  # strings must be coerced first
    with pytest.raises(CatalogError):
        dt.validate(datetime.datetime(2026, 7, 5, 12, 0))  # datetime != date
    with pytest.raises(CatalogError):
        dt.validate(737000)
    with pytest.raises(CatalogError):
        dt.from_bytes(b"\x00" * 3)


def test_encrypted_dictionary_over_dates():
    """Dates work on a rotated encrypted dictionary like any ordinal type."""
    harness = EdHarness(seed=b"dates")
    values = [datetime.date(2026, 1, d) for d in (5, 1, 20, 1, 28, 11)]
    build = harness.build(values, ED2, value_type=DateType())
    low, high = datetime.date(2026, 1, 1), datetime.date(2026, 1, 15)
    assert harness.search_records(build, low, high) == reference_range_search(
        values, low, high
    )


def test_dates_in_sql_end_to_end():
    system = EncDBDBSystem.create(seed=19)
    system.execute(
        "CREATE TABLE shipments (sku VARCHAR(8), shipped ED5 DATE BSMAX 3)"
    )
    system.execute(
        "INSERT INTO shipments VALUES ('A', '2026-03-01'), ('B', '2026-03-15'),"
        " ('C', '2026-04-02'), ('D', '2026-03-15')"
    )
    march = system.query(
        "SELECT sku FROM shipments "
        "WHERE shipped BETWEEN '2026-03-01' AND '2026-03-31' ORDER BY sku"
    )
    assert [row[0] for row in march] == ["A", "B", "D"]

    exact = system.query("SELECT sku FROM shipments WHERE shipped = '2026-04-02'")
    assert exact.rows == [("C",)]

    assert system.execute(
        "UPDATE shipments SET shipped = '2026-05-01' WHERE sku = 'A'"
    ) == 1
    late = system.query("SELECT sku FROM shipments WHERE shipped > '2026-04-30'")
    assert late.rows == [("A",)]

    # MIN/MAX work on dates at the proxy.
    earliest = system.query("SELECT MIN(shipped) FROM shipments").scalar()
    assert earliest == datetime.date(2026, 3, 15) or earliest == datetime.date(
        2026, 3, 15
    )


def test_bad_date_literals_rejected_at_planning():
    system = EncDBDBSystem.create(seed=20)
    system.execute("CREATE TABLE t (d ED1 DATE)")
    with pytest.raises(PlanError):
        system.execute("INSERT INTO t VALUES ('tomorrow')")
    with pytest.raises(PlanError):
        system.query("SELECT d FROM t WHERE d > 'yesterday'")
    with pytest.raises(PlanError):
        system.query("SELECT d FROM t WHERE d = 5")


def test_date_persistence_roundtrip(tmp_path):
    system = EncDBDBSystem.create(seed=21)
    system.execute("CREATE TABLE t (d ED1 DATE)")
    system.execute("INSERT INTO t VALUES ('2026-07-05')")
    path = tmp_path / "dates.encdbdb"
    system.save(path)

    from repro.columnstore.storage import load_database

    catalog = load_database(path)
    assert catalog.table("t").spec("d").value_type == DateType()

"""Incremental merge over a partitioned main store.

The merge must only rebuild partitions whose validity bits or delta rows
changed (``rebuild_for_merge`` ecall counter asserted), drop partitions
that end up empty, and keep RecordID alignment across all columns of the
table intact.
"""

from __future__ import annotations

from repro import EncDBDBSystem


def _partitioned_system(rows: int = 24, partition_rows: int = 8, seed: int = 66):
    system = EncDBDBSystem.create(seed=seed)
    system.execute("CREATE TABLE t (v ED2 VARCHAR(10), n INTEGER)")
    system.bulk_load(
        "t",
        {"v": [f"v{i:04d}" for i in range(rows)], "n": list(range(rows))},
        partition_rows=partition_rows,
    )
    return system


def _rebuild_ecalls(system) -> int:
    return system.server.cost_snapshot()["ecalls_by_name"].get(
        "rebuild_for_merge", 0
    )


def _stats(system):
    return system.server.executor.last_merge_stats


def test_empty_delta_merge_rebuilds_nothing():
    system = _partitioned_system()
    before = _rebuild_ecalls(system)
    system.merge("t")
    stats = _stats(system)
    assert stats.partitions_total == 3
    assert stats.partitions_kept == 3
    assert stats.partitions_rebuilt == 0
    assert stats.partitions_dropped == 0
    assert stats.tail_partitions_added == 0
    assert stats.delta_rows_merged == 0
    assert _rebuild_ecalls(system) == before  # not a single enclave rebuild
    assert system.query("SELECT COUNT(*) FROM t").scalar() == 24


def test_delete_only_merge_rebuilds_only_dirty_partition():
    system = _partitioned_system()
    # Rows 8..9 live in partition 1 of [0..7][8..15][16..23].
    system.execute("DELETE FROM t WHERE n BETWEEN 8 AND 9")
    before = _rebuild_ecalls(system)
    system.merge("t")
    stats = _stats(system)
    assert stats.partitions_rebuilt == 1
    assert stats.partitions_kept == 2
    assert stats.partitions_dropped == 0
    # One rebuilt partition slot x one encrypted column = one ecall.
    assert _rebuild_ecalls(system) - before == 1
    assert system.query("SELECT COUNT(*) FROM t").scalar() == 22
    assert system.query("SELECT n FROM t WHERE v = 'v0010'").rows == [(10,)]
    assert system.query("SELECT n FROM t WHERE v = 'v0008'").rows == []


def test_merge_drops_emptied_partition():
    system = _partitioned_system()
    system.execute("DELETE FROM t WHERE n BETWEEN 8 AND 15")  # all of partition 1
    before = _rebuild_ecalls(system)
    system.merge("t")
    stats = _stats(system)
    assert stats.partitions_dropped == 1
    assert stats.partitions_rebuilt == 0
    assert stats.partitions_kept == 2
    assert _rebuild_ecalls(system) == before
    table = system.server.catalog.table("t")
    assert table.columns["v"].partition_lengths == [8, 8]
    assert system.query("SELECT COUNT(*) FROM t").scalar() == 16
    assert system.query("SELECT n FROM t WHERE v = 'v0016'").rows == [(16,)]


def test_record_id_alignment_survives_merges():
    system = _partitioned_system()
    reference = sorted(system.query("SELECT v, n FROM t").rows)
    system.merge("t")
    system.merge("t")  # idempotent on a clean table
    assert sorted(system.query("SELECT v, n FROM t").rows) == reference

    # A delete-only merge keeps every surviving (v, n) pair aligned.
    system.execute("DELETE FROM t WHERE n BETWEEN 8 AND 9")
    system.merge("t")
    survivors = [(v, n) for v, n in reference if n not in (8, 9)]
    assert sorted(system.query("SELECT v, n FROM t").rows) == survivors
    # Clean partitions were kept verbatim: rows before the dirty partition
    # retain their RecordIDs, so per-row lookups still line up.
    for n in (0, 7, 16, 23):
        assert system.query(f"SELECT v FROM t WHERE n = {n}").rows == [
            (f"v{n:04d}",)
        ]


def test_delta_absorbed_into_last_partition_when_it_fits():
    system = _partitioned_system()
    system.execute("DELETE FROM t WHERE n BETWEEN 20 AND 23")  # last partition: 4 live
    system.execute("INSERT INTO t VALUES ('x1', 100), ('x2', 101)")
    system.merge("t")
    stats = _stats(system)
    assert stats.tail_partitions_added == 0
    assert stats.partitions_total == 3
    assert stats.delta_rows_merged == 2
    table = system.server.catalog.table("t")
    assert table.columns["v"].partition_lengths == [8, 8, 6]
    assert system.query("SELECT n FROM t WHERE v = 'x2'").rows == [(101,)]


def test_delta_overflow_creates_tail_partition():
    system = _partitioned_system()
    rows = ", ".join(f"('y{i}', {200 + i})" for i in range(4))
    system.execute(f"INSERT INTO t VALUES {rows}")
    # Last partition is full (8 rows), so 8 + 4 > 8: fresh tail partition.
    system.merge("t")
    stats = _stats(system)
    assert stats.tail_partitions_added == 1
    assert stats.partitions_kept == 3  # untouched main partitions stay as-is
    table = system.server.catalog.table("t")
    assert table.columns["v"].partition_lengths == [8, 8, 8, 4]
    assert system.query("SELECT COUNT(*) FROM t").scalar() == 28
    assert system.query("SELECT n FROM t WHERE v = 'y3'").rows == [(203,)]


def test_merge_cost_scales_with_dirty_partitions():
    wide = EncDBDBSystem.create(seed=67)
    wide.execute("CREATE TABLE w (a ED1 INTEGER, b ED2 VARCHAR(10))")
    wide.bulk_load(
        "w",
        {"a": list(range(24)), "b": [f"b{i:04d}" for i in range(24)]},
        partition_rows=8,
    )
    wide.execute("DELETE FROM w WHERE a = 20")  # dirty: partition 2 only
    before = _rebuild_ecalls(wide)
    wide.merge("w")
    # One dirty slot x two encrypted columns.
    assert _rebuild_ecalls(wide) - before == 2
    assert _stats(wide).partitions_rebuilt == 1

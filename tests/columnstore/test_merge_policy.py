"""Delta-merge policies and the server's auto-merge hook."""

from __future__ import annotations

import pytest

from repro import EncDBDBSystem
from repro.columnstore.merge_policy import (
    AbsoluteMergePolicy,
    CompositeMergePolicy,
    RatioMergePolicy,
    delta_row_count,
    invalid_row_count,
    main_row_count,
)


def _system_with_rows(main_rows: int = 100):
    system = EncDBDBSystem.create(seed=66)
    system.execute("CREATE TABLE t (v ED2 VARCHAR(10), n INTEGER)")
    system.bulk_load(
        "t",
        {
            "v": [f"v{i:04d}" for i in range(main_rows)],
            "n": list(range(main_rows)),
        },
    )
    return system


def test_counters():
    system = _system_with_rows(10)
    table = system.server.catalog.table("t")
    assert main_row_count(table) == 10
    assert delta_row_count(table) == 0
    system.execute("INSERT INTO t VALUES ('x', 1), ('y', 2)")
    assert delta_row_count(table) == 2
    system.execute("DELETE FROM t WHERE n = 0")
    assert invalid_row_count(table) == 1


def test_ratio_policy():
    system = _system_with_rows(100)
    table = system.server.catalog.table("t")
    policy = RatioMergePolicy(ratio=0.05, minimum_rows=3)
    assert not policy.should_merge(table)
    system.execute("INSERT INTO t VALUES ('a', 1), ('b', 2)")
    assert not policy.should_merge(table)  # below minimum_rows
    system.execute("INSERT INTO t VALUES ('c', 3), ('d', 4), ('e', 5)")
    assert policy.should_merge(table)  # 5/100 >= 0.05


def test_ratio_policy_counts_deleted_rows():
    system = _system_with_rows(100)
    table = system.server.catalog.table("t")
    policy = RatioMergePolicy(ratio=0.05, minimum_rows=3)
    system.execute("DELETE FROM t WHERE n < 6")
    assert policy.should_merge(table)


def test_absolute_policy():
    system = _system_with_rows(10)
    table = system.server.catalog.table("t")
    policy = AbsoluteMergePolicy(max_delta_rows=2)
    system.execute("INSERT INTO t VALUES ('a', 1)")
    assert not policy.should_merge(table)
    system.execute("INSERT INTO t VALUES ('b', 2)")
    assert policy.should_merge(table)


def test_composite_policy():
    system = _system_with_rows(1000)
    table = system.server.catalog.table("t")
    composite = CompositeMergePolicy(
        RatioMergePolicy(ratio=0.5, minimum_rows=10_000),
        AbsoluteMergePolicy(max_delta_rows=3),
    )
    system.execute("INSERT INTO t VALUES ('a', 1), ('b', 2), ('c', 3)")
    assert composite.should_merge(table)


def test_policy_validation():
    with pytest.raises(ValueError):
        RatioMergePolicy(ratio=0)
    with pytest.raises(ValueError):
        AbsoluteMergePolicy(max_delta_rows=0)
    with pytest.raises(ValueError):
        CompositeMergePolicy()


def test_server_auto_merge_fires():
    system = _system_with_rows(20)
    system.server.enable_auto_merge(AbsoluteMergePolicy(max_delta_rows=3))
    table = system.server.catalog.table("t")
    system.execute("INSERT INTO t VALUES ('a', 1), ('b', 2)")
    assert delta_row_count(table) == 2  # below threshold: no merge
    system.execute("INSERT INTO t VALUES ('c', 3)")
    assert delta_row_count(table) == 0  # merged
    assert main_row_count(table) == 23
    # Data is intact and queryable after the automatic merge.
    assert system.query("SELECT COUNT(*) FROM t").scalar() == 23
    assert system.query("SELECT n FROM t WHERE v = 'c'").rows == [(3,)]


def test_auto_merge_compacts_deletes():
    system = _system_with_rows(20)
    system.server.enable_auto_merge(RatioMergePolicy(ratio=0.2, minimum_rows=2))
    table = system.server.catalog.table("t")
    system.execute("DELETE FROM t WHERE n < 5")
    assert table.row_count == 15  # merge dropped the deleted rows
    assert table.live_row_count == 15


def test_disable_auto_merge():
    system = _system_with_rows(10)
    system.server.enable_auto_merge(AbsoluteMergePolicy(max_delta_rows=1))
    system.server.disable_auto_merge()
    table = system.server.catalog.table("t")
    system.execute("INSERT INTO t VALUES ('a', 1), ('b', 2)")
    assert delta_row_count(table) == 2  # nothing fired

"""Bit-packed attribute vectors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.columnstore.packed import (
    pack_attribute_vector,
    packed_size_bytes,
    unpack_attribute_vector,
)
from repro.exceptions import StorageError


def test_roundtrip_small():
    av = np.array([0, 1, 2, 3, 2, 1, 0], dtype=np.int64)
    packed, width = pack_attribute_vector(av, 4)
    assert width == 2
    assert len(packed) == 2  # 14 bits -> 2 bytes
    assert unpack_attribute_vector(packed, width, len(av)).tolist() == av.tolist()


def test_width_follows_dictionary_size():
    av = np.array([0], dtype=np.int64)
    assert pack_attribute_vector(av, 1)[1] == 1
    assert pack_attribute_vector(av, 2)[1] == 1
    assert pack_attribute_vector(av, 3)[1] == 2
    assert pack_attribute_vector(av, 256)[1] == 8
    assert pack_attribute_vector(av, 257)[1] == 9


def test_paper_example_sizes():
    """10,000 entries over 256 uniques pack to exactly 10,000 bytes."""
    assert packed_size_bytes(10_000, 256) == 10_000
    assert packed_size_bytes(10_000, 2**16) == 20_000
    assert packed_size_bytes(8, 2) == 1  # 8 one-bit entries in one byte


def test_empty_vector():
    packed, width = pack_attribute_vector(np.empty(0, dtype=np.int64), 5)
    assert packed == b""
    assert unpack_attribute_vector(packed, width, 0).tolist() == []


def test_out_of_range_valueids_rejected():
    with pytest.raises(StorageError):
        pack_attribute_vector(np.array([4]), 4)
    with pytest.raises(StorageError):
        pack_attribute_vector(np.array([-1]), 4)
    with pytest.raises(StorageError):
        pack_attribute_vector(np.array([0]), 0)


def test_truncated_packed_data_rejected():
    av = np.arange(100, dtype=np.int64)
    packed, width = pack_attribute_vector(av, 128)
    with pytest.raises(StorageError):
        unpack_attribute_vector(packed[:-5], width, 100)
    with pytest.raises(StorageError):
        unpack_attribute_vector(packed, 0, 100)
    with pytest.raises(StorageError):
        unpack_attribute_vector(packed, 64, 100)


@settings(max_examples=50)
@given(
    data=st.data(),
    dictionary_size=st.integers(1, 5000),
)
def test_roundtrip_property(data, dictionary_size):
    length = data.draw(st.integers(0, 200))
    values = data.draw(
        st.lists(
            st.integers(0, dictionary_size - 1), min_size=length, max_size=length
        )
    )
    av = np.asarray(values, dtype=np.int64)
    packed, width = pack_attribute_vector(av, dictionary_size)
    restored = unpack_attribute_vector(packed, width, length)
    assert restored.tolist() == values


def test_packing_shrinks_database_files(tmp_path):
    """End to end: a low-cardinality column's file is far below 8 B/row."""
    from repro import EncDBDBSystem

    system = EncDBDBSystem.create(seed=77)
    system.execute("CREATE TABLE t (v VARCHAR(10))")
    system.bulk_load("t", {"v": [f"v{i % 4}" for i in range(20_000)]})
    path = tmp_path / "packed.encdbdb"
    system.save(path)
    size = path.stat().st_size
    # 20k rows at 2 bits each = 5 kB for the AV; far below int64's 160 kB.
    assert size < 40_000, size

    from repro.columnstore.storage import load_database

    loaded = load_database(path)
    column = loaded.table("t").column("v")
    assert len(column) == 20_000
    assert column.value_at(5) == "v1"

"""Tables, validity vectors, and the catalog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnstore.catalog import Catalog
from repro.columnstore.column import PlainStoredColumn
from repro.columnstore.table import Table
from repro.columnstore.types import ColumnSpec, IntegerType, VarcharType
from repro.exceptions import CatalogError, QueryError


def _specs():
    return [
        ColumnSpec("name", VarcharType(20)),
        ColumnSpec("age", IntegerType()),
    ]


def _loaded_table() -> Table:
    table = Table("people", _specs())
    names = PlainStoredColumn(table.specs[0], ["ann", "bob", "cara"])
    ages = PlainStoredColumn(table.specs[1], [30, 25, 41])
    table.attach_columns({"name": names, "age": ages}, 3)
    return table


def test_schema_validation():
    with pytest.raises(CatalogError):
        Table("bad name", _specs())
    with pytest.raises(CatalogError):
        Table("t", [])
    with pytest.raises(CatalogError):
        Table("t", [_specs()[0], _specs()[0]])


def test_spec_and_column_lookup():
    table = _loaded_table()
    assert table.spec("age").value_type == IntegerType()
    assert table.column_names == ["name", "age"]
    with pytest.raises(CatalogError):
        table.spec("salary")
    with pytest.raises(CatalogError):
        table.column("salary")


def test_attach_validates_shape():
    table = Table("people", _specs())
    names = PlainStoredColumn(table.specs[0], ["ann"])
    with pytest.raises(CatalogError):
        table.attach_columns({"name": names}, 1)  # age missing
    ages = PlainStoredColumn(table.specs[1], [30, 44])
    with pytest.raises(CatalogError):
        table.attach_columns({"name": names, "age": ages}, 2)  # ragged


def test_validity_lifecycle():
    table = _loaded_table()
    assert table.row_count == 3
    assert table.live_row_count == 3
    deleted = table.delete_rows(np.array([1]))
    assert deleted == 1
    assert table.live_row_count == 2
    # Deleting again is a no-op on the live count.
    assert table.delete_rows(np.array([1])) == 0
    assert table.filter_valid(np.array([0, 1, 2])).tolist() == [0, 2]
    assert table.all_valid_rids().tolist() == [0, 2]


def test_delete_rejects_bad_rids():
    table = _loaded_table()
    with pytest.raises(QueryError):
        table.delete_rows(np.array([7]))
    with pytest.raises(QueryError):
        table.delete_rows(np.array([-1]))


def test_register_insert_extends_validity():
    table = _loaded_table()
    rid = table.register_insert()
    assert rid == 3
    assert table.row_count == 4
    assert table.live_row_count == 4


def test_reset_validity_after_merge():
    table = _loaded_table()
    table.delete_rows(np.array([0]))
    table.reset_validity(2)
    assert table.row_count == 2
    assert table.live_row_count == 2


def test_catalog_crud():
    catalog = Catalog()
    catalog.create_table("t1", _specs())
    assert "t1" in catalog
    assert catalog.table("t1").name == "t1"
    assert catalog.table_names() == ["t1"]
    with pytest.raises(CatalogError):
        catalog.create_table("t1", _specs())
    catalog.drop_table("t1")
    assert "t1" not in catalog
    with pytest.raises(CatalogError):
        catalog.table("t1")
    with pytest.raises(CatalogError):
        catalog.drop_table("t1")


def test_catalog_iteration():
    catalog = Catalog()
    catalog.create_table("b", _specs())
    catalog.create_table("a", _specs())
    assert sorted(t.name for t in catalog) == ["a", "b"]
    assert catalog.table_names() == ["a", "b"]


def test_plain_column_search_and_delta():
    spec = ColumnSpec("name", VarcharType(10))
    column = PlainStoredColumn(spec, ["b", "d", "a"])
    assert column.search_range("a", "b").tolist() == [0, 2]
    rid = column.append("aa")
    assert rid == 3
    assert column.search_range("a", "b").tolist() == [0, 2, 3]
    assert column.value_at(3) == "aa"
    assert len(column) == 4
    column.rebuild(["a", "aa", "b"])
    assert len(column) == 3
    assert column.delta_values == []


def test_plain_column_rejects_encrypted_spec():
    from repro.encdict.options import ED1

    with pytest.raises(CatalogError):
        PlainStoredColumn(ColumnSpec("x", IntegerType(), protection=ED1))


def test_plain_column_validates_values():
    spec = ColumnSpec("name", VarcharType(2))
    with pytest.raises(CatalogError):
        PlainStoredColumn(spec, ["too-long"])
    column = PlainStoredColumn(spec, ["ok"])
    with pytest.raises(CatalogError):
        column.append("nope")

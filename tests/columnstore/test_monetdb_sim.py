"""The MonetDB string-dictionary baseline model."""

from __future__ import annotations

import pytest

from repro.columnstore.monetdb_sim import (
    DEDUP_THRESHOLD_BYTES,
    OFFSET_BYTES,
    MonetDBStringColumn,
)


def test_small_dictionary_deduplicates():
    column = MonetDBStringColumn(["a", "b", "a", "a", "b"])
    assert column.dictionary_entries == 2
    assert column.deduplicating
    assert len(column) == 5


def test_dedup_stops_past_threshold():
    """Once the heap exceeds 64 kB, duplicates are appended (paper §5)."""
    filler = [f"{i:032d}" for i in range(DEDUP_THRESHOLD_BYTES // 32 + 10)]
    values = filler + ["dup", "dup", "dup"]
    column = MonetDBStringColumn(values)
    assert not column.deduplicating
    # the three 'dup's arrive after the threshold: each stored separately
    assert column.dictionary_entries >= len(filler) + 3


def test_range_search_matches_linear_scan():
    values = ["pear", "apple", "fig", "banana", "apple", "quince"]
    column = MonetDBStringColumn(values)
    expected = [i for i, v in enumerate(values) if "apple" <= v <= "fig"]
    assert column.range_search("apple", "fig").tolist() == expected


def test_range_search_empty_and_full():
    values = ["b", "c", "d"]
    column = MonetDBStringColumn(values)
    assert column.range_search("x", "z").tolist() == []
    assert column.range_search("a", "z").tolist() == [0, 1, 2]


def test_comparison_count_is_linear_in_rows():
    column = MonetDBStringColumn(["v"] * 100)
    assert column.string_comparisons_per_query() == 200


def test_storage_accounting():
    column = MonetDBStringColumn(["aa", "bb", "aa"])
    # deduplicated heap: "aa" + "bb" = 4 bytes, plus one offset per row
    assert column.storage_bytes() == 4 + 3 * OFFSET_BYTES

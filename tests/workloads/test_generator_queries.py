"""Workload generator and query-workload tests."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.workloads.datasets import dataset_sizes, sample_like
from repro.workloads.generator import (
    C1_SPEC,
    C2_SPEC,
    BwColumnSpec,
    generate_bw_column,
)
from repro.workloads.queries import (
    RangeQuery,
    expected_result_rows,
    random_range_queries,
)


def test_published_profiles():
    """The specs encode the paper's §6.2 column statistics."""
    assert C1_SPEC.full_rows == 10_900_000
    assert C1_SPEC.full_unique == 6_960_000
    assert C1_SPEC.string_length == 12
    assert C2_SPEC.full_unique == 13_361
    assert C2_SPEC.string_length == 10


def test_unique_scaling_preserves_ratio():
    assert C1_SPEC.unique_for(10_900_000) == 6_960_000
    scaled = C1_SPEC.unique_for(109_000)
    assert scaled == pytest.approx(69_600, rel=0.01)
    # Low-cardinality columns are floored at 500 uniques so RS=100 query
    # workloads stay well-defined at bench scales.
    assert C2_SPEC.unique_for(10_900) == 500
    assert C2_SPEC.unique_for(100) == 100  # floor capped by the row count
    assert C1_SPEC.unique_for(1) == 1


def test_generated_column_statistics():
    rng = HmacDrbg(b"gen")
    column = generate_bw_column(C2_SPEC, 5000, rng)
    assert len(column) == 5000
    uniques = set(column)
    assert len(uniques) == C2_SPEC.unique_for(5000)
    assert all(len(v) == C2_SPEC.string_length for v in uniques)


def test_c1_profile_is_nearly_uniform_and_c2_skewed():
    rng = HmacDrbg(b"skew")
    c1 = generate_bw_column(C1_SPEC, 4000, rng.fork("c1"))
    c2 = generate_bw_column(C2_SPEC, 4000, rng.fork("c2"))
    c1_max = max(Counter(c1).values())
    c2_max = max(Counter(c2).values())
    assert c1_max <= 10  # ~1.57 rows per unique: near-uniform
    assert c2_max > 5 * c1_max  # Zipf head dominates


def test_generation_is_reproducible():
    a = generate_bw_column(C2_SPEC, 1000, HmacDrbg(b"seed"))
    b = generate_bw_column(C2_SPEC, 1000, HmacDrbg(b"seed"))
    assert a == b


def test_generation_rejects_bad_rows():
    with pytest.raises(ValueError):
        generate_bw_column(C1_SPEC, 0, HmacDrbg(b"x"))


def test_small_custom_spec():
    spec = BwColumnSpec("tiny", full_rows=100, full_unique=10,
                        string_length=6, zipf_exponent=0.0)
    column = generate_bw_column(spec, 100, HmacDrbg(b"t"))
    assert len(set(column)) == 10
    # Uniform profile: every unique occurs 100/10 +- adjustment times.
    counts = Counter(column).values()
    assert min(counts) >= 1 and sum(counts) == 100


# ----------------------------------------------------------------------
# Query workload
# ----------------------------------------------------------------------


def test_queries_cover_consecutive_uniques():
    values = ["d", "a", "c", "b", "e", "a"]
    queries = random_range_queries(values, 2, 50, HmacDrbg(b"q"))
    unique_sorted = ["a", "b", "c", "d", "e"]
    for query in queries:
        start = unique_sorted.index(query.low)
        assert unique_sorted[start + 1] == query.high  # RS consecutive uniques


def test_rs_one_queries_are_points():
    queries = random_range_queries([3, 1, 2], 1, 10, HmacDrbg(b"q"))
    assert all(q.low == q.high for q in queries)


def test_query_workload_reproducible():
    values = list(range(100))
    a = random_range_queries(values, 5, 20, HmacDrbg(b"s"))
    b = random_range_queries(values, 5, 20, HmacDrbg(b"s"))
    assert a == b


def test_query_validation():
    with pytest.raises(ValueError):
        random_range_queries([1, 2], 3, 1, HmacDrbg(b"q"))
    with pytest.raises(ValueError):
        random_range_queries([1, 2], 0, 1, HmacDrbg(b"q"))


def test_expected_result_rows_counts_duplicates():
    values = ["a", "b", "b", "c"]
    assert expected_result_rows(values, RangeQuery("a", "b")) == 3
    assert expected_result_rows(values, RangeQuery("z", "zz")) == 0


def test_result_rows_exceed_rs_with_duplicates():
    """Figure 7's point: #results > RS when values repeat."""
    values = ["v1"] * 100 + ["v2"] * 50 + ["v3"]
    queries = random_range_queries(values, 2, 30, HmacDrbg(b"q"))
    sizes = [expected_result_rows(values, q) for q in queries]
    assert max(sizes) > 2


# ----------------------------------------------------------------------
# Dataset scaling
# ----------------------------------------------------------------------


def test_sample_like_preserves_support():
    source = ["a"] * 90 + ["b"] * 10
    sampled = sample_like(source, 500, HmacDrbg(b"s"))
    assert len(sampled) == 500
    assert set(sampled) <= {"a", "b"}
    counts = Counter(sampled)
    assert counts["a"] > counts["b"]  # distribution carried over


def test_sample_like_validation():
    with pytest.raises(ValueError):
        sample_like([], 5, HmacDrbg(b"s"))
    with pytest.raises(ValueError):
        sample_like([1], 0, HmacDrbg(b"s"))


def test_dataset_sizes():
    sizes = dataset_sizes(10_000_000, steps=5, minimum=1000)
    assert sizes[0] == 1000
    assert sizes[-1] == 10_000_000
    assert sizes == sorted(sizes)
    with pytest.raises(ValueError):
        dataset_sizes(100, steps=0)

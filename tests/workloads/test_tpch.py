"""TPC-H-lite workload generator and evaluation harness (PR 9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sql.parser import parse
from repro.workloads import (
    LINEITEM_DDL,
    QueryEvaluation,
    WorkloadQuery,
    evaluate_mix,
    generate_lineitem,
    tpch_lite_mix,
)
from repro.workloads.tpch import RETURN_FLAGS


def test_generator_is_deterministic_per_seed():
    first = generate_lineitem(500, seed=7)
    second = generate_lineitem(500, seed=7)
    other = generate_lineitem(500, seed=8)
    assert set(first) == {"returnflag", "quantity", "price", "shipday"}
    for name in first:
        assert list(first[name]) == list(second[name])
    assert any(
        list(first[name]) != list(other[name]) for name in first
    )


def test_generator_shape_and_domains():
    columns = generate_lineitem(1000)
    assert all(len(values) == 1000 for values in columns.values())
    assert set(columns["returnflag"]) <= set(RETURN_FLAGS)
    quantity = np.asarray(columns["quantity"])
    assert quantity.min() >= 1 and quantity.max() <= 50
    price = np.asarray(columns["price"])
    assert price.min() >= 100  # low-cardinality price points
    assert len(np.unique(price)) <= 400


def test_ddl_parses_and_matches_generated_columns():
    statement = parse(LINEITEM_DDL)
    names = [spec.name for spec in statement.columns]
    assert names == ["returnflag", "quantity", "price", "shipday"]
    assert set(generate_lineitem(10)) == set(names)


def test_mix_covers_the_routing_surface():
    mix = tpch_lite_mix()
    assert all(isinstance(query, WorkloadQuery) for query in mix)
    names = [query.name for query in mix]
    assert len(names) == len(set(names)) == 6
    sqls = " | ".join(query.sql for query in mix)
    assert "GROUP BY" in sqls and "ORDER BY" in sqls and "WHERE" in sqls
    for query in mix:
        parse(query.sql)  # every query must be valid repro SQL


def test_evaluate_mix_with_injected_engines():
    queries = (
        WorkloadQuery("q1", "SELECT 1"),
        WorkloadQuery("q2", "SELECT 2"),
    )
    answers = {"SELECT 1": [(1,)], "SELECT 2": [(2,)]}
    calls = {"reference": 0, "pushdown": 0}

    def reference(sql):
        calls["reference"] += 1
        return answers[sql]

    def pushdown(sql):
        calls["pushdown"] += 1
        return list(answers[sql])

    evaluations = evaluate_mix(
        queries,
        reference=reference,
        pushdown=pushdown,
        routing=lambda sql: [f"rows -> proxy: {sql}"],
        repeats=2,
    )
    assert [e.query.name for e in evaluations] == ["q1", "q2"]
    assert all(e.equivalent for e in evaluations)
    assert calls == {"reference": 4, "pushdown": 4}  # repeats honoured
    for evaluation in evaluations:
        assert evaluation.reference_seconds >= 0
        assert evaluation.routing == (
            f"rows -> proxy: {evaluation.query.sql}",
        )
        payload = evaluation.to_dict()
        assert payload["name"] == evaluation.query.name
        assert payload["equivalent"] is True
    assert evaluations[0].speedup > 0


def test_evaluate_mix_flags_divergence_and_honours_comparator():
    query = WorkloadQuery("diverge", "SELECT x")

    def reference(sql):
        return [(1,), (2,)]

    def pushdown(sql):
        return [(2,), (1,)]

    strict = evaluate_mix(
        (query,), reference=reference, pushdown=pushdown, repeats=1
    )
    assert not strict[0].equivalent

    loose = evaluate_mix(
        (query,),
        reference=reference,
        pushdown=pushdown,
        repeats=1,
        comparator=lambda a, b: sorted(a) == sorted(b),
    )
    assert loose[0].equivalent


def test_query_evaluation_speedup():
    evaluation = QueryEvaluation(
        query=WorkloadQuery("q", "SELECT 1"),
        equivalent=True,
        reference_seconds=1.0,
        pushdown_seconds=0.25,
        routing=("aggregate -> enclave: pushed",),
    )
    assert evaluation.speedup == pytest.approx(4.0)
    assert evaluation.to_dict()["speedup"] == pytest.approx(4.0)

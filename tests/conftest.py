"""Shared pytest fixtures for the EncDBDB reproduction test suite."""

from __future__ import annotations

import os

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.pae import LibraryPae, Pae, PurePythonPae, default_pae


@pytest.fixture(scope="session", autouse=True)
def _race_detector():
    """Opt-in runtime race detection (``ENCDBDB_RACE_DETECT=1``).

    Instruments every ``# guarded-by:`` annotated class for the whole
    session, so the existing multi-thread hammer tests double as race
    tests; any unlocked rebinding of a guarded attribute fails the run at
    teardown with the offending class, attribute, thread and location.
    """
    if os.environ.get("ENCDBDB_RACE_DETECT") != "1":
        yield None
        return
    from repro.analysis.racecheck import RaceDetector

    detector = RaceDetector()
    detector.instrument_default()
    try:
        yield detector
    finally:
        detector.restore()
        detector.report.assert_clean()


@pytest.fixture(scope="session", autouse=True)
def _leak_oracle():
    """Opt-in runtime leakage oracle (``ENCDBDB_LEAK_CHECK=1``).

    Instruments the enclave dispatcher and the wire frame encoder for the
    whole session: every ecall and outbound frame is shape-traced, the
    eager shaping invariants (padded ranges, power-of-two uniform group
    frames, size-invariant key flips, scrubbed error frames) are checked
    as events arrive, and any violation fails the run at teardown.
    """
    if os.environ.get("ENCDBDB_LEAK_CHECK") != "1":
        yield None
        return
    from repro.analysis.leakoracle import LeakOracle

    oracle = LeakOracle()
    oracle.instrument_default()
    try:
        yield oracle
    finally:
        oracle.restore()
        oracle.report.assert_clean()


@pytest.fixture
def rng() -> HmacDrbg:
    """A deterministic RNG; every test run sees the same stream."""
    return HmacDrbg(b"test-suite-seed")


@pytest.fixture
def pae(rng: HmacDrbg) -> Pae:
    """The default (fast) PAE backend with a deterministic IV stream."""
    return default_pae(rng=rng)


@pytest.fixture(params=["pure", "library"])
def any_pae(request, rng: HmacDrbg) -> Pae:
    """Parametrized over both PAE backends for interface-level tests."""
    if request.param == "pure":
        return PurePythonPae(rng=rng)
    try:
        return LibraryPae(rng=rng)
    except Exception:  # pragma: no cover
        pytest.skip("cryptography library not available")

"""Shared pytest fixtures for the EncDBDB reproduction test suite."""

from __future__ import annotations

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.pae import LibraryPae, Pae, PurePythonPae, default_pae


@pytest.fixture
def rng() -> HmacDrbg:
    """A deterministic RNG; every test run sees the same stream."""
    return HmacDrbg(b"test-suite-seed")


@pytest.fixture
def pae(rng: HmacDrbg) -> Pae:
    """The default (fast) PAE backend with a deterministic IV stream."""
    return default_pae(rng=rng)


@pytest.fixture(params=["pure", "library"])
def any_pae(request, rng: HmacDrbg) -> Pae:
    """Parametrized over both PAE backends for interface-level tests."""
    if request.param == "pure":
        return PurePythonPae(rng=rng)
    try:
        return LibraryPae(rng=rng)
    except Exception:  # pragma: no cover
        pytest.skip("cryptography library not available")

"""PAE interface tests, parametrized over both backends."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.crypto.pae import (
    PAE_KEY_BYTES,
    PAE_OVERHEAD_BYTES,
    LibraryPae,
    PurePythonPae,
    pae_gen,
)
from repro.exceptions import AuthenticationError, CryptoError


def test_roundtrip(any_pae):
    key = pae_gen(rng=HmacDrbg(b"k"))
    blob = any_pae.encrypt(key, b"Jessica")
    assert any_pae.decrypt(key, blob) == b"Jessica"


def test_probabilistic_encryption(any_pae):
    """Equal plaintexts yield different ciphertexts (fresh IV per call)."""
    key = pae_gen(rng=HmacDrbg(b"k"))
    blob1 = any_pae.encrypt(key, b"Jessica")
    blob2 = any_pae.encrypt(key, b"Jessica")
    assert blob1 != blob2
    assert any_pae.decrypt(key, blob1) == any_pae.decrypt(key, blob2)


def test_ciphertext_length_constant_overhead(any_pae):
    key = pae_gen(rng=HmacDrbg(b"k"))
    for plaintext in (b"", b"x", b"a" * 100):
        blob = any_pae.encrypt(key, plaintext)
        assert len(blob) == len(plaintext) + PAE_OVERHEAD_BYTES
        assert len(blob) == any_pae.ciphertext_length(len(plaintext))


def test_wrong_key_rejected(any_pae):
    key1 = pae_gen(rng=HmacDrbg(b"k1"))
    key2 = pae_gen(rng=HmacDrbg(b"k2"))
    blob = any_pae.encrypt(key1, b"secret")
    with pytest.raises(AuthenticationError):
        any_pae.decrypt(key2, blob)


def test_tampering_rejected(any_pae):
    key = pae_gen(rng=HmacDrbg(b"k"))
    blob = bytearray(any_pae.encrypt(key, b"secret"))
    blob[14] ^= 0x01  # flip a ciphertext bit
    with pytest.raises(AuthenticationError):
        any_pae.decrypt(key, bytes(blob))


def test_short_blob_rejected(any_pae):
    key = pae_gen(rng=HmacDrbg(b"k"))
    with pytest.raises(AuthenticationError):
        any_pae.decrypt(key, b"short")


def test_bad_key_size_rejected(any_pae):
    with pytest.raises(CryptoError):
        any_pae.encrypt(b"short", b"v")
    with pytest.raises(CryptoError):
        any_pae.decrypt(b"short", bytes(64))


def test_aad_binding(any_pae):
    key = pae_gen(rng=HmacDrbg(b"k"))
    blob = any_pae.encrypt(key, b"v", aad=b"col=FName")
    assert any_pae.decrypt(key, blob, aad=b"col=FName") == b"v"
    with pytest.raises(AuthenticationError):
        any_pae.decrypt(key, blob, aad=b"col=LName")


def test_operation_counters(any_pae):
    key = pae_gen(rng=HmacDrbg(b"k"))
    any_pae.reset_counters()
    blob = any_pae.encrypt(key, b"v")
    any_pae.decrypt(key, blob)
    any_pae.decrypt(key, blob)
    assert any_pae.encrypt_count == 1
    assert any_pae.decrypt_count == 2


def test_pae_gen_key_size():
    assert len(pae_gen()) == PAE_KEY_BYTES
    assert len(pae_gen(rng=HmacDrbg(b"s"))) == PAE_KEY_BYTES
    with pytest.raises(CryptoError):
        pae_gen(256)


def test_backends_interoperate():
    """A blob sealed by the pure backend opens under the library backend."""
    try:
        library = LibraryPae(rng=HmacDrbg(b"l"))
    except CryptoError:  # pragma: no cover
        pytest.skip("cryptography library not available")
    pure = PurePythonPae(rng=HmacDrbg(b"p"))
    key = pae_gen(rng=HmacDrbg(b"k"))
    assert library.decrypt(key, pure.encrypt(key, b"cross")) == b"cross"
    assert pure.decrypt(key, library.encrypt(key, b"ssorc")) == b"ssorc"


@settings(max_examples=25, deadline=None)
@given(plaintext=st.binary(max_size=64), aad=st.binary(max_size=16))
def test_roundtrip_property_pure_backend(plaintext: bytes, aad: bytes):
    pae = PurePythonPae(rng=HmacDrbg(b"prop"))
    key = pae_gen(rng=HmacDrbg(b"k"))
    assert pae.decrypt(key, pae.encrypt(key, plaintext, aad), aad) == plaintext

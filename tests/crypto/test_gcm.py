"""AES-128-GCM against the McGrew–Viega / NIST reference test cases."""

from __future__ import annotations

import pytest

from repro.crypto.gcm import AesGcm, ghash
from repro.exceptions import AuthenticationError, CryptoError


def _hex(s: str) -> bytes:
    return bytes.fromhex(s)


def test_gcm_test_case_1_empty_everything():
    gcm = AesGcm(bytes(16))
    ciphertext, tag = gcm.encrypt(bytes(12), b"", b"")
    assert ciphertext == b""
    assert tag == _hex("58e2fccefa7e3061367f1d57a4e7455a")


def test_gcm_test_case_2_single_zero_block():
    gcm = AesGcm(bytes(16))
    ciphertext, tag = gcm.encrypt(bytes(12), bytes(16), b"")
    assert ciphertext == _hex("0388dace60b6a392f328c2b971b2fe78")
    assert tag == _hex("ab6e47d42cec13bdf53a67b21257bddf")


def test_gcm_test_case_3_four_blocks():
    key = _hex("feffe9928665731c6d6a8f9467308308")
    iv = _hex("cafebabefacedbaddecaf888")
    plaintext = _hex(
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b391aafd255"
    )
    gcm = AesGcm(key)
    ciphertext, tag = gcm.encrypt(iv, plaintext, b"")
    assert ciphertext == _hex(
        "42831ec2217774244b7221b784d0d49c"
        "e3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa05"
        "1ba30b396a0aac973d58e091473f5985"
    )
    assert tag == _hex("4d5c2af327cd64a62cf35abd2ba6fab4")


def test_gcm_test_case_4_with_aad():
    key = _hex("feffe9928665731c6d6a8f9467308308")
    iv = _hex("cafebabefacedbaddecaf888")
    plaintext = _hex(
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b39"
    )
    aad = _hex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
    gcm = AesGcm(key)
    ciphertext, tag = gcm.encrypt(iv, plaintext, aad)
    assert ciphertext == _hex(
        "42831ec2217774244b7221b784d0d49c"
        "e3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa05"
        "1ba30b396a0aac973d58e091"
    )
    assert tag == _hex("5bc94fbc3221a5db94fae95ae7121a47")


def test_roundtrip_with_aad():
    gcm = AesGcm(bytes(range(16)))
    iv = bytes(range(12))
    ciphertext, tag = gcm.encrypt(iv, b"attack at dawn", b"header")
    assert gcm.decrypt(iv, ciphertext, tag, b"header") == b"attack at dawn"


def test_tampered_ciphertext_rejected():
    gcm = AesGcm(bytes(range(16)))
    iv = bytes(12)
    ciphertext, tag = gcm.encrypt(iv, b"attack at dawn")
    corrupted = bytes([ciphertext[0] ^ 1]) + ciphertext[1:]
    with pytest.raises(AuthenticationError):
        gcm.decrypt(iv, corrupted, tag)


def test_tampered_tag_rejected():
    gcm = AesGcm(bytes(range(16)))
    iv = bytes(12)
    ciphertext, tag = gcm.encrypt(iv, b"attack at dawn")
    corrupted_tag = bytes([tag[0] ^ 1]) + tag[1:]
    with pytest.raises(AuthenticationError):
        gcm.decrypt(iv, ciphertext, corrupted_tag)


def test_wrong_aad_rejected():
    gcm = AesGcm(bytes(range(16)))
    iv = bytes(12)
    ciphertext, tag = gcm.encrypt(iv, b"v", b"aad-1")
    with pytest.raises(AuthenticationError):
        gcm.decrypt(iv, ciphertext, tag, b"aad-2")


def test_truncated_tag_rejected():
    gcm = AesGcm(bytes(range(16)))
    iv = bytes(12)
    ciphertext, tag = gcm.encrypt(iv, b"v")
    with pytest.raises(AuthenticationError):
        gcm.decrypt(iv, ciphertext, tag[:8])


def test_bad_nonce_length_rejected():
    gcm = AesGcm(bytes(16))
    with pytest.raises(CryptoError):
        gcm.encrypt(bytes(8), b"v")
    with pytest.raises(CryptoError):
        gcm.decrypt(bytes(16), b"", bytes(16))


def test_ghash_input_validation():
    with pytest.raises(CryptoError):
        ghash(bytes(8), bytes(16))
    with pytest.raises(CryptoError):
        ghash(bytes(16), bytes(15))


def test_ghash_zero_key_annihilates():
    """GHASH under H = 0 maps everything to zero (multiplication by zero)."""
    assert ghash(bytes(16), bytes(32)) == bytes(16)
    assert ghash(bytes(16), bytes(range(16))) == bytes(16)

"""HKDF-SHA256 and per-column key derivation tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.crypto.kdf import derive_column_key, hkdf_sha256
from repro.exceptions import CryptoError


def test_rfc5869_test_case_1():
    ikm = bytes.fromhex("0b" * 22)
    salt = bytes.fromhex("000102030405060708090a0b0c")
    info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
    okm = hkdf_sha256(ikm, salt=salt, info=info, length=42)
    assert okm == bytes.fromhex(
        "3cb25f25faacd57a90434f64d0362f2a"
        "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        "34007208d5b887185865"
    )


def test_rfc5869_test_case_3_no_salt_no_info():
    ikm = bytes.fromhex("0b" * 22)
    okm = hkdf_sha256(ikm, length=42)
    assert okm == bytes.fromhex(
        "8da4e775a563c18f715f802a063c5a31"
        "b8a11f5c5ee1879ec3454e5f3c738d2d"
        "9d201395faa4b61a96c8"
    )


def test_output_length_control():
    assert len(hkdf_sha256(b"ikm", length=1)) == 1
    assert len(hkdf_sha256(b"ikm", length=64)) == 64
    with pytest.raises(CryptoError):
        hkdf_sha256(b"ikm", length=0)
    with pytest.raises(CryptoError):
        hkdf_sha256(b"ikm", length=255 * 32 + 1)


def test_column_keys_are_distinct_per_column():
    master = bytes(range(16))
    key_a = derive_column_key(master, "t1", "c1")
    key_b = derive_column_key(master, "t1", "c2")
    key_c = derive_column_key(master, "t2", "c1")
    assert len({key_a, key_b, key_c}) == 3
    assert all(len(k) == 16 for k in (key_a, key_b, key_c))


def test_column_key_is_deterministic():
    master = bytes(range(16))
    assert derive_column_key(master, "t", "c") == derive_column_key(master, "t", "c")


def test_no_name_concatenation_collisions():
    """('ab','c') and ('a','bc') must not derive the same key."""
    master = bytes(range(16))
    assert derive_column_key(master, "ab", "c") != derive_column_key(master, "a", "bc")


def test_empty_master_key_rejected():
    with pytest.raises(CryptoError):
        derive_column_key(b"", "t", "c")


@given(
    table=st.text(min_size=0, max_size=20),
    column=st.text(min_size=0, max_size=20),
)
def test_derivation_total_and_stable(table: str, column: str):
    master = b"m" * 16
    key = derive_column_key(master, table, column)
    assert len(key) == 16
    assert key == derive_column_key(master, table, column)

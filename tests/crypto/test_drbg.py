"""Deterministic RNG tests: reproducibility, uniformity, fork independence."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.drbg import HmacDrbg


def test_same_seed_same_stream():
    a = HmacDrbg(b"seed")
    b = HmacDrbg(b"seed")
    assert a.random_bytes(100) == b.random_bytes(100)
    assert a.randint(0, 1000) == b.randint(0, 1000)


def test_different_seeds_diverge():
    assert HmacDrbg(b"seed-a").random_bytes(32) != HmacDrbg(b"seed-b").random_bytes(32)


@pytest.mark.parametrize("n,count", [(12, 1), (12, 37), (16, 5), (1, 100), (12, 0)])
def test_random_bytes_many_replays_per_call_chain(n: int, count: int):
    """The batched draw is byte-identical to ``count`` sequential calls —
    including the per-call ratchet, so the generator state afterwards matches
    too (the next draw from either instance is identical)."""
    loop = HmacDrbg(b"batch-identity")
    batch = HmacDrbg(b"batch-identity")
    assert batch.random_bytes_many(n, count) == [
        loop.random_bytes(n) for _ in range(count)
    ]
    assert batch.random_bytes(n) == loop.random_bytes(n)


def test_seed_types_accepted():
    for seed in (b"bytes", "string", 42, -7, 0):
        assert len(HmacDrbg(seed).random_bytes(8)) == 8


def test_int_seeds_distinct():
    assert HmacDrbg(1).random_bytes(16) != HmacDrbg(2).random_bytes(16)


def test_randint_bounds():
    rng = HmacDrbg(b"s")
    values = [rng.randint(3, 7) for _ in range(500)]
    assert min(values) == 3
    assert max(values) == 7


def test_randint_single_point():
    rng = HmacDrbg(b"s")
    assert rng.randint(5, 5) == 5


def test_randint_empty_range_rejected():
    with pytest.raises(ValueError):
        HmacDrbg(b"s").randint(5, 4)


def test_randint_roughly_uniform():
    """Chi-square style sanity check on U{1, 4} (the bucket experiment)."""
    rng = HmacDrbg(b"uniform")
    counts = Counter(rng.randint(1, 4) for _ in range(8000))
    for value in (1, 2, 3, 4):
        assert 1700 < counts[value] < 2300, counts


def test_shuffle_is_permutation():
    rng = HmacDrbg(b"s")
    items = list(range(50))
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items
    assert shuffled != items  # astronomically unlikely to be identity


def test_shuffle_reproducible():
    items1, items2 = list(range(20)), list(range(20))
    HmacDrbg(b"s").shuffle(items1)
    HmacDrbg(b"s").shuffle(items2)
    assert items1 == items2


def test_choice():
    rng = HmacDrbg(b"s")
    assert rng.choice([42]) == 42
    assert rng.choice(["a", "b"]) in ("a", "b")
    with pytest.raises(ValueError):
        rng.choice([])


def test_fork_independence():
    parent1 = HmacDrbg(b"seed")
    parent2 = HmacDrbg(b"seed")
    child_a = parent1.fork("a")
    child_b = parent2.fork("b")
    assert child_a.random_bytes(32) != child_b.random_bytes(32)


def test_fork_reproducible():
    assert (
        HmacDrbg(b"seed").fork("x").random_bytes(16)
        == HmacDrbg(b"seed").fork("x").random_bytes(16)
    )


@settings(max_examples=30)
@given(n=st.integers(min_value=0, max_value=200))
def test_random_bytes_length(n: int):
    assert len(HmacDrbg(b"s").random_bytes(n)) == n


@settings(max_examples=30)
@given(low=st.integers(-1000, 1000), span=st.integers(0, 1000))
def test_randint_always_in_range(low: int, span: int):
    value = HmacDrbg(b"s").randint(low, low + span)
    assert low <= value <= low + span

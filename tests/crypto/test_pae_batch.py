"""Batch PAE interface and counter thread-safety (PR 4).

``encrypt_many``/``decrypt_many`` must be *bit-for-bit* the loop they
replace (the build pipeline's determinism rests on it), and the operation
counters must stay exactly additive when many build/scan workers share one
backend.
"""

from __future__ import annotations

import threading

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.exceptions import AuthenticationError, CryptoError

KEY = b"\x42" * 16
PLAINTEXTS = [f"value-{i}".encode() for i in range(37)]


def test_encrypt_many_is_bit_identical_to_sequential_encrypts(any_pae):
    # Same dedicated IV DRBG seed -> the batch must reproduce the loop.
    loop_rng = HmacDrbg(b"iv-stream")
    sequential = [any_pae.encrypt(KEY, pt, rng=loop_rng) for pt in PLAINTEXTS]
    batched = any_pae.encrypt_many(KEY, PLAINTEXTS, rng=HmacDrbg(b"iv-stream"))
    assert batched == sequential


def test_encrypt_many_without_rng_matches_backend_stream(any_pae):
    other = type(any_pae)(rng=HmacDrbg(b"test-suite-seed"))
    sequential = [other.encrypt(KEY, pt) for pt in PLAINTEXTS]
    batched = any_pae.encrypt_many(KEY, PLAINTEXTS)
    assert batched == sequential
    assert any_pae.encrypt_count == len(PLAINTEXTS)


def test_decrypt_many_round_trip_and_counts(any_pae):
    blobs = any_pae.encrypt_many(KEY, PLAINTEXTS)
    assert any_pae.decrypt_many(KEY, blobs) == PLAINTEXTS
    assert any_pae.decrypt_count == len(PLAINTEXTS)
    assert any_pae.decrypt_many(KEY, []) == []
    assert any_pae.encrypt_many(KEY, []) == []


def test_decrypt_many_authenticates_every_blob(any_pae):
    blobs = any_pae.encrypt_many(KEY, PLAINTEXTS[:3])
    tampered = blobs[:2] + [blobs[2][:-1] + bytes([blobs[2][-1] ^ 1])]
    with pytest.raises(AuthenticationError):
        any_pae.decrypt_many(KEY, tampered)
    with pytest.raises(AuthenticationError):
        any_pae.decrypt_many(KEY, [b"short"])


def test_batch_calls_validate_key_length(any_pae):
    with pytest.raises(CryptoError):
        any_pae.encrypt_many(b"bad", PLAINTEXTS[:1])
    with pytest.raises(CryptoError):
        any_pae.decrypt_many(b"bad", [])


def test_counters_exactly_additive_under_eight_threads(pae):
    """The hammer: 8 workers share one backend; no increment may be lost."""
    threads = 8
    per_thread = 50
    blob = pae.encrypt(KEY, b"seed-blob")
    pae.reset_counters()
    barrier = threading.Barrier(threads)

    def worker(index: int) -> None:
        rng = HmacDrbg(f"worker-{index}")
        barrier.wait()
        for i in range(per_thread):
            if i % 3 == 0:
                pae.encrypt_many(KEY, PLAINTEXTS[:4], rng=rng)
            else:
                pae.encrypt(KEY, b"x", rng=rng)
            pae.decrypt(KEY, blob)
        pae.add_operation_counts(encrypts=2, decrypts=1)

    pool = [
        threading.Thread(target=worker, args=(index,)) for index in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()

    batched_rounds = len(range(0, per_thread, 3))
    expected_encrypts = threads * (
        batched_rounds * 4 + (per_thread - batched_rounds) + 2
    )
    expected_decrypts = threads * (per_thread + 1)
    assert pae.encrypt_count == expected_encrypts
    assert pae.decrypt_count == expected_decrypts


def test_batch_counters_exactly_additive_under_eight_threads(pae):
    """PR 6 variant of the hammer: all eight workers use the *batched* calls
    (one locked counter bump per batch), interleaved with scalar ops and
    out-of-band folds. Exact additivity must survive."""
    threads = 8
    per_thread = 40
    batch = PLAINTEXTS[:5]
    warm = pae.encrypt_many(KEY, batch)
    pae.reset_counters()
    barrier = threading.Barrier(threads)

    def worker(index: int) -> None:
        rng = HmacDrbg(f"batch-worker-{index}")
        barrier.wait()
        for i in range(per_thread):
            blobs = pae.encrypt_many(KEY, batch, rng=rng)
            assert pae.decrypt_many(KEY, blobs) == batch
            if i % 4 == 0:
                pae.encrypt(KEY, b"x", rng=rng)
                pae.decrypt_many(KEY, warm)
        pae.add_operation_counts(encrypts=3, decrypts=2)

    pool = [
        threading.Thread(target=worker, args=(index,)) for index in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()

    scalar_rounds = len(range(0, per_thread, 4))
    expected_encrypts = threads * (per_thread * len(batch) + scalar_rounds + 3)
    expected_decrypts = threads * (
        per_thread * len(batch) + scalar_rounds * len(batch) + 2
    )
    assert pae.encrypt_count == expected_encrypts
    assert pae.decrypt_count == expected_decrypts

"""AES-128 block cipher against the FIPS 197 reference vectors."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.crypto.aes import Aes128
from repro.exceptions import CryptoError


def test_fips197_appendix_c1_vector():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
    assert Aes128(key).encrypt_block(plaintext) == expected


def test_fips197_appendix_b_vector():
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
    expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
    assert Aes128(key).encrypt_block(plaintext) == expected


def test_nist_sp800_38a_ecb_vectors():
    """The four ECB-AES128 blocks from SP 800-38A appendix F.1.1."""
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    cipher = Aes128(key)
    cases = [
        ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"),
        ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"),
        ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"),
        ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"),
    ]
    for plaintext_hex, ciphertext_hex in cases:
        assert cipher.encrypt_block(bytes.fromhex(plaintext_hex)) == bytes.fromhex(
            ciphertext_hex
        )


def test_rejects_bad_key_length():
    with pytest.raises(CryptoError):
        Aes128(b"short")
    with pytest.raises(CryptoError):
        Aes128(bytes(24))


def test_rejects_bad_block_length():
    cipher = Aes128(bytes(16))
    with pytest.raises(CryptoError):
        cipher.encrypt_block(b"too short")
    with pytest.raises(CryptoError):
        cipher.encrypt_block(bytes(17))


def test_encryption_is_deterministic_per_key():
    a = Aes128(bytes(16))
    b = Aes128(bytes(16))
    block = bytes(range(16))
    assert a.encrypt_block(block) == b.encrypt_block(block)


@given(key=st.binary(min_size=16, max_size=16), block=st.binary(min_size=16, max_size=16))
def test_block_permutation_properties(key: bytes, block: bytes):
    """Encryption is a permutation: output is 16 bytes and key-dependent."""
    out = Aes128(key).encrypt_block(block)
    assert len(out) == 16
    # AES has no fixed point for all-zero trivially guaranteed, but output
    # must differ from input for random cases with overwhelming probability;
    # we only assert the cheap structural property here.
    assert isinstance(out, bytes)


@given(block=st.binary(min_size=16, max_size=16))
def test_distinct_keys_give_distinct_ciphertexts(block: bytes):
    out1 = Aes128(bytes(16)).encrypt_block(block)
    out2 = Aes128(bytes([1]) + bytes(15)).encrypt_block(block)
    assert out1 != out2

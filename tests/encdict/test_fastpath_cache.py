"""Correctness of the query fast path (PR 1).

The ISSUE's cache-correctness checklist: byte-identical results cached vs
uncached across all nine dictionary kinds, eviction under EPC pressure,
epoch invalidation after write ecalls (stale entries must never be served),
and batched-ecall equivalence.
"""

from __future__ import annotations

import pytest

from repro.columnstore.types import IntegerType, VarcharType
from repro.crypto.drbg import HmacDrbg
from repro.crypto.kdf import derive_column_key
from repro.crypto.pae import default_pae, pae_gen
from repro.encdict.attrvect import attr_vect_search
from repro.encdict.builder import encdb_build
from repro.encdict.enclave_app import EncDBDBEnclave, encrypt_search_range
from repro.encdict.options import ALL_KINDS, ED2, ED3
from repro.encdict.search import OrdinalRange
from repro.exceptions import QueryError
from repro.sgx.attestation import AttestationService
from repro.sgx.cache import FastPathConfig
from repro.sgx.channel import SecureChannel
from repro.sgx.enclave import EnclaveHost

from tests.encdict.conftest import reference_range_search

VALUES = ["b", "a", "c", "b", "e", "d", "b", "a", "e"]


def _provisioned_host(fastpath=None, seed=b"fastpath-e2e"):
    """Full §4.2 setup; returns (host, master_key, pae, rng)."""
    rng = HmacDrbg(seed)
    service = AttestationService()
    pae = default_pae(rng=rng.fork("client-pae"))
    enclave = EncDBDBEnclave(
        attestation=service,
        pae=default_pae(rng=rng.fork("enclave-pae")),
        rng=rng.fork("enclave"),
        fastpath=fastpath,
    )
    host = EnclaveHost(enclave)
    master_key = pae_gen(rng=rng.fork("skdb"))

    offer = host.ecall("channel_offer")
    channel, client_public = SecureChannel.connect(
        offer, service, host.measurement, rng=rng.fork("owner"), pae=pae
    )
    host.ecall("channel_accept", client_public)
    host.ecall("provision_master_key", channel.send(master_key))
    return host, master_key, pae, rng


def _build(master_key, pae, rng, values, kind, value_type=None, bsmax=3):
    value_type = value_type or VarcharType(20)
    key = derive_column_key(master_key, "t1", "c1")
    return encdb_build(
        values,
        kind,
        value_type=value_type,
        key=key,
        pae=pae,
        rng=rng.fork(f"b-{kind.name}"),
        bsmax=bsmax,
        table_name="t1",
        column_name="c1",
    )


def _tau(master_key, pae, value_type, low, high):
    key = derive_column_key(master_key, "t1", "c1")
    return encrypt_search_range(
        pae, key, OrdinalRange(value_type.ordinal(low), value_type.ordinal(high))
    )


# ----------------------------------------------------------------------
# Cached vs uncached equivalence
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.name)
def test_cached_results_identical_across_all_kinds(kind):
    """Cold and warm cached searches match the uncached baseline exactly."""
    seed = b"equiv-" + kind.name.encode()
    baseline_host, master_key, pae, rng = _provisioned_host(
        FastPathConfig.disabled(), seed=seed
    )
    cached_host, cached_key, cached_pae, cached_rng = _provisioned_host(
        FastPathConfig(), seed=seed
    )
    # Same seed => identical keys and builds on both deployments.
    assert cached_key == master_key
    build = _build(master_key, pae, rng, VALUES, kind)
    cached_build = _build(cached_key, cached_pae, cached_rng, VALUES, kind)

    for low, high in [("a", "b"), ("b", "d"), ("e", "e"), ("f", "z")]:
        tau = _tau(master_key, pae, build.dictionary.value_type, low, high)
        expected = baseline_host.ecall("dict_search", build.dictionary, tau)
        cached_tau = _tau(
            cached_key, cached_pae, cached_build.dictionary.value_type, low, high
        )
        cold = cached_host.ecall("dict_search", cached_build.dictionary, cached_tau)
        warm = cached_host.ecall("dict_search", cached_build.dictionary, cached_tau)
        # Byte-identical SearchResults: same ranges, same vids, cold and warm.
        assert cold.ranges == expected.ranges and cold.vids == expected.vids, kind
        assert warm.ranges == expected.ranges and warm.vids == expected.vids, kind
        records = sorted(
            attr_vect_search(cached_build.attribute_vector, warm).tolist()
        )
        assert records == reference_range_search(VALUES, low, high), kind


def test_warm_cache_skips_decryptions():
    """A repeated ED3 query decrypts only the two τ bounds on the warm run."""
    host, master_key, pae, rng = _provisioned_host(FastPathConfig())
    values = [f"v{i:03d}" for i in range(64)]
    build = _build(master_key, pae, rng, values, ED3)
    tau = _tau(master_key, pae, build.dictionary.value_type, "v010", "v020")

    before = host.cost_model.snapshot()
    host.ecall("dict_search", build.dictionary, tau)
    cold = host.cost_model.diff(before)["decryptions"]
    assert cold == 64 + 2  # every entry + both range bounds

    before = host.cost_model.snapshot()
    host.ecall("dict_search", build.dictionary, tau)
    warm = host.cost_model.diff(before)["decryptions"]
    assert warm == 2  # only the τ bounds; all 64 entries hit the cache

    # The warm run served the whole partition from the cached packed-ordinal
    # array (PR 6): one hit replaces the 64 per-entry hits of the scalar
    # path, and the per-entry plaintext never needed caching at all.
    stats = host._enclave.fastpath_stats()
    assert stats["hits"] >= 1
    usage = host._enclave.fastpath_partition_usage()
    assert sum(usage.values()) > 0  # the packed array is EPC-accounted


# ----------------------------------------------------------------------
# Eviction under EPC pressure
# ----------------------------------------------------------------------


def test_eviction_under_epc_pressure_stays_correct():
    """A cache far smaller than the dictionary evicts but never corrupts.

    Runs with vectorized kernels off: the packed-ordinal array of this
    dictionary exceeds the whole budget (served pass-through, nothing to
    evict), and this test is about the per-entry LRU eviction machinery.
    """
    tiny = FastPathConfig(dictionary_cache_bytes=4096, vectorized_kernels=False)
    host, master_key, pae, rng = _provisioned_host(tiny)
    values = [f"v{i:03d}" for i in range(200)]
    build = _build(master_key, pae, rng, values, ED3)
    cache = host._enclave.entry_cache
    assert cache.budget_bytes == 4096

    for low, high in [("v000", "v050"), ("v100", "v150"), ("v000", "v050")]:
        tau = _tau(master_key, pae, build.dictionary.value_type, low, high)
        result = host.ecall("dict_search", build.dictionary, tau)
        records = sorted(attr_vect_search(build.attribute_vector, result).tolist())
        assert records == reference_range_search(values, low, high)
        assert cache.used_bytes <= cache.budget_bytes

    assert cache.stats.evictions > 0
    assert cache.stats.peak_bytes <= cache.budget_bytes
    # Evictions were charged to the cost model as paging events.
    assert host.cost_model.epc_page_faults >= cache.stats.evictions


# ----------------------------------------------------------------------
# Epoch invalidation
# ----------------------------------------------------------------------


def test_rebuild_for_merge_invalidates_column_cache():
    """After a merge rebuild no pre-merge cache entry survives."""
    host, master_key, pae, rng = _provisioned_host(FastPathConfig())
    key = derive_column_key(master_key, "t1", "c1")
    vt = VarcharType(20)
    build = _build(master_key, pae, rng, VALUES, ED2)
    tau = _tau(master_key, pae, vt, "a", "e")
    host.ecall("dict_search", build.dictionary, tau)  # populate the cache
    cache = host._enclave.entry_cache
    assert len(cache) > 0
    old_epoch = host._enclave._epoch("t1", "c1")

    merged_values = ["m", "a", "z", "m"]
    blobs = [pae.encrypt(key, vt.to_bytes(v)) for v in merged_values]
    new_build = host.ecall("rebuild_for_merge", "t1", "c1", ED2, vt, blobs)

    # Epoch bumped, and every surviving key carries the current epoch for
    # some column — none references the merged column's old epoch.
    new_epoch = host._enclave._epoch("t1", "c1")
    assert new_epoch == old_epoch + 1
    for cache_key in list(cache._entries):
        assert not (
            cache_key[0] == "t1"
            and cache_key[1] == "c1"
            and cache_key[2] == old_epoch
        )

    # Searches against the rebuilt store are correct (stale never served).
    tau = _tau(master_key, pae, vt, "a", "m")
    result = host.ecall("dict_search", new_build.dictionary, tau)
    records = sorted(attr_vect_search(new_build.attribute_vector, result).tolist())
    assert records == reference_range_search(merged_values, "a", "m")


def test_reencrypt_for_delta_bumps_epoch():
    host, master_key, pae, rng = _provisioned_host(FastPathConfig())
    key = derive_column_key(master_key, "t1", "c1")
    before = host._enclave._epoch("t1", "c1")
    transit = pae.encrypt(key, b"inserted")
    host.ecall("reencrypt_for_delta", "t1", "c1", transit)
    assert host._enclave._epoch("t1", "c1") == before + 1


def test_restore_master_key_clears_caches():
    host, master_key, pae, rng = _provisioned_host(FastPathConfig())
    build = _build(master_key, pae, rng, VALUES, ED3)
    tau = _tau(master_key, pae, build.dictionary.value_type, "a", "e")
    host.ecall("dict_search", build.dictionary, tau)
    cache = host._enclave.entry_cache
    assert len(cache) > 0
    sealed = host.ecall("seal_master_key")
    host.ecall("restore_master_key", sealed)
    assert len(cache) == 0


# ----------------------------------------------------------------------
# Batched ecalls
# ----------------------------------------------------------------------


def test_dict_search_batch_matches_individual_searches():
    host, master_key, pae, rng = _provisioned_host(FastPathConfig())
    vt = VarcharType(20)
    builds = [_build(master_key, pae, rng, VALUES, kind) for kind in ALL_KINDS[:3]]
    taus = [
        _tau(master_key, pae, vt, low, high)
        for low, high in [("a", "b"), ("b", "d"), ("d", "e")]
    ]
    individual = [
        host.ecall("dict_search", build.dictionary, tau)
        for build, tau in zip(builds, taus)
    ]
    before = host.cost_model.snapshot()
    batched = host.ecall(
        "dict_search_batch",
        [(build.dictionary, tau) for build, tau in zip(builds, taus)],
    )
    diff = host.cost_model.diff(before)
    assert diff["ecalls"] == 1  # all three searches in one boundary crossing
    assert len(batched) == len(individual)
    for got, expected in zip(batched, individual):
        assert got.ranges == expected.ranges and got.vids == expected.vids


def test_dict_search_batch_rejects_empty_request():
    host, *_ = _provisioned_host(FastPathConfig())
    with pytest.raises(QueryError):
        host.ecall("dict_search_batch", [])


def test_default_enclave_keeps_slow_path():
    """A bare EncDBDBEnclave stays paper-faithful: no cache, no EPC use."""
    host, master_key, pae, rng = _provisioned_host()  # fastpath=None
    assert host._enclave.entry_cache is None
    assert host._enclave.fastpath_stats() is None
    build = _build(master_key, pae, rng, VALUES, ED3)
    tau = _tau(master_key, pae, build.dictionary.value_type, "a", "e")
    host.ecall("dict_search", build.dictionary, tau)
    host.ecall("dict_search", build.dictionary, tau)
    assert host._enclave.epc.allocated_pages == 0

"""EncDB construction invariants for all nine encrypted dictionaries."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.columnstore.types import IntegerType, VarcharType
from repro.crypto.pae import PAE_OVERHEAD_BYTES
from repro.encdict.options import (
    ALL_KINDS,
    ED1,
    ED2,
    ED3,
    ED5,
    ED7,
    OrderOption,
    RepetitionOption,
)
from repro.exceptions import CatalogError

from tests.encdict.conftest import EdHarness

NAMES = ["Jessica", "Jessica", "Archie", "Archie", "Jessica", "Hans", "Ella"]


def _decrypt_dictionary(harness: EdHarness, build) -> list:
    """White-box decryption of all entries, in ValueID order."""
    value_type = build.dictionary.value_type
    return [
        value_type.from_bytes(harness.pae.decrypt(harness.key, blob))
        for blob in build.dictionary.entries()
    ]


def test_split_correctness_definition1(harness, kind):
    """D[AV[j]] == C[j] for every RecordID j (paper Definition 1)."""
    build = harness.build(NAMES, kind)
    dictionary = _decrypt_dictionary(harness, build)
    assert len(build.attribute_vector) == len(NAMES)
    for record_id, value in enumerate(NAMES):
        assert dictionary[build.attribute_vector[record_id]] == value


def test_split_correctness_integers(harness, kind):
    values = [5, -3, 5, 5, 100, -3, 0]
    build = harness.build(values, kind, value_type=IntegerType())
    dictionary = _decrypt_dictionary(harness, build)
    for record_id, value in enumerate(values):
        assert dictionary[build.attribute_vector[record_id]] == value


def test_dictionary_sizes_match_table3(harness):
    """|D| = |un(C)| (revealing) and |D| = |AV| (hiding)."""
    unique_count = len(set(NAMES))
    for kind in ALL_KINDS:
        build = harness.build(NAMES, kind)
        if kind.repetition is RepetitionOption.REVEALING:
            assert build.stats.dictionary_entries == unique_count
        elif kind.repetition is RepetitionOption.HIDING:
            assert build.stats.dictionary_entries == len(NAMES)
        else:
            assert unique_count <= build.stats.dictionary_entries <= len(NAMES)


def test_smoothing_expected_dictionary_size(harness):
    """|D| ~ sum_v 2|oc(C,v)|/(1+bsmax) for frequency smoothing."""
    values = [f"v{i % 20}" for i in range(2000)]  # 20 uniques x 100
    bsmax = 9
    build = harness.build(values, ALL_KINDS[3], bsmax=bsmax)  # ED4
    expected = sum(2 * 100 / (1 + bsmax) for _ in range(20))
    assert build.stats.dictionary_entries == pytest.approx(expected, rel=0.35)


def test_frequency_bound_of_smoothing(harness):
    """Every ValueID occurs between 1 and bsmax times in AV (Table 3)."""
    values = [f"v{i % 5}" for i in range(500)]
    for kind in ALL_KINDS[3:6]:  # ED4, ED5, ED6
        build = harness.build(values, kind, bsmax=4)
        counts = Counter(build.attribute_vector.tolist())
        assert set(counts) == set(range(build.stats.dictionary_entries))
        assert all(1 <= c <= 4 for c in counts.values()), counts


def test_frequency_hiding_uses_every_valueid_once(harness):
    values = ["a", "b", "a", "a", "c"]
    for kind in ALL_KINDS[6:9]:  # ED7, ED8, ED9
        build = harness.build(values, kind)
        counts = Counter(build.attribute_vector.tolist())
        assert all(count == 1 for count in counts.values())
        assert len(counts) == len(values)


def test_sorted_kinds_store_sorted_plaintexts(harness):
    for kind in (ALL_KINDS[0], ALL_KINDS[3], ALL_KINDS[6]):  # ED1/4/7
        build = harness.build(NAMES, kind)
        dictionary = _decrypt_dictionary(harness, build)
        assert dictionary == sorted(dictionary)


def test_rotated_kinds_are_rotation_of_sorted(harness):
    for kind in (ALL_KINDS[1], ALL_KINDS[4], ALL_KINDS[7]):  # ED2/5/8
        build = harness.build(NAMES, kind)
        dictionary = _decrypt_dictionary(harness, build)
        offset = build.stats.rnd_offset
        assert offset is not None and 0 <= offset < len(dictionary)
        unrotated = [
            dictionary[(j + offset) % len(dictionary)] for j in range(len(dictionary))
        ]
        assert unrotated == sorted(dictionary)
        assert build.dictionary.enc_rnd_offset is not None


def test_unrotated_kinds_have_no_offset(harness):
    for kind in (ED1, ED3, ED7):
        build = harness.build(NAMES, kind)
        assert build.stats.rnd_offset is None
        assert build.dictionary.enc_rnd_offset is None


def test_ed1_matches_paper_figure3b(harness):
    """Figure 3: sorted unique dictionary [Archie, Ella, Hans, Jessica]."""
    column = ["Hans", "Jessica", "Archie", "Ella", "Jessica", "Jessica"]
    build = harness.build(column, ED1)
    assert _decrypt_dictionary(harness, build) == [
        "Archie",
        "Ella",
        "Hans",
        "Jessica",
    ]
    assert build.attribute_vector.tolist() == [2, 3, 0, 1, 3, 3]


def test_unsorted_shuffle_is_key_independent_of_order(harness):
    """ED3's dictionary is a permutation of the unique values."""
    build = harness.build(NAMES, ED3)
    dictionary = _decrypt_dictionary(harness, build)
    assert sorted(dictionary) == sorted(set(NAMES))


def test_probabilistic_encryption_of_duplicates(harness):
    """ED7 stores equal plaintexts under distinct ciphertexts."""
    build = harness.build(["x", "x", "x"], ED7)
    blobs = list(build.dictionary.entries())
    assert len(blobs) == 3
    assert len({bytes(blob) for blob in blobs}) == 3


def test_storage_accounting(harness):
    build = harness.build(NAMES, ED1)
    dictionary = build.dictionary
    expected_tail = sum(
        len(value.encode()) + PAE_OVERHEAD_BYTES for value in set(NAMES)
    )
    assert dictionary.tail_bytes() == expected_tail
    assert dictionary.head_bytes() == 8 * len(set(NAMES))
    assert dictionary.storage_bytes() == expected_tail + dictionary.head_bytes()
    assert dictionary.attribute_vector_bytes(len(NAMES)) == len(NAMES)  # 1 B/vid


def test_empty_column_rejected(harness):
    with pytest.raises(CatalogError):
        harness.build([], ED1)


def test_encrypted_build_requires_key_material():
    from repro.crypto.drbg import HmacDrbg
    from repro.encdict.builder import encdb_build

    with pytest.raises(CatalogError):
        encdb_build(
            ["a"],
            ED1,
            value_type=VarcharType(5),
            key=None,
            pae=None,
            rng=HmacDrbg(b"x"),
        )


def test_values_validated_against_type(harness):
    with pytest.raises(CatalogError):
        harness.build(["ok", 5], ED1, value_type=VarcharType(5))
    with pytest.raises(CatalogError):
        harness.build(["too long for type"], ED1, value_type=VarcharType(4))


def test_plain_build_skips_encryption(harness):
    build = harness.build(NAMES, ED1, encrypted=False)
    value_type = build.dictionary.value_type
    plaintexts = [value_type.from_bytes(b) for b in build.dictionary.entries()]
    assert plaintexts == sorted(set(NAMES))
    assert not build.dictionary.encrypted


def test_plain_rotated_build_keeps_raw_offset(harness):
    build = harness.build(NAMES, ED2, encrypted=False)
    raw = build.dictionary.enc_rnd_offset
    assert raw is not None
    assert int.from_bytes(raw, "big") == build.stats.rnd_offset


def test_single_value_column(harness, kind):
    build = harness.build(["only"], kind)
    assert build.stats.dictionary_entries == 1
    assert build.attribute_vector.tolist() == [0]

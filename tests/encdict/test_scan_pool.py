"""The process-wide scan pool and the multi-partition scan entry point."""

from __future__ import annotations

import numpy as np

from repro.encdict.attrvect import (
    attr_vect_search,
    attr_vect_search_many,
    shutdown_scan_pools,
)
from repro.encdict.search import DUMMY_RANGE, SearchResult
from repro.runtime import SCAN_POOL, active_pool, pool_workers
from repro.sgx.costs import CostModel


def _scan_with_pool(max_workers: int) -> None:
    av = np.arange(1000, dtype=np.int64)
    attr_vect_search(
        av,
        SearchResult(ranges=((10, 20),)),
        chunk_rows=100,
        max_workers=max_workers,
        # These tests pin the pool registry itself; force the parallel path
        # so they exercise it on any host (adaptive dispatch would choose
        # serial on a single-core runner).
        adaptive=False,
    )


def test_single_pool_reused_across_worker_counts():
    shutdown_scan_pools()
    _scan_with_pool(4)
    first = active_pool(SCAN_POOL)
    assert first is not None and pool_workers(SCAN_POOL) == 4
    _scan_with_pool(2)  # fewer workers: the bigger pool is reused
    assert active_pool(SCAN_POOL) is first
    assert pool_workers(SCAN_POOL) == 4


def test_pool_grows_by_replacement():
    shutdown_scan_pools()
    _scan_with_pool(2)
    small = active_pool(SCAN_POOL)
    _scan_with_pool(6)
    assert active_pool(SCAN_POOL) is not small
    assert pool_workers(SCAN_POOL) == 6
    shutdown_scan_pools()


def test_shutdown_is_idempotent_and_pool_is_lazily_recreated():
    _scan_with_pool(3)
    shutdown_scan_pools()
    assert active_pool(SCAN_POOL) is None and pool_workers(SCAN_POOL) == 0
    shutdown_scan_pools()  # second call is a no-op
    _scan_with_pool(3)
    assert active_pool(SCAN_POOL) is not None
    shutdown_scan_pools()


def test_search_many_matches_per_partition_scans():
    rng = np.random.default_rng(7)
    jobs = []
    for length in (0, 17, 256, 999):
        av = rng.integers(0, 50, size=length).astype(np.int64)
        jobs.append((av, SearchResult(ranges=((5, 9), DUMMY_RANGE))))
    jobs.append((np.arange(100, dtype=np.int64), SearchResult(vids=(3, 7))))

    for workers in (1, 4):
        results = attr_vect_search_many(jobs, max_workers=workers, adaptive=False)
        assert len(results) == len(jobs)
        for (av, search), rids in zip(jobs, results):
            expected = attr_vect_search(av, search)
            assert rids.tolist() == expected.tolist()
    shutdown_scan_pools()


def test_search_many_cost_equals_concatenated_scan():
    """Partitioning a column must not change its comparison count."""
    av = np.arange(1000, dtype=np.int64)
    search = SearchResult(ranges=((100, 200), DUMMY_RANGE))

    whole = CostModel()
    attr_vect_search(av, search, cost_model=whole)

    split = CostModel()
    attr_vect_search_many(
        [(av[:400], search), (av[400:], search)], cost_model=split, max_workers=2
    )
    assert split.comparisons == whole.comparisons
    shutdown_scan_pools()

"""End-to-end tests of the EncDBDB enclave program.

Covers the full paper §4.2 flow: attestation-gated provisioning of SKDB,
one-ecall-per-query dictionary searches, sealing, and the dynamic-data
ecalls of §4.3 — plus the access-pattern and constant-memory properties the
design argues for.
"""

from __future__ import annotations

import pytest

from repro.columnstore.types import IntegerType, VarcharType
from repro.crypto.drbg import HmacDrbg
from repro.crypto.kdf import derive_column_key
from repro.crypto.pae import default_pae, pae_gen
from repro.encdict.attrvect import attr_vect_search
from repro.encdict.builder import encdb_build
from repro.encdict.enclave_app import EncDBDBEnclave, encrypt_search_range
from repro.encdict.options import ALL_KINDS, ED1, ED2, ED9
from repro.encdict.search import DictionaryAccessor, OrdinalRange
from repro.exceptions import AttestationError, EnclaveSecurityError
from repro.sgx.attestation import AttestationService
from repro.sgx.channel import SecureChannel
from repro.sgx.enclave import EnclaveHost

from tests.encdict.conftest import reference_range_search


def _provisioned_host(seed=b"enclave-e2e"):
    """Run the full §4.2 setup and return (host, master_key, pae, rng)."""
    rng = HmacDrbg(seed)
    service = AttestationService()
    pae = default_pae(rng=rng.fork("client-pae"))
    enclave = EncDBDBEnclave(
        attestation=service, pae=default_pae(rng=rng.fork("enclave-pae")),
        rng=rng.fork("enclave"),
    )
    host = EnclaveHost(enclave)
    master_key = pae_gen(rng=rng.fork("skdb"))

    offer = host.ecall("channel_offer")
    channel, client_public = SecureChannel.connect(
        offer, service, host.measurement, rng=rng.fork("owner"), pae=pae
    )
    host.ecall("channel_accept", client_public)
    host.ecall("provision_master_key", channel.send(master_key))
    return host, master_key, pae, rng


def _build(master_key, pae, rng, values, kind, value_type=None, bsmax=3):
    value_type = value_type or VarcharType(20)
    key = derive_column_key(master_key, "t1", "c1")
    return encdb_build(
        values,
        kind,
        value_type=value_type,
        key=key,
        pae=pae,
        rng=rng.fork(f"b-{kind.name}"),
        bsmax=bsmax,
        table_name="t1",
        column_name="c1",
    )


def _tau(master_key, pae, value_type, low, high):
    key = derive_column_key(master_key, "t1", "c1")
    return encrypt_search_range(
        pae, key, OrdinalRange(value_type.ordinal(low), value_type.ordinal(high))
    )


def test_full_query_flow_every_kind():
    host, master_key, pae, rng = _provisioned_host()
    values = ["b", "a", "c", "b", "e", "d", "b"]
    for kind in ALL_KINDS:
        build = _build(master_key, pae, rng, values, kind)
        tau = _tau(master_key, pae, build.dictionary.value_type, "b", "d")
        result = host.ecall("dict_search", build.dictionary, tau)
        records = sorted(attr_vect_search(build.attribute_vector, result).tolist())
        assert records == reference_range_search(values, "b", "d"), kind.name


def test_search_without_provisioning_rejected():
    rng = HmacDrbg(b"no-provision")
    enclave = EncDBDBEnclave(rng=rng.fork("enclave"))
    host = EnclaveHost(enclave)
    pae = default_pae(rng=rng.fork("pae"))
    master_key = pae_gen(rng=rng.fork("skdb"))
    build = _build(master_key, pae, rng, ["a", "b"], ED1)
    tau = _tau(master_key, pae, build.dictionary.value_type, "a", "b")
    with pytest.raises(EnclaveSecurityError):
        host.ecall("dict_search", build.dictionary, tau)


def test_provisioning_requires_channel():
    enclave = EncDBDBEnclave(rng=HmacDrbg(b"x"))
    host = EnclaveHost(enclave)
    with pytest.raises(EnclaveSecurityError):
        host.ecall("provision_master_key", b"blob")
    with pytest.raises(EnclaveSecurityError):
        host.ecall("channel_accept", 1234)


def test_owner_rejects_imposter_enclave():
    """Connecting against a different measurement fails attestation."""
    rng = HmacDrbg(b"imposter")
    service = AttestationService()
    enclave = EncDBDBEnclave(attestation=service, rng=rng.fork("e"))
    host = EnclaveHost(enclave)
    offer = host.ecall("channel_offer")
    with pytest.raises(AttestationError):
        SecureChannel.connect(
            offer, service, b"\x00" * 32, rng=rng.fork("owner")
        )


def test_seal_and_restore_master_key():
    host, master_key, pae, rng = _provisioned_host()
    sealed = host.ecall("seal_master_key")

    # A fresh enclave instance of the same class restores from the blob.
    service = AttestationService()
    fresh = EncDBDBEnclave(
        attestation=service, pae=default_pae(rng=rng.fork("p2")),
        rng=rng.fork("fresh"),
    )
    fresh_host = EnclaveHost(fresh)
    fresh_host.ecall("restore_master_key", sealed)

    values = [5, 1, 3, 5]
    build = _build(master_key, pae, rng, values, ED1, value_type=IntegerType())
    tau = _tau(master_key, pae, IntegerType(), 2, 5)
    result = fresh_host.ecall("dict_search", build.dictionary, tau)
    records = sorted(attr_vect_search(build.attribute_vector, result).tolist())
    assert records == reference_range_search(values, 2, 5)


def test_one_ecall_per_query():
    """Paper §5: one context switch per query."""
    host, master_key, pae, rng = _provisioned_host()
    build = _build(master_key, pae, rng, ["a", "b", "c"] * 10, ED2)
    before = host.cost_model.ecalls
    tau = _tau(master_key, pae, build.dictionary.value_type, "a", "b")
    host.ecall("dict_search", build.dictionary, tau)
    assert host.cost_model.ecalls == before + 1


def test_logarithmic_vs_linear_decryptions():
    """Table 4: sorted/rotated kinds decrypt O(log|D|) entries, unsorted |D|."""
    host, master_key, pae, rng = _provisioned_host()
    values = [f"v{i:04d}" for i in range(512)]
    tau_args = ("v0100", "v0200")

    counts = {}
    for kind in (ALL_KINDS[0], ALL_KINDS[1], ALL_KINDS[2]):  # ED1, ED2, ED3
        build = _build(master_key, pae, rng, values, kind)
        tau = _tau(master_key, pae, build.dictionary.value_type, *tau_args)
        before = host.cost_model.snapshot()
        host.ecall("dict_search", build.dictionary, tau)
        counts[kind.name] = host.cost_model.diff(before)["decryptions"]

    assert counts["ED3"] == 512 + 2  # every entry + the two range bounds
    assert counts["ED1"] <= 2 * 10 + 2 + 2  # two binary searches over 2^9
    assert counts["ED2"] <= 3 * 10 + 6  # + reference probe and corner checks


def test_constant_enclave_memory():
    """Enclave EPC use does not grow with |D| (paper §5, Table 6 note)."""
    host, master_key, pae, rng = _provisioned_host()
    small = _build(master_key, pae, rng, ["a", "b"], ED1)
    large = _build(master_key, pae, rng, [f"v{i}" for i in range(2000)], ED1)
    for build in (small, large):
        tau = _tau(master_key, pae, build.dictionary.value_type, "a", "zz")
        host.ecall("dict_search", build.dictionary, tau)
    # The enclave never allocates EPC pages for dictionary data.
    assert host._enclave.epc.allocated_pages == 0


def test_reencrypt_for_delta_changes_ciphertext_not_plaintext():
    host, master_key, pae, rng = _provisioned_host()
    key = derive_column_key(master_key, "t1", "c1")
    transit = pae.encrypt(key, b"new-row-value")
    stored = host.ecall("reencrypt_for_delta", "t1", "c1", transit)
    assert stored != transit
    assert pae.decrypt(key, stored) == b"new-row-value"


def test_rebuild_for_merge_produces_searchable_store():
    host, master_key, pae, rng = _provisioned_host()
    key = derive_column_key(master_key, "t1", "c1")
    vt = VarcharType(20)
    merged_values = ["x", "m", "a", "m", "z"]
    blobs = [pae.encrypt(key, vt.to_bytes(v)) for v in merged_values]
    build = host.ecall("rebuild_for_merge", "t1", "c1", ED2, vt, blobs)
    tau = _tau(master_key, pae, vt, "a", "m")
    result = host.ecall("dict_search", build.dictionary, tau)
    records = sorted(attr_vect_search(build.attribute_vector, result).tolist())
    assert records == reference_range_search(merged_values, "a", "m")


def test_rebuild_for_merge_unlinkable():
    """Merged ciphertexts share no blob with the inputs (fresh IVs)."""
    host, master_key, pae, rng = _provisioned_host()
    key = derive_column_key(master_key, "t1", "c1")
    vt = VarcharType(20)
    blobs = [pae.encrypt(key, vt.to_bytes(v)) for v in ["a", "b", "a"]]
    build = host.ecall("rebuild_for_merge", "t1", "c1", ED9, vt, blobs)
    new_blobs = {bytes(b) for b in build.dictionary.entries()}
    assert new_blobs.isdisjoint({bytes(b) for b in blobs})


# ----------------------------------------------------------------------
# Access-pattern properties of the rotated search (Algorithm 3)
# ----------------------------------------------------------------------


def _probe_sequence_for_offset(values, low, high, wanted_offset):
    """Build ED2 with a specific offset and record the probe positions."""
    from tests.encdict.conftest import EdHarness

    harness = EdHarness(seed=b"probes")
    for attempt in range(500):
        harness.rng = harness.rng.fork(f"probe-{attempt}")
        build = harness.build(values, ED2)
        if build.stats.rnd_offset != wanted_offset:
            continue
        vt = build.dictionary.value_type
        accessor = DictionaryAccessor(
            build.dictionary, key=harness.key, pae=harness.pae
        )
        from repro.encdict.search import search_rotated

        search_rotated(
            accessor, OrdinalRange(vt.ordinal(low), vt.ordinal(high))
        )
        return accessor.probes
    raise AssertionError(f"offset {wanted_offset} never drawn")


def test_rotated_first_probes_independent_of_offset():
    """The special binary search always starts probing at the same positions
    (index 0 for the reference, the last index for the wrap check, then the
    standard midpoints), so the first access does not reveal rndOffset —
    the design goal of Algorithm 3."""
    values = ["a", "b", "c", "d", "e", "f", "g", "h"]
    sequences = [
        _probe_sequence_for_offset(values, "c", "f", offset)
        for offset in range(len(values))
    ]
    first_three = {tuple(seq[:3]) for seq in sequences}
    assert len(first_three) == 1, first_three
    # Every probe sequence starts with the rndOffset-independent prefix.
    assert all(seq[0] == 0 and seq[1] == len(values) - 1 for seq in sequences)

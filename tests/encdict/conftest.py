"""Shared helpers for the encrypted-dictionary tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnstore.types import IntegerType, ValueType, VarcharType
from repro.crypto.drbg import HmacDrbg
from repro.crypto.kdf import derive_column_key
from repro.crypto.pae import default_pae, pae_gen
from repro.encdict.attrvect import attr_vect_search
from repro.encdict.builder import BuildResult, encdb_build
from repro.encdict.options import ALL_KINDS, EncryptedDictionaryKind
from repro.encdict.search import DictionarySearcher, OrdinalRange


class EdHarness:
    """Builds encrypted dictionaries and runs full searches for tests."""

    def __init__(self, seed: bytes = b"encdict-tests") -> None:
        self.rng = HmacDrbg(seed)
        self.pae = default_pae(rng=self.rng.fork("pae"))
        self.master_key = pae_gen(rng=self.rng.fork("master"))
        self.key = derive_column_key(self.master_key, "t", "c")
        self.searcher = DictionarySearcher(self.pae)

    def build(
        self,
        values,
        kind: EncryptedDictionaryKind,
        *,
        value_type: ValueType | None = None,
        bsmax: int = 3,
        encrypted: bool = True,
    ) -> BuildResult:
        if value_type is None:
            value_type = (
                IntegerType()
                if values and isinstance(values[0], int)
                else VarcharType(30)
            )
        return encdb_build(
            values,
            kind,
            value_type=value_type,
            key=self.key if encrypted else None,
            pae=self.pae if encrypted else None,
            rng=self.rng.fork(f"build-{kind.name}-{len(values)}"),
            bsmax=bsmax,
            table_name="t",
            column_name="c",
            encrypted=encrypted,
        )

    def search_records(self, build: BuildResult, low, high) -> list[int]:
        """Full pipeline: dictionary search + attribute-vector search."""
        value_type = build.dictionary.value_type
        search = OrdinalRange(value_type.ordinal(low), value_type.ordinal(high))
        result = self.searcher.search(build.dictionary, search, key=self.key)
        return sorted(attr_vect_search(build.attribute_vector, result).tolist())


def reference_range_search(values, low, high) -> list[int]:
    """Ground truth: RecordIDs with low <= value <= high, by linear scan."""
    return [i for i, value in enumerate(values) if low <= value <= high]


@pytest.fixture
def harness() -> EdHarness:
    return EdHarness()


@pytest.fixture(params=[kind.name for kind in ALL_KINDS])
def kind(request) -> EncryptedDictionaryKind:
    return ALL_KINDS[int(request.param[2]) - 1]

"""Vectorized kernels vs the scalar reference oracle (PR 6).

The contract under test: packing a partition's ordinals into one array and
answering searches with bulk numpy kernels changes *how fast* a search runs
and nothing else — results, probe logs, and the logical cost-model charges
(untrusted loads, comparisons) must equal the scalar path's exactly, for
all nine ED kinds, including the rotated D[0]-duplicate wrap corner case
and empty/dummy ranges.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.encdict import kernels
from repro.encdict.attrvect import attr_vect_search
from repro.encdict.options import ED3, ED5, ED8, OrderOption
from repro.encdict.search import (
    _SEARCHERS,
    DictionaryAccessor,
    DictionarySearcher,
    OrdinalRange,
)
from repro.sgx.cache import EnclaveLruCache
from repro.sgx.costs import CostModel

from tests.encdict.conftest import EdHarness, reference_range_search

# Duplicate-heavy, distinct-only, two-valued and singleton dictionaries:
# between them they cover smoothing/hiding duplicate runs, the rotated
# wrap-around layouts, and the degenerate shapes.
VALUE_SETS = {
    "duplicate-heavy": ["a", "a", "a", "a", "b", "c", "a", "a", "d", "a"],
    "distinct": [f"v{i:02d}" for i in range(17)],
    "two-values": ["x", "y"] * 6,
    "single": ["only"],
}

# (low, high) query values: equality, sub-range, full range, miss above the
# domain, miss between values, and an empty range (low > high => the dummy
# short-circuit).
QUERIES = [
    ("a", "a"),
    ("a", "b"),
    ("b", "d"),
    ("a", "z"),
    ("e", "f"),
    ("z", "a"),
]


def _accessor(harness, build, cost=None, cache=None):
    return DictionaryAccessor(
        build.dictionary,
        key=harness.key,
        pae=harness.pae,
        cost_model=cost,
        cache=cache,
    )


def _ordinal_range(build, low, high):
    vt = build.dictionary.value_type
    return OrdinalRange(vt.ordinal(low), vt.ordinal(high))


def _assert_equivalent(harness, build, order, search, values, low, high):
    """Scalar oracle vs packed-warm vectorized run: results, probes, loads
    and comparisons must match exactly."""
    scalar_cost = CostModel()
    scalar = _accessor(harness, build, cost=scalar_cost)
    expected = _SEARCHERS[order](scalar, search)

    cache = EnclaveLruCache(budget_bytes=1 << 20)
    fill_cost = CostModel()
    fill = _accessor(harness, build, cost=fill_cost, cache=cache)
    packed = fill.packed_ordinals(fill=True)
    assert packed is not None
    # The decrypt-once fill charges exactly one decryption per entry — the
    # logical count of a cold scalar linear scan.
    assert fill_cost.decryptions == len(build.dictionary)

    vec_cost = CostModel()
    vectorized = _accessor(harness, build, cost=vec_cost, cache=cache)
    assert vectorized.packed_ordinals(fill=False) is not None
    got = _SEARCHERS[order](vectorized, search)

    assert got.ranges == expected.ranges
    assert got.vids == expected.vids
    assert vectorized.probes == scalar.probes
    assert vec_cost.untrusted_loads == scalar_cost.untrusted_loads
    assert vec_cost.comparisons == scalar_cost.comparisons
    # Packed-warm searches never decrypt entries; only the rotated family
    # still decrypts encRndOffset (Algorithm 2 line 3) on a cold cache.
    budget = 1 if order is OrderOption.ROTATED else 0
    assert vec_cost.decryptions <= budget

    # Record-level ground truth through the attribute vector.
    records = sorted(attr_vect_search(build.attribute_vector, got).tolist())
    assert records == reference_range_search(values, low, high)


@pytest.mark.parametrize("label", sorted(VALUE_SETS))
def test_vectorized_matches_scalar_oracle(kind, label):
    values = VALUE_SETS[label]
    harness = EdHarness(seed=b"kernel-equiv-" + label.encode())
    build = harness.build(values, kind)
    for low, high in QUERIES:
        _assert_equivalent(
            harness, build, kind.order, _ordinal_range(build, low, high),
            values, low, high,
        )


@pytest.mark.parametrize("kind_wrap", [ED5, ED8], ids=lambda k: k.name)
def test_rotated_duplicate_wrap_corner_case(kind_wrap):
    """Find builds where D[0]'s duplicates wrap past the rotation point (the
    ED5 corner case of §4.1) and pin scalar/vectorized equivalence there."""
    values = VALUE_SETS["duplicate-heavy"]
    wraps_seen = 0
    for seed in range(12):
        harness = EdHarness(seed=f"wrap-{kind_wrap.name}-{seed}".encode())
        build = harness.build(values, kind_wrap)
        probe = _accessor(harness, build)
        n = len(probe)
        offset = probe.rotation_offset()
        wraps = offset > 0 and probe.ordinal(n - 1) == probe.ordinal(0)
        if not wraps:
            continue
        wraps_seen += 1
        for low, high in QUERIES:
            _assert_equivalent(
                harness, build, kind_wrap.order,
                _ordinal_range(build, low, high), values, low, high,
            )
    assert wraps_seen > 0  # the sweep must actually hit the corner case


def test_searcher_flag_selects_identical_results(kind):
    """End-to-end through DictionarySearcher: vectorized=True and the scalar
    reference return identical SearchResults for every kind and range."""
    values = VALUE_SETS["duplicate-heavy"]
    harness = EdHarness(seed=b"searcher-flag")
    build = harness.build(values, kind)
    cache = EnclaveLruCache(budget_bytes=1 << 20)
    fast = DictionarySearcher(harness.pae, CostModel(), cache, vectorized=True)
    slow = DictionarySearcher(harness.pae, CostModel(), vectorized=False)
    for low, high in QUERIES:
        search = _ordinal_range(build, low, high)
        for _ in range(2):  # cold then warm cache
            got = fast.search(build.dictionary, search, key=harness.key)
            want = slow.search(build.dictionary, search, key=harness.key)
            assert got.ranges == want.ranges and got.vids == want.vids


def test_packed_cache_key_isolates_dictionaries():
    """Regression: two same-length dictionaries under the same (table,
    column, partition, epoch) prefix must never share a packed array — the
    key's first-blob component tells them apart (PAE IVs are draw-unique)."""
    harness = EdHarness(seed=b"key-isolation")
    cache = EnclaveLruCache(budget_bytes=1 << 20)
    first = harness.build(["a", "b", "c", "d"], ED3)
    second = harness.build(["q", "r", "s", "t"], ED3)  # same names, same size

    packed_first = _accessor(harness, first, cache=cache).packed_ordinals(fill=True)
    assert packed_first is not None

    fresh = _accessor(harness, second, cache=cache)
    assert fresh.packed_ordinals(fill=False) is None  # no cross-dictionary hit
    packed_second = fresh.packed_ordinals(fill=True)
    vt = second.dictionary.value_type
    expected = sorted(vt.ordinal(v) for v in ["q", "r", "s", "t"])
    assert sorted(int(o) for o in packed_second) == expected


def test_packed_array_is_epc_accounted():
    harness = EdHarness(seed=b"epc-accounting")
    build = harness.build(VALUE_SETS["distinct"], ED3)
    cache = EnclaveLruCache(budget_bytes=1 << 20)
    packed = _accessor(harness, build, cache=cache).packed_ordinals(fill=True)
    usage = cache.group_usage(prefix_width=3)
    assert sum(usage.values()) == kernels.packed_footprint(packed)


# ----------------------------------------------------------------------
# Kernel unit tests (both dtypes, bound clamping)
# ----------------------------------------------------------------------


def test_pack_ordinals_picks_int64_when_it_fits():
    packed = kernels.pack_ordinals([3, kernels.INT64_MIN, kernels.INT64_MAX])
    assert packed.dtype == np.int64
    assert packed.tolist() == [3, kernels.INT64_MIN, kernels.INT64_MAX]


def test_pack_ordinals_falls_back_to_object_for_huge_ordinals():
    ordinals = [1, 2**80, -(2**70), 0]  # VARCHAR-scale base-257 codes
    packed = kernels.pack_ordinals(ordinals)
    assert packed.dtype == object
    assert list(packed) == ordinals
    assert kernels.unsorted_scan(packed, 0, 2**90) == (0, 1, 3)
    assert kernels.unsorted_scan(packed, -(2**75), 5) == (0, 2, 3)


def test_unsorted_scan_matches_linear_reference():
    ordinals = [9, 1, 5, 5, 2, 8, 0, 5]
    packed = kernels.pack_ordinals(ordinals)
    for low, high in [(1, 5), (5, 5), (0, 9), (6, 7), (10, 20), (3, 2)]:
        expected = tuple(
            i for i, o in enumerate(ordinals) if low <= o <= high
        )
        assert kernels.unsorted_scan(packed, low, high) == expected
    assert kernels.unsorted_scan(kernels.pack_ordinals([]), 0, 10) == ()


def test_sorted_bounds_handles_duplicates_and_misses():
    packed = kernels.pack_ordinals([1, 2, 2, 2, 5, 9])
    assert kernels.sorted_bounds(packed, 2, 5) == (1, 4)
    assert kernels.sorted_bounds(packed, 2, 2) == (1, 3)
    assert kernels.sorted_bounds(packed, 0, 100) == (0, 5)
    vid_min, vid_max = kernels.sorted_bounds(packed, 3, 4)  # between values
    assert vid_min > vid_max
    vid_min, vid_max = kernels.sorted_bounds(packed, 10, 20)  # above domain
    assert vid_min > vid_max
    assert kernels.sorted_bounds(kernels.pack_ordinals([]), 0, 1) == (0, -1)


def test_sorted_bounds_agrees_with_binary_search(kind):
    """Cross-check kernel vs Algorithm 1 on sorted kinds: the searchsorted
    bounds equal the binary search's returned range."""
    if kind.order is not OrderOption.SORTED:
        pytest.skip("sorted-kind cross-check only")
    values = VALUE_SETS["duplicate-heavy"]
    harness = EdHarness(seed=b"bounds-crosscheck")
    build = harness.build(values, kind)
    accessor = _accessor(harness, build)
    packed = kernels.pack_ordinals(
        [accessor.ordinal(i) for i in range(len(accessor))]
    )
    for low, high in QUERIES[:-1]:  # skip the empty range (dummy result)
        search = _ordinal_range(build, low, high)
        result = _SEARCHERS[OrderOption.SORTED](
            _accessor(harness, build), search
        )
        vid_min, vid_max = kernels.sorted_bounds(packed, search.low, search.high)
        if vid_min > vid_max:
            assert result.is_empty
        else:
            assert result.ranges[0] == (vid_min, vid_max)


def test_int64_bounds_clamp_instead_of_overflowing():
    packed = kernels.pack_ordinals([kernels.INT64_MIN, 0, kernels.INT64_MAX])
    huge = 2**200
    assert kernels.unsorted_scan(packed, -huge, huge) == (0, 1, 2)
    assert kernels.unsorted_scan(packed, 2**70, 2**80) == ()  # above int64
    assert kernels.unsorted_scan(packed, -huge, -(2**70)) == ()  # below int64
    assert kernels.sorted_bounds(packed, -huge, huge) == (0, 2)
    vid_min, vid_max = kernels.sorted_bounds(packed, 2**70, 2**80)
    assert vid_min > vid_max


def test_packed_footprint_accounts_both_dtypes():
    dense = kernels.pack_ordinals(list(range(100)))
    assert kernels.packed_footprint(dense) == dense.nbytes + 64
    boxed = kernels.pack_ordinals([2**80] * 10)
    assert kernels.packed_footprint(boxed) == 48 * 10 + 64

"""EnclDictSearch + AttrVectSearch correctness for all nine kinds.

Every test compares the full two-step search against a plaintext linear
scan (the ground truth of paper §2.1).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.columnstore.types import IntegerType, VarcharType
from repro.encdict.attrvect import attr_vect_search
from repro.encdict.options import ALL_KINDS, ED2, ED5, ED8
from repro.encdict.search import (
    DUMMY_RANGE,
    DictionaryAccessor,
    OrdinalRange,
    SearchResult,
    plain_search,
)
from repro.exceptions import AuthenticationError, QueryError

from tests.encdict.conftest import EdHarness, reference_range_search

NAMES = ["Jessica", "Jessica", "Archie", "Archie", "Jessica", "Hans", "Ella"]


def test_paper_example_search(harness, kind):
    """Figure 1's search: R = [Archie, Hans] over the FName column."""
    column = ["Hans", "Jessica", "Archie", "Jessica", "Jessica", "Archie"]
    build = harness.build(column, kind)
    records = harness.search_records(build, "Archie", "Hans")
    assert records == [0, 2, 5]


def test_exact_match_range(harness, kind):
    build = harness.build(NAMES, kind)
    assert harness.search_records(build, "Jessica", "Jessica") == [0, 1, 4]


def test_range_covering_everything(harness, kind):
    build = harness.build(NAMES, kind)
    assert harness.search_records(build, "A", "Z") == list(range(len(NAMES)))


def test_empty_range_between_values(harness, kind):
    build = harness.build(NAMES, kind)
    assert harness.search_records(build, "F", "G") == []


def test_range_below_all_values(harness, kind):
    build = harness.build(NAMES, kind)
    assert harness.search_records(build, "0", "9") == []


def test_range_above_all_values(harness, kind):
    build = harness.build(NAMES, kind)
    assert harness.search_records(build, "Z", "ZZ") == []


def test_range_with_missing_endpoints(harness, kind):
    """Bounds that are not dictionary members still match correctly."""
    build = harness.build(NAMES, kind)
    expected = reference_range_search(NAMES, "Arc", "I")
    assert harness.search_records(build, "Arc", "I") == expected


def test_integer_column_search(harness, kind):
    values = [10, -5, 3, 10, 99, 3, 3, -5, 0]
    build = harness.build(values, kind, value_type=IntegerType())
    assert harness.search_records(build, 0, 10) == reference_range_search(
        values, 0, 10
    )
    assert harness.search_records(build, -1000, 1000) == list(range(len(values)))


def test_negative_integer_boundaries(harness, kind):
    values = [-(2**31), 2**31 - 1, 0, -1, 1]
    build = harness.build(values, kind, value_type=IntegerType())
    assert harness.search_records(build, -(2**31), -1) == [0, 3]
    assert harness.search_records(build, 2**31 - 1, 2**31 - 1) == [1]


def test_single_entry_dictionary(harness, kind):
    build = harness.build(["solo"], kind)
    assert harness.search_records(build, "solo", "solo") == [0]
    assert harness.search_records(build, "a", "b") == []
    assert harness.search_records(build, "z", "zz") == []


def test_all_identical_values(harness, kind):
    """Degenerate column: one unique value repeated."""
    values = ["same"] * 9
    build = harness.build(values, kind)
    assert harness.search_records(build, "same", "same") == list(range(9))
    assert harness.search_records(build, "a", "rzzz") == []
    assert harness.search_records(build, "t", "z") == []
    assert harness.search_records(build, "a", "z") == list(range(9))


@settings(max_examples=40, deadline=None)
@given(
    data=st.data(),
    values=st.lists(st.integers(-50, 50), min_size=1, max_size=40),
    low=st.integers(-60, 60),
    span=st.integers(0, 60),
)
def test_search_matches_reference_property(data, values, low, span):
    """Randomized columns and ranges across every kind and both orders."""
    harness = EdHarness(seed=b"property-seed")
    kind = data.draw(st.sampled_from(ALL_KINDS))
    bsmax = data.draw(st.integers(1, 5))
    build = harness.build(values, kind, value_type=IntegerType(), bsmax=bsmax)
    high = low + span
    assert harness.search_records(build, low, high) == reference_range_search(
        values, low, high
    )


@settings(max_examples=30, deadline=None)
@given(
    data=st.data(),
    values=st.lists(
        st.text(alphabet="abc", min_size=0, max_size=3), min_size=1, max_size=25
    ),
)
def test_string_search_matches_reference_property(data, values):
    harness = EdHarness(seed=b"property-str")
    kind = data.draw(st.sampled_from(ALL_KINDS))
    low = data.draw(st.text(alphabet="abc", max_size=3))
    high = data.draw(st.text(alphabet="abc", max_size=3))
    if low > high:
        low, high = high, low
    build = harness.build(values, kind, value_type=VarcharType(4))
    assert harness.search_records(build, low, high) == reference_range_search(
        values, low, high
    )


# ----------------------------------------------------------------------
# Rotated-search specifics
# ----------------------------------------------------------------------


def _build_with_offset(harness, values, kind, wanted_offset, bsmax=3):
    """Rebuild with fresh randomness until the rotation offset matches."""
    for attempt in range(400):
        harness.rng = harness.rng.fork(f"attempt-{attempt}")
        build = harness.build(values, kind, bsmax=bsmax)
        if build.stats.rnd_offset == wanted_offset:
            return build
    raise AssertionError(f"offset {wanted_offset} never drawn")


def test_rotated_every_offset_is_correct():
    """ED2 returns correct results for every possible rotation offset."""
    harness = EdHarness(seed=b"offsets")
    values = ["b", "d", "a", "c", "e", "b"]
    n_unique = len(set(values))
    for offset in range(n_unique):
        build = _build_with_offset(harness, values, ED2, offset)
        for low, high in [("a", "e"), ("b", "c"), ("a", "a"), ("e", "e"), ("c", "z")]:
            assert harness.search_records(build, low, high) == (
                reference_range_search(values, low, high)
            ), f"offset={offset} range=({low},{high})"


def test_rotated_duplicate_wrap_corner_case():
    """The ED5 corner case: duplicates of D[0]'s value wrap the array end.

    Forces a column whose smoothing duplicates + rotation make the first
    and last dictionary entries share a plaintext (paper §4.1, ED5), then
    checks all query shapes.
    """
    harness = EdHarness(seed=b"wrap")
    values = ["m"] * 8 + ["a", "z"]
    hit = False
    for attempt in range(300):
        harness.rng = harness.rng.fork(f"wrap-{attempt}")
        build = harness.build(values, ED5, bsmax=3)
        first = build.dictionary.entry(0)
        last = build.dictionary.entry(len(build.dictionary) - 1)
        vt = build.dictionary.value_type
        first_v = vt.from_bytes(harness.pae.decrypt(harness.key, first))
        last_v = vt.from_bytes(harness.pae.decrypt(harness.key, last))
        for low, high in [("m", "m"), ("a", "m"), ("m", "z"), ("a", "z"), ("b", "l")]:
            assert harness.search_records(build, low, high) == (
                reference_range_search(values, low, high)
            )
        if first_v == last_v and len(build.dictionary) > 1:
            hit = True
            break
    assert hit, "never produced the duplicate-wrap corner case"


def test_rotated_offset_zero_corner_case():
    """rndOffset = 0 (explicitly called out in the paper) must work."""
    harness = EdHarness(seed=b"zero")
    values = ["b", "a", "c", "a"]
    build = _build_with_offset(harness, values, ED2, 0)
    for low, high in [("a", "c"), ("a", "a"), ("b", "c"), ("d", "e")]:
        assert harness.search_records(build, low, high) == reference_range_search(
            values, low, high
        )


def test_rotated_returns_dummy_padded_ranges(harness):
    """Single-range rotated results are padded with the (-1,-1) dummy."""
    build = harness.build(["a", "b", "c", "d"], ED2)
    vt = build.dictionary.value_type
    result = harness.searcher.search(
        build.dictionary,
        OrdinalRange(vt.ordinal("b"), vt.ordinal("c")),
        key=harness.key,
    )
    assert len(result.ranges) == 2
    assert DUMMY_RANGE in result.ranges or all(
        r != DUMMY_RANGE for r in result.ranges
    )


def test_search_result_helpers():
    empty = SearchResult(ranges=(DUMMY_RANGE, DUMMY_RANGE))
    assert empty.is_empty
    assert empty.matched_vid_count() == 0
    full = SearchResult(ranges=((0, 4), DUMMY_RANGE), vids=(9,))
    assert not full.is_empty
    assert full.matched_vid_count() == 6


def test_ordinal_range_serialization_roundtrip():
    for low, high in [(0, 0), (5, 99), (2**200, 2**250), (-1, -1)]:
        rt = OrdinalRange.from_bytes(OrdinalRange(low, high).to_bytes())
        assert (rt.low, rt.high) == (low, high)
    with pytest.raises(QueryError):
        OrdinalRange.from_bytes(b"short")


def test_wrong_key_fails_authentication(harness):
    build = harness.build(NAMES, ALL_KINDS[0])
    vt = build.dictionary.value_type
    bad_key = bytes(16)
    with pytest.raises(AuthenticationError):
        harness.searcher.search(
            build.dictionary,
            OrdinalRange(vt.ordinal("A"), vt.ordinal("Z")),
            key=bad_key,
        )


def test_plain_search_matches_encrypted(harness, kind):
    """PlainDBDB's search (no PAE) agrees with the encrypted pipeline."""
    values = [3, 1, 4, 1, 5, 9, 2, 6]
    plain_build = harness.build(values, kind, value_type=IntegerType(), encrypted=False)
    result = plain_search(
        plain_build.dictionary,
        OrdinalRange(IntegerType().ordinal(2), IntegerType().ordinal(5)),
    )
    records = sorted(
        attr_vect_search(plain_build.attribute_vector, result).tolist()
    )
    assert records == reference_range_search(values, 2, 5)


# ----------------------------------------------------------------------
# AttrVectSearch unit behaviour
# ----------------------------------------------------------------------


def test_attr_vect_search_with_ranges():
    av = np.array([2, 0, 1, 2, 3, 1], dtype=np.int64)
    result = SearchResult(ranges=((0, 1), DUMMY_RANGE))
    assert attr_vect_search(av, result).tolist() == [1, 2, 5]


def test_attr_vect_search_with_two_ranges():
    av = np.array([0, 1, 2, 3, 4, 5], dtype=np.int64)
    result = SearchResult(ranges=((0, 1), (4, 5)))
    assert attr_vect_search(av, result).tolist() == [0, 1, 4, 5]


def test_attr_vect_search_with_vid_list():
    av = np.array([2, 0, 1, 2, 3, 1], dtype=np.int64)
    result = SearchResult(vids=(2, 3))
    assert attr_vect_search(av, result).tolist() == [0, 3, 4]


def test_attr_vect_search_empty_inputs():
    av = np.array([], dtype=np.int64)
    assert attr_vect_search(av, SearchResult(vids=(1,))).tolist() == []
    av = np.array([1, 2], dtype=np.int64)
    assert attr_vect_search(av, SearchResult()).tolist() == []


def test_attr_vect_search_counts_comparisons():
    from repro.sgx.costs import CostModel

    av = np.array([0, 1, 2, 3], dtype=np.int64)
    cost = CostModel()
    attr_vect_search(av, SearchResult(vids=(0, 1, 2)), cost_model=cost)
    assert cost.comparisons == 12  # |AV| * |vid|
    cost.reset()
    # Uniform per-slot accounting: the dummy padding slot charges the same
    # |AV| as the real range, so the comparison count cannot reveal how many
    # slots were real (the result arrives dummy-padded for exactly that
    # reason).
    attr_vect_search(av, SearchResult(ranges=((0, 1), DUMMY_RANGE)), cost_model=cost)
    assert cost.comparisons == 8  # |AV| per slot, real or dummy
    cost.reset()
    # An empty real range (low > high) is charged like any other slot too.
    attr_vect_search(av, SearchResult(ranges=((3, 1), DUMMY_RANGE)), cost_model=cost)
    assert cost.comparisons == 8


def test_attr_vect_search_chunked_matches_single_shot():
    from repro.sgx.costs import CostModel

    rng = np.random.default_rng(7)
    av = rng.integers(0, 50, size=10_000).astype(np.int64)
    for result in (
        SearchResult(ranges=((5, 9), DUMMY_RANGE)),
        SearchResult(ranges=((0, 3), (40, 49))),
        SearchResult(vids=(1, 2, 3, 30)),
        SearchResult(ranges=(DUMMY_RANGE, DUMMY_RANGE)),
    ):
        single_cost = CostModel()
        chunked_cost = CostModel()
        single = attr_vect_search(av, result, cost_model=single_cost)
        chunked = attr_vect_search(
            av, result, cost_model=chunked_cost, chunk_rows=512, max_workers=4
        )
        assert chunked.tolist() == single.tolist()
        assert chunked_cost.comparisons == single_cost.comparisons

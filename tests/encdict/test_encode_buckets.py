"""ENCODE order preservation and the Algorithm 5 bucket experiment."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.columnstore.types import IntegerType, VarcharType
from repro.crypto.drbg import HmacDrbg
from repro.encdict.buckets import expected_bucket_count, get_rnd_bucket_sizes
from repro.encdict.encode import encode, modulus, shifted

_VARCHAR_ALPHABET = st.text(
    alphabet=st.characters(min_codepoint=1, max_codepoint=0x7F), max_size=8
)


def test_encode_example_from_paper():
    """Strings are right-padded so 'AB' < 'B' is preserved numerically."""
    vt = VarcharType(5)
    assert encode(vt, "AB") < encode(vt, "B")
    assert encode(vt, "AB") < encode(vt, "BA")
    assert encode(vt, "") == 0
    assert modulus(vt) == 256**5


@given(a=_VARCHAR_ALPHABET, b=_VARCHAR_ALPHABET)
def test_encode_preserves_string_order(a: str, b: str):
    vt = VarcharType(8)
    assert (a.encode() < b.encode()) == (encode(vt, a) < encode(vt, b))
    assert (a == b) == (encode(vt, a) == encode(vt, b))


@given(a=st.integers(-(2**31), 2**31 - 1), b=st.integers(-(2**31), 2**31 - 1))
def test_encode_preserves_integer_order(a: int, b: int):
    it = IntegerType()
    assert (a < b) == (encode(it, a) < encode(it, b))
    assert 0 <= encode(it, a) < modulus(it)


def test_shifted_is_modular():
    it = IntegerType()
    r = encode(it, 100)
    assert shifted(it, 100, r) == 0
    assert shifted(it, 101, r) == 1
    assert shifted(it, 99, r) == modulus(it) - 1


# ----------------------------------------------------------------------
# Algorithm 5
# ----------------------------------------------------------------------


def test_bucket_sizes_sum_to_occurrences():
    rng = HmacDrbg(b"b")
    for occurrences in (1, 2, 5, 17, 100):
        sizes = get_rnd_bucket_sizes(occurrences, 4, rng)
        assert sum(sizes) == occurrences


def test_bucket_sizes_respect_bsmax():
    rng = HmacDrbg(b"b")
    for _ in range(50):
        sizes = get_rnd_bucket_sizes(50, 7, rng)
        assert all(1 <= size <= 7 for size in sizes)


def test_bsmax_one_degenerates_to_frequency_hiding():
    """bsmax = 1 gives one bucket per occurrence (paper §4.1)."""
    sizes = get_rnd_bucket_sizes(9, 1, HmacDrbg(b"b"))
    assert sizes == [1] * 9


def test_single_occurrence_single_bucket():
    assert get_rnd_bucket_sizes(1, 10, HmacDrbg(b"b")) == [1]


def test_invalid_arguments_rejected():
    rng = HmacDrbg(b"b")
    with pytest.raises(ValueError):
        get_rnd_bucket_sizes(0, 3, rng)
    with pytest.raises(ValueError):
        get_rnd_bucket_sizes(5, 0, rng)


def test_last_bucket_can_shrink_but_never_below_one():
    """The final bucket is clamped to make the total exact (Algorithm 5
    line 10) and by construction remains >= 1."""
    rng = HmacDrbg(b"clamp")
    for occurrences in range(1, 60):
        sizes = get_rnd_bucket_sizes(occurrences, 5, rng)
        assert sizes[-1] >= 1
        assert sum(sizes) == occurrences


@settings(max_examples=50)
@given(occurrences=st.integers(1, 500), bsmax=st.integers(1, 20))
def test_bucket_invariants_property(occurrences: int, bsmax: int):
    sizes = get_rnd_bucket_sizes(occurrences, bsmax, HmacDrbg(b"p"))
    assert sum(sizes) == occurrences
    assert all(1 <= size <= bsmax for size in sizes)
    assert len(sizes) <= occurrences


def test_expected_bucket_count_formula():
    """E[#bs] ~ 2*|oc|/(1+bsmax): empirical mean within 10% for large |oc|."""
    rng = HmacDrbg(b"mean")
    occurrences, bsmax = 1000, 9
    trials = [len(get_rnd_bucket_sizes(occurrences, bsmax, rng)) for _ in range(200)]
    mean = sum(trials) / len(trials)
    assert mean == pytest.approx(expected_bucket_count(occurrences, bsmax), rel=0.10)

"""Enclave-level tests of the ``aggregate_groups`` ecall (PR 9).

Covers the ordinal-space aggregation contract end to end at the enclave
boundary: exact COUNT/SUM/AVG/MIN/MAX states per group, first-occurrence
group order, plaintext-level merging of duplicate dictionary entries
(ED4/ED7) and cross-segment groups, one decryption per *distinct* entry,
and the padded-frame shape the untrusted side observes (uniform byte
length, power-of-two count, dummy flags only visible after decryption).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnstore.types import IntegerType, VarcharType
from repro.crypto.kdf import derive_column_key
from repro.encdict.builder import encdb_build
from repro.encdict.enclave_app import (
    AGGREGATE_KEY_COLUMN,
    decode_group_frame,
    padded_frame_count,
)
from repro.encdict.options import ALL_KINDS, ED1, ED4
from repro.exceptions import QueryError

from tests.encdict.test_enclave_app import _provisioned_host

GROUPS = ["b", "a", "c", "b", "a", "b", "c", "a", "a", "b"]
MEASURES = [4, 7, 1, 9, 2, 5, 8, 3, 6, 10]

SPECS = (
    ("COUNT", None, "count(*)"),
    ("SUM", "m", "sum(m)"),
    ("AVG", "m", "avg(m)"),
    ("MIN", "m", "min(m)"),
    ("MAX", "m", "max(m)"),
)


def _column_build(master_key, pae, rng, values, kind, column, value_type, bsmax=3):
    return encdb_build(
        values,
        kind,
        value_type=value_type,
        key=derive_column_key(master_key, "t1", column),
        pae=pae,
        rng=rng.fork(f"agg-{column}-{kind.name}"),
        bsmax=bsmax,
        table_name="t1",
        column_name=column,
    )


def _segment(group_build, measure_build, record_ids):
    rids = np.asarray(record_ids, dtype=np.int64)
    return {
        "group": (group_build.dictionary, group_build.attribute_vector[rids]),
        "rows": len(rids),
        "measures": {
            "m": (measure_build.dictionary, measure_build.attribute_vector[rids])
        },
    }


def _open_frames(frames, master_key, pae):
    key = derive_column_key(master_key, "t1", AGGREGATE_KEY_COLUMN)
    return [decode_group_frame(pae.decrypt(key, frame)) for frame in frames]


def _reference(groups, measures):
    """(group -> (count, sum, min, max)) in first-occurrence order."""
    out: dict[str, list[int]] = {}
    for group, measure in zip(groups, measures):
        state = out.setdefault(group, [0, 0, measure, measure])
        state[0] += 1
        state[1] += measure
        state[2] = min(state[2], measure)
        state[3] = max(state[3], measure)
    return out


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda kind: kind.name)
def test_grouped_aggregates_every_kind(kind):
    host, master_key, pae, rng = _provisioned_host(b"agg-kinds")
    group_build = _column_build(
        master_key, pae, rng, GROUPS, kind, "g", VarcharType(4)
    )
    measure_build = _column_build(
        master_key, pae, rng, MEASURES, kind, "m", IntegerType()
    )
    frames = host.ecall(
        "aggregate_groups",
        "t1",
        SPECS,
        [_segment(group_build, measure_build, range(len(GROUPS)))],
        group_column="g",
    )
    opened = [
        frame for frame in _open_frames(frames, master_key, pae) if not frame[0]
    ]
    expected = _reference(GROUPS, MEASURES)
    value_type = VarcharType(4)
    assert [value_type.from_bytes(key) for _d, key, _s in opened] == list(expected)
    for _dummy, key_bytes, states in opened:
        count, total, minimum, maximum = expected[value_type.from_bytes(key_bytes)]
        assert states == [
            (True, count, 0),
            (True, total, 0),
            (True, total, count),  # AVG ships as a (sum, count) pair
            (True, minimum, 0),
            (True, maximum, 0),
        ], kind.name


def test_cross_segment_groups_merge_in_record_order():
    """Groups recurring across segments (partitions/delta) fold into one
    frame, keyed by plaintext, ordered by global first occurrence."""
    host, master_key, pae, rng = _provisioned_host(b"agg-segments")
    group_build = _column_build(
        master_key, pae, rng, GROUPS, ED4, "g", VarcharType(4)
    )
    measure_build = _column_build(
        master_key, pae, rng, MEASURES, ED1, "m", IntegerType()
    )
    split = [range(0, 4), range(4, 10)]
    frames = host.ecall(
        "aggregate_groups",
        "t1",
        (("COUNT", None, "count(*)"), ("SUM", "m", "sum(m)")),
        [_segment(group_build, measure_build, rids) for rids in split],
        group_column="g",
    )
    opened = [
        frame for frame in _open_frames(frames, master_key, pae) if not frame[0]
    ]
    expected = _reference(GROUPS, MEASURES)
    value_type = VarcharType(4)
    assert [value_type.from_bytes(key) for _d, key, _s in opened] == list(expected)
    for _dummy, key_bytes, states in opened:
        count, total, _minimum, _maximum = expected[
            value_type.from_bytes(key_bytes)
        ]
        assert states == [(True, count, 0), (True, total, 0)]


def test_frames_are_uniform_and_padded_to_power_of_two():
    host, master_key, pae, rng = _provisioned_host(b"agg-shape")
    groups = ["a", "b", "c", "d", "e", "a"]  # 5 distinct -> 8 frames
    measures = [1, 2, 3, 4, 5, 6]
    group_build = _column_build(
        master_key, pae, rng, groups, ED1, "g", VarcharType(4)
    )
    measure_build = _column_build(
        master_key, pae, rng, measures, ED1, "m", IntegerType()
    )
    frames = host.ecall(
        "aggregate_groups",
        "t1",
        (("COUNT", None, "count(*)"),),
        [_segment(group_build, measure_build, range(len(groups)))],
        group_column="g",
    )
    assert len(frames) == padded_frame_count(5) == 8
    assert len({len(frame) for frame in frames}) == 1  # uniform ciphertexts
    opened = _open_frames(frames, master_key, pae)
    assert [dummy for dummy, _key, _states in opened] == [False] * 5 + [True] * 3


def test_empty_global_yields_count_zero_row():
    host, master_key, pae, rng = _provisioned_host(b"agg-empty")
    frames = host.ecall(
        "aggregate_groups",
        "t1",
        (("COUNT", None, "count(*)"), ("SUM", "m", "sum(m)")),
        [{"group": None, "rows": 0, "measures": {}}],
    )
    opened = _open_frames(frames, master_key, pae)
    assert len(opened) == 1
    dummy, key_bytes, states = opened[0]
    assert not dummy and key_bytes == b""
    assert states == [(True, 0, 0), (False, 0, 0)]  # COUNT 0, SUM NULL


def test_empty_grouped_yields_only_dummies():
    host, master_key, pae, rng = _provisioned_host(b"agg-empty-group")
    frames = host.ecall(
        "aggregate_groups",
        "t1",
        (("COUNT", None, "count(*)"),),
        [{"group": None, "rows": 0, "measures": {}}],
        group_column="g",
    )
    opened = _open_frames(frames, master_key, pae)
    assert len(opened) == 1 and opened[0][0] is True


def test_decrypts_once_per_distinct_entry():
    """1 000 rows over 4 distinct groups and 5 distinct measures must not
    decrypt per row — that is the whole point of ordinal-space grouping."""
    host, master_key, pae, rng = _provisioned_host(b"agg-distinct")
    rows = 1000
    groups = [f"g{i % 4}" for i in range(rows)]
    measures = [(i * 3) % 5 for i in range(rows)]
    group_build = _column_build(
        master_key, pae, rng, groups, ED1, "g", VarcharType(4)
    )
    measure_build = _column_build(
        master_key, pae, rng, measures, ED1, "m", IntegerType()
    )
    before = host.cost_model.snapshot()["decryptions"]
    host.ecall(
        "aggregate_groups",
        "t1",
        (("SUM", "m", "sum(m)"),),
        [_segment(group_build, measure_build, range(rows))],
        group_column="g",
    )
    decryptions = host.cost_model.snapshot()["decryptions"] - before
    assert decryptions <= 4 + 5


def test_rejects_malformed_specs():
    host, master_key, pae, rng = _provisioned_host(b"agg-bad")
    segment = {"group": None, "rows": 1, "measures": {}}
    with pytest.raises(QueryError):
        host.ecall("aggregate_groups", "t1", (), [segment])
    with pytest.raises(QueryError):
        host.ecall(
            "aggregate_groups", "t1", (("MEDIAN", "m", "median(m)"),), [segment]
        )
    with pytest.raises(QueryError):
        host.ecall("aggregate_groups", "t1", (("SUM", None, "sum"),), [segment])

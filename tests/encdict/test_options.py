"""The ED1..ED9 grid (paper Table 2) and its option metadata."""

from __future__ import annotations

import pytest

from repro.encdict.options import (
    ALL_KINDS,
    ED1,
    ED2,
    ED3,
    ED5,
    ED9,
    EncryptedDictionaryKind,
    OrderOption,
    RepetitionOption,
    kind_by_name,
    kind_for,
)


def test_grid_has_nine_distinct_kinds():
    assert len(ALL_KINDS) == 9
    assert len({kind.name for kind in ALL_KINDS}) == 9
    assert [kind.number for kind in ALL_KINDS] == list(range(1, 10))


def test_table2_layout():
    """Rows are repetition options, columns are order options."""
    expected = {
        1: (RepetitionOption.REVEALING, OrderOption.SORTED),
        2: (RepetitionOption.REVEALING, OrderOption.ROTATED),
        3: (RepetitionOption.REVEALING, OrderOption.UNSORTED),
        4: (RepetitionOption.SMOOTHING, OrderOption.SORTED),
        5: (RepetitionOption.SMOOTHING, OrderOption.ROTATED),
        6: (RepetitionOption.SMOOTHING, OrderOption.UNSORTED),
        7: (RepetitionOption.HIDING, OrderOption.SORTED),
        8: (RepetitionOption.HIDING, OrderOption.ROTATED),
        9: (RepetitionOption.HIDING, OrderOption.UNSORTED),
    }
    for kind in ALL_KINDS:
        assert (kind.repetition, kind.order) == expected[kind.number]


def test_kind_for_inverts_the_grid():
    for kind in ALL_KINDS:
        assert kind_for(kind.repetition, kind.order) is kind


def test_kind_by_name():
    assert kind_by_name("ED5") is ED5
    assert kind_by_name("ed1") is ED1
    assert kind_by_name(" ED9 ") is ED9
    with pytest.raises(ValueError):
        kind_by_name("ED10")
    with pytest.raises(ValueError):
        kind_by_name("plaintext")


def test_frequency_leakage_labels_match_table3():
    assert RepetitionOption.REVEALING.frequency_leakage == "full"
    assert RepetitionOption.SMOOTHING.frequency_leakage == "bounded"
    assert RepetitionOption.HIDING.frequency_leakage == "none"


def test_order_leakage_labels_match_table4():
    assert OrderOption.SORTED.order_leakage == "full"
    assert OrderOption.ROTATED.order_leakage == "bounded"
    assert OrderOption.UNSORTED.order_leakage == "none"


def test_search_complexity_labels_match_table4():
    assert OrderOption.SORTED.dictionary_search_complexity == "O(log|D|)"
    assert OrderOption.ROTATED.dictionary_search_complexity == "O(log|D|)"
    assert OrderOption.UNSORTED.dictionary_search_complexity == "O(|D|)"


def test_comparable_security_matches_table5():
    by_number = {kind.number: kind.comparable_security for kind in ALL_KINDS}
    assert "ORE" in by_number[1]
    assert "MOPE" in by_number[2]
    assert "DET" in by_number[3]
    assert by_number[4] is None  # ED4-ED6 are classified only relatively
    assert "IND-FAOCPA" in by_number[7]
    assert "IND-CPA-DS" in by_number[8]
    assert "RPE" in by_number[9]


def test_kind_str_and_repr():
    assert str(ED2) == "ED2"
    assert "rotated" in repr(ED2)
    assert "frequency revealing" in repr(ED3)


def test_kinds_are_hashable_and_frozen():
    assert len({ED1, ED2, ED1}) == 2
    with pytest.raises(AttributeError):
        ED1.number = 5  # type: ignore[misc]

"""The parallel streaming build pipeline (PR 4).

The load-bearing property is bit-for-bit determinism: for every ED kind,
the pipeline — on any executor, with any worker count — must produce
exactly the artifacts of the serial ``encdb_build_partitioned`` reference:
same ciphertext dictionaries, same rotation offsets, same attribute
vectors, same ``BuildStats``. Everything else (streaming order,
backpressure, counter reconciliation) is bookkeeping around that.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnstore.types import ColumnSpec, parse_type
from repro.crypto.drbg import HmacDrbg
from repro.crypto.pae import default_pae
from repro.encdict.builder import derive_partition_rngs, encdb_build_partitioned
from repro.encdict.options import ALL_KINDS, kind_by_name
from repro.encdict.pipeline import (
    BuildPipeline,
    ColumnPlan,
    build_encrypt_operations,
    map_on_build_pool,
    shutdown_build_pools,
)
from repro.exceptions import CatalogError
from repro.runtime import configured_workers

INT = parse_type("INTEGER")
KEY = b"\x07" * 16
ROWS = 120
PARTITION_ROWS = 32  # -> 4 partitions (3 full + 1 tail)
VALUES = [((i * 11) % 17) + 3 for i in range(ROWS)]


def _reference(kind):
    """The serial builder's output plus its exact PAE encrypt count."""
    pae = default_pae(rng=HmacDrbg(b"ref-pae"))
    builds = encdb_build_partitioned(
        VALUES,
        kind,
        partition_rows=PARTITION_ROWS,
        value_type=INT,
        key=KEY,
        pae=pae,
        rng=HmacDrbg(b"col-seed"),
        bsmax=4,
        table_name="t",
        column_name="c",
    )
    return builds, pae.encrypt_count


def _plan(kind):
    spec = ColumnSpec("c", INT, protection=kind, bsmax=4)
    return ColumnPlan(spec, iter(VALUES), key=KEY, rng=HmacDrbg(b"col-seed"))


def _assert_identical(expected, actual):
    assert len(expected) == len(actual)
    for want, got in zip(expected, actual):
        assert got.dictionary.tail == want.dictionary.tail
        assert np.array_equal(got.dictionary.offsets, want.dictionary.offsets)
        assert got.dictionary.enc_rnd_offset == want.dictionary.enc_rnd_offset
        assert np.array_equal(got.attribute_vector, want.attribute_vector)
        assert got.stats == want.stats


@pytest.mark.parametrize("kind_name", [kind.name for kind in ALL_KINDS])
@pytest.mark.parametrize("executor", ["serial", "thread"])
def test_pipeline_matches_serial_builder_for_every_kind(kind_name, executor):
    kind = kind_by_name(kind_name)
    reference, reference_encrypts = _reference(kind)
    pae = default_pae(rng=HmacDrbg(b"pipe-pae"))
    pipeline = BuildPipeline(pae=pae, max_workers=3, executor=executor)
    encrypted, plain = pipeline.build_columns(
        "t", {"c": _plan(kind)}, partition_rows=PARTITION_ROWS
    )
    assert plain == {}
    _assert_identical(reference, encrypted["c"])
    # Batched encryption changes no counts: entry + offset encryptions of a
    # parallel build equal the serial builder's, exactly.
    assert pae.encrypt_count == reference_encrypts


@pytest.mark.parametrize("kind_name", ["ED1", "ED5", "ED9"])
def test_process_pool_matches_serial_builder(kind_name):
    kind = kind_by_name(kind_name)
    reference, reference_encrypts = _reference(kind)
    pae = default_pae(rng=HmacDrbg(b"proc-pae"))
    pipeline = BuildPipeline(pae=pae, max_workers=2, executor="process")
    encrypted, _ = pipeline.build_columns(
        "t", {"c": _plan(kind)}, partition_rows=PARTITION_ROWS
    )
    _assert_identical(reference, encrypted["c"])
    # Worker processes seal on their own backends; the pipeline folds the
    # exact operation counts back into the owner's backend.
    assert pae.encrypt_count == reference_encrypts


def test_build_encrypt_operations_counts_offset():
    builds, encrypts = _reference(kind_by_name("ED2"))  # rotated: has offset
    assert sum(build_encrypt_operations(b) for b in builds) == encrypts


def test_partition_rng_pairs_are_execution_order_independent():
    """Pre-derived (build, iv) DRBGs are a pure function of the column seed
    and the partition index — deriving 4 up front equals deriving lazily."""
    eager = derive_partition_rngs(HmacDrbg(b"x"), 4)
    lazy_parent = HmacDrbg(b"x")
    for index, (build_rng, iv_rng) in enumerate(eager):
        lazy_build = lazy_parent.fork(f"part-{index}")
        lazy_iv = lazy_build.fork("pae-iv")
        assert lazy_build.random_bytes(16) == build_rng.random_bytes(16)
        assert lazy_iv.random_bytes(16) == iv_rng.random_bytes(16)


def test_stream_yields_partitions_in_order_with_mixed_columns(pae):
    enc_spec = ColumnSpec("e", INT, protection=kind_by_name("ED1"), bsmax=4)
    plain_spec = ColumnSpec("p", INT)
    plans = {
        "e": ColumnPlan(enc_spec, iter(VALUES), key=KEY, rng=HmacDrbg(b"e")),
        "p": ColumnPlan(plain_spec, iter(range(ROWS))),
    }
    partitions = list(
        BuildPipeline(pae=pae, max_workers=2).build_stream(
            "t", plans, partition_rows=50
        )
    )
    assert [part.index for part in partitions] == [0, 1, 2]
    assert [part.row_count for part in partitions] == [50, 50, 20]
    assert [len(part.builds["e"].attribute_vector) for part in partitions] == [50, 50, 20]
    restored = [v for part in partitions for v in part.plain_values["p"]]
    assert restored == list(range(ROWS))


def test_stream_backpressure_bounds_source_consumption(pae):
    """At yield time of partition i, the source may be consumed at most
    ``max_inflight_partitions`` partitions ahead — O(partition) residency."""
    consumed = 0

    def source():
        nonlocal consumed
        for value in VALUES:
            consumed += 1
            yield value

    spec = ColumnSpec("c", INT, protection=kind_by_name("ED3"), bsmax=4)
    plans = {"c": ColumnPlan(spec, source(), key=KEY, rng=HmacDrbg(b"c"))}
    pipeline = BuildPipeline(
        pae=pae, max_workers=2, max_inflight_partitions=2
    )
    rows = 10
    for part in pipeline.build_stream("t", plans, partition_rows=rows):
        # windowed slicing: everything yielded + at most the inflight window
        # (plus the one-slice lookahead that detects exhaustion).
        assert consumed <= (part.index + 1 + 2 + 1) * rows


def test_stream_rejects_mismatched_column_lengths(pae):
    enc_spec = ColumnSpec("e", INT, protection=kind_by_name("ED1"), bsmax=4)
    plain_spec = ColumnSpec("p", INT)
    plans = {
        "e": ColumnPlan(enc_spec, iter(VALUES), key=KEY, rng=HmacDrbg(b"e")),
        "p": ColumnPlan(plain_spec, iter(range(ROWS - 7))),
    }
    pipeline = BuildPipeline(pae=pae, max_workers=2)
    with pytest.raises(CatalogError, match="different points"):
        list(pipeline.build_stream("t", plans, partition_rows=50))


def test_column_plan_requires_key_and_rng_for_encrypted_columns():
    spec = ColumnSpec("c", INT, protection=kind_by_name("ED1"), bsmax=4)
    with pytest.raises(CatalogError, match="needs a key"):
        ColumnPlan(spec, [1, 2, 3])


def test_pipeline_rejects_unknown_executor(pae):
    with pytest.raises(CatalogError, match="unknown build executor"):
        BuildPipeline(pae=pae, executor="gpu")


def test_single_worker_falls_back_to_serial(pae):
    assert BuildPipeline(pae=pae, max_workers=1, executor="thread").executor == "serial"


def test_worker_knob_env_override(monkeypatch, pae):
    from repro.runtime import DEFAULT_WORKERS, detected_cores

    monkeypatch.setenv("ENCDBDB_SCAN_WORKERS", "7")
    assert configured_workers() == 7
    assert BuildPipeline(pae=pae).max_workers == 7
    monkeypatch.setenv("ENCDBDB_SCAN_WORKERS", "not-a-number")
    # Malformed values are ignored; the built-in default is additionally
    # clamped to the detected core count (never a 4-worker pool on 1 core).
    assert configured_workers() == max(1, min(DEFAULT_WORKERS, detected_cores()))
    monkeypatch.setenv("ENCDBDB_SCAN_WORKERS", "-3")
    assert configured_workers() == 1  # clamped to a working pool size


def test_map_on_build_pool_matches_plain_loop():
    items = list(range(23))
    assert map_on_build_pool(lambda x: x * x, items, max_workers=4) == [
        x * x for x in items
    ]
    assert map_on_build_pool(lambda x: x + 1, items, max_workers=1) == [
        x + 1 for x in items
    ]
    assert map_on_build_pool(lambda x: x, []) == []


def teardown_module() -> None:
    shutdown_build_pools()

"""Adaptive serial/parallel dispatch and the host-clamped worker default (PR 6)."""

from __future__ import annotations

import logging

import pytest

from repro import runtime
from repro.runtime import (
    ADAPTIVE_ENV,
    DEFAULT_WORKERS,
    WORKERS_ENV,
    DispatchDecision,
    adaptive_dispatch_enabled,
    configured_workers,
    detected_cores,
    dispatch_decision,
    dispatch_stats,
    dispatch_summary,
    kernel_cost,
    last_dispatch,
    note_kernel_cost,
    reset_dispatch_stats,
)


@pytest.fixture(autouse=True)
def _clean_dispatch_state():
    reset_dispatch_stats()
    yield
    reset_dispatch_stats()


def test_single_worker_and_single_job_go_serial():
    one_worker = dispatch_decision("t", requested_workers=1, record=False)
    assert one_worker == DispatchDecision(False, 1, "a single worker was requested")
    one_job = dispatch_decision("t", requested_workers=4, jobs=1, record=False)
    assert not one_job.parallel and "single work item" in one_job.reason


def test_adaptive_false_forces_legacy_parallel(monkeypatch):
    monkeypatch.setattr(runtime, "detected_cores", lambda: 1)
    decision = dispatch_decision(
        "t", requested_workers=4, jobs=8, adaptive=False, record=False
    )
    assert decision.parallel and decision.workers == 4
    assert decision.reason == "adaptive dispatch disabled"


def test_env_kill_switch_disables_adaptivity(monkeypatch):
    monkeypatch.setenv(ADAPTIVE_ENV, "0")
    assert not adaptive_dispatch_enabled()
    monkeypatch.setattr(runtime, "detected_cores", lambda: 1)
    decision = dispatch_decision("t", requested_workers=4, jobs=8, record=False)
    assert decision.parallel  # legacy behaviour, even on one core
    monkeypatch.setenv(ADAPTIVE_ENV, "1")
    assert adaptive_dispatch_enabled()


def test_single_core_host_goes_serial(monkeypatch):
    monkeypatch.setattr(runtime, "detected_cores", lambda: 1)
    decision = dispatch_decision("t", requested_workers=4, jobs=8, record=False)
    assert not decision.parallel and "threads cannot overlap" in decision.reason


def test_tiny_work_goes_serial_and_large_work_fans_out(monkeypatch):
    monkeypatch.setattr(runtime, "detected_cores", lambda: 8)
    monkeypatch.setattr(runtime, "dispatch_overhead_s", lambda: 1e-5)
    tiny = dispatch_decision(
        "t", requested_workers=4, jobs=4, estimated_serial_s=1e-6, record=False
    )
    assert not tiny.parallel and "dispatch overhead" in tiny.reason
    large = dispatch_decision(
        "t", requested_workers=4, jobs=4, estimated_serial_s=1.0, record=False
    )
    assert large.parallel and large.workers == 4
    unmeasured = dispatch_decision("t", requested_workers=4, jobs=4, record=False)
    assert unmeasured.parallel  # no estimate: give the pool the benefit


def test_parallel_workers_clamped_to_cores(monkeypatch):
    monkeypatch.setattr(runtime, "detected_cores", lambda: 2)
    decision = dispatch_decision("t", requested_workers=16, jobs=32, record=False)
    assert decision.parallel and decision.workers == 2


def test_kernel_cost_ewma():
    assert kernel_cost("ewma-test") is None
    note_kernel_cost("ewma-test", 1.0)
    assert kernel_cost("ewma-test") == 1.0
    note_kernel_cost("ewma-test", 3.0)
    assert kernel_cost("ewma-test") == pytest.approx(2.0)  # 0.5/0.5 blend
    note_kernel_cost("ewma-test", -1.0)  # non-positive samples are ignored
    assert kernel_cost("ewma-test") == pytest.approx(2.0)


def test_dispatch_log_counts_and_summary(monkeypatch):
    monkeypatch.setattr(runtime, "detected_cores", lambda: 1)
    dispatch_decision("scan-x", requested_workers=4, jobs=8)
    dispatch_decision("scan-x", requested_workers=4, jobs=8, adaptive=False)
    stats = dispatch_stats()
    assert stats["scan-x"]["serial"] == 1
    assert stats["scan-x"]["parallel"] == 1
    last = last_dispatch("scan-x")
    assert last == {
        "parallel": True,
        "workers": 4,
        "reason": "adaptive dispatch disabled",
    }
    summary = dispatch_summary()
    assert "adaptive on" in summary and "scan-x: parallel" in summary
    reset_dispatch_stats()
    assert dispatch_stats() == {}
    assert last_dispatch("scan-x") is None


def test_dispatch_overhead_is_calibrated_once_and_positive():
    first = runtime.dispatch_overhead_s()
    assert first > 0
    assert runtime.dispatch_overhead_s() == first  # cached


def test_default_workers_clamped_to_detected_cores(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    monkeypatch.setattr(runtime, "detected_cores", lambda: 2)
    assert configured_workers() == min(DEFAULT_WORKERS, 2)
    monkeypatch.setattr(runtime, "detected_cores", lambda: 64)
    assert configured_workers() == DEFAULT_WORKERS  # never above the default
    # Explicit intent — environment or a passed default — is not clamped.
    assert configured_workers(default=9) == 9
    monkeypatch.setenv(WORKERS_ENV, "7")
    monkeypatch.setattr(runtime, "detected_cores", lambda: 1)
    assert configured_workers() == 7


def test_clamp_is_logged_exactly_once(monkeypatch, caplog):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    monkeypatch.setattr(runtime, "detected_cores", lambda: 1)
    monkeypatch.setattr(runtime, "_clamp_logged", False)
    with caplog.at_level(logging.INFO, logger="repro.runtime"):
        assert configured_workers() == 1
        assert configured_workers() == 1
    clamp_lines = [r for r in caplog.records if "clamped" in r.getMessage()]
    assert len(clamp_lines) == 1
    assert WORKERS_ENV in clamp_lines[0].getMessage()


def test_detected_cores_is_positive():
    assert detected_cores() >= 1

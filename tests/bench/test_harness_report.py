"""Unit tests for the measurement harness and report rendering."""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import (
    BenchSettings,
    LatencyStats,
    latency_stats,
    measure_query_latency,
)
from repro.bench.report import format_bytes, format_table
from repro.workloads.queries import RangeQuery


def test_latency_stats_single_sample():
    stats = latency_stats([0.002])
    assert stats.mean == pytest.approx(0.002)
    assert stats.ci95 == 0.0
    assert stats.count == 1
    assert stats.mean_ms == pytest.approx(2.0)


def test_latency_stats_ci():
    stats = latency_stats([0.001, 0.002, 0.003])
    assert stats.mean == pytest.approx(0.002)
    assert stats.ci95 > 0
    assert "ms" in str(stats)


def test_latency_stats_empty_rejected():
    with pytest.raises(ValueError):
        latency_stats([])


def test_measure_query_latency_counts_results():
    queries = [RangeQuery(1, 3), RangeQuery(2, 5)]
    values = [1, 2, 3, 4, 5]

    def run(query):
        return sum(1 for v in values if query.low <= v <= query.high)

    stats = measure_query_latency(run, queries)
    assert stats.count == 2
    assert stats.total_results == 3 + 4
    assert stats.mean >= 0


def test_bench_settings_from_env(monkeypatch):
    monkeypatch.setenv("ENCDBDB_BENCH_ROWS", "1234")
    monkeypatch.setenv("ENCDBDB_BENCH_QUERIES", "7")
    monkeypatch.setenv("ENCDBDB_BENCH_SIZES", "4")
    settings = BenchSettings.from_env()
    assert settings == BenchSettings(rows=1234, queries=7, size_steps=4)


def test_bench_settings_defaults(monkeypatch):
    for name in ("ENCDBDB_BENCH_ROWS", "ENCDBDB_BENCH_QUERIES", "ENCDBDB_BENCH_SIZES"):
        monkeypatch.delenv(name, raising=False)
    settings = BenchSettings.from_env()
    assert settings.rows == 20_000
    assert settings.queries == 25


def test_format_table_alignment():
    text = format_table("Title", ["col_a", "b"], [("x", 12345), ("longer", 1)])
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert "col_a" in lines[1]
    assert "-" in lines[2]
    assert len(lines) == 5
    # All data lines align to the same width.
    assert len(set(len(line.rstrip()) for line in lines[3:])) <= 2


def test_format_table_empty_rows():
    text = format_table("T", ["a"], [])
    assert "a" in text


def test_format_bytes():
    assert format_bytes(500).strip() == "500 B"
    assert "KiB" in format_bytes(2048)
    assert "MiB" in format_bytes(3 * 1024 * 1024)
    assert format_bytes(1536).strip() == "1.50 KiB"

"""The three benchmark engines agree with each other and with ground truth."""

from __future__ import annotations

import pytest

from repro.bench.engines import (
    EncDbdbColumnEngine,
    MonetDbColumnEngine,
    PlainDbdbColumnEngine,
    build_engines,
)
from repro.columnstore.types import VarcharType
from repro.crypto.drbg import HmacDrbg
from repro.encdict.options import ALL_KINDS, ED1, ED5
from repro.workloads.queries import RangeQuery

VALUES = ["pear", "apple", "fig", "banana", "apple", "quince", "fig", "fig"]


def _reference(low, high):
    return sum(1 for value in VALUES if low <= value <= high)


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda kind: kind.name)
def test_all_engines_agree_per_kind(kind):
    engines = build_engines(VALUES, kind, bsmax=3, value_type=VarcharType(10))
    for query in (RangeQuery("apple", "fig"), RangeQuery("a", "z"),
                  RangeQuery("x", "y")):
        expected = _reference(query.low, query.high)
        for name, engine in engines.items():
            assert engine.run(query) == expected, (kind.name, name, query)


def test_storage_accounting_exposed():
    engines = build_engines(VALUES, ED1, value_type=VarcharType(10))
    assert engines["MonetDB"].storage_bytes() > 0
    assert engines["PlainDBDB"].storage_bytes() > 0
    # The encrypted column pays the PAE overhead over its plaintext twin.
    assert (
        engines["EncDBDB"].storage_bytes() > engines["PlainDBDB"].storage_bytes()
    )


def test_encdbdb_engine_counts_architecture_events():
    engine = EncDbdbColumnEngine(
        VALUES, ED5, value_type=VarcharType(10), bsmax=2, rng=HmacDrbg(b"e")
    )
    before = engine.host.cost_model.snapshot()
    engine.run(RangeQuery("apple", "fig"))
    delta = engine.host.cost_model.diff(before)
    assert delta["ecalls"] == 1
    assert delta["decryptions"] > 0


def test_engines_are_deterministic_given_seed():
    a = PlainDbdbColumnEngine(VALUES, ED5, value_type=VarcharType(10),
                              bsmax=2, rng=HmacDrbg(b"same"))
    b = PlainDbdbColumnEngine(VALUES, ED5, value_type=VarcharType(10),
                              bsmax=2, rng=HmacDrbg(b"same"))
    assert a.build.attribute_vector.tolist() == b.build.attribute_vector.tolist()


def test_monetdb_engine_interns_duplicates():
    engine = MonetDbColumnEngine(VALUES)
    assert engine.run(RangeQuery("fig", "fig")) == 3

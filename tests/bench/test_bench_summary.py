"""``scripts/bench_summary.py`` must fail loudly (PR 9): a malformed or
required-but-missing benchmark result aborts the summary instead of
silently publishing a partial document a regression could hide in."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = (
    Path(__file__).resolve().parents[2] / "scripts" / "bench_summary.py"
)
_spec = importlib.util.spec_from_file_location("bench_summary", _SCRIPT)
bench_summary = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_summary)


def _write(results: Path, name: str, payload) -> None:
    results.mkdir(parents=True, exist_ok=True)
    (results / f"BENCH_{name}.json").write_text(json.dumps(payload))


def test_summary_combines_all_results(tmp_path):
    results = tmp_path / "results"
    _write(results, "net", {"rtt": 1})
    _write(results, "workloads", {"speedup": 118.5})
    output = tmp_path / "BENCH_summary.json"
    code = bench_summary.main(
        ["bench_summary.py", str(results), str(output), "--require",
         "net,workloads"]
    )
    assert code == 0
    summary = json.loads(output.read_text())
    assert summary == {"net": {"rtt": 1}, "workloads": {"speedup": 118.5}}


def test_missing_required_result_aborts(tmp_path):
    results = tmp_path / "results"
    _write(results, "net", {"rtt": 1})
    with pytest.raises(SystemExit, match="BENCH_workloads.json"):
        bench_summary.main(
            ["bench_summary.py", str(results), "--require=net,workloads"]
        )
    assert not (results / "BENCH_summary.json").exists()


def test_malformed_json_aborts(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    (results / "BENCH_broken.json").write_text("{not json")
    with pytest.raises(SystemExit, match="invalid JSON"):
        bench_summary.main(["bench_summary.py", str(results)])


def test_empty_or_missing_results_dir_aborts(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(SystemExit, match="no BENCH_"):
        bench_summary.main(["bench_summary.py", str(empty)])
    with pytest.raises(SystemExit, match="not a directory"):
        bench_summary.main(["bench_summary.py", str(tmp_path / "missing")])


def test_prior_summary_is_not_recursively_included(tmp_path):
    results = tmp_path / "results"
    _write(results, "net", {"rtt": 1})
    _write(results, "summary", {"stale": True})
    summary = bench_summary.summarize(results)
    assert "summary" not in summary and summary == {"net": {"rtt": 1}}

"""Lock-discipline pass: guarded-by parsing, with-scope matching, exemptions."""

from __future__ import annotations

import ast

from repro.analysis.engine import analyze_source
from repro.analysis.findings import RULE_BAD_ANNOTATION, RULE_UNGUARDED_MUTATION
from repro.analysis.locks import collect_guards


def _active(findings, rule):
    return [f for f in findings if f.rule == rule and not f.suppressed]


def test_bad_locks_fixture_is_fully_reported(analyze_fixture):
    report = analyze_fixture("bad_locks.py")
    mutations = _active(report.findings, RULE_UNGUARDED_MUTATION)
    mutated = sorted(f.symbol for f in mutations)
    assert mutated == ["_registry", "self.events", "self.total"]
    bad = _active(report.findings, RULE_BAD_ANNOTATION)
    assert len(bad) == 1 and "self._missing_lock" in bad[0].message


def test_clean_fixture_has_no_active_findings(analyze_fixture):
    report = analyze_fixture("good_clean.py")
    assert [f for f in report.findings if not f.suppressed] == []
    assert len([f for f in report.findings if f.suppressed]) == 1


def test_init_is_exempt_and_prefix_matching_covers_nested_attrs():
    source = (
        "import threading\n"
        "class Model:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.RLock()\n"
        "        self.stats = {}  # guarded-by: self._lock\n"
        "    def good(self):\n"
        "        with self._lock:\n"
        "            self.stats['hits'] = 1\n"
        "    def bad(self):\n"
        "        self.stats['hits'] = 1\n"
    )
    findings = analyze_source(source, module="repro.sgx.cache", path="m.py")
    mutations = _active(findings, RULE_UNGUARDED_MUTATION)
    assert len(mutations) == 1
    assert "bad" in mutations[0].message


def test_dataclass_field_annotations_bind_to_self():
    source = (
        "import threading\n"
        "from dataclasses import dataclass, field\n"
        "@dataclass\n"
        "class Counters:\n"
        "    hits: int = 0  # guarded-by: self._lock\n"
        "    _lock: threading.RLock = field(default_factory=threading.RLock)\n"
        "    def bump(self):\n"
        "        self.hits += 1\n"
    )
    findings = analyze_source(source, module="repro.sgx.costs", path="c.py")
    assert len(_active(findings, RULE_UNGUARDED_MUTATION)) == 1


def test_guarded_by_in_docstring_is_inert():
    source = '"""Docs mention # guarded-by: self._lock but define nothing."""\n'
    guards, findings = collect_guards(
        ast.parse(source), source, module="m", path="m.py"
    )
    assert guards == {} and findings == []


def test_unconsumed_annotation_is_reported():
    source = "# guarded-by: lock\ndef f():\n    return 1\n"
    findings = analyze_source(source, module="repro.sgx.cache", path="m.py")
    assert [f.rule for f in findings] == [RULE_BAD_ANNOTATION]


def test_module_lock_acquired_via_with_covers_all_mutation_kinds():
    source = (
        "import threading\n"
        "_lock = threading.Lock()\n"
        "_items = []  # guarded-by: _lock\n"
        "def ok(x):\n"
        "    with _lock:\n"
        "        _items.append(x)\n"
        "        _items[0] = x\n"
        "        del _items[0]\n"
        "def bad(x):\n"
        "    _items.append(x)\n"
        "    _items[0] = x\n"
        "    del _items[0]\n"
    )
    findings = analyze_source(source, module="repro.sgx.cache", path="m.py")
    assert len(_active(findings, RULE_UNGUARDED_MUTATION)) == 3


def test_repo_annotations_collect_on_real_modules():
    """The annotated production classes expose their guards to the tools."""
    import repro.sgx.costs as costs_mod

    source = open(costs_mod.__file__, encoding="utf-8").read()
    guards, findings = collect_guards(
        ast.parse(source), source, module="repro.sgx.costs", path="costs.py"
    )
    assert findings == []
    paths = {g.path for g in guards.get("CostModel", [])}
    assert ("self", "ecalls") in paths
    assert ("self", "ecalls_by_name") in paths

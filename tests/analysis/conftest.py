"""Shared helpers for the linter self-tests."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.engine import analyze_file
from repro.analysis.findings import FileReport

FIXTURES = Path(__file__).parent / "fixtures"
SRC_ROOT = Path(__file__).parents[2] / "src"


@pytest.fixture
def analyze_fixture():
    def _analyze(name: str) -> FileReport:
        return analyze_file(FIXTURES / name, SRC_ROOT)

    return _analyze

"""Trustmap drift gate: the trust map keeps pace with the source tree.

``trust_level`` fails closed — an unmapped module lands in ``untrusted`` —
which is safe but silent: a new owner- or enclave-side package would be
linted under the wrong rules without anyone noticing. This gate makes the
drift loud: every top-level package under ``src/repro`` must carry an
explicit :data:`~repro.analysis.trustmap.MODULE_TRUST` entry, and every
module of the newer subsystems (cluster, migrate, workloads) must resolve
through an explicit entry rather than the fail-closed default.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import trustmap

SRC_ROOT = Path(trustmap.__file__).resolve().parents[1]

#: Subsystems added after the original map whose *every* module must be
#: individually classified (package-prefix inheritance is not enough: these
#: mix owner-side drivers with untrusted schedulers and public data).
PER_MODULE_PACKAGES = ("cluster", "migrate", "workloads")


def _top_level_names() -> set[str]:
    names = set()
    for entry in SRC_ROOT.iterdir():
        if entry.name.startswith(("_", ".")) or entry.name == "__pycache__":
            continue
        if entry.is_dir() and (entry / "__init__.py").exists():
            names.add(f"repro.{entry.name}")
        elif entry.suffix == ".py":
            names.add(f"repro.{entry.stem}")
    return names


def _package_modules(package: str) -> set[str]:
    return {
        f"repro.{package}.{path.stem}"
        for path in (SRC_ROOT / package).glob("*.py")
        if path.stem != "__init__"
    }


def test_every_top_level_package_is_explicitly_mapped():
    unmapped = sorted(_top_level_names() - set(trustmap.MODULE_TRUST))
    assert not unmapped, (
        f"top-level packages missing an explicit MODULE_TRUST entry: "
        f"{unmapped} — classify them in repro.analysis.trustmap"
    )


def test_newer_subsystems_are_mapped_per_module():
    missing = sorted(
        module
        for package in PER_MODULE_PACKAGES
        for module in _package_modules(package)
        if module not in trustmap.MODULE_TRUST
    )
    assert not missing, (
        f"modules relying on package-prefix trust inheritance: {missing} — "
        "add explicit MODULE_TRUST entries"
    )


def test_mapped_modules_exist_on_disk():
    """The reverse direction: no stale entries for deleted modules."""
    stale = []
    for module in trustmap.MODULE_TRUST:
        relative = Path(*module.split(".")[1:]) if module != "repro" else Path()
        candidates = (
            SRC_ROOT / relative.parent / (relative.name + ".py")
            if relative.name
            else SRC_ROOT / "__init__.py",
            SRC_ROOT / relative / "__init__.py",
        )
        if not any(path.exists() for path in candidates):
            stale.append(module)
    assert not stale, f"MODULE_TRUST entries with no source file: {stale}"


def test_prefix_fallback_never_decides_a_real_module():
    """trust_level() resolves every real module via an explicit prefix at
    package depth or deeper — the fail-closed default is for *drift*, not
    for anything currently in the tree."""
    for package in PER_MODULE_PACKAGES:
        for module in _package_modules(package):
            assert trustmap.trust_level(module) == trustmap.MODULE_TRUST[module]

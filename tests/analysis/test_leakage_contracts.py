"""The leakage-contract registries stay in sync with the runtime.

:mod:`repro.analysis.leakage` declares, as data, what every ecall and every
wire verb may reveal. These tests pin that data against the live surfaces
from both directions: an ecall/verb without a contract cannot ship, and a
contract for a retired entry point cannot linger.
"""

from __future__ import annotations

from repro.analysis.leakage import ECALL_CONTRACTS, VERB_CONTRACTS
from repro.analysis.trustmap import REGISTERED_ECALLS
from repro.encdict.enclave_app import EncDBDBEnclave
from repro.net.server import RPC_METHODS


def test_every_registered_ecall_has_a_contract():
    assert set(ECALL_CONTRACTS) == set(REGISTERED_ECALLS)


def test_contracts_cover_the_live_enclave_surface():
    assert set(ECALL_CONTRACTS) == set(EncDBDBEnclave().ecall_names())


def test_every_wire_verb_has_a_contract():
    assert set(VERB_CONTRACTS) == set(RPC_METHODS)


def test_contracts_declare_observables_and_kind():
    for registry, kind in ((ECALL_CONTRACTS, "ecall"), (VERB_CONTRACTS, "verb")):
        for name, contract in registry.items():
            assert contract.name == name
            assert contract.kind == kind
            # Every contract states *what* the provider observes — an empty
            # observables string would be a contract in name only.
            assert contract.observables.strip()

# lint-module: repro.server.evil_taint
"""Known-bad fixture: plaintext taint reaching observable sinks.

Never imported at runtime — the linter self-tests analyze this file
statically and assert each seeded violation is reported.
"""

import logging

logger = logging.getLogger(__name__)


def decrypt_row(pae, key, blob):
    # A module-local helper whose summary must say "returns taint".
    return pae.decrypt(key, blob)


def render(value):
    # A module-local helper whose summary must say "argument reaches a sink".
    print("row:", value)


def handle(pae, key, blob, sock, logger=logger):
    plain = pae.decrypt(key, blob)
    print(plain)  # direct print sink
    logger.info("loaded %s", plain)  # log sink
    row = decrypt_row(pae, key, blob)  # interprocedural source
    sock.sendall(row)  # wire sink via helper-returned taint
    render(row)  # tainted argument into a sinking helper
    if not plain:
        raise ValueError(f"empty row {plain!r}")  # exception-message sink
    return encode_payload({"v": plain})  # wire-encoder sink


def encode_payload(payload):
    return payload

# lint-module: repro.encdict.evil_build
"""Known-bad fixture: crypto-discipline violations in a build path."""

import os
import pickle
import random

from repro.crypto.gcm import AesGcm  # primitive import bypassing Pae


def undisciplined_build(values):
    iv = os.urandom(12)  # ambient randomness in a deterministic path
    shuffled = sorted(values, key=lambda _: random.random())
    gcm = AesGcm(b"\x00" * 16)  # direct primitive use
    blob = pickle.dumps(shuffled)  # ambient serialization
    return gcm.encrypt(iv, blob, b"")

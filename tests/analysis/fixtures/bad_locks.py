# lint-module: repro.columnstore.evil_locks
"""Known-bad fixture: guarded-by contracts that are declared then broken."""

import threading

_registry_lock = threading.Lock()
_registry = {}  # guarded-by: _registry_lock


def register(name, value):
    _registry[name] = value  # unguarded mutation of a module global


class Counter:
    def __init__(self):
        self._lock = threading.RLock()
        self.total = 0  # guarded-by: self._lock
        self.events = []  # guarded-by: self._lock
        self.phantom = 0  # guarded-by: self._missing_lock

    def locked_increment(self):
        with self._lock:
            self.total += 1  # fine: lock held

    def racy_increment(self):
        self.total += 1  # unguarded mutation

    def racy_append(self, event):
        self.events.append(event)  # unguarded mutator-method call

# lint-module: repro.columnstore.clean
"""Known-good fixture: untrusted code that respects every rule."""

import threading

from repro.sgx.enclave import EnclaveHost  # registered surface symbol

_stats_lock = threading.Lock()
_stats = {}  # guarded-by: _stats_lock


def record(name: str) -> None:
    with _stats_lock:
        _stats[name] = _stats.get(name, 0) + 1


def search(host: EnclaveHost, blobs, encrypted_range) -> object:
    record("dict_search")
    return host.ecall("dict_search", blobs, encrypted_range)


# lint: allow(forbidden-symbol) justification="suppression self-test: the word is only exercised so tests can assert justified suppressions count as suppressed"
seal = None

# lint-module: repro.columnstore.evil_boundary
"""Known-bad fixture: an untrusted module crossing the trust boundary.

Never imported at runtime — the linter self-tests analyze this file
statically and assert each seeded violation is reported.
"""

import repro.sgx.enclave  # whole-module import of a trusted module
from repro.crypto.kdf import derive_column_key  # key derivation off-surface
from repro.crypto.pae import pae_gen  # key generation off-surface
from repro.sgx.enclave import EnclaveHost  # on the surface: allowed


def steal_keys(host: EnclaveHost) -> bytes:
    SKDB = pae_gen()  # forbidden symbol: names the master key
    host.ecall("read_master_key")  # unregistered ecall name
    enclave = repro.sgx.enclave
    state = enclave.Enclave._protected  # enclave-internal member
    return derive_column_key(SKDB, "tab", "col"), state

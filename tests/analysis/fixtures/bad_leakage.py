# lint-module: repro.sgx.evil_enclave
"""Known-bad fixture: enclave entry points violating leakage contracts.

Never imported at runtime — the linter self-tests assert the leakage pass
reports an @ecall with no declared contract and a declared contract whose
shaping helper is never applied.
"""


def ecall(fn):
    return fn


class EvilEnclave:
    @ecall
    def leak_all(self):  # no entry in ECALL_CONTRACTS
        return list(self._protected_rows)

    @ecall
    def seal_master_key(self):  # contract demands seal(); body never seals
        return bytes(self._key_material)

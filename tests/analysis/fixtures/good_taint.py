# lint-module: repro.server.good_taint
"""Known-good fixture: every plaintext flow is sanitized or size-only.

Never imported at runtime — the linter self-tests assert the taint pass
stays silent on sanctioned patterns: encrypt-before-wire, digests,
length/boolean projections, and ordinal comparisons (the declared search
leakage).
"""


def reseal(pae, key, blob, sock):
    plain = pae.decrypt(key, blob)
    sock.sendall(pae.encrypt(key, plain))  # sanitized: AE before the wire
    print(len(plain))  # size-only projection
    return bool(plain)


def fingerprint(hasher, pae, key, blob):
    plain = pae.decrypt(key, blob)
    mac = hasher(plain)
    return mac.digest()  # fixed-width digest launders taint


def position(pae, key, blob, bound):
    plain = pae.decrypt(key, blob)
    # Comparison results are the per-kind declared ordinal leakage.
    return plain <= bound

"""Suppression mechanism: mandatory justification, scoping, misuse reports."""

from __future__ import annotations

from repro.analysis.engine import analyze_source
from repro.analysis.findings import (
    RULE_BAD_SUPPRESSION,
    RULE_FORBIDDEN_SYMBOL,
)
from repro.analysis.suppressions import parse_suppressions


def test_justified_line_suppression_silences_the_finding():
    source = (
        'SKDB = None  # lint: allow(forbidden-symbol) justification="test"\n'
    )
    findings = analyze_source(
        source, module="repro.columnstore.x", path="x.py"
    )
    assert len(findings) == 1
    assert findings[0].suppressed and findings[0].justification == "test"


def test_comment_on_line_above_covers_the_statement_below():
    source = (
        '# lint: allow(forbidden-symbol) justification="covers next line"\n'
        "SKDB = None\n"
    )
    findings = analyze_source(
        source, module="repro.columnstore.x", path="x.py"
    )
    assert [f.suppressed for f in findings] == [True]


def test_suppression_does_not_reach_two_lines_down():
    source = (
        '# lint: allow(forbidden-symbol) justification="too far away"\n'
        "ok = 1\n"
        "SKDB = None\n"
    )
    findings = analyze_source(
        source, module="repro.columnstore.x", path="x.py"
    )
    assert [f.suppressed for f in findings] == [False]


def test_missing_justification_is_reported_and_silences_nothing():
    source = "SKDB = None  # lint: allow(forbidden-symbol)\n"
    findings = analyze_source(
        source, module="repro.columnstore.x", path="x.py"
    )
    rules = {f.rule: f.suppressed for f in findings}
    assert rules == {RULE_FORBIDDEN_SYMBOL: False, RULE_BAD_SUPPRESSION: False}


def test_empty_justification_is_rejected():
    source = 'SKDB = None  # lint: allow(forbidden-symbol) justification="  "\n'
    findings = analyze_source(
        source, module="repro.columnstore.x", path="x.py"
    )
    assert {f.rule for f in findings} == {
        RULE_FORBIDDEN_SYMBOL,
        RULE_BAD_SUPPRESSION,
    }


def test_unknown_rule_is_reported():
    index = parse_suppressions(
        '# lint: allow(no-such-rule) justification="x"\n', path="x.py", module="m"
    )
    assert index.suppressions == []
    assert [f.rule for f in index.findings] == [RULE_BAD_SUPPRESSION]
    assert "no-such-rule" in index.findings[0].message


def test_bad_suppression_rule_cannot_be_suppressed():
    index = parse_suppressions(
        '# lint: allow(bad-suppression) justification="nice try"\n',
        path="x.py",
        module="m",
    )
    assert index.suppressions == []
    assert [f.rule for f in index.findings] == [RULE_BAD_SUPPRESSION]


def test_allow_file_must_sit_near_the_top():
    source = "\n" * 20 + (
        '# lint: allow-file(forbidden-symbol) justification="buried"\n'
    )
    index = parse_suppressions(source, path="x.py", module="m")
    assert index.suppressions == []
    assert [f.rule for f in index.findings] == [RULE_BAD_SUPPRESSION]


def test_allow_file_covers_the_whole_file():
    source = (
        '# lint: allow-file(forbidden-symbol) justification="role fixture"\n'
        + "\n" * 30
        + "SKDB = None\n"
    )
    findings = analyze_source(
        source, module="repro.columnstore.x", path="x.py"
    )
    assert [f.suppressed for f in findings] == [True]


def test_one_comment_may_list_several_rules():
    source = (
        "import pickle, random  "
        '# lint: allow(unsafe-serialization, nondet-randomness) justification="fixture"\n'
    )
    findings = analyze_source(
        source, module="repro.encdict.builder", path="x.py"
    )
    assert findings and all(f.suppressed for f in findings)

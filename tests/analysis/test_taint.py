"""Taint and leakage-contract passes: seeded fixtures and suppressions."""

from __future__ import annotations

from repro.analysis.engine import analyze_source
from repro.analysis.findings import (
    RULE_BAD_SUPPRESSION,
    RULE_PLAINTEXT_TAINT,
    RULE_UNDECLARED_CONTRACT,
    RULE_UNSHAPED_RESPONSE,
)


def _active(findings, rule):
    findings = getattr(findings, "findings", findings)
    return [f for f in findings if f.rule == rule and not f.suppressed]


# ----------------------------------------------------------------------
# Fixture coverage
# ----------------------------------------------------------------------


def test_bad_taint_fixture_is_fully_reported(analyze_fixture):
    report = analyze_fixture("bad_taint.py")
    assert report.module == "repro.server.evil_taint"
    messages = [f.message for f in _active(report, RULE_PLAINTEXT_TAINT)]
    joined = "\n".join(messages)
    assert "print() output" in joined
    assert "log call .info()" in joined
    assert "wire sink sendall()" in joined
    assert "wire sink encode_payload()" in joined
    assert "exception message" in joined
    assert "flows into render()" in joined
    assert len(messages) >= 6


def test_good_taint_fixture_is_clean(analyze_fixture):
    report = analyze_fixture("good_taint.py")
    assert _active(report, RULE_PLAINTEXT_TAINT) == []


def test_bad_leakage_fixture_is_fully_reported(analyze_fixture):
    report = analyze_fixture("bad_leakage.py")
    assert report.module == "repro.sgx.evil_enclave"
    undeclared = _active(report, RULE_UNDECLARED_CONTRACT)
    assert [f.symbol for f in undeclared] == ["leak_all"]
    unshaped = _active(report, RULE_UNSHAPED_RESPONSE)
    assert [f.symbol for f in unshaped] == ["seal"]


def test_enclave_ecall_returning_taint_is_reported():
    source = (
        "def ecall(fn):\n"
        "    return fn\n"
        "class E:\n"
        "    @ecall\n"
        "    def dict_search(self, pae, key, blob):\n"
        "        return pae.decrypt(key, blob)\n"
    )
    findings = analyze_source(source, module="repro.sgx.x", path="x.py")
    taints = _active(findings, RULE_PLAINTEXT_TAINT)
    assert len(taints) == 1
    assert "across the enclave boundary" in taints[0].message


# ----------------------------------------------------------------------
# Suppressions for the three PR-10 rules
# ----------------------------------------------------------------------


def test_plaintext_taint_suppression_with_justification():
    source = (
        "def show(pae, key, blob):\n"
        "    plain = pae.decrypt(key, blob)\n"
        "    print(plain)  # lint: allow(plaintext-taint)"
        ' justification="debug harness output, never deployed"\n'
    )
    findings = analyze_source(source, module="repro.sql.x", path="x.py")
    assert [f.rule for f in findings] == [RULE_PLAINTEXT_TAINT]
    assert findings[0].suppressed
    assert "debug harness" in findings[0].justification


def test_undeclared_contract_suppression_with_justification():
    source = (
        "def ecall(fn):\n"
        "    return fn\n"
        "@ecall\n"
        "# lint: allow(undeclared-contract)"
        ' justification="prototype entry point behind a feature gate"\n'
        "def probe():\n"
        "    return 1\n"
    )
    findings = analyze_source(source, module="repro.sgx.x", path="x.py")
    contract = [f for f in findings if f.rule == RULE_UNDECLARED_CONTRACT]
    assert len(contract) == 1 and contract[0].suppressed


def test_unshaped_response_suppression_with_justification():
    source = (
        "def ecall(fn):\n"
        "    return fn\n"
        "@ecall\n"
        "# lint: allow(unshaped-response)"
        ' justification="sealing delegated to a verified helper"\n'
        "def seal_master_key():\n"
        "    return 1\n"
    )
    findings = analyze_source(source, module="repro.sgx.x", path="x.py")
    unshaped = [f for f in findings if f.rule == RULE_UNSHAPED_RESPONSE]
    assert len(unshaped) == 1 and unshaped[0].suppressed


def test_new_rule_suppression_without_justification_is_bad():
    source = (
        "def show(pae, key, blob):\n"
        "    plain = pae.decrypt(key, blob)\n"
        "    print(plain)  # lint: allow(plaintext-taint)\n"
    )
    findings = analyze_source(source, module="repro.sql.x", path="x.py")
    by_rule = {f.rule: f.suppressed for f in findings}
    assert by_rule == {RULE_PLAINTEXT_TAINT: False, RULE_BAD_SUPPRESSION: False}

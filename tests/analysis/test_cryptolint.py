"""Crypto-discipline pass: randomness, PAE bypass, serialization, wire."""

from __future__ import annotations

from repro.analysis.engine import analyze_source
from repro.analysis.findings import (
    RULE_NONDET_RANDOMNESS,
    RULE_PAE_BYPASS,
    RULE_UNSAFE_SERIALIZATION,
    RULE_WIRE_PLAINTEXT,
)


def _rules(findings):
    return {f.rule for f in findings if not f.suppressed}


def test_bad_crypto_fixture_is_fully_reported(analyze_fixture):
    report = analyze_fixture("bad_crypto.py")
    assert report.module == "repro.encdict.evil_build"
    rules = _rules(report.findings)
    assert RULE_NONDET_RANDOMNESS in rules
    assert RULE_PAE_BYPASS in rules
    assert RULE_UNSAFE_SERIALIZATION in rules

    symbols = {f.symbol for f in report.findings}
    assert "os.urandom" in symbols
    assert "random" in symbols
    assert "AesGcm" in symbols
    assert "pickle" in symbols


def test_urandom_outside_deterministic_paths_is_fine():
    source = "import os\ntoken = os.urandom(16)\n"
    findings = analyze_source(
        source, module="repro.net.server", path="server.py"
    )
    assert findings == []


def test_drbg_randomness_in_build_path_is_fine():
    source = (
        "from repro.crypto.drbg import HmacDrbg\n"
        "def build(rng: HmacDrbg):\n"
        "    return rng.random_bytes(12)\n"
    )
    findings = analyze_source(
        source, module="repro.encdict.builder", path="builder.py"
    )
    assert findings == []


def test_pae_internals_are_crypto_only():
    source = "def sneak(pae, key, iv, pt):\n    return pae._seal(key, iv, pt, b'')\n"
    findings = analyze_source(
        source, module="repro.sql.executor", path="executor.py"
    )
    assert _rules(findings) == {RULE_PAE_BYPASS}
    # the same reference inside repro.crypto is the implementation itself
    assert (
        analyze_source(source, module="repro.crypto.pae", path="pae.py") == []
    )


def test_wire_plaintext_symbols_are_banned_in_net():
    source = "from repro.encdict.builder import encdb_build\n"
    findings = analyze_source(
        source, module="repro.net.protocol", path="protocol.py"
    )
    assert RULE_WIRE_PLAINTEXT in _rules(findings)
    # the same import from the owner-side build pipeline is fine
    assert (
        analyze_source(
            source, module="repro.encdict.pipeline", path="pipeline.py"
        )
        == []
    )


def test_pickle_is_banned_everywhere():
    source = "import pickle\n"
    for module in ("repro.net.protocol", "repro.encdict.builder", "repro.cli"):
        findings = analyze_source(source, module=module, path="x.py")
        assert _rules(findings) == {RULE_UNSAFE_SERIALIZATION}, module

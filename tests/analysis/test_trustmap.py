"""The trust map must stay in sync with the runtime it describes."""

from __future__ import annotations

from repro.analysis import trustmap
from repro.analysis.trustmap import (
    MODULE_TRUST,
    REGISTERED_ECALLS,
    TRUST_CRYPTO,
    TRUST_ENCLAVE,
    TRUST_OWNER,
    TRUST_PUBLIC,
    TRUST_UNTRUSTED,
    allowed_symbols,
    trust_level,
)
from repro.encdict.enclave_app import EncDBDBEnclave


def test_registered_ecalls_match_enclave_surface():
    """Editing the enclave's ecall surface without updating the trust map
    (or vice versa) must fail CI."""
    enclave = EncDBDBEnclave()
    assert tuple(sorted(REGISTERED_ECALLS)) == tuple(sorted(enclave.ecall_names()))


def test_trust_levels_fail_closed():
    assert trust_level("repro.columnstore.column") == TRUST_UNTRUSTED
    assert trust_level("repro.sql.executor") == TRUST_UNTRUSTED
    assert trust_level("repro.sgx.enclave") == TRUST_ENCLAVE
    assert trust_level("repro.encdict.enclave_app") == TRUST_ENCLAVE
    assert trust_level("repro.crypto.pae") == TRUST_CRYPTO
    assert trust_level("repro.client.owner") == TRUST_OWNER
    assert trust_level("repro.exceptions") == TRUST_PUBLIC
    # an unclassified new subpackage is untrusted until mapped
    assert trust_level("repro.shiny_new_subsystem") == TRUST_UNTRUSTED
    # the root entry covers only the facade module itself
    assert trust_level("repro") == TRUST_OWNER


def test_every_trust_level_is_known():
    levels = {
        TRUST_ENCLAVE,
        TRUST_CRYPTO,
        TRUST_OWNER,
        TRUST_UNTRUSTED,
        TRUST_PUBLIC,
    }
    assert set(MODULE_TRUST.values()) <= levels


def test_untrusted_surface_is_narrow():
    surface = allowed_symbols(TRUST_UNTRUSTED, "repro.sgx.enclave")
    assert "EnclaveHost" in surface
    assert "_protected" not in surface
    # key-less crypto interface only: no key generation, no KDF
    assert "pae_gen" not in allowed_symbols(TRUST_UNTRUSTED, "repro.crypto.pae")
    assert allowed_symbols(TRUST_UNTRUSTED, "repro.crypto.kdf") == frozenset()


def test_owner_surface_extends_untrusted_surface():
    untrusted = allowed_symbols(TRUST_UNTRUSTED, "repro.sgx.channel")
    owner = allowed_symbols(TRUST_OWNER, "repro.sgx.channel")
    assert untrusted < owner
    assert "SecureChannel" in owner and "SecureChannel" not in untrusted


def test_forbidden_sets_do_not_overlap_surfaces():
    for module, symbols in trustmap.UNTRUSTED_SURFACE.items():
        assert not symbols & trustmap.KEY_SYMBOLS, module
        assert not symbols & trustmap.ENCLAVE_INTERNALS, module

"""The repository's own source tree must lint clean — the CI gate."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.engine import analyze_paths
from repro.analysis.findings import RULE_BAD_SUPPRESSION

SRC_ROOT = Path(__file__).parents[2] / "src"


def test_src_tree_has_zero_active_findings():
    report = analyze_paths([SRC_ROOT], root=SRC_ROOT)
    assert report.files, "source tree not found"
    active = report.active
    rendered = "\n".join(f.render() for f in active)
    assert active == [], f"linter findings in src/:\n{rendered}"


def test_every_suppression_in_src_carries_a_justification():
    report = analyze_paths([SRC_ROOT], root=SRC_ROOT)
    suppressed = report.suppressed
    assert suppressed, "expected the documented suppressions to exist"
    for finding in suppressed:
        assert finding.justification, finding.render()
    assert not [f for f in report.findings if f.rule == RULE_BAD_SUPPRESSION]

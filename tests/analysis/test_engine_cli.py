"""Engine plumbing and the ``python -m repro.analysis`` CLI contract."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.__main__ import main
from repro.analysis.engine import declared_module, module_name_for
from repro.analysis.findings import ALL_RULES

FIXTURES = Path(__file__).parent / "fixtures"
SRC_ROOT = Path(__file__).parents[2] / "src"


def test_module_name_mapping():
    root = Path("src")
    assert module_name_for(Path("src/repro/sgx/cache.py"), root) == "repro.sgx.cache"
    assert module_name_for(Path("src/repro/encdict/__init__.py"), root) == "repro.encdict"
    assert module_name_for(Path("elsewhere/x.py"), root) is None


def test_lint_module_directive_wins():
    assert declared_module("# lint-module: repro.sql.evil\n") == "repro.sql.evil"
    assert declared_module("'''# lint-module: repro.sql.evil'''\n") is None
    assert declared_module("x = 1\n") is None


def test_cli_exits_nonzero_on_each_bad_fixture(capsys):
    for fixture in (
        "bad_boundary.py",
        "bad_crypto.py",
        "bad_locks.py",
        "bad_taint.py",
        "bad_leakage.py",
    ):
        code = main([str(FIXTURES / fixture), "--root", str(SRC_ROOT)])
        out = capsys.readouterr().out
        assert code == 1, fixture
        assert "active finding" in out


def test_cli_exits_zero_on_clean_fixture(capsys):
    code = main([str(FIXTURES / "good_clean.py"), "--root", str(SRC_ROOT)])
    capsys.readouterr()
    assert code == 0


def test_cli_json_schema(capsys):
    code = main(
        [str(FIXTURES), "--root", str(SRC_ROOT), "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["version"] == 1
    assert payload["files_analyzed"] == 7
    summary = payload["summary"]
    assert summary["total"] == summary["active"] + summary["suppressed"]
    assert summary["active"] > 0
    assert set(summary["by_rule"]) <= set(ALL_RULES)
    for finding in payload["findings"]:
        assert {
            "rule",
            "module",
            "path",
            "line",
            "message",
            "symbol",
            "suppressed",
            "justification",
        } <= set(finding)
        assert finding["rule"] in ALL_RULES


def test_cli_output_file(tmp_path, capsys):
    out_file = tmp_path / "report.json"
    code = main(
        [
            str(FIXTURES / "good_clean.py"),
            "--root",
            str(SRC_ROOT),
            "--format",
            "json",
            "--output",
            str(out_file),
        ]
    )
    assert code == 0
    assert capsys.readouterr().out == ""
    payload = json.loads(out_file.read_text())
    assert payload["summary"]["active"] == 0


def test_cli_rejects_missing_paths(capsys):
    code = main(["definitely/not/here.py"])
    captured = capsys.readouterr()
    assert code == 2
    assert "no such path" in captured.err

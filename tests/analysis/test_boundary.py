"""Trust-boundary pass: each seeded violation in the bad fixture is found,
and clean untrusted code produces nothing."""

from __future__ import annotations

from repro.analysis.engine import analyze_source
from repro.analysis.findings import (
    RULE_BOUNDARY_IMPORT,
    RULE_FORBIDDEN_SYMBOL,
    RULE_UNKNOWN_ECALL,
)


def _active(report, rule):
    return [f for f in report.findings if f.rule == rule and not f.suppressed]


def test_bad_boundary_fixture_is_fully_reported(analyze_fixture):
    report = analyze_fixture("bad_boundary.py")
    assert report.module == "repro.columnstore.evil_boundary"

    imports = _active(report, RULE_BOUNDARY_IMPORT)
    imported = {f.symbol for f in imports}
    # wholesale trusted-module import + two off-surface key symbols
    assert "repro.sgx.enclave" in imported
    assert "derive_column_key" in imported
    assert "pae_gen" in imported
    # the registered surface symbol must NOT be flagged
    assert "EnclaveHost" not in imported

    symbols = {f.symbol for f in _active(report, RULE_FORBIDDEN_SYMBOL)}
    assert "SKDB" in symbols
    assert "_protected" in symbols

    ecalls = _active(report, RULE_UNKNOWN_ECALL)
    assert [f.symbol for f in ecalls] == ["read_master_key"]


def test_registered_ecall_and_surface_import_are_clean():
    source = (
        "from repro.sgx.enclave import EnclaveHost\n"
        "from repro.encdict.enclave_app import EncDBDBEnclave\n"
        "def go(host):\n"
        "    return host.ecall('dict_search_batch', [])\n"
    )
    findings = analyze_source(
        source, module="repro.server.dbms", path="dbms.py"
    )
    assert findings == []


def test_trusted_modules_are_unrestricted():
    source = "from repro.crypto.kdf import derive_column_key\nSKDB = b'k'\n"
    findings = analyze_source(
        source, module="repro.sgx.enclave", path="enclave.py"
    )
    assert findings == []


def test_type_checking_imports_are_exempt():
    source = (
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from repro.encdict.builder import encdb_build\n"
    )
    findings = analyze_source(
        source, module="repro.columnstore.column", path="column.py"
    )
    assert findings == []


def test_explicitly_public_submodule_import_is_allowed():
    source = "from repro import exceptions\n"
    findings = analyze_source(
        source, module="repro.net.errors", path="errors.py"
    )
    assert findings == []


def test_owner_may_hold_keys_but_not_enclave_internals():
    source = (
        "from repro.crypto.pae import pae_gen\n"
        "SKDB = pae_gen()\n"
        "def peek(enclave):\n"
        "    return enclave._protected\n"
    )
    findings = analyze_source(
        source, module="repro.client.owner", path="owner.py"
    )
    assert {f.rule for f in findings} == {RULE_FORBIDDEN_SYMBOL}
    assert {f.symbol for f in findings} == {"_protected"}

"""Runtime race detector: seeded races are caught, disciplined code is not."""

from __future__ import annotations

import threading

import pytest

from repro.analysis.racecheck import RaceDetector, lock_is_held
from repro.sgx.cache import EnclaveLruCache
from repro.sgx.costs import CostModel


class Shared:
    def __init__(self):
        self._lock = threading.RLock()
        self.value = 0  # guarded-by: self._lock

    def disciplined(self):
        with self._lock:
            self.value += 1

    def racy(self):
        self.value += 1


def test_lock_is_held_semantics():
    rlock = threading.RLock()
    assert not lock_is_held(rlock)
    with rlock:
        assert lock_is_held(rlock)
    assert not lock_is_held(rlock)
    assert not lock_is_held(object())


def test_first_binding_in_init_is_exempt():
    with RaceDetector() as detector:
        detector.instrument(Shared, {"value": "_lock"})
        obj = Shared()  # unlocked first binding: construction
        obj.disciplined()
        detector.report.assert_clean()
        assert obj.value == 1


def test_seeded_unlocked_rebinding_is_caught():
    with RaceDetector() as detector:
        detector.instrument(Shared, {"value": "_lock"})
        obj = Shared()
        obj.racy()  # rebinding without the lock
        violations = detector.report.snapshot()
    assert len(violations) == 1
    violation = violations[0]
    assert violation.cls == "Shared" and violation.attr == "value"
    assert violation.lock_attr == "_lock"
    with pytest.raises(AssertionError, match="unlocked write"):
        detector.report.assert_clean()


def test_eight_thread_hammer_on_seeded_race():
    with RaceDetector() as detector:
        detector.instrument(Shared, {"value": "_lock"})
        obj = Shared()
        obj.disciplined()  # bind once under the lock

        def hammer():
            for _ in range(50):
                obj.racy()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        violations = detector.report.snapshot()
    assert len(violations) == 8 * 50
    assert {v.thread for v in violations} == {t.name for t in threads}


def test_restore_unpatches_the_class():
    detector = RaceDetector()
    detector.instrument(Shared, {"value": "_lock"})
    assert "__setattr__" in Shared.__dict__
    detector.restore()
    assert "__setattr__" not in Shared.__dict__
    obj = Shared()
    obj.racy()  # no longer instrumented
    detector.report.assert_clean()


def test_instrument_module_picks_up_annotated_classes(_race_detector):
    import repro.sgx.costs as costs_mod

    with RaceDetector() as detector:
        patched = detector.instrument_module(costs_mod)
        assert CostModel in patched
        model = CostModel()
        model.record_ecall(name="dict_search")  # lock-disciplined
        model.reset()
        detector.report.assert_clean()
        model.ecalls = 99  # direct unlocked rebinding
        assert [v.attr for v in detector.report.snapshot()] == ["ecalls"]
    if _race_detector is not None:
        # The session-scoped detector saw the deliberate write too; drain
        # it so the seeded race does not fail the run at teardown, keeping
        # any unrelated violations.
        for v in _race_detector.report.drain():
            if not (v.cls == "CostModel" and v.attr == "ecalls"):
                _race_detector.report.record(v)


def test_instrumented_cache_is_clean_under_threads():
    import repro.sgx.cache as cache_mod

    with RaceDetector() as detector:
        patched = detector.instrument_module(cache_mod)
        assert EnclaveLruCache in patched
        cache = EnclaveLruCache(budget_bytes=4096)

        def hammer(seed: int):
            for i in range(100):
                cache.put((seed, i), i, 32)
                cache.get((seed, i))
            cache.clear()

        threads = [threading.Thread(target=hammer, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        detector.report.assert_clean()

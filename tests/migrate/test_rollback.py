"""Rollback: every phase of a rotation must undo to the original column.

Every step of a migration plan is reversible until ``adopt`` runs; after a
rollback the column serves exactly its original builds at the original
epoch, and a new migration can start from scratch. A finalized migration is
deliberately not rollable — the answer is a reverse migration.
"""

from __future__ import annotations

import pytest

from repro.client.session import EncDBDBSystem
from repro.exceptions import QueryError

ROWS = 48
VALUES = [(i * 5) % 19 for i in range(ROWS)]
PARTITION_ROWS = 12
SQL = "SELECT tag FROM t WHERE v BETWEEN 4 AND 11"


def _deploy() -> EncDBDBSystem:
    system = EncDBDBSystem.create(seed=23)
    system.execute("CREATE TABLE t (v ED3 INTEGER, tag INTEGER)")
    system.bulk_load(
        "t",
        {"v": list(VALUES), "tag": list(range(ROWS))},
        partition_rows=PARTITION_ROWS,
    )
    return system


def _expected() -> set:
    return {(i,) for i, v in enumerate(VALUES) if 4 <= v <= 11}


def _steps_total(system) -> int:
    status = system.server.migrate_start("t", "v", new_kind="ED9", rotate_key=True)
    total = status.steps_total
    system.server.migrate_rollback("t", "v")
    return total


def test_rollback_at_every_position():
    total = _steps_total(_deploy())
    for executed in range(total):  # total would be "done": not rollable
        system = _deploy()
        column = system.server.catalog.table("t").column("v")
        original_ids = [id(b) for b in column.partition_builds]
        system.server.migrate_start("t", "v", new_kind="ED9", rotate_key=True)
        if executed:
            status = system.server.migrate_step("t", "v", steps=executed)
            assert status.steps_done == executed, status.error
        status = system.server.migrate_rollback("t", "v")
        assert status.state == "rolled-back"
        assert column.shadow is None
        assert column.key_epoch == 0
        assert [id(b) for b in column.partition_builds] == original_ids
        spec = system.server.catalog.table("t").spec("v")
        assert spec.protection.name == "ED3"
        assert set(map(tuple, system.query(SQL).rows)) == _expected(), executed
        # The slate is clean: the same rotation starts and completes now.
        system.server.migrate_start("t", "v", new_kind="ED9", rotate_key=True)
        final = system.server.migrate_run("t", "v")
        assert final.state == "done", final.error
        assert set(map(tuple, system.query(SQL).rows)) == _expected()


def test_rollback_after_flip_reseals_new_inserts():
    """An insert landing *after* the epoch flip is sealed under the new
    key; rolling back must re-seal it to the old epoch, not lose it."""
    system = _deploy()
    status = system.server.migrate_start("t", "v", rotate_key=True)
    # Key-only rotation finalize is [flip, adopt]: stop right after flip.
    system.server.migrate_step("t", "v", steps=status.steps_total - 1)
    column = system.server.catalog.table("t").column("v")
    assert column.key_epoch == 1  # flipped
    system.execute("INSERT INTO t VALUES (7, 999)")  # sealed at epoch 1
    status = system.server.migrate_rollback("t", "v")
    assert status.state == "rolled-back"
    assert column.key_epoch == 0
    assert set(map(tuple, system.query(SQL).rows)) == _expected() | {(999,)}


def test_finalized_migration_is_not_rollable():
    system = _deploy()
    system.server.migrate_start("t", "v", new_kind="ED9")
    assert system.server.migrate_run("t", "v").state == "done"
    with pytest.raises(QueryError, match="no migration in flight"):
        system.server.migrate_rollback("t", "v")


def test_one_rotation_per_column_and_status_history():
    system = _deploy()
    system.server.migrate_start("t", "v", new_kind="ED9")
    with pytest.raises(QueryError, match="in flight"):
        system.server.migrate_start("t", "v", rotate_key=True)
    assert system.server.migrations.active_tables() == {"t"}
    system.server.migrate_rollback("t", "v")
    # Retired to history, visible in status, column free again.
    states = [s.state for s in system.server.migrate_status("t", "v")]
    assert states == ["rolled-back"]
    system.server.migrate_start("t", "v", new_kind="ED9")
    assert system.server.migrate_run("t", "v").state == "done"
    states = [s.state for s in system.server.migrate_status("t", "v")]
    assert sorted(states) == ["done", "rolled-back"]


def test_merge_and_save_are_refused_mid_rotation(tmp_path):
    system = _deploy()
    system.execute("INSERT INTO t VALUES (5, 500)")  # a delta row to merge
    system.server.migrate_start("t", "v", new_kind="ED9")
    with pytest.raises(QueryError, match="rotation in flight"):
        system.execute("MERGE TABLE t")
    with pytest.raises(QueryError, match="migration"):
        system.save(tmp_path / "db.encdbdb")
    system.server.migrate_rollback("t", "v")
    system.execute("MERGE TABLE t")  # fine again
    system.save(tmp_path / "db.encdbdb")


def test_plaintext_and_noop_rotations_are_rejected():
    system = _deploy()
    with pytest.raises(QueryError, match="plaintext"):
        system.server.migrate_start("t", "tag", new_kind="ED9")
    with pytest.raises(QueryError, match="nothing to migrate"):
        system.server.migrate_start("t", "v", new_kind="ED3")
    with pytest.raises(QueryError, match="no migration in flight"):
        system.server.migrate_step("t", "v")

"""Migration verbs over real sockets: typed status frames, epoch-stamped
results, sealed-key restart mid-backfill, and the operator CLI."""

from __future__ import annotations

from repro.client.session import EncDBDBSystem
from repro.migrate.plan import MigrationStatus
from repro.net.server import NetServer, ServerThread
from repro.server.dbms import EncDBDBServer
from repro import cli

SEED = 41
ROWS = 40
VALUES = [(i * 3) % 17 for i in range(ROWS)]
PARTITION_ROWS = 10
SQL = "SELECT tag FROM t WHERE v BETWEEN 4 AND 12"


def _load(system) -> None:
    system.execute("CREATE TABLE t (v ED3 INTEGER, tag INTEGER)")
    system.bulk_load(
        "t",
        {"v": list(VALUES), "tag": list(range(ROWS))},
        partition_rows=PARTITION_ROWS,
    )


def _expected() -> set:
    return {(i,) for i, v in enumerate(VALUES) if 4 <= v <= 12}


def test_migrate_verbs_and_epoch_stamped_results_over_tcp():
    with ServerThread(NetServer()) as handle:
        with EncDBDBSystem.connect("127.0.0.1", handle.port, seed=SEED) as system:
            _load(system)
            assert set(map(tuple, system.query(SQL).rows)) == _expected()

            status = system.server.migrate_start("t", "v", rotate_key=True)
            assert isinstance(status, MigrationStatus)  # typed frame decode
            assert (status.state, status.phase) == ("running", "prep")
            status = system.server.migrate_step("t", "v", steps=2)
            assert status.steps_done == 2
            listed = system.server.migrate_status("t", "v")
            assert [s.steps_done for s in listed] == [2]
            assert listed[0].partition_versions  # progress crosses the wire
            status = system.server.migrate_run("t", "v")
            assert status.state == "done", status.error
            assert status.new_key_epoch == 1

            # Results now carry key_epoch=1; the proxy must derive the
            # matching storage key — over the wire, from the frame field.
            assert set(map(tuple, system.query(SQL).rows)) == _expected()
            system.execute("INSERT INTO t VALUES (5, 900)")
            assert set(map(tuple, system.query(SQL).rows)) == (
                _expected() | {(900,)}
            )


def test_rollback_over_tcp():
    with ServerThread(NetServer()) as handle:
        with EncDBDBSystem.connect("127.0.0.1", handle.port, seed=SEED) as system:
            _load(system)
            system.server.migrate_start("t", "v", new_kind="ED9")
            system.server.migrate_step("t", "v", steps=2)
            status = system.server.migrate_rollback("t", "v")
            assert status.state == "rolled-back"
            assert set(map(tuple, system.query(SQL).rows)) == _expected()


def test_sealed_restart_mid_backfill_never_serves_half_swapped(tmp_path):
    """Server dies mid-backfill; its second life (sealed SKDB + saved
    database) serves the clean old column and can redo the rotation."""
    sealed = tmp_path / "skdb.sealed"
    database = tmp_path / "db.encdbdb"

    with ServerThread(NetServer(sealed_key_path=sealed)) as handle:
        with EncDBDBSystem.connect("127.0.0.1", handle.port, seed=SEED) as system:
            _load(system)
            system.server.save(database)
            system.server.migrate_start("t", "v", new_kind="ED9", rotate_key=True)
            system.server.migrate_step("t", "v", steps=3)  # mid-backfill
            versions = system.server.migrate_status("t", "v")[0].partition_versions
            assert "shadow-ready" in versions
        # ServerThread teardown == the crash: shadow state dies with it.

    dbms = EncDBDBServer()
    dbms.load(database)
    with ServerThread(NetServer(dbms, sealed_key_path=sealed)) as handle:
        with EncDBDBSystem.connect("127.0.0.1", handle.port, seed=SEED) as system:
            assert system.server.migrate_status("t", "v") == []
            column = dbms.catalog.table("t").column("v")
            assert column.partition_versions() == ["current"] * len(
                column.partition_builds
            )
            assert set(map(tuple, system.query(SQL).rows)) == _expected()
            system.server.migrate_start("t", "v", new_kind="ED9", rotate_key=True)
            assert system.server.migrate_run("t", "v").state == "done"
            assert set(map(tuple, system.query(SQL).rows)) == _expected()


def test_cli_migrate_start_status_rollback(capsys):
    with ServerThread(NetServer()) as handle:
        with EncDBDBSystem.connect("127.0.0.1", handle.port, seed=SEED) as system:
            _load(system)
            address = f"127.0.0.1:{handle.port}"

            code = cli.main(
                ["migrate", "start", "t", "v", "--kind", "ED9",
                 "--rotate-key", "--steps", "2", "--connect", address]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert "migration: t.v ED3->ED9 key epoch 0->1" in out
            assert "phase=backfill" in out

            code = cli.main(["migrate", "status", "--connect", address])
            assert code == 0
            assert "(running)" in capsys.readouterr().out

            code = cli.main(
                ["migrate", "rollback", "t", "v", "--connect", address]
            )
            assert code == 0
            assert "(rolled-back)" in capsys.readouterr().out

            code = cli.main(
                ["migrate", "start", "t", "v", "--kind", "ED9",
                 "--connect", address]
            )
            assert code == 0
            assert "(done)" in capsys.readouterr().out
            assert set(map(tuple, system.query(SQL).rows)) == _expected()

"""Rotated ciphertext is deterministic: byte-identical to a from-scratch
build and identical across independently rotating replicas.

``rotate_partition`` derives its build DRBG from (SKDB, rotation target,
partition index) via :func:`derive_rotation_seed` with the canonical
per-partition fork discipline — so the artifacts it emits are a pure
function of data + key, never of rotation order, timing, or which replica
ran it. This is what lets cluster replicas rotate without coordinating.
"""

from __future__ import annotations

from repro.client.session import EncDBDBSystem
from repro.columnstore.storage import encrypted_partition_frame
from repro.crypto.drbg import HmacDrbg
from repro.crypto.kdf import derive_column_key, derive_rotation_seed
from repro.encdict.builder import derive_partition_rngs, encdb_build
from repro.encdict.options import kind_by_name
from repro.columnstore.types import IntegerType

ROWS = 40
VALUES = [(i * 3) % 11 for i in range(ROWS)]
PARTITION_ROWS = 10
NEW_KIND = "ED9"
NEW_EPOCH = 1


def _deploy(seed: int) -> EncDBDBSystem:
    system = EncDBDBSystem.create(seed=seed)
    system.execute("CREATE TABLE t (v ED3 INTEGER)")
    system.bulk_load("t", {"v": list(VALUES)}, partition_rows=PARTITION_ROWS)
    return system


def _frames(system: EncDBDBSystem) -> list[bytes]:
    column = system.server.catalog.table("t").column("v")
    return [
        encrypted_partition_frame(build, pid)
        for build, pid in zip(column.partition_builds, column.partition_ids)
    ]


def test_rotation_matches_from_scratch_deterministic_build():
    system = _deploy(seed=3)
    system.migrate("t", "v", new_kind=NEW_KIND, rotate_key=True)
    rotated = _frames(system)

    # The data owner's reference: re-derive the rotation DRBG tree from the
    # master key and rebuild each partition's plaintext rows from scratch.
    master = system.owner.master_key
    root = HmacDrbg(derive_rotation_seed(master, "t", "v", NEW_KIND, NEW_EPOCH))
    key = derive_column_key(master, "t", "v", key_epoch=NEW_EPOCH)
    partitions = [
        VALUES[start : start + PARTITION_ROWS]
        for start in range(0, ROWS, PARTITION_ROWS)
    ]
    rngs = derive_partition_rngs(root, len(partitions))
    column = system.server.catalog.table("t").column("v")
    reference = []
    for index, (values, (build_rng, iv_rng)) in enumerate(zip(partitions, rngs)):
        build = encdb_build(
            values,
            kind_by_name(NEW_KIND),
            value_type=IntegerType(),
            key=key,
            pae=system.owner.pae,
            rng=build_rng,
            iv_rng=iv_rng,
            table_name="t",
            column_name="v",
        )
        reference.append(
            encrypted_partition_frame(build, column.partition_ids[index])
        )
    assert rotated == reference


def test_independent_rotations_converge():
    """Two deployments with the same key and data — e.g. two replicas —
    rotate independently and end up with identical ciphertext bytes."""
    a, b = _deploy(seed=3), _deploy(seed=3)
    a.migrate("t", "v", new_kind=NEW_KIND, rotate_key=True)
    # Replica b steps its migration one step at a time, interleaved with
    # nothing — order and pacing must not matter.
    b.server.migrate_start("t", "v", new_kind=NEW_KIND, rotate_key=True)
    status = b.server.migrate_status("t", "v")[0]
    while status.state == "running":
        status = b.server.migrate_step("t", "v")
    assert status.state == "done", status.error
    assert _frames(a) == _frames(b)


def test_different_targets_draw_different_streams():
    """The rotation DRBG is bound to the full target (kind + epoch): a
    different target must not reuse IV/arrangement streams."""
    a, b = _deploy(seed=3), _deploy(seed=3)
    a.migrate("t", "v", new_kind=NEW_KIND, rotate_key=True)
    b.migrate("t", "v", new_kind=NEW_KIND)  # same kind, epoch stays 0
    assert _frames(a) != _frames(b)

"""Online rotation equivalence: queries must be right at *every* phase.

Acceptance gate for ``repro.migrate``: stepping a rotation one plan step at
a time, the full query battery must return exactly the plaintext ground
truth after every single step — prep, each backfill rotation, each tighten
verification, each finalize swap/flip, and adoption — while delta inserts
keep landing between steps. Covered targets: kind upgrades (ED1→ED3,
ED3→ED9, ED7→ED9) and a same-kind storage-key rotation.
"""

from __future__ import annotations

import pytest

from repro.client.session import EncDBDBSystem

ROWS = 90
VALUES = [(i * 7) % 23 for i in range(ROWS)]
PARTITION_ROWS = 16

CASES = [
    ("ED1", "ED3", False),
    ("ED3", "ED9", False),
    ("ED7", "ED9", False),
    ("ED5", "ED5", True),  # pure key rotation: same kind, next epoch
]


def _deploy(old_kind: str) -> tuple[EncDBDBSystem, set[tuple[int, int]]]:
    system = EncDBDBSystem.create(seed=11)
    system.execute(f"CREATE TABLE t (v {old_kind} INTEGER, tag INTEGER)")
    tags = list(range(ROWS))
    system.bulk_load(
        "t", {"v": list(VALUES), "tag": tags}, partition_rows=PARTITION_ROWS
    )
    return system, set(zip(VALUES, tags))


def _check(system: EncDBDBSystem, rows: set[tuple[int, int]], context) -> None:
    """The query battery versus plaintext ground truth."""
    for sql, predicate in [
        ("SELECT v, tag FROM t WHERE v BETWEEN 5 AND 14", lambda v: 5 <= v <= 14),
        ("SELECT v, tag FROM t WHERE v = 7", lambda v: v == 7),
        ("SELECT v, tag FROM t WHERE v >= 18", lambda v: v >= 18),
        ("SELECT v, tag FROM t WHERE v < 3", lambda v: v < 3),
    ]:
        got = set(map(tuple, system.query(sql).rows))
        want = {(v, tag) for v, tag in rows if predicate(v)}
        assert got == want, (context, sql)


@pytest.mark.parametrize("old_kind,new_kind,rotate_key", CASES)
def test_equivalence_at_every_step(old_kind, new_kind, rotate_key):
    system, rows = _deploy(old_kind)
    _check(system, rows, "before start")
    status = system.server.migrate_start(
        "t", "v", new_kind=new_kind, rotate_key=rotate_key
    )
    assert status.state == "running"
    assert status.steps_total > 1
    next_tag = 1000
    while status.state == "running":
        status = system.server.migrate_step("t", "v")
        # A delta insert lands between every pair of steps; it must be
        # findable immediately, whatever epoch/kind the column is mid-way to.
        value = next_tag % 23
        system.execute(f"INSERT INTO t VALUES ({value}, {next_tag})")
        rows.add((value, next_tag))
        next_tag += 1
        _check(
            system,
            rows,
            f"{status.phase} step {status.steps_done}/{status.steps_total}",
        )
    assert status.state == "done", status.error
    assert status.new_kind == new_kind
    if rotate_key:
        assert status.new_key_epoch == status.old_key_epoch + 1
    # Adopted for real: catalog spec, column epoch, and one more round trip.
    spec = system.server.catalog.table("t").spec("v")
    assert spec.protection.name == new_kind
    column = system.server.catalog.table("t").column("v")
    assert column.key_epoch == status.new_key_epoch
    assert column.shadow is None
    _check(system, rows, "after finalize")


def test_session_migrate_drives_to_completion_and_updates_mirror():
    system, rows = _deploy("ED3")
    statuses = system.migrate("t", "v", new_kind="ED9", rotate_key=True)
    assert [s.state for s in statuses] == ["done"]
    # The proxy's schema mirror follows the adopted kind.
    assert system.proxy._schema.table("t").spec("v").protection.name == "ED9"
    system.execute("INSERT INTO t VALUES (4, 777)")
    rows.add((4, 777))
    _check(system, rows, "after session migrate")


def test_partition_versions_track_the_phases():
    system, _rows = _deploy("ED3")
    system.server.migrate_start("t", "v", new_kind="ED9")
    partitions = len(
        system.server.catalog.table("t").column("v").partition_builds
    )
    seen = set()
    status = system.server.migrate_status("t", "v")[0]
    while status.state == "running":
        seen.update(status.partition_versions)
        assert len(status.partition_versions) == partitions
        status = system.server.migrate_step("t", "v")
    assert status.state == "done"
    # Backfill produced shadow-ready entries; finalize flipped them to new.
    assert "shadow-ready" in seen
    final = system.server.catalog.table("t").column("v").partition_versions()
    assert final == ["current"] * partitions

"""Queries and inserts keep flowing while a rotation runs on other threads.

The paper's promise carried over to rotations: readers wait at most one
partition-sized critical section. Reader threads hammer the query battery
and writer threads append delta rows while the migration thread steps the
plan; every observed result must be a consistent snapshot — exactly the
plaintext truth of the rows inserted so far, never a half-swapped mixture
that drops or duplicates rows.
"""

from __future__ import annotations

import threading

from repro.client.session import EncDBDBSystem

ROWS = 64
VALUES = [(i * 7) % 23 for i in range(ROWS)]
PARTITION_ROWS = 16
LOW, HIGH = 5, 14


def test_rotation_under_concurrent_reads_and_inserts():
    system = EncDBDBSystem.create(seed=31)
    system.execute("CREATE TABLE t (v ED3 INTEGER, tag INTEGER)")
    system.bulk_load(
        "t",
        {"v": list(VALUES), "tag": list(range(ROWS))},
        partition_rows=PARTITION_ROWS,
    )
    base = {(i,) for i, v in enumerate(VALUES) if LOW <= v <= HIGH}

    inserted: list[int] = []  # tags of extra matching rows, append-only
    insert_lock = threading.Lock()
    stop = threading.Event()
    errors: list[BaseException] = []

    def reader() -> None:
        try:
            while not stop.is_set():
                # Snapshot the lower bound *before* the query: rows counted
                # here must all be visible in the result (inserts are
                # synchronous); rows added during the query may appear too.
                with insert_lock:
                    lower = len(inserted)
                got = {
                    row
                    for row in map(
                        tuple,
                        system.query(
                            f"SELECT tag FROM t WHERE v BETWEEN {LOW} AND {HIGH}"
                        ).rows,
                    )
                }
                with insert_lock:
                    upper = set(inserted)
                extra = got - base
                assert base <= got, f"lost main rows: {sorted(base - got)[:5]}"
                assert len(extra) >= lower, "lost delta rows"
                assert extra <= upper, "phantom rows"
        except BaseException as exc:  # surfaced in the main thread
            errors.append(exc)

    def writer() -> None:
        try:
            tag = 10_000 + threading.get_ident() % 1000 * 1000
            while not stop.is_set():
                tag += 1
                system.execute(f"INSERT INTO t VALUES ({LOW}, {tag})")
                with insert_lock:
                    inserted.append((tag,))
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(2)] + [
        threading.Thread(target=writer)
    ]
    for thread in threads:
        thread.start()
    try:
        system.server.migrate_start("t", "v", new_kind="ED9", rotate_key=True)
        status = system.server.migrate_status("t", "v")[0]
        while status.state == "running":
            status = system.server.migrate_step("t", "v")
        assert status.state == "done", status.error
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
    assert not errors, errors[0]
    assert all(not thread.is_alive() for thread in threads)

    # Final state: every row ever inserted is present exactly once.
    final = set(
        map(
            tuple,
            system.query(f"SELECT tag FROM t WHERE v BETWEEN {LOW} AND {HIGH}").rows,
        )
    )
    assert final == base | set(inserted)

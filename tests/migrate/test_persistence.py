"""Rotation vs. persistence: epochs survive restarts, shadows never do.

The v3 storage format records exactly one kind and one key epoch per
column. Consequences under test: a rotated column round-trips through
save/load and still decrypts (the epoch is in the file); saving is refused
while a rotation is in flight; and a server killed mid-backfill comes back
serving the *old* column cleanly — the memory-only shadow state vanishes,
which is the crash-rollback story (never a half-swapped column).
"""

from __future__ import annotations

import pytest

from repro.client.session import EncDBDBSystem
from repro.exceptions import QueryError

SEED = 37
ROWS = 36
VALUES = [(i * 7) % 13 for i in range(ROWS)]
PARTITION_ROWS = 9
SQL = "SELECT tag FROM t WHERE v BETWEEN 3 AND 8"


def _deploy() -> EncDBDBSystem:
    system = EncDBDBSystem.create(seed=SEED)
    system.execute("CREATE TABLE t (v ED3 INTEGER, tag INTEGER)")
    system.bulk_load(
        "t",
        {"v": list(VALUES), "tag": list(range(ROWS))},
        partition_rows=PARTITION_ROWS,
    )
    return system


def _reload(path) -> EncDBDBSystem:
    """A second process life: same deployment seed (same SKDB), fresh
    server, catalog restored from the file."""
    system = EncDBDBSystem.create(seed=SEED)
    system.server.load(path)
    for name in system.server.catalog.table_names():
        system.proxy.register_schema(
            name, system.server.catalog.table(name).specs
        )
    return system


def _expected() -> set:
    return {(i,) for i, v in enumerate(VALUES) if 3 <= v <= 8}


def test_rotated_column_round_trips_through_save_load(tmp_path):
    path = tmp_path / "db.encdbdb"
    system = _deploy()
    system.migrate("t", "v", new_kind="ED9", rotate_key=True)
    system.execute("INSERT INTO t VALUES (5, 500)")  # delta at epoch 1
    system.save(path)

    reloaded = _reload(path)
    column = reloaded.server.catalog.table("t").column("v")
    assert column.key_epoch == 1
    spec = reloaded.server.catalog.table("t").spec("v")
    assert spec.protection.name == "ED9"
    assert spec.metadata["key_epoch"] == 1
    assert set(map(tuple, reloaded.query(SQL).rows)) == _expected() | {(500,)}
    # And the next rotation picks up from the persisted epoch.
    status = reloaded.server.migrate_start("t", "v", rotate_key=True)
    assert (status.old_key_epoch, status.new_key_epoch) == (1, 2)
    assert reloaded.server.migrate_run("t", "v").state == "done"
    assert set(map(tuple, reloaded.query(SQL).rows)) == _expected() | {(500,)}


def test_crash_mid_backfill_reloads_the_clean_old_column(tmp_path):
    """Kill -9 mid-backfill: the reloaded server must serve the original
    column — every partition "current", old kind, old epoch — because
    shadow state is memory-only and the file predates the migration."""
    path = tmp_path / "db.encdbdb"
    system = _deploy()
    system.save(path)  # the durable state a crash would fall back to
    system.server.migrate_start("t", "v", new_kind="ED9", rotate_key=True)
    system.server.migrate_step("t", "v", steps=3)  # prep + 2 backfills
    column = system.server.catalog.table("t").column("v")
    assert "shadow-ready" in column.partition_versions()
    del system  # the crash

    reloaded = _reload(path)
    column = reloaded.server.catalog.table("t").column("v")
    assert column.shadow is None
    assert column.partition_versions() == ["current"] * len(
        column.partition_builds
    )
    assert column.key_epoch == 0
    assert reloaded.server.catalog.table("t").spec("v").protection.name == "ED3"
    assert reloaded.server.migrate_status("t", "v") == []
    assert set(map(tuple, reloaded.query(SQL).rows)) == _expected()
    # Not wedged: the whole rotation restarts from scratch and completes.
    reloaded.server.migrate_start("t", "v", new_kind="ED9", rotate_key=True)
    assert reloaded.server.migrate_run("t", "v").state == "done"
    assert set(map(tuple, reloaded.query(SQL).rows)) == _expected()


def test_save_is_refused_while_any_rotation_is_active(tmp_path):
    system = _deploy()
    system.server.migrate_start("t", "v", new_kind="ED9")
    with pytest.raises(QueryError, match="migration"):
        system.save(tmp_path / "db.encdbdb")
    assert not (tmp_path / "db.encdbdb").exists()
    system.server.migrate_run("t", "v")
    system.save(tmp_path / "db.encdbdb")  # idle again: allowed
    assert set(map(tuple, _reload(tmp_path / "db.encdbdb").query(SQL).rows)) == (
        _expected()
    )

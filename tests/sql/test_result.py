"""QueryResult / ServerResult behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sql.result import QueryResult, ResultColumn, ServerResult


def test_query_result_iteration_and_len():
    result = QueryResult(["a", "b"], [(1, "x"), (2, "y")])
    assert len(result) == 2
    assert list(result) == [(1, "x"), (2, "y")]


def test_scalar():
    assert QueryResult(["n"], [(42,)]).scalar() == 42
    with pytest.raises(ValueError):
        QueryResult(["n"], []).scalar()
    with pytest.raises(ValueError):
        QueryResult(["n", "m"], [(1, 2)]).scalar()
    with pytest.raises(ValueError):
        QueryResult(["n"], [(1,), (2,)]).scalar()


def test_column_extraction():
    result = QueryResult(["a", "b"], [(1, "x"), (2, "y")])
    assert result.column("a") == [1, 2]
    assert result.column("b") == ["x", "y"]
    with pytest.raises(ValueError):
        result.column("missing")


def test_server_result_row_count():
    result = ServerResult("t", np.array([3, 7], dtype=np.int64))
    assert result.row_count == 2
    column = ResultColumn("t", "c", encrypted=True, data=[b"x", b"y"])
    result.columns["c"] = column
    assert len(result.columns["c"]) == 2

"""EXPLAIN output (describe_plan) tests."""

from __future__ import annotations

import pytest

from repro import EncDBDBSystem


@pytest.fixture
def system() -> EncDBDBSystem:
    system = EncDBDBSystem.create(seed=8)
    system.execute(
        "CREATE TABLE t (a ED5 VARCHAR(10) BSMAX 3, b INTEGER, d ED9 DATE)"
    )
    system.execute("CREATE TABLE u (a ED5 VARCHAR(10), n INTEGER)")
    return system


def test_explain_select_annotates_protection(system):
    text = system.proxy.explain("SELECT a FROM t WHERE a = 'x' AND b > 2")
    assert "ED5, enclave dictionary search" in text
    assert "plaintext" in text
    assert "AND" in text


def test_explain_shows_proxy_side_work(system):
    text = system.proxy.explain(
        "SELECT DISTINCT a, COUNT(*) FROM t WHERE b != 1 "
        "GROUP BY a ORDER BY a DESC LIMIT 2"
    )
    assert "proxy: GROUP BY a" in text
    assert "proxy: aggregate COUNT(*)" in text
    assert "proxy: ORDER BY a DESC" in text
    assert "proxy: DISTINCT" in text
    assert "proxy: LIMIT 2" in text
    assert "NOT " in text


def test_explain_prefix_and_open_ranges(system):
    text = system.proxy.explain("SELECT a FROM t WHERE a LIKE 'pre%' AND b < 9")
    assert "prefix a LIKE 'pre'%" in text
    assert "[-inf, 9)" in text  # '< 9' is a half-open range


def test_explain_join(system):
    text = system.proxy.explain(
        "SELECT t.b FROM t JOIN u ON t.a = u.a WHERE u.n = 1"
    )
    assert "enclave join tokens" in text
    assert "left t" in text and "right u" in text
    assert "range n in [1, 1]" in text


def test_explain_dml(system):
    assert "ED9 delta store" in system.proxy.explain(
        "INSERT INTO t VALUES ('x', 1, '2026-01-01')"
    )
    assert "DELETE from t" in system.proxy.explain("DELETE FROM t WHERE b = 1")
    assert "re-insert" in system.proxy.explain("UPDATE t SET b = 2 WHERE b = 1")
    assert "re-rotate" in system.proxy.explain("MERGE TABLE t")
    assert "CREATE TABLE v" in system.proxy.explain("CREATE TABLE v (x INTEGER)")


def test_explain_does_not_execute(system):
    system.proxy.explain("INSERT INTO t VALUES ('x', 1, '2026-01-01')")
    assert system.query("SELECT COUNT(*) FROM t").scalar() == 0


def test_explain_full_scan(system):
    text = system.proxy.explain("SELECT a FROM t")
    assert "all valid rows" in text


def test_cli_explain_meta():
    import io

    from repro.cli import Shell

    out = io.StringIO()
    shell = Shell(EncDBDBSystem.create(seed=9), out=out)
    shell.run_script("CREATE TABLE t (a ED1 VARCHAR(5))")
    shell.execute_line(".explain SELECT a FROM t WHERE a = 'x'")
    shell.execute_line(".explain")
    shell.execute_line(".explain SELEKT")
    text = out.getvalue()
    assert "enclave dictionary search" in text
    assert "usage: .explain" in text
    assert "error:" in text


@pytest.fixture
def partitioned_system() -> EncDBDBSystem:
    system = EncDBDBSystem.create(seed=10)
    system.execute("CREATE TABLE p (v ED2 VARCHAR(10), n INTEGER)")
    system.bulk_load(
        "p",
        {"v": [f"v{i:03d}" for i in range(24)], "n": list(range(24))},
        partition_rows=8,
    )
    return system


def test_explain_shows_partition_fanout(partitioned_system):
    text = partitioned_system.proxy.explain("SELECT v FROM p WHERE v = 'v001'")
    assert "partition fan-out:" in text
    assert "p.v: 3 main partition(s)" in text
    assert "3 dictionary search(es) per filter" in text


def test_explain_fanout_includes_delta(partitioned_system):
    partitioned_system.execute("INSERT INTO p VALUES ('x', 99), ('y', 98)")
    text = partitioned_system.proxy.explain("SELECT v FROM p WHERE v = 'x'")
    assert "+ delta (2 rows)" in text
    assert "4 dictionary search(es) per filter" in text


def test_explain_merge_reports_dirty_partitions(partitioned_system):
    partitioned_system.execute("DELETE FROM p WHERE n = 9")
    text = partitioned_system.proxy.explain("MERGE TABLE p")
    assert "1 of 3 partition(s) dirty" in text
    assert "0 delta row(s) pending" in text


def test_explain_fanout_absent_without_filter_columns(partitioned_system):
    text = partitioned_system.proxy.explain("SELECT v FROM p")
    assert "partition fan-out:" not in text


def test_cli_bare_explain_command():
    import io

    from repro.cli import Shell

    out = io.StringIO()
    shell = Shell(EncDBDBSystem.create(seed=11), out=out)
    shell.run_script("CREATE TABLE t (a ED1 VARCHAR(5))")
    shell.execute_line("EXPLAIN SELECT a FROM t WHERE a = 'x';")
    shell.execute_line("explain")
    shell.execute_line("explain SELEKT")
    text = out.getvalue()
    assert "enclave dictionary search" in text
    assert "usage: explain <statement>" in text
    assert "error:" in text

"""Planner tests: query conversion to range filters and plan validation."""

from __future__ import annotations

import pytest

from repro.columnstore.catalog import Catalog
from repro.columnstore.types import ColumnSpec, IntegerType, VarcharType
from repro.encdict.options import ED1, ED5
from repro.exceptions import PlanError
from repro.sql.parser import parse
from repro.sql.planner import (
    CreatePlan,
    DeletePlan,
    FilterNode,
    InsertPlan,
    MergePlan,
    Planner,
    RangeFilter,
    SelectPlan,
    UpdatePlan,
)


@pytest.fixture
def planner() -> Planner:
    catalog = Catalog()
    catalog.create_table(
        "t",
        [
            ColumnSpec("name", VarcharType(20), protection=ED5, bsmax=4),
            ColumnSpec("age", IntegerType(), protection=ED1),
            ColumnSpec("city", VarcharType(10)),
        ],
    )
    return Planner(catalog)


def _plan(planner: Planner, sql: str):
    return planner.plan(parse(sql))


def test_create_plan_resolves_types_and_kinds(planner):
    plan = _plan(planner, "CREATE TABLE x (a ED7 VARCHAR(5) BSMAX 3, b INTEGER)")
    assert isinstance(plan, CreatePlan)
    a, b = plan.specs
    assert a.protection.name == "ED7" and a.bsmax == 3
    assert b.protection is None
    assert b.value_type == IntegerType()


def test_create_rejects_bsmax_without_protection(planner):
    with pytest.raises(PlanError):
        _plan(planner, "CREATE TABLE x (a VARCHAR(5) BSMAX 3)")


def test_query_conversion_to_ranges(planner):
    """Every operator becomes a range filter (paper §4.2 step 5)."""
    cases = {
        "age = 5": RangeFilter("age", low=5, high=5),
        "age != 5": RangeFilter("age", low=5, high=5, negated=True),
        "age < 5": RangeFilter("age", high=5, high_inclusive=False),
        "age <= 5": RangeFilter("age", high=5),
        "age > 5": RangeFilter("age", low=5, low_inclusive=False),
        "age >= 5": RangeFilter("age", low=5),
        "age BETWEEN 2 AND 8": RangeFilter("age", low=2, high=8),
    }
    for predicate, expected in cases.items():
        plan = _plan(planner, f"SELECT age FROM t WHERE {predicate}")
        assert plan.filter == expected, predicate


def test_open_range_uses_domain_placeholders(planner):
    """'< x' has an open low end: the -inf placeholder (low=None)."""
    plan = _plan(planner, "SELECT name FROM t WHERE name < 'Ella'")
    assert plan.filter == RangeFilter("name", high="Ella", high_inclusive=False)
    assert plan.filter.low is None


def test_logical_tree_planning(planner):
    plan = _plan(
        planner, "SELECT age FROM t WHERE age > 1 AND (city = 'x' OR age < 9)"
    )
    tree = plan.filter
    assert isinstance(tree, FilterNode) and tree.operator == "AND"
    assert isinstance(tree.children[1], FilterNode)
    assert tree.children[1].operator == "OR"


def test_needed_columns_cover_all_clauses(planner):
    plan = _plan(
        planner,
        "SELECT city, COUNT(*) FROM t WHERE age > 1 GROUP BY city ORDER BY city",
    )
    assert isinstance(plan, SelectPlan)
    assert set(plan.needed_columns) == {"city"}
    plan = _plan(planner, "SELECT name FROM t ORDER BY age")
    assert set(plan.needed_columns) == {"name", "age"}


def test_star_select(planner):
    plan = _plan(planner, "SELECT * FROM t")
    assert plan.needed_columns == ("name", "age", "city")
    assert plan.post.items == ("name", "age", "city")


def test_unknown_identifiers_rejected(planner):
    with pytest.raises(Exception):
        _plan(planner, "SELECT a FROM missing")
    with pytest.raises(Exception):
        _plan(planner, "SELECT nope FROM t")
    with pytest.raises(Exception):
        _plan(planner, "SELECT age FROM t WHERE nope = 1")


def test_literal_type_checking(planner):
    with pytest.raises(PlanError):
        _plan(planner, "SELECT age FROM t WHERE age = 'five'")
    with pytest.raises(PlanError):
        _plan(planner, "SELECT name FROM t WHERE name = 5")
    with pytest.raises(PlanError):
        _plan(planner, "SELECT name FROM t WHERE name = 'waaaaay too long for varchar20'")


def test_aggregate_validation(planner):
    with pytest.raises(PlanError):
        _plan(planner, "SELECT SUM(name) FROM t")  # SUM needs INTEGER
    with pytest.raises(PlanError):
        _plan(planner, "SELECT name, COUNT(*) FROM t")  # no GROUP BY
    with pytest.raises(PlanError):
        _plan(planner, "SELECT name, COUNT(*) FROM t GROUP BY city")
    plan = _plan(planner, "SELECT MIN(name) FROM t")  # MIN on VARCHAR is fine
    assert plan.post.has_aggregates


def test_insert_plan_validation(planner):
    plan = _plan(planner, "INSERT INTO t VALUES ('a', 1, 'b')")
    assert isinstance(plan, InsertPlan)
    assert plan.rows[0] == {"name": "a", "age": 1, "city": "b"}
    with pytest.raises(PlanError):
        _plan(planner, "INSERT INTO t (name) VALUES ('a')")  # partial rows
    with pytest.raises(PlanError):
        _plan(planner, "INSERT INTO t VALUES ('a', 1)")  # arity
    with pytest.raises(Exception):
        _plan(planner, "INSERT INTO t VALUES ('a', 'x', 'b')")  # type


def test_delete_update_merge_plans(planner):
    assert isinstance(_plan(planner, "DELETE FROM t"), DeletePlan)
    plan = _plan(planner, "UPDATE t SET age = 3 WHERE age = 2")
    assert isinstance(plan, UpdatePlan)
    assert plan.assignments == (("age", 3),)
    assert isinstance(_plan(planner, "MERGE TABLE t"), MergePlan)
    with pytest.raises(Exception):
        _plan(planner, "MERGE TABLE missing")

"""Lexer and parser tests for the SQL subset."""

from __future__ import annotations

import pytest

from repro.exceptions import SqlSyntaxError
from repro.sql.ast_nodes import (
    Aggregate,
    Comparison,
    CreateTable,
    Delete,
    Insert,
    Logical,
    MergeTable,
    Select,
    Update,
)
from repro.sql.lexer import tokenize
from repro.sql.parser import parse


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------


def test_tokenize_basic():
    kinds = [t.kind for t in tokenize("SELECT a FROM t WHERE a >= 5")]
    assert kinds == ["KEYWORD", "IDENT", "KEYWORD", "IDENT", "KEYWORD",
                     "IDENT", "SYMBOL", "INT", "EOF"]


def test_tokenize_strings_with_escapes():
    tokens = tokenize("SELECT 'it''s'")
    assert tokens[1].kind == "STRING"
    assert tokens[1].value == "it's"


def test_tokenize_negative_numbers():
    tokens = tokenize("WHERE a = -42")
    assert tokens[3] == tokens[3]
    assert [t.value for t in tokens if t.kind == "INT"] == ["-42"]


def test_tokenize_keywords_case_insensitive():
    tokens = tokenize("select From WHERE")
    assert all(t.kind == "KEYWORD" for t in tokens[:-1])


def test_tokenize_rejects_junk():
    with pytest.raises(SqlSyntaxError):
        tokenize("SELECT #")
    with pytest.raises(SqlSyntaxError):
        tokenize("SELECT 'unterminated")


def test_tokenize_multichar_operators():
    values = [t.value for t in tokenize("a <= b >= c != d <> e") if t.kind == "SYMBOL"]
    assert values == ["<=", ">=", "!=", "<>"]


# ----------------------------------------------------------------------
# Parser: DDL and DML
# ----------------------------------------------------------------------


def test_parse_create_table_both_protection_orders():
    statement = parse(
        "CREATE TABLE t1 (c1 ED7 VARCHAR(30), c2 INTEGER ED5 BSMAX 8, c3 INTEGER)"
    )
    assert isinstance(statement, CreateTable)
    c1, c2, c3 = statement.columns
    assert (c1.name, c1.type_sql, c1.protection, c1.bsmax) == (
        "c1", "VARCHAR(30)", "ED7", None,
    )
    assert (c2.protection, c2.bsmax, c2.type_sql) == ("ED5", 8, "INTEGER")
    assert c3.protection is None


def test_parse_create_rejects_bad_type():
    with pytest.raises(SqlSyntaxError):
        parse("CREATE TABLE t (c FLOAT)")
    with pytest.raises(SqlSyntaxError):
        parse("CREATE TABLE t (c VARCHAR)")


def test_parse_insert():
    statement = parse("INSERT INTO t (a, b) VALUES ('x', 1), ('y', -2)")
    assert isinstance(statement, Insert)
    assert statement.columns == ("a", "b")
    assert statement.rows == (("x", 1), ("y", -2))


def test_parse_insert_without_column_list():
    statement = parse("INSERT INTO t VALUES (1)")
    assert statement.columns is None
    assert statement.rows == ((1,),)


def test_parse_delete_and_update():
    statement = parse("DELETE FROM t WHERE a = 1")
    assert isinstance(statement, Delete)
    assert isinstance(statement.where, Comparison)

    statement = parse("UPDATE t SET a = 2, b = 'x' WHERE c > 0")
    assert isinstance(statement, Update)
    assert statement.assignments == (("a", 2), ("b", "x"))


def test_parse_merge():
    statement = parse("MERGE TABLE t1")
    assert statement == MergeTable("t1")


# ----------------------------------------------------------------------
# Parser: SELECT
# ----------------------------------------------------------------------


def test_parse_select_star():
    statement = parse("SELECT * FROM t")
    assert isinstance(statement, Select)
    assert statement.is_star
    assert statement.where is None


def test_parse_select_full_clause_soup():
    statement = parse(
        "SELECT city, COUNT(*), SUM(sales) FROM t "
        "WHERE price BETWEEN 10 AND 20 AND city != 'rome' "
        "GROUP BY city ORDER BY city DESC LIMIT 5"
    )
    assert statement.items[0] == "city"
    assert statement.items[1] == Aggregate("COUNT", None)
    assert statement.items[2] == Aggregate("SUM", "sales")
    assert statement.group_by == ("city",)
    assert statement.order_by[0].column == "city"
    assert statement.order_by[0].descending
    assert statement.limit == 5
    where = statement.where
    assert isinstance(where, Logical) and where.operator == "AND"
    between, inequality = where.operands
    assert between == Comparison("price", "BETWEEN", 10, 20)
    assert inequality == Comparison("city", "!=", "rome")


def test_parse_where_precedence_and_parentheses():
    statement = parse("SELECT a FROM t WHERE a = 1 OR a = 2 AND b = 3")
    where = statement.where
    assert where.operator == "OR"
    assert isinstance(where.operands[1], Logical)
    assert where.operands[1].operator == "AND"

    statement = parse("SELECT a FROM t WHERE (a = 1 OR a = 2) AND b = 3")
    assert statement.where.operator == "AND"


def test_parse_paper_example_query():
    """The paper's §4.2 example: SELECT FName FROM t1 WHERE FName < 'Ella'."""
    statement = parse("SELECT FName FROM t1 WHERE FName < 'Ella'")
    assert statement.items == ("FName",)
    assert statement.where == Comparison("FName", "<", "Ella")


def test_parse_all_comparison_operators():
    for op in ("=", "!=", "<", "<=", ">", ">="):
        statement = parse(f"SELECT a FROM t WHERE a {op} 5")
        expected_op = op
        assert statement.where == Comparison("a", expected_op, 5)
    statement = parse("SELECT a FROM t WHERE a <> 5")
    assert statement.where.operator == "!="


def test_parse_errors():
    for bad in (
        "SELECT FROM t",
        "SELECT a FROM",
        "SELECT a FROM t WHERE",
        "SELECT a FROM t WHERE a",
        "SELECT a FROM t WHERE a BETWEEN 1",
        "SELECT MAX(*) FROM t",
        "INSERT INTO t VALUES",
        "UPDATE t SET",
        "SELECT a FROM t LIMIT -1",
        "SELECT a FROM t trailing",
        "",
        "EXPLAIN SELECT a FROM t",
    ):
        with pytest.raises(SqlSyntaxError):
            parse(bad)


def test_parse_count_star_only_for_count():
    assert parse("SELECT COUNT(*) FROM t").items == (Aggregate("COUNT", None),)
    with pytest.raises(SqlSyntaxError):
        parse("SELECT SUM(*) FROM t")


def test_tokenize_skips_line_comments():
    tokens = tokenize("SELECT a -- trailing comment\nFROM t -- another")
    kinds = [t.kind for t in tokens]
    assert kinds == ["KEYWORD", "IDENT", "KEYWORD", "IDENT", "EOF"]


def test_comment_like_text_inside_strings_is_preserved():
    tokens = tokenize("SELECT 'a--b'")
    assert tokens[1].value == "a--b"


def test_comment_at_end_of_input():
    tokens = tokenize("SELECT a FROM t --done")
    assert tokens[-1].kind == "EOF"
    assert len(tokens) == 5

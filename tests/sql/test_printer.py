"""AST printer: fixed cases plus parse/print round-trip properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import QueryError
from repro.sql.parser import parse
from repro.sql.printer import to_sql


ROUNDTRIP_CASES = [
    "CREATE TABLE t (a ED5 VARCHAR(30) BSMAX 4, b INTEGER, c DATE)",
    "INSERT INTO t (a, b) VALUES ('x', 1), ('it''s', -2)",
    "SELECT * FROM t",
    "SELECT DISTINCT a, b FROM t",
    "SELECT a FROM t WHERE a = 'x'",
    "SELECT a FROM t WHERE (a = 'x') AND ((b < 5) OR (b > 9))",
    "SELECT a FROM t WHERE NOT (a LIKE 'pre%')",
    "SELECT a FROM t WHERE b IN (1, 2, 3)",
    "SELECT a FROM t WHERE b BETWEEN 1 AND 9",
    "SELECT COUNT(*), SUM(b) FROM t",
    "SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a ASC LIMIT 5",
    "SELECT o.a, p.b FROM o JOIN p ON o.a = p.a WHERE o.b >= 1",
    "DELETE FROM t WHERE a != 'x'",
    "UPDATE t SET a = 'y', b = 2 WHERE b <= 0",
    "MERGE TABLE t",
]


@pytest.mark.parametrize("sql", ROUNDTRIP_CASES)
def test_parse_print_parse_fixed_point(sql):
    ast = parse(sql)
    printed = to_sql(ast)
    assert parse(printed) == ast


def test_printer_escapes_quotes():
    ast = parse("INSERT INTO t VALUES ('a''b')")
    assert "''" in to_sql(ast)
    assert parse(to_sql(ast)) == ast


def test_printer_rejects_unknown_nodes():
    with pytest.raises(QueryError):
        to_sql(object())


_ident = st.sampled_from(["a", "b", "c", "col_1"])
_value = st.one_of(
    st.integers(-999, 999),
    st.text(alphabet="xyz '", min_size=0, max_size=6).map(
        lambda s: s.replace("'", "q")  # keep literals simple for generation
    ),
)
_operator = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])


def _comparison():
    return st.builds(
        lambda column, operator, value: f"{column} {operator} "
        + (str(value) if isinstance(value, int) else f"'{value}'"),
        _ident,
        _operator,
        _value,
    )


def _predicate_sql(depth: int = 2):
    if depth == 0:
        return _comparison()
    return st.one_of(
        _comparison(),
        st.builds(
            lambda a, b, op: f"({a}) {op} ({b})",
            _predicate_sql(depth - 1),
            _predicate_sql(depth - 1),
            st.sampled_from(["AND", "OR"]),
        ),
        st.builds(lambda a: f"NOT ({a})", _predicate_sql(depth - 1)),
    )


@settings(max_examples=80)
@given(predicate=_predicate_sql())
def test_roundtrip_property_on_generated_predicates(predicate):
    sql = f"SELECT a FROM t WHERE {predicate}"
    ast = parse(sql)
    assert parse(to_sql(ast)) == ast


@settings(max_examples=40)
@given(
    items=st.lists(_ident, min_size=1, max_size=3, unique=True),
    limit=st.one_of(st.none(), st.integers(0, 100)),
    descending=st.booleans(),
    distinct=st.booleans(),
)
def test_roundtrip_property_on_generated_selects(items, limit, descending, distinct):
    sql = "SELECT "
    if distinct:
        sql += "DISTINCT "
    sql += ", ".join(items) + " FROM t"
    sql += f" ORDER BY {items[0]} {'DESC' if descending else 'ASC'}"
    if limit is not None:
        sql += f" LIMIT {limit}"
    ast = parse(sql)
    assert parse(to_sql(ast)) == ast

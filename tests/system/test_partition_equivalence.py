"""Partitioned layouts are invisible to query results.

Acceptance gate for the partitioned column store: every one of the nine ED
kinds must return the *identical RecordID set* for Figure 7-style range
queries whether a column is stored as 1, 2, or 7 partitions — and the set
must match the plaintext ground truth.
"""

from __future__ import annotations

import pytest

from repro import EncDBDBSystem
from repro.crypto.drbg import HmacDrbg
from repro.sql.parser import parse
from repro.sql.planner import SelectPlan
from repro.workloads.queries import random_range_queries

KINDS = [f"ED{i}" for i in range(1, 10)]
ROWS = 42
# 42 rows under these layouts -> 1, 2, and 7 main partitions.
LAYOUTS = {None: 1, 21: 2, 6: 7}
VALUES = [((i * 7) % 13) + 1 for i in range(ROWS)]  # 13 uniques, repeated


def _deploy(partition_rows):
    system = EncDBDBSystem.create(seed=99)
    specs = ", ".join(f"c{i} {kind} INTEGER" for i, kind in enumerate(KINDS, 1))
    system.execute(f"CREATE TABLE t ({specs})")
    system.bulk_load(
        "t",
        {f"c{i}": list(VALUES) for i in range(1, 10)},
        partition_rows=partition_rows,
    )
    return system


def _record_ids(system, sql):
    plan = system.proxy._planner.plan(parse(sql))
    encrypted = SelectPlan(
        plan.table,
        plan.needed_columns,
        system.proxy._encrypt_filter(plan.table, plan.filter),
        plan.post,
    )
    return {int(rid) for rid in system.server.execute_select(encrypted).record_ids}


@pytest.fixture(scope="module")
def systems():
    return {rows: _deploy(rows) for rows in LAYOUTS}


@pytest.fixture(scope="module")
def queries():
    rng = HmacDrbg(b"figure7-partition-fixture")
    return random_range_queries(VALUES, 2, 4, rng) + random_range_queries(
        VALUES, 5, 4, rng
    )


def test_layouts_produce_expected_partition_counts(systems):
    for partition_rows, expected in LAYOUTS.items():
        column = systems[partition_rows].server.catalog.table("t").columns["c1"]
        assert len(column.partition_builds) == expected


def test_all_kinds_return_identical_record_ids_across_layouts(systems, queries):
    for query in queries:
        truth = {
            rid for rid, value in enumerate(VALUES) if query.low <= value <= query.high
        }
        for index, kind in enumerate(KINDS, 1):
            sql = (
                f"SELECT c{index} FROM t WHERE c{index} "
                f"BETWEEN {query.low} AND {query.high}"
            )
            results = {
                rows: _record_ids(system, sql) for rows, system in systems.items()
            }
            assert results[None] == truth, kind
            for partition_rows, rids in results.items():
                assert rids == truth, (kind, partition_rows)


def test_equivalence_holds_with_delta_rows(systems):
    sql = "SELECT c1 FROM t WHERE c1 BETWEEN 3 AND 5"
    truth = {rid for rid, value in enumerate(VALUES) if 3 <= value <= 5}
    row = ", ".join(["4"] * 9)
    for system in systems.values():
        system.execute(f"INSERT INTO t VALUES ({row})")
    truth = truth | {ROWS}  # the delta row matches and gets the next RecordID
    for partition_rows, system in systems.items():
        assert _record_ids(system, sql) == truth, partition_rows

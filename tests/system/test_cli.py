"""CLI shell tests (script mode, meta commands, persistence flags)."""

from __future__ import annotations

import io

import pytest

from repro.cli import Shell, format_result, main, split_statements
from repro.client.session import EncDBDBSystem
from repro.sql.result import QueryResult


def _shell():
    out = io.StringIO()
    shell = Shell(EncDBDBSystem.create(seed=5), out=out)
    return shell, out


def test_split_statements():
    assert split_statements("SELECT 1; SELECT 2;") == ["SELECT 1", "SELECT 2"]
    assert split_statements("") == []
    assert split_statements("no semicolon") == ["no semicolon"]
    # Semicolons inside string literals are preserved.
    assert split_statements("INSERT INTO t VALUES ('a;b'); SELECT 1") == [
        "INSERT INTO t VALUES ('a;b')",
        "SELECT 1",
    ]


def test_format_result():
    result = QueryResult(["name", "n"], [("ann", 1), ("bob", 22)])
    text = format_result(result)
    assert "name" in text and "ann" in text and "(2 rows)" in text
    empty = format_result(QueryResult(["x"], []))
    assert "(0 rows)" in empty


def test_script_execution_end_to_end():
    shell, out = _shell()
    shell.run_script(
        """
        CREATE TABLE t (v ED1 VARCHAR(10), n INTEGER);
        INSERT INTO t VALUES ('a', 1), ('b', 2);
        SELECT v FROM t WHERE n >= 2;
        """
    )
    text = out.getvalue()
    assert "ok (0 rows affected)" in text  # CREATE
    assert "ok (2 rows affected)" in text  # INSERT
    assert "b" in text and "(1 row)" in text


def test_sql_errors_are_reported_not_raised():
    shell, out = _shell()
    shell.run_script("SELEKT nonsense; SELECT x FROM missing;")
    text = out.getvalue()
    assert text.count("error:") == 2


def test_meta_commands():
    shell, out = _shell()
    shell.run_script("CREATE TABLE t (v ED5 VARCHAR(4) BSMAX 3, n INTEGER)")
    assert shell.execute_line(".tables")
    assert shell.execute_line(".schema t")
    assert shell.execute_line(".stats")
    assert shell.execute_line(".help")
    assert shell.execute_line(".schema missing")
    assert shell.execute_line(".bogus")
    assert not shell.execute_line(".quit")
    text = out.getvalue()
    assert "t" in text
    assert "ED5 VARCHAR(4) BSMAX 3" in text
    assert "ecalls=" in text
    assert "unknown meta command" in text


def test_save_meta_command(tmp_path):
    shell, out = _shell()
    shell.run_script("CREATE TABLE t (n INTEGER)")
    path = tmp_path / "cli.encdbdb"
    shell.execute_line(f".save {path}")
    assert path.exists()
    shell.execute_line(".save")
    assert "usage" in out.getvalue()


def test_main_script_mode(tmp_path, capsys):
    script = tmp_path / "demo.sql"
    script.write_text(
        "CREATE TABLE t (v ED2 VARCHAR(8));"
        "INSERT INTO t VALUES ('x'), ('y');"
        "SELECT COUNT(*) FROM t;"
    )
    database = tmp_path / "out.encdbdb"
    assert main(["--script", str(script), "--save", str(database)]) == 0
    captured = capsys.readouterr().out
    assert "2" in captured
    assert database.exists()


def test_main_load_roundtrip(tmp_path, capsys):
    script = tmp_path / "load.sql"
    script.write_text("CREATE TABLE t (n INTEGER); INSERT INTO t VALUES (41);")
    database = tmp_path / "db.encdbdb"
    main(["--seed", "9", "--script", str(script), "--save", str(database)])

    query = tmp_path / "query.sql"
    query.write_text("SELECT n FROM t;")
    main(["--seed", "9", "--load", str(database), "--script", str(query)])
    captured = capsys.readouterr().out
    assert "41" in captured


def test_interactive_loop():
    shell, out = _shell()
    stdin = io.StringIO(
        "CREATE TABLE t (n INTEGER);\n"
        "INSERT INTO t VALUES (7);\n"
        "SELECT n\n"
        "FROM t;\n"
        ".quit\n"
    )
    shell.run_interactive(input_stream=stdin)
    text = out.getvalue()
    assert "encdbdb>" in text
    assert "7" in text


def test_split_statements_handles_comments():
    statements = split_statements(
        "SELECT 1; -- comment with ; semicolon\nSELECT 2;"
    )
    assert statements == ["SELECT 1", "SELECT 2"]
    assert split_statements("-- only a comment\n") == []
    assert split_statements("SELECT '--not a comment'") == [
        "SELECT '--not a comment'"
    ]

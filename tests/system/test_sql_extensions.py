"""SQL surface extensions: IN, LIKE-prefix, NOT, DISTINCT.

A LIKE prefix on an encrypted column is notable: the proxy converts it to
the prefix's closed ordinal interval, so the server sees an ordinary
encrypted range filter — query-type hiding extends to prefix search for
free, a direct consequence of range-searchable encryption.
"""

from __future__ import annotations

import pytest

from repro import EncDBDBSystem
from repro.columnstore.types import VarcharType
from repro.exceptions import PlanError, SqlSyntaxError

ROWS = [
    ("PROD-001", "eu", 1),
    ("PROD-002", "us", 2),
    ("MISC-001", "eu", 3),
    ("PROD-002", "eu", 2),
    ("PROD-010", "ap", 5),
]


@pytest.fixture
def system() -> EncDBDBSystem:
    system = EncDBDBSystem.create(seed=55)
    system.execute(
        "CREATE TABLE t (sku ED2 VARCHAR(12), region VARCHAR(6), n ED1 INTEGER)"
    )
    system.execute(
        "INSERT INTO t VALUES "
        + ", ".join(f"('{s}', '{r}', {n})" for s, r, n in ROWS)
    )
    return system


def _reference(predicate):
    return sorted(s for s, r, n in ROWS if predicate(s, r, n))


# ----------------------------------------------------------------------
# IN
# ----------------------------------------------------------------------


def test_in_on_encrypted_integer(system):
    result = system.query("SELECT sku FROM t WHERE n IN (1, 3, 99) ORDER BY sku")
    assert [r[0] for r in result] == _reference(lambda s, r, n: n in (1, 3, 99))


def test_in_on_encrypted_varchar(system):
    result = system.query(
        "SELECT n FROM t WHERE sku IN ('PROD-001', 'MISC-001')"
    )
    assert sorted(r[0] for r in result) == [1, 3]


def test_in_single_member_is_equality(system):
    result = system.query("SELECT sku FROM t WHERE n IN (2)")
    assert sorted(r[0] for r in result) == ["PROD-002", "PROD-002"]


def test_in_each_member_is_a_separate_encrypted_range(system):
    """Query-type hiding: each IN member becomes its own encrypted range.

    With the (default-on) fast path the three dictionary searches still
    happen — the enclave just serves them through a single batched boundary
    crossing.
    """
    cost = system.server.cost_model
    before_ecalls = cost.ecalls
    before_batches = cost.ecalls_by_name.get("dict_search_batch", 0)
    system.query("SELECT sku FROM t WHERE n IN (1, 2, 3)")
    # 3 members -> 3 dictionary searches on column n, one batch ecall.
    assert cost.ecalls - before_ecalls == 1
    assert cost.ecalls_by_name.get("dict_search_batch", 0) - before_batches == 1


def test_in_members_are_separate_ecalls_without_fastpath():
    """The paper-faithful baseline: one dict_search ecall per IN member."""
    from repro.sgx.cache import FastPathConfig

    system = EncDBDBSystem.create(seed=55, fastpath=FastPathConfig.disabled())
    system.execute(
        "CREATE TABLE t (sku ED2 VARCHAR(12), region VARCHAR(6), n ED1 INTEGER)"
    )
    system.execute(
        "INSERT INTO t VALUES "
        + ", ".join(f"('{s}', '{r}', {n})" for s, r, n in ROWS)
    )
    cost = system.server.cost_model
    before_ecalls = cost.ecalls
    system.query("SELECT sku FROM t WHERE n IN (1, 2, 3)")
    # 3 members -> 3 dictionary searches on column n (delta store only here).
    assert cost.ecalls - before_ecalls == 3
    assert "dict_search_batch" not in cost.ecalls_by_name


# ----------------------------------------------------------------------
# LIKE prefix
# ----------------------------------------------------------------------


def test_like_prefix_on_encrypted_column(system):
    result = system.query("SELECT sku FROM t WHERE sku LIKE 'PROD-0%' ORDER BY sku")
    assert [r[0] for r in result] == _reference(
        lambda s, r, n: s.startswith("PROD-0")
    )


def test_like_prefix_on_plaintext_column(system):
    result = system.query("SELECT region FROM t WHERE region LIKE 'e%'")
    assert sorted(r[0] for r in result) == ["eu", "eu", "eu"]


def test_like_full_wildcard_matches_everything(system):
    assert system.query("SELECT COUNT(*) FROM t WHERE sku LIKE '%'").scalar() == 5


def test_like_exact_prefix_boundaries(system):
    """'PROD-002%' must match PROD-002 itself but not PROD-0021-style longer
    values... and here, both PROD-002 rows."""
    result = system.query("SELECT n FROM t WHERE sku LIKE 'PROD-002%'")
    assert sorted(r[0] for r in result) == [2, 2]


def test_like_prefix_includes_delta_rows(system):
    system.execute("INSERT INTO t VALUES ('PROD-099', 'eu', 9)")
    result = system.query("SELECT COUNT(*) FROM t WHERE sku LIKE 'PROD-%'")
    assert result.scalar() == 5


def test_prefix_ordinal_range_is_tight():
    vt = VarcharType(6)
    low, high = vt.prefix_ordinal_range("ab")
    assert low == vt.ordinal("ab")
    assert low <= vt.ordinal("abz") <= high
    assert low <= vt.ordinal("ab\x7f\x7f\x7f\x7f") <= high
    assert not low <= vt.ordinal("ac") <= high
    assert not low <= vt.ordinal("aa") <= high


def test_like_unsupported_patterns_rejected(system):
    for pattern in ("%suffix", "mid%dle", "no_wildcard_", "exact"):
        with pytest.raises(PlanError):
            system.query(f"SELECT sku FROM t WHERE sku LIKE '{pattern}'")
    with pytest.raises(PlanError):
        system.query("SELECT sku FROM t WHERE n LIKE '1%'")  # not VARCHAR
    with pytest.raises(SqlSyntaxError):
        system.query("SELECT sku FROM t WHERE sku LIKE 5")


# ----------------------------------------------------------------------
# NOT
# ----------------------------------------------------------------------


def test_not_simple(system):
    result = system.query("SELECT sku FROM t WHERE NOT n = 2")
    assert sorted(r[0] for r in result) == _reference(lambda s, r, n: n != 2)


def test_not_over_compound_predicate(system):
    result = system.query(
        "SELECT sku FROM t WHERE NOT (n IN (1, 2) OR region = 'us')"
    )
    assert sorted(r[0] for r in result) == _reference(
        lambda s, r, n: not (n in (1, 2) or r == "us")
    )


def test_double_negation(system):
    result = system.query("SELECT sku FROM t WHERE NOT NOT n = 2")
    assert sorted(r[0] for r in result) == _reference(lambda s, r, n: n == 2)


def test_not_respects_validity(system):
    system.execute("DELETE FROM t WHERE n = 5")
    result = system.query("SELECT sku FROM t WHERE NOT n = 1")
    assert sorted(r[0] for r in result) == ["MISC-001", "PROD-002", "PROD-002"]


# ----------------------------------------------------------------------
# DISTINCT
# ----------------------------------------------------------------------


def test_distinct_single_column(system):
    result = system.query("SELECT DISTINCT sku FROM t ORDER BY sku")
    assert [r[0] for r in result] == sorted({s for s, _, _ in ROWS})


def test_distinct_multiple_columns(system):
    result = system.query("SELECT DISTINCT region, n FROM t")
    assert len(result) == len({(r, n) for _, r, n in ROWS})


def test_distinct_with_limit(system):
    result = system.query("SELECT DISTINCT sku FROM t ORDER BY sku LIMIT 2")
    assert [r[0] for r in result] == ["MISC-001", "PROD-001"]


def test_distinct_star(system):
    system.execute("INSERT INTO t VALUES ('PROD-002', 'eu', 2)")  # exact dup
    plain = system.query("SELECT * FROM t")
    distinct = system.query("SELECT DISTINCT * FROM t")
    assert len(plain) == len(distinct) + 1

"""Full-system integration tests: application SQL through proxy, server,
and enclave, against a plaintext reference executed with Python lists."""

from __future__ import annotations

import pytest

from repro import EncDBDBSystem
from repro.exceptions import CatalogError, PlanError, QueryError, SqlSyntaxError

ROWS = [
    ("Jessica", 31, "berlin"),
    ("Archie", 24, "paris"),
    ("Hans", 45, "berlin"),
    ("Ella", 31, "rome"),
    ("Archie", 52, "berlin"),
]


@pytest.fixture
def system() -> EncDBDBSystem:
    system = EncDBDBSystem.create(seed=42)
    system.execute(
        "CREATE TABLE people ("
        "name ED5 VARCHAR(30) BSMAX 4, age ED1 INTEGER, city VARCHAR(20))"
    )
    values = ", ".join(f"('{n}', {a}, '{c}')" for n, a, c in ROWS)
    system.execute(f"INSERT INTO people VALUES {values}")
    return system


def _reference(predicate):
    return [row for row in ROWS if predicate(row)]


def test_simple_range_select(system):
    result = system.query("SELECT name FROM people WHERE age >= 30 AND age < 50")
    expected = sorted(n for n, a, c in ROWS if 30 <= a < 50)
    assert sorted(r[0] for r in result) == expected


def test_select_star(system):
    result = system.query("SELECT * FROM people WHERE city = 'berlin'")
    assert result.column_names == ["name", "age", "city"]
    assert sorted(result.rows) == sorted(_reference(lambda r: r[2] == "berlin"))


def test_equality_on_encrypted_column(system):
    result = system.query("SELECT age FROM people WHERE name = 'Archie'")
    assert sorted(r[0] for r in result) == [24, 52]


def test_inequality_on_encrypted_column(system):
    result = system.query("SELECT name FROM people WHERE name != 'Archie'")
    assert sorted(r[0] for r in result) == ["Ella", "Hans", "Jessica"]


def test_between_and_or(system):
    result = system.query(
        "SELECT name FROM people WHERE age BETWEEN 24 AND 31 OR city = 'rome'"
    )
    expected = sorted({n for n, a, c in ROWS if 24 <= a <= 31 or c == "rome"})
    assert sorted({r[0] for r in result}) == expected


def test_mixed_encrypted_and_plaintext_filters(system):
    """EncDBDB processes all dictionary types together (paper §3.1)."""
    result = system.query(
        "SELECT name FROM people WHERE city = 'berlin' AND age > 30"
    )
    assert sorted(r[0] for r in result) == ["Archie", "Hans", "Jessica"]


def test_aggregates(system):
    assert system.query("SELECT COUNT(*) FROM people").scalar() == 5
    assert system.query("SELECT MIN(age) FROM people").scalar() == 24
    assert system.query("SELECT MAX(name) FROM people").scalar() == "Jessica"
    assert system.query("SELECT SUM(age) FROM people").scalar() == sum(
        a for _, a, _ in ROWS
    )
    avg = system.query("SELECT AVG(age) FROM people").scalar()
    assert avg == pytest.approx(sum(a for _, a, _ in ROWS) / len(ROWS))


def test_group_by(system):
    result = system.query(
        "SELECT city, COUNT(*), MAX(age) FROM people GROUP BY city ORDER BY city"
    )
    assert result.rows == [("berlin", 3, 52), ("paris", 1, 24), ("rome", 1, 31)]


def test_order_by_and_limit(system):
    result = system.query("SELECT name, age FROM people ORDER BY age DESC LIMIT 2")
    assert result.rows == [("Archie", 52), ("Hans", 45)]
    result = system.query("SELECT age FROM people ORDER BY age ASC LIMIT 1")
    assert result.rows == [(24,)]


def test_update_roundtrip(system):
    affected = system.execute("UPDATE people SET city = 'munich' WHERE age = 31")
    assert affected == 2
    result = system.query("SELECT name FROM people WHERE city = 'munich'")
    assert sorted(r[0] for r in result) == ["Ella", "Jessica"]
    assert system.query("SELECT COUNT(*) FROM people").scalar() == 5


def test_delete_and_merge(system):
    assert system.execute("DELETE FROM people WHERE city = 'berlin'") == 3
    assert system.query("SELECT COUNT(*) FROM people").scalar() == 2
    survivors = system.merge("people")
    assert survivors == 2
    result = system.query("SELECT name FROM people ORDER BY name")
    assert [r[0] for r in result] == ["Archie", "Ella"]
    # Post-merge queries keep working (fresh main store, empty delta).
    assert system.query("SELECT COUNT(*) FROM people WHERE age > 30").scalar() == 1


def test_insert_after_merge(system):
    system.merge("people")
    system.execute("INSERT INTO people VALUES ('Zoe', 19, 'oslo')")
    result = system.query("SELECT name FROM people WHERE age < 20")
    assert [r[0] for r in result] == ["Zoe"]


def test_bulk_load_path():
    system = EncDBDBSystem.create(seed=3)
    system.execute("CREATE TABLE s (v ED1 VARCHAR(10), n INTEGER)")
    count = system.bulk_load(
        "s", {"v": ["a", "b", "c", "b"], "n": [1, 2, 3, 4]}
    )
    assert count == 4
    result = system.query("SELECT n FROM s WHERE v = 'b'")
    assert sorted(r[0] for r in result) == [2, 4]


def test_every_kind_processes_in_one_table():
    """One table mixing all nine encrypted dictionaries plus plaintext."""
    system = EncDBDBSystem.create(seed=9)
    columns = ", ".join(f"c{i} ED{i} VARCHAR(8)" for i in range(1, 10))
    system.execute(f"CREATE TABLE mix ({columns}, plain VARCHAR(8))")
    row_values = ["x"] * 10
    system.execute(
        "INSERT INTO mix VALUES (" + ", ".join(f"'{v}'" for v in row_values) + ")"
    )
    system.execute("INSERT INTO mix VALUES (" + ", ".join(["'y'"] * 10) + ")")
    for i in range(1, 10):
        result = system.query(f"SELECT plain FROM mix WHERE c{i} = 'x'")
        assert result.rows == [("x",)], f"ED{i}"


def test_errors_surface_cleanly(system):
    with pytest.raises(SqlSyntaxError):
        system.execute("SELEKT * FROM people")
    with pytest.raises(CatalogError):
        system.execute("SELECT * FROM missing")
    with pytest.raises(PlanError):
        system.execute("SELECT name, COUNT(*) FROM people")
    with pytest.raises(TypeError):
        system.query("DELETE FROM people")


def test_server_never_sees_plaintext_of_encrypted_columns(system):
    """The ciphertext store contains no plaintext column value."""
    table = system.server.catalog.table("people")
    name_column = table.column("name")
    tails = [bytes(b) for b in name_column.delta_blobs]
    if name_column.main_build is not None:
        tails.append(bytes(name_column.main_build.dictionary.tail))
    blob = b"".join(tails)
    for name, _, _ in ROWS:
        assert name.encode() not in blob


def test_persistence_roundtrip(tmp_path, system):
    path = tmp_path / "db.encdbdb"
    system.execute("DELETE FROM people WHERE name = 'Hans'")
    system.save(path)

    from repro.client.proxy import Proxy
    from repro.crypto.pae import default_pae
    from repro.crypto.drbg import HmacDrbg
    from repro.server.dbms import EncDBDBServer

    # A fresh server process loads the file; the owner re-provisions the
    # enclave (same enclave code, new instance) and the proxy reconnects.
    fresh = EncDBDBServer(rng=HmacDrbg(b"fresh-server"))
    fresh.load(path)
    system.owner.attest_and_provision(fresh)
    proxy = Proxy(fresh, system.owner.master_key, default_pae(rng=HmacDrbg(b"p2")))
    table = fresh.catalog.table("people")
    proxy.register_schema("people", table.specs)

    result = proxy.execute("SELECT name FROM people WHERE age >= 30 ORDER BY name")
    assert [r[0] for r in result] == ["Archie", "Ella", "Jessica"]

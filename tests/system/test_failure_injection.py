"""Failure injection: tampering and corruption across the stack.

The paper's PAE gives confidentiality + integrity + authenticity per value,
and the storage layer adds a whole-file integrity check. These tests verify
that every tampering path is *detected* — and document the one that is not:
the plaintext attribute vector, which EncDBDB (like the paper) deliberately
leaves outside the authenticated envelope.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import EncDBDBSystem
from repro.exceptions import AuthenticationError, StorageError


@pytest.fixture
def system() -> EncDBDBSystem:
    system = EncDBDBSystem.create(seed=123)
    system.execute("CREATE TABLE t (name ED1 VARCHAR(10), score ED9 INTEGER)")
    system.execute(
        "INSERT INTO t VALUES ('alpha', 1), ('beta', 2), ('gamma', 3)"
    )
    system.merge("t")  # move everything into a main store
    return system


def _flip_byte(data: bytes, index: int) -> bytes:
    return data[:index] + bytes([data[index] ^ 0x01]) + data[index + 1 :]


def test_tampered_dictionary_tail_detected(system):
    """Flipping one ciphertext bit in the dictionary fails the GCM tag."""
    column = system.server.catalog.table("t").column("name")
    dictionary = column.main_build.dictionary
    dictionary.tail = _flip_byte(dictionary.tail, len(dictionary.tail) // 2)
    with pytest.raises(AuthenticationError):
        system.query("SELECT name FROM t WHERE name >= 'a'")


def test_tampered_delta_blob_detected(system):
    system.execute("INSERT INTO t VALUES ('delta', 4)")
    column = system.server.catalog.table("t").column("name")
    column.delta_blobs[0] = _flip_byte(column.delta_blobs[0], 20)
    with pytest.raises(AuthenticationError):
        system.query("SELECT name FROM t WHERE name >= 'a'")


def test_tampered_rotation_offset_detected():
    system = EncDBDBSystem.create(seed=124)
    system.execute("CREATE TABLE r (v ED2 VARCHAR(5))")
    system.execute("INSERT INTO r VALUES ('a'), ('b'), ('c')")
    column = system.server.catalog.table("r").column("v")
    dictionary = column._delta_dictionary  # delta is ED9: no offset there
    system.merge("r")  # main store is ED2 with an encrypted offset
    main_dictionary = column.main_build.dictionary
    assert main_dictionary.enc_rnd_offset is not None
    main_dictionary.enc_rnd_offset = _flip_byte(main_dictionary.enc_rnd_offset, 5)
    with pytest.raises(AuthenticationError):
        system.query("SELECT v FROM r WHERE v = 'a'")


def test_swapped_result_blob_detected_at_proxy(system):
    """A malicious server substituting a blob from another column fails the
    proxy's decryption (per-column keys)."""
    original = system.server.execute_select

    def substitute(plan):
        result = original(plan)
        score_column = system.server.catalog.table("t").column("score")
        for column in result.columns.values():
            if column.encrypted and column.data:
                column.data[0] = score_column.blob_at(0)
        return result

    system.server.execute_select = substitute
    try:
        with pytest.raises(AuthenticationError):
            system.query("SELECT name FROM t WHERE name >= 'a'")
    finally:
        system.server.execute_select = original


def test_corrupted_database_file_detected(tmp_path, system):
    path = tmp_path / "db.encdbdb"
    system.save(path)
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0x01
    path.write_bytes(bytes(raw))

    from repro.columnstore.storage import load_database

    with pytest.raises(StorageError):
        load_database(path)


def test_truncated_database_file_detected(tmp_path, system):
    path = tmp_path / "db.encdbdb"
    system.save(path)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])

    from repro.columnstore.storage import load_database

    with pytest.raises(StorageError):
        load_database(path)


def test_not_a_database_file(tmp_path):
    path = tmp_path / "junk.bin"
    path.write_bytes(b"definitely not a database")

    from repro.columnstore.storage import load_database

    with pytest.raises(StorageError):
        load_database(path)


def test_attribute_vector_tampering_is_undetected_by_design(system):
    """Known limitation (matches the paper): AV entries are plaintext
    integers outside the authenticated envelope, so swapping two of them
    silently permutes results. Integrity of the *values* still holds — the
    returned blobs decrypt fine — but row association can be altered by the
    honest-but-curious-turned-active server. The paper's attacker model is
    passive (§3.2), so this is out of scope there too."""
    column = system.server.catalog.table("t").column("name")
    av = column.main_build.attribute_vector
    av[0], av[1] = int(av[1]), int(av[0])
    result = system.query("SELECT name FROM t WHERE name >= 'a' ORDER BY name")
    # No exception: values decrypt, but rows were silently reassociated.
    assert sorted(r[0] for r in result) == ["alpha", "beta", "gamma"]


def test_imposter_proxy_key_cannot_read(system):
    """A proxy with a wrong master key cannot decrypt results."""
    from repro.client.proxy import Proxy
    from repro.crypto.drbg import HmacDrbg
    from repro.crypto.pae import default_pae, pae_gen

    imposter = Proxy(
        system.server,
        pae_gen(rng=HmacDrbg(b"wrong-key")),
        default_pae(rng=HmacDrbg(b"p")),
    )
    imposter.register_schema("t", system.server.catalog.table("t").specs)
    with pytest.raises(AuthenticationError):
        imposter.execute("SELECT name FROM t WHERE name != 'zzz'")

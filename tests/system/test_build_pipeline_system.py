"""End-to-end acceptance of the parallel build pipeline (PR 4).

Serial and parallel deployments of the same seed must be indistinguishable
at every observable layer: identical storage-v2 bytes on disk, identical
per-partition frames, identical query answers for all nine ED kinds — and
the streamed path must keep build-side transient memory O(partition).
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro import EncDBDBSystem
from repro.columnstore.storage import encrypted_partition_frame
from repro.columnstore.types import ColumnSpec, parse_type
from repro.crypto.drbg import HmacDrbg
from repro.crypto.pae import default_pae
from repro.encdict.options import kind_by_name
from repro.encdict.pipeline import BuildPipeline, ColumnPlan, shutdown_build_pools
from repro.exceptions import CatalogError
from repro.server.dbms import EncDBDBServer
from repro.sql.parser import parse
from repro.sql.planner import SelectPlan

KINDS = [f"ED{i}" for i in range(1, 10)]
ROWS = 60
PARTITION_ROWS = 16
VALUES = [((i * 7) % 13) + 1 for i in range(ROWS)]


def _deploy(executor: str, max_workers: int) -> EncDBDBSystem:
    system = EncDBDBSystem.create(seed=4)
    specs = ", ".join(f"c{i} {kind} INTEGER" for i, kind in enumerate(KINDS, 1))
    system.execute(f"CREATE TABLE t ({specs}, plain INTEGER)")
    columns = {f"c{i}": list(VALUES) for i in range(1, 10)}
    columns["plain"] = list(range(ROWS))
    system.bulk_load(
        "t",
        columns,
        partition_rows=PARTITION_ROWS,
        max_workers=max_workers,
        executor=executor,
    )
    return system


@pytest.fixture(scope="module")
def deployments():
    systems = {
        "serial": _deploy("serial", 1),
        "thread": _deploy("thread", 3),
        "process": _deploy("process", 2),
    }
    yield systems
    shutdown_build_pools()


def _record_ids(system, sql):
    plan = system.proxy._planner.plan(parse(sql))
    encrypted = SelectPlan(
        plan.table,
        plan.needed_columns,
        system.proxy._encrypt_filter(plan.table, plan.filter),
        plan.post,
    )
    return {int(rid) for rid in system.server.execute_select(encrypted).record_ids}


def test_storage_files_are_byte_identical(tmp_path, deployments):
    paths = {}
    for name, system in deployments.items():
        path = tmp_path / f"{name}.encdbdb"
        system.save(path)
        paths[name] = path.read_bytes()
    assert paths["serial"] == paths["thread"]
    assert paths["serial"] == paths["process"]


def test_partition_frames_and_stats_are_identical(deployments):
    serial = deployments["serial"].server.catalog.table("t")
    for other_name in ("thread", "process"):
        other = deployments[other_name].server.catalog.table("t")
        for index, kind in enumerate(KINDS, 1):
            want = serial.columns[f"c{index}"]
            got = other.columns[f"c{index}"]
            assert want.partition_ids == got.partition_ids
            for a, b, partition_id in zip(
                want.partition_builds, got.partition_builds, want.partition_ids
            ):
                assert encrypted_partition_frame(
                    a, partition_id
                ) == encrypted_partition_frame(b, partition_id), (other_name, kind)
                assert a.stats == b.stats, (other_name, kind)


def test_all_kinds_answer_identically_across_executors(deployments):
    for low, high in [(1, 4), (5, 9), (7, 13), (2, 2)]:
        truth = {rid for rid, v in enumerate(VALUES) if low <= v <= high}
        for index, kind in enumerate(KINDS, 1):
            sql = f"SELECT c{index} FROM t WHERE c{index} BETWEEN {low} AND {high}"
            for name, system in deployments.items():
                assert _record_ids(system, sql) == truth, (name, kind)


def test_streamed_load_matches_collected_bulk_load():
    """bulk_load_stream installs exactly what bulk_load would."""

    def build(streamed: bool) -> EncDBDBSystem:
        system = EncDBDBSystem.create(seed=11)
        system.execute("CREATE TABLE s (k ED5 INTEGER, plain INTEGER)")
        columns = {"k": list(VALUES), "plain": list(range(ROWS))}
        if streamed:
            plans = system.owner.build_plans(system.server, "s", columns)
            pipeline = BuildPipeline(pae=system.owner.pae, max_workers=2)
            system.server.bulk_load_stream(
                "s",
                pipeline.build_stream("s", plans, partition_rows=PARTITION_ROWS),
            )
        else:
            plans = system.owner.build_plans(system.server, "s", columns)
            pipeline = BuildPipeline(pae=system.owner.pae, max_workers=2)
            encrypted, plain = pipeline.build_columns(
                "s", plans, partition_rows=PARTITION_ROWS
            )
            system.server.bulk_load(
                "s", plain_columns=plain, encrypted_builds=encrypted
            )
        return system

    streamed, collected = build(True), build(False)
    streamed_column = streamed.server.catalog.table("s").columns["k"]
    collected_column = collected.server.catalog.table("s").columns["k"]
    assert streamed_column.partition_ids == collected_column.partition_ids
    for a, b, pid in zip(
        streamed_column.partition_builds,
        collected_column.partition_builds,
        streamed_column.partition_ids,
    ):
        assert encrypted_partition_frame(a, pid) == encrypted_partition_frame(b, pid)
    sql = "SELECT k FROM s WHERE k BETWEEN 3 AND 9"
    assert _record_ids(streamed, sql) == _record_ids(collected, sql)
    assert streamed.server.catalog.table("s").partition_rows == PARTITION_ROWS


def test_bulk_load_stream_rejects_bad_streams():
    server = EncDBDBServer()
    from repro.sql.planner import CreatePlan

    server.create_table(
        CreatePlan(
            "u",
            [ColumnSpec("k", parse_type("INTEGER"), protection=kind_by_name("ED3"))],
        )
    )
    with pytest.raises(CatalogError, match="no partitions"):
        server.bulk_load_stream("u", iter(()))

    from repro.encdict.pipeline import PartitionBuild

    with pytest.raises(CatalogError, match="exactly the columns"):
        server.bulk_load_stream(
            "u", iter([PartitionBuild(index=0, row_count=2, plain_values={"x": [1, 2]})])
        )


def test_streamed_build_memory_is_bounded_by_partition_size():
    """Instrumented acceptance check: peak transient memory of a streamed
    build is O(partition), far below a whole-table materialization."""
    rows = 60_000
    kind = kind_by_name("ED1")
    spec = ColumnSpec("c", parse_type("INTEGER"), protection=kind, bsmax=4)
    key = b"\x05" * 16

    def peak(partition_rows: int) -> int:
        def source():
            for i in range(rows):
                yield 10_000 + (i % 50)  # fresh (uncached) int objects

        pae = default_pae(rng=HmacDrbg(b"mem"))
        pipeline = BuildPipeline(
            pae=pae, max_workers=2, max_inflight_partitions=2
        )
        plans = {"c": ColumnPlan(spec, source(), key=key, rng=HmacDrbg(b"c"))}
        tracemalloc.start()
        consumed = 0
        for partition in pipeline.build_stream(
            "t", plans, partition_rows=partition_rows
        ):
            consumed += partition.row_count  # discard: storage is downstream
        _, peak_bytes = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert consumed == rows
        return peak_bytes

    streamed = peak(2_000)  # 30 partitions, window of 2
    whole_table = peak(rows)  # one partition == materialize everything
    assert streamed * 3 < whole_table, (streamed, whole_table)

"""End-to-end analytics pushdown (PR 9): the pushed-down pipeline must be
invisible to clients except for speed.

Every test compares the proxy-side reference path (decrypt all rows, then
aggregate/sort at the proxy) against the pushed-down path over the *same*
live system, across all nine ED kinds, multiple partitions, delta rows,
and mid-migration columns — plus a randomized property test over query
shapes with a tie-aware comparator for ORDER BY.
"""

from __future__ import annotations

import random

import pytest

from repro.client.session import EncDBDBSystem
from repro.encdict.options import ALL_KINDS, OrderOption

GROUP_VALUES = ("alfa", "bravo", "carol", "delta", "echo")


def _seed(tag: str) -> bytes:
    return f"pushdown-{tag}".encode()


def _facts(rng: random.Random, rows: int):
    return {
        "g": [rng.choice(GROUP_VALUES) for _ in range(rows)],
        "m": [rng.randrange(0, 50) for _ in range(rows)],
        "d": [rng.randrange(0, 100) for _ in range(rows)],
    }


def _both(system, sql: str):
    """(reference rows, pushed rows, routing decisions) for one query."""
    proxy = system.proxy
    proxy.enable_pushdown(False)
    reference = system.query(sql).rows
    proxy.enable_pushdown(True)
    try:
        pushed = system.query(sql).rows
        decisions = proxy.last_pushdown or ()
    finally:
        proxy.enable_pushdown(False)
    return reference, pushed, decisions


def _decision(decisions, clause: str):
    for decision in decisions:
        if decision.clause == clause:
            return decision
    raise AssertionError(f"no {clause!r} decision in {decisions!r}")


def test_pushdown_is_off_by_default():
    system = EncDBDBSystem.create(seed=_seed("default"))
    system.execute("CREATE TABLE t (g ED1 VARCHAR(8), m ED1 INTEGER)")
    system.execute("INSERT INTO t VALUES ('a', 1)")
    assert system.proxy.pushdown_enabled is False
    assert system.query("SELECT COUNT(*) FROM t").rows == [(1,)]
    assert system.proxy.last_pushdown is None


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda kind: kind.name)
def test_groupby_equivalence_every_kind(kind):
    """Grouped aggregates agree with the reference on every ED kind, over
    three bulk-loaded partitions plus freshly inserted delta rows."""
    rng = random.Random(f"kinds-{kind.name}")
    system = EncDBDBSystem.create(seed=_seed(f"kind-{kind.name}"))
    system.execute(
        f"CREATE TABLE t (g {kind.name} VARCHAR(8), m {kind.name} INTEGER, "
        "d ED1 INTEGER)"
    )
    system.bulk_load("t", _facts(rng, 240), partition_rows=100)
    for _ in range(6):  # delta rows on top of the packed partitions
        system.execute(
            "INSERT INTO t VALUES "
            f"('{rng.choice(GROUP_VALUES)}', {rng.randrange(0, 50)}, "
            f"{rng.randrange(0, 100)})"
        )
    sql = (
        "SELECT g, COUNT(*), SUM(m), AVG(m), MIN(m), MAX(m) FROM t GROUP BY g"
    )
    reference, pushed, decisions = _both(system, sql)
    assert sorted(pushed) == sorted(reference)
    # The router must always *decide* — pushing or refusing with a reason.
    assert _decision(decisions, "aggregate").reason

    filtered = "SELECT g, SUM(m) FROM t WHERE d >= 40 GROUP BY g"
    reference, pushed, _decisions = _both(system, filtered)
    assert sorted(pushed) == sorted(reference)


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda kind: kind.name)
def test_orderby_equivalence_every_kind(kind):
    """ORDER BY ... LIMIT agrees on every kind; the ordinal-order shortcut
    may engage only for sorted dictionaries (ED1/ED4/ED7)."""
    rng = random.Random(f"order-{kind.name}")
    values = rng.sample(range(10_000), 40)  # distinct: total order is unique
    system = EncDBDBSystem.create(seed=_seed(f"order-{kind.name}"))
    system.execute(f"CREATE TABLE t (v {kind.name} INTEGER)")
    system.bulk_load("t", {"v": values})
    for descending in (False, True):
        direction = "DESC" if descending else "ASC"
        sql = f"SELECT v FROM t ORDER BY v {direction} LIMIT 7"
        reference, pushed, decisions = _both(system, sql)
        expected = [(v,) for v in sorted(values, reverse=descending)[:7]]
        assert pushed == reference == expected
        decision = _decision(decisions, "order-by")
        assert decision.pushed == (kind.order is OrderOption.SORTED), (
            decision.reason
        )


def test_orderby_refuses_delta_and_multi_partition():
    system = EncDBDBSystem.create(seed=_seed("order-refuse"))
    system.execute("CREATE TABLE t (v ED1 INTEGER)")
    system.bulk_load("t", {"v": list(range(40))}, partition_rows=20)
    sql = "SELECT v FROM t ORDER BY v LIMIT 5"
    reference, pushed, decisions = _both(system, sql)
    assert pushed == reference == [(i,) for i in range(5)]
    decision = _decision(decisions, "order-by")
    assert not decision.pushed and "partition" in decision.reason

    system.execute("INSERT INTO t VALUES (100)")
    single = EncDBDBSystem.create(seed=_seed("order-delta"))
    single.execute("CREATE TABLE t (v ED1 INTEGER)")
    single.bulk_load("t", {"v": list(range(40))})
    single.execute("INSERT INTO t VALUES (-5)")
    reference, pushed, decisions = _both(single, sql)
    assert pushed == reference == [(-5,), (0,), (1,), (2,), (3,)]
    assert not _decision(decisions, "order-by").pushed


def test_mid_migration_refusal_then_recovery():
    """A rotation in flight must route aggregates back to the proxy (the
    shadow store is epoch-mixed) — and push again once it is adopted."""
    rng = random.Random("migrate")
    system = EncDBDBSystem.create(seed=_seed("migrate"))
    system.execute("CREATE TABLE t (g ED1 VARCHAR(8), m ED1 INTEGER)")
    system.bulk_load(
        "t", {k: v for k, v in _facts(rng, 200).items() if k != "d"}
    )
    sql = "SELECT g, COUNT(*), SUM(m) FROM t GROUP BY g"
    reference, pushed, decisions = _both(system, sql)
    assert sorted(pushed) == sorted(reference)
    assert _decision(decisions, "aggregate").pushed

    system.server.migrate_start("t", "g", new_kind="ED2")
    system.server.migrate_step("t", "g", 1)  # open-shadow: dual version live
    mid_reference, mid_pushed, decisions = _both(system, sql)
    assert sorted(mid_pushed) == sorted(mid_reference) == sorted(reference)
    decision = _decision(decisions, "aggregate")
    assert not decision.pushed and "rotation in flight" in decision.reason

    system.server.migrate_run("t", "g")
    reference, pushed, decisions = _both(system, sql)
    assert sorted(pushed) == sorted(reference)
    assert _decision(decisions, "aggregate").pushed


def test_cost_gate_refuses_tiny_tables():
    system = EncDBDBSystem.create(seed=_seed("tiny"))
    system.execute("CREATE TABLE t (g ED1 VARCHAR(8), m ED1 INTEGER)")
    for i in range(4):
        system.execute(f"INSERT INTO t VALUES ('g{i % 2}', {i})")
    reference, pushed, decisions = _both(
        system, "SELECT g, SUM(m) FROM t GROUP BY g"
    )
    assert sorted(pushed) == sorted(reference)
    decision = _decision(decisions, "aggregate")
    assert not decision.pushed and decision.reason.startswith("cost:")


def test_explain_names_routing_for_aggregates_and_order():
    rng = random.Random("explain")
    system = EncDBDBSystem.create(seed=_seed("explain"))
    system.execute(
        "CREATE TABLE t (g ED1 VARCHAR(8), m ED1 INTEGER, d ED1 INTEGER)"
    )
    system.bulk_load("t", _facts(rng, 300))
    proxy = system.proxy
    assert "pushdown:" not in proxy.explain(
        "SELECT g, COUNT(*) FROM t GROUP BY g"
    )  # routing lines appear only once the client opted in
    proxy.enable_pushdown()
    try:
        grouped = proxy.explain("SELECT g, COUNT(*) FROM t GROUP BY g")
        assert "pushdown:" in grouped and "aggregate -> enclave" in grouped
        ordered = proxy.explain("SELECT m FROM t ORDER BY m LIMIT 3")
        assert "order-by -> enclave" in ordered
        plain = proxy.explain("SELECT g FROM t WHERE d >= 10")
        assert "rows -> proxy" in plain
    finally:
        proxy.enable_pushdown(False)


def _random_aggregate_sql(rng: random.Random) -> str:
    functions = rng.sample(
        ["COUNT(*)", "SUM(m)", "AVG(m)", "MIN(m)", "MAX(m)"],
        rng.randrange(1, 4),
    )
    where = rng.choice(
        ["", f" WHERE d >= {rng.randrange(0, 100)}",
         f" WHERE d <= {rng.randrange(0, 100)}"]
    )
    if rng.random() < 0.6:
        return (
            f"SELECT g, {', '.join(functions)} FROM facts{where} GROUP BY g"
        )
    return f"SELECT {', '.join(functions)} FROM facts{where}"


def test_property_random_queries_agree():
    """Randomized query shapes: pushed-down results must be semantically
    identical to the reference — exact multisets for aggregates, and for
    ORDER BY a tie-aware check (same multiset, same key sequence)."""
    rng = random.Random(2026)
    system = EncDBDBSystem.create(seed=_seed("property"))
    system.execute(
        "CREATE TABLE facts (g ED4 VARCHAR(8), m ED1 INTEGER, d ED1 INTEGER)"
    )
    system.bulk_load("facts", _facts(rng, 220), partition_rows=90)
    for _ in range(5):
        system.execute(
            "INSERT INTO facts VALUES "
            f"('{rng.choice(GROUP_VALUES)}', {rng.randrange(0, 50)}, "
            f"{rng.randrange(0, 100)})"
        )
    system.execute("CREATE TABLE ordered (v ED7 INTEGER, w ED1 INTEGER)")
    ordered_values = [rng.randrange(0, 40) for _ in range(120)]  # with ties
    system.bulk_load(
        "ordered",
        {"v": ordered_values, "w": [i for i in range(120)]},
    )

    for _ in range(12):
        sql = _random_aggregate_sql(rng)
        reference, pushed, _decisions = _both(system, sql)
        assert sorted(pushed) == sorted(reference), sql

    for _ in range(8):
        limit = rng.randrange(1, 15)
        direction = rng.choice(["ASC", "DESC"])
        sql = f"SELECT v FROM ordered ORDER BY v {direction} LIMIT {limit}"
        reference, pushed, _decisions = _both(system, sql)
        # Ties make row identity ambiguous at the LIMIT boundary, but the
        # projected key sequence (and thus the multiset) is fully
        # determined — both paths must produce it exactly.
        assert pushed == reference, sql
        keys = [row[0] for row in pushed]
        assert keys == sorted(keys, reverse=direction == "DESC"), sql

"""Server bulk-load/DDL validation and data-owner edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.client.owner import DataOwner
from repro.columnstore.types import ColumnSpec, IntegerType, VarcharType
from repro.crypto.drbg import HmacDrbg
from repro.encdict.options import ED1, ED3
from repro.exceptions import CatalogError, QueryError
from repro.server.dbms import EncDBDBServer
from repro.sql.planner import CreatePlan


def _server_with_table():
    server = EncDBDBServer(rng=HmacDrbg(b"server"))
    specs = (
        ColumnSpec("v", VarcharType(10), protection=ED1),
        ColumnSpec("n", IntegerType()),
    )
    server.create_table(CreatePlan("t", specs))
    return server


def test_create_table_attaches_empty_columns():
    server = _server_with_table()
    table = server.catalog.table("t")
    assert table.row_count == 0
    assert len(table.column("v")) == 0
    assert len(table.column("n")) == 0


def test_bulk_load_validation_paths():
    server = _server_with_table()
    owner = DataOwner(rng=HmacDrbg(b"owner"))
    owner.attest_and_provision(server)
    build = owner.encrypt_column("t", server.catalog.table("t").spec("v"), ["a", "b"])

    with pytest.raises(CatalogError):  # missing column
        server.bulk_load("t", encrypted_builds={"v": build})
    with pytest.raises(CatalogError):  # ragged lengths
        server.bulk_load(
            "t", plain_columns={"n": [1, 2, 3]}, encrypted_builds={"v": build}
        )
    with pytest.raises(CatalogError):  # plain data for encrypted column
        server.bulk_load("t", plain_columns={"v": ["a"], "n": [1]})
    # Wrong-kind build for the declared protection:
    wrong_kind = owner._rng  # reuse rng; build ED3 for an ED1 column
    from repro.encdict.builder import encdb_build

    bad_build = encdb_build(
        ["a", "b"],
        ED3,
        value_type=VarcharType(10),
        key=owner.column_key("t", "v"),
        pae=owner.pae,
        rng=HmacDrbg(b"bad"),
        table_name="t",
        column_name="v",
    )
    with pytest.raises(CatalogError):
        server.bulk_load(
            "t", plain_columns={"n": [1, 2]}, encrypted_builds={"v": bad_build}
        )

    assert server.bulk_load(
        "t", plain_columns={"n": [1, 2]}, encrypted_builds={"v": build}
    ) == 2
    with pytest.raises(CatalogError):  # double load
        server.bulk_load(
            "t", plain_columns={"n": [1, 2]}, encrypted_builds={"v": build}
        )


def test_owner_deploy_requires_all_columns():
    server = _server_with_table()
    owner = DataOwner(rng=HmacDrbg(b"owner"))
    owner.attest_and_provision(server)
    with pytest.raises(CatalogError):
        owner.deploy_table(server, "t", {"v": ["a"]})


def test_owner_encrypt_column_rejects_plain_spec():
    owner = DataOwner(rng=HmacDrbg(b"owner"))
    with pytest.raises(CatalogError):
        owner.encrypt_column("t", ColumnSpec("n", IntegerType()), [1])


def test_drop_table():
    server = _server_with_table()
    server.drop_table("t")
    with pytest.raises(CatalogError):
        server.catalog.table("t")


def test_load_requires_empty_catalog(tmp_path):
    server = _server_with_table()
    path = tmp_path / "db.encdbdb"
    server.save(path)
    with pytest.raises(QueryError):
        server.load(path)  # still holds table 't'


def test_delete_record_ids():
    server = _server_with_table()
    owner = DataOwner(rng=HmacDrbg(b"owner"))
    owner.attest_and_provision(server)
    owner.deploy_table(server, "t", {"v": ["a", "b", "c"], "n": [1, 2, 3]})
    assert server.delete_record_ids("t", np.array([0, 2])) == 2
    assert server.catalog.table("t").live_row_count == 1


def test_two_owners_cannot_share_one_enclave_key():
    """Provisioning overwrites SKDB: only the latest owner's data decrypts."""
    server = _server_with_table()
    owner_a = DataOwner(rng=HmacDrbg(b"owner-a"))
    owner_a.attest_and_provision(server)
    owner_b = DataOwner(rng=HmacDrbg(b"owner-b"))
    owner_b.attest_and_provision(server)
    # Data encrypted under owner A's key now fails enclave-side decryption.
    build = owner_a.encrypt_column(
        "t", server.catalog.table("t").spec("v"), ["a", "b"]
    )
    server.bulk_load("t", plain_columns={"n": [1, 2]}, encrypted_builds={"v": build})
    from repro.encdict.enclave_app import encrypt_search_range
    from repro.encdict.search import OrdinalRange
    from repro.exceptions import AuthenticationError

    tau = encrypt_search_range(
        owner_a.pae,
        owner_a.column_key("t", "v"),
        OrdinalRange(0, VarcharType(10).domain_size - 1),
    )
    with pytest.raises(AuthenticationError):
        server.enclave_host.ecall(
            "dict_search", build.dictionary, tau
        )

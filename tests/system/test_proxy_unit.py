"""Proxy-level unit tests: filter encryption, ordinal conversion, post-ops."""

from __future__ import annotations

import pytest

from repro import EncDBDBSystem
from repro.columnstore.types import IntegerType, VarcharType
from repro.encdict.search import OrdinalRange
from repro.sql.planner import (
    EncryptedRangeFilter,
    FilterNode,
    PrefixFilter,
    RangeFilter,
)


@pytest.fixture
def system() -> EncDBDBSystem:
    system = EncDBDBSystem.create(seed=101)
    system.execute(
        "CREATE TABLE t (e ED2 VARCHAR(10), p VARCHAR(10), n ED1 INTEGER)"
    )
    return system


def _encrypt(system, filter_plan):
    return system.proxy._encrypt_filter("t", filter_plan)


def test_plain_filters_pass_through(system):
    plain = RangeFilter("p", low="a", high="b")
    assert _encrypt(system, plain) is plain
    prefix = PrefixFilter("p", "ab")
    assert _encrypt(system, prefix) is prefix
    assert _encrypt(system, None) is None


def test_encrypted_filter_replaces_bounds_with_tau(system):
    encrypted = _encrypt(system, RangeFilter("e", low="a", high="b"))
    assert isinstance(encrypted, EncryptedRangeFilter)
    assert len(encrypted.tau) == 2
    assert b"a" not in encrypted.tau[0] or len(encrypted.tau[0]) > 1
    # The blobs decrypt (under the right key) to the ordinal bounds.
    key = system.proxy._column_key("t", "e")
    payload = system.proxy._pae.decrypt(key, encrypted.tau[0]) + (
        system.proxy._pae.decrypt(key, encrypted.tau[1])
    )
    search = OrdinalRange.from_bytes(payload)
    vt = VarcharType(10)
    assert search.low == vt.ordinal("a")
    assert search.high == vt.ordinal("b")


def test_negation_flag_survives_encryption(system):
    encrypted = _encrypt(
        system, RangeFilter("n", low=5, high=5, negated=True)
    )
    assert isinstance(encrypted, EncryptedRangeFilter)
    assert encrypted.negated


def test_exclusive_bounds_become_closed_ordinals(system):
    encrypted = _encrypt(
        system,
        RangeFilter("n", low=5, low_inclusive=False, high=9, high_inclusive=False),
    )
    key = system.proxy._column_key("t", "n")
    payload = system.proxy._pae.decrypt(key, encrypted.tau[0]) + (
        system.proxy._pae.decrypt(key, encrypted.tau[1])
    )
    search = OrdinalRange.from_bytes(payload)
    it = IntegerType()
    assert search.low == it.ordinal(6)  # > 5 == >= 6
    assert search.high == it.ordinal(8)  # < 9 == <= 8


def test_open_ends_become_domain_extrema(system):
    encrypted = _encrypt(system, RangeFilter("n"))
    key = system.proxy._column_key("t", "n")
    payload = system.proxy._pae.decrypt(key, encrypted.tau[0]) + (
        system.proxy._pae.decrypt(key, encrypted.tau[1])
    )
    search = OrdinalRange.from_bytes(payload)
    assert search.low == 0
    assert search.high == IntegerType().domain_size - 1


def test_prefix_filter_encrypts_to_range(system):
    encrypted = _encrypt(system, PrefixFilter("e", "ab"))
    assert isinstance(encrypted, EncryptedRangeFilter)
    key = system.proxy._column_key("t", "e")
    payload = system.proxy._pae.decrypt(key, encrypted.tau[0]) + (
        system.proxy._pae.decrypt(key, encrypted.tau[1])
    )
    search = OrdinalRange.from_bytes(payload)
    low, high = VarcharType(10).prefix_ordinal_range("ab")
    assert (search.low, search.high) == (low, high)


def test_tree_encryption_recurses(system):
    tree = FilterNode(
        "AND",
        (
            RangeFilter("e", low="a", high="a"),
            FilterNode("NOT", (RangeFilter("p", low="x", high="x"),)),
        ),
    )
    encrypted = _encrypt(system, tree)
    assert isinstance(encrypted, FilterNode)
    assert isinstance(encrypted.children[0], EncryptedRangeFilter)
    inner = encrypted.children[1]
    assert isinstance(inner, FilterNode) and inner.operator == "NOT"
    assert isinstance(inner.children[0], RangeFilter)  # plaintext passthrough


def test_identical_filters_get_fresh_taus(system):
    """Probabilistic query encryption: the server cannot tell repeats."""
    first = _encrypt(system, RangeFilter("e", low="a", high="a"))
    second = _encrypt(system, RangeFilter("e", low="a", high="a"))
    assert first.tau != second.tau


def test_update_returns_zero_on_no_match(system):
    assert system.execute("UPDATE t SET n = 1 WHERE n = 999") == 0

"""Encrypted equi-join tests (the paper's §4.2 future-work extension).

Joins are executed on enclave-issued join tokens: per query, the enclave
derives HMAC tokens for both join columns under a fresh salt, and the
untrusted server hash-joins attribute vectors on them. Ground truth comes
from a plain Python nested-loop join.
"""

from __future__ import annotations

import pytest

from repro import EncDBDBSystem
from repro.exceptions import PlanError, SqlSyntaxError

PRODUCTS = [("A1", 10, "toys"), ("B2", 20, "toys"), ("C3", 30, "tools"),
            ("D4", 20, "tools")]
ORDERS = [("A1", 5), ("B2", 1), ("A1", 2), ("Z9", 7), ("C3", 4), ("C3", 1)]


def _reference_join(predicate=lambda p, o: True):
    rows = []
    for sku, qty in ORDERS:
        for product_sku, price, category in PRODUCTS:
            if sku == product_sku and predicate((product_sku, price, category),
                                                (sku, qty)):
                rows.append((sku, qty, price, category))
    return rows


@pytest.fixture
def system() -> EncDBDBSystem:
    system = EncDBDBSystem.create(seed=77)
    system.execute(
        "CREATE TABLE products (sku ED2 VARCHAR(10), price ED1 INTEGER, "
        "category VARCHAR(10))"
    )
    system.execute("CREATE TABLE orders (sku ED5 VARCHAR(10), qty INTEGER)")
    system.execute(
        "INSERT INTO products VALUES "
        + ", ".join(f"('{s}', {p}, '{c}')" for s, p, c in PRODUCTS)
    )
    system.execute(
        "INSERT INTO orders VALUES " + ", ".join(f"('{s}', {q})" for s, q in ORDERS)
    )
    return system


def test_basic_encrypted_join(system):
    result = system.query(
        "SELECT orders.sku, orders.qty, products.price FROM orders "
        "JOIN products ON orders.sku = products.sku ORDER BY orders.sku"
    )
    expected = sorted((s, q, p) for s, q, p, _ in _reference_join())
    assert sorted(result.rows) == expected


def test_join_with_filters_on_both_sides(system):
    result = system.query(
        "SELECT orders.sku, products.category FROM orders "
        "JOIN products ON orders.sku = products.sku "
        "WHERE products.price <= 20 AND orders.qty >= 2"
    )
    expected = sorted(
        (s, c)
        for s, q, p, c in _reference_join()
        if p <= 20 and q >= 2
    )
    assert sorted(result.rows) == expected


def test_join_unmatched_rows_excluded(system):
    """'Z9' has no product: inner-join semantics drop it."""
    result = system.query(
        "SELECT orders.sku FROM orders JOIN products ON orders.sku = products.sku"
    )
    skus = {row[0] for row in result}
    assert "Z9" not in skus
    assert skus == {"A1", "B2", "C3"}


def test_join_duplicates_multiply(system):
    """Two A1 orders x one A1 product = two result rows."""
    result = system.query(
        "SELECT orders.qty FROM orders JOIN products ON orders.sku = products.sku "
        "WHERE products.sku = 'A1'"
    )
    assert sorted(row[0] for row in result) == [2, 5]


def test_join_with_group_by_and_aggregates(system):
    result = system.query(
        "SELECT products.category, SUM(orders.qty), COUNT(*) FROM orders "
        "JOIN products ON orders.sku = products.sku "
        "GROUP BY products.category ORDER BY products.category"
    )
    assert result.rows == [("tools", 5, 2), ("toys", 8, 3)]


def test_join_select_star(system):
    result = system.query(
        "SELECT * FROM orders JOIN products ON orders.sku = products.sku LIMIT 1"
    )
    assert result.column_names == [
        "orders.sku", "orders.qty", "products.sku", "products.price",
        "products.category",
    ]


def test_join_on_order_is_symmetric(system):
    flipped = system.query(
        "SELECT orders.qty FROM orders JOIN products ON products.sku = orders.sku"
    )
    straight = system.query(
        "SELECT orders.qty FROM orders JOIN products ON orders.sku = products.sku"
    )
    assert sorted(flipped.rows) == sorted(straight.rows)


def test_join_includes_delta_rows(system):
    """Rows inserted after bulk load (delta store) participate in joins."""
    system.execute("INSERT INTO orders VALUES ('D4', 9)")
    system.execute("INSERT INTO products VALUES ('E5', 50, 'toys')")
    result = system.query(
        "SELECT orders.qty FROM orders JOIN products ON orders.sku = products.sku "
        "WHERE products.sku = 'D4'"
    )
    assert [row[0] for row in result] == [9]


def test_join_after_merge(system):
    system.merge("orders")
    system.merge("products")
    result = system.query(
        "SELECT orders.sku FROM orders JOIN products ON orders.sku = products.sku"
    )
    assert len(result) == len(_reference_join())


def test_plaintext_join_columns(system):
    """Both sides plaintext: joined on raw values, no enclave involved."""
    system.execute("CREATE TABLE categories (name VARCHAR(10), tax INTEGER)")
    system.execute("INSERT INTO categories VALUES ('toys', 7), ('tools', 19)")
    result = system.query(
        "SELECT products.sku, categories.tax FROM products "
        "JOIN categories ON products.category = categories.name "
        "ORDER BY products.sku"
    )
    assert result.rows == [("A1", 7), ("B2", 7), ("C3", 19), ("D4", 19)]


def test_join_tokens_are_fresh_per_query(system):
    """Two identical join queries never reuse tokens (fresh salt)."""
    original = system.server.executor.select_join
    seen_salts = []

    def spy(plan, salt):
        seen_salts.append(salt)
        return original(plan, salt)

    system.server.executor.select_join = spy
    try:
        for _ in range(2):
            system.query(
                "SELECT orders.sku FROM orders "
                "JOIN products ON orders.sku = products.sku"
            )
    finally:
        system.server.executor.select_join = original
    assert len(seen_salts) == 2
    assert seen_salts[0] != seen_salts[1]


def test_join_validation_errors(system):
    with pytest.raises(PlanError):
        system.query(
            "SELECT orders.sku FROM orders JOIN products ON orders.qty = products.sku"
        )  # INTEGER vs VARCHAR
    with pytest.raises(PlanError):
        system.query(
            "SELECT orders.sku FROM orders "
            "JOIN products ON orders.sku = products.category"
        )  # encrypted vs plaintext
    with pytest.raises(PlanError):
        system.query(
            "SELECT sku FROM orders JOIN products ON orders.sku = products.sku"
        )  # unqualified select item
    with pytest.raises(PlanError):
        system.query(
            "SELECT orders.sku FROM orders JOIN products "
            "ON orders.sku = products.sku WHERE qty > 1"
        )  # unqualified predicate
    with pytest.raises(PlanError):
        system.query(
            "SELECT orders.sku FROM orders JOIN products "
            "ON orders.sku = products.sku "
            "WHERE orders.qty > 1 OR products.price > 1"
        )  # OR across tables
    with pytest.raises(SqlSyntaxError):
        system.query("SELECT orders.sku FROM orders JOIN products ON sku = sku")
    with pytest.raises(PlanError):
        system.query(
            "SELECT orders.sku FROM orders JOIN orders ON orders.sku = orders.sku"
        )  # self-join


def test_inner_keyword_accepted(system):
    result = system.query(
        "SELECT orders.sku FROM orders INNER JOIN products "
        "ON orders.sku = products.sku"
    )
    assert len(result) == len(_reference_join())

"""Connect/busy retry backoff and server stop ordering (PR 7 satellites)."""

from __future__ import annotations

import random
import socket
import threading
import time

import pytest

from repro.client.session import EncDBDBSystem
from repro.exceptions import NetworkError, ServerBusyError
from repro.net.client import NetConnection, RetryPolicy, connect_system
from repro.net.server import NetServer, ServerThread
from repro.server.dbms import EncDBDBServer


# ----------------------------------------------------------------------
# RetryPolicy math
# ----------------------------------------------------------------------
def test_delay_grows_exponentially_within_jitter_bounds():
    policy = RetryPolicy(
        attempts=6, base_delay=0.1, max_delay=10.0, multiplier=2.0, jitter=0.25
    )
    rng = random.Random(7)
    for attempt, raw in [(1, 0.1), (2, 0.2), (3, 0.4), (4, 0.8)]:
        for _ in range(50):
            delay = policy.delay(attempt, rng)
            assert raw * 0.75 <= delay <= raw * 1.25, attempt


def test_delay_is_capped_at_max_delay():
    policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0)
    assert policy.delay(1, random.Random(0)) == pytest.approx(0.1)
    assert policy.delay(10, random.Random(0)) == pytest.approx(0.5)


def test_none_policy_is_a_single_attempt():
    policy = RetryPolicy.none()
    assert policy.attempts == 1


def test_zero_jitter_is_deterministic():
    policy = RetryPolicy(base_delay=0.2, jitter=0.0)
    assert policy.delay(2, random.Random(1)) == pytest.approx(0.4)


# ----------------------------------------------------------------------
# Connect-path retry against live servers
# ----------------------------------------------------------------------
def _reserve_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def test_connect_retries_until_late_server_comes_up():
    port = _reserve_port()
    handle_box: list[ServerThread] = []

    def boot_late():
        time.sleep(0.3)
        handle_box.append(
            ServerThread(NetServer(host="127.0.0.1", port=port)).start()
        )

    booter = threading.Thread(target=boot_late, daemon=True)
    booter.start()
    try:
        connection = NetConnection(
            "127.0.0.1",
            port,
            retry=RetryPolicy(attempts=40, base_delay=0.05, max_delay=0.1),
        )
        assert connection.hello["server"] == "encdbdb"
        connection.close()
    finally:
        booter.join()
        if handle_box:
            handle_box[0].stop()


def test_connect_without_retry_fails_fast_on_refused_port():
    port = _reserve_port()
    begin = time.monotonic()
    with pytest.raises(NetworkError, match="cannot connect"):
        NetConnection("127.0.0.1", port, retry=RetryPolicy.none())
    assert time.monotonic() - begin < 2.0


def test_connect_retry_gives_up_after_attempt_cap():
    port = _reserve_port()
    with pytest.raises(NetworkError):
        NetConnection(
            "127.0.0.1",
            port,
            retry=RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.02),
        )


def test_busy_server_rejection_is_retried_until_a_slot_frees():
    server = NetServer(max_sessions=1, admission_timeout=0.05)
    with ServerThread(server) as handle:
        first = NetConnection("127.0.0.1", handle.port)

        def release():
            time.sleep(0.3)
            first.close()

        releaser = threading.Thread(target=release, daemon=True)
        releaser.start()
        try:
            second = NetConnection(
                "127.0.0.1",
                handle.port,
                retry=RetryPolicy(attempts=40, base_delay=0.05, max_delay=0.1),
            )
            second.close()
        finally:
            releaser.join()


def test_busy_server_rejection_without_retry_is_immediate():
    server = NetServer(max_sessions=1, admission_timeout=0.05)
    with ServerThread(server) as handle:
        first = NetConnection("127.0.0.1", handle.port)
        try:
            with pytest.raises(ServerBusyError):
                NetConnection(
                    "127.0.0.1", handle.port, retry=RetryPolicy.none()
                )
        finally:
            first.close()


# ----------------------------------------------------------------------
# Stop ordering: admission waiters wake, stop is prompt, restart works
# ----------------------------------------------------------------------
def test_stop_wakes_blocked_admission_waiters():
    server = NetServer(max_sessions=1, admission_timeout=30.0)
    handle = ServerThread(server).start()
    first = NetConnection("127.0.0.1", handle.port)
    outcome: dict = {}

    def second_client():
        begin = time.monotonic()
        try:
            NetConnection(
                "127.0.0.1", handle.port, retry=RetryPolicy.none()
            )
            outcome["result"] = "connected"
        except (NetworkError, ServerBusyError) as exc:
            outcome["result"] = type(exc).__name__
        outcome["elapsed"] = time.monotonic() - begin

    waiter = threading.Thread(target=second_client, daemon=True)
    waiter.start()
    time.sleep(0.2)  # let the second client park in the admission queue
    begin = time.monotonic()
    handle.stop()
    assert time.monotonic() - begin < 5.0, "stop() hung on admission waiters"
    waiter.join(timeout=5.0)
    assert not waiter.is_alive()
    # The waiter was turned away promptly, not after the 30s admission
    # timeout it signed up for.
    assert outcome["elapsed"] < 10.0
    first.close()


def test_server_restarts_cleanly_after_stop():
    dbms = EncDBDBServer()
    server = NetServer(dbms, max_sessions=4)
    with ServerThread(server) as handle:
        with EncDBDBSystem.connect("127.0.0.1", handle.port, seed=11) as system:
            system.execute("CREATE TABLE t (v ED1 INTEGER)")
            system.execute("INSERT INTO t VALUES (1), (2), (3)")

    # Same NetServer object, second life: data and keys survive in the
    # still-provisioned DBMS; only the listener was torn down.
    with ServerThread(server) as handle:
        system = connect_system("127.0.0.1", handle.port, seed=11)
        try:
            assert system.server.provisioned
            assert system.query("SELECT COUNT(*) FROM t").scalar() == 3
        finally:
            system.close()

"""CLI network modes: ``repro.cli serve`` and ``--connect host:port``."""

from __future__ import annotations

import io
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import Shell, _parse_endpoint, main
from repro.client.session import EncDBDBSystem
from repro.net.server import NetServer, ServerThread

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def test_parse_endpoint():
    assert _parse_endpoint("127.0.0.1:7482") == ("127.0.0.1", 7482)
    assert _parse_endpoint("db.example.org:19") == ("db.example.org", 19)
    with pytest.raises(SystemExit):
        _parse_endpoint("no-port")
    with pytest.raises(SystemExit):
        _parse_endpoint(":123")


def test_connect_flag_runs_script_against_remote(tmp_path, capsys):
    script = tmp_path / "demo.sql"
    script.write_text(
        "CREATE TABLE t (name ED5 VARCHAR(20), age ED1 INTEGER);\n"
        "INSERT INTO t VALUES ('Jessica', 31), ('Bob', 22);\n"
        "SELECT name FROM t WHERE age >= 30;\n"
        ".stats\n"
    )
    with ServerThread(NetServer()) as handle:
        exit_code = main(
            ["--connect", f"127.0.0.1:{handle.port}", "--script", str(script)]
        )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "Jessica" in out
    assert "Bob" not in out  # the filter ran remotely, only one row came back
    assert "(1 row)" in out
    assert "ecalls=" in out


def test_connect_shell_meta_commands(tmp_path):
    with ServerThread(NetServer()) as handle:
        with EncDBDBSystem.connect("127.0.0.1", handle.port, seed=3) as system:
            system.execute("CREATE TABLE people (name ED5 VARCHAR(20) BSMAX 4)")
            out = io.StringIO()
            shell = Shell(system, out=out)
            shell.execute_line(".tables")
            shell.execute_line(".schema people")
            shell.execute_line(".stats")
            text = out.getvalue()
    assert "people" in text
    assert "ED5" in text
    assert "ecalls=" in text


def test_connect_refuses_load_flag():
    with pytest.raises(SystemExit, match="server-side"):
        main(["--connect", "127.0.0.1:1", "--load", "x.db"])


def test_serve_subprocess_end_to_end(tmp_path):
    """Boot `python -m repro.cli serve` as a real subprocess and drive it
    with `--connect` from this process."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r"listening on ([\d.]+):(\d+)", banner)
        assert match, f"no listening banner: {banner!r}"
        host, port = match.group(1), int(match.group(2))
        with EncDBDBSystem.connect(host, port, seed=6) as system:
            system.execute("CREATE TABLE t (v ED7 INTEGER)")
            system.execute("INSERT INTO t VALUES (1), (2), (3)")
            assert system.query(
                "SELECT COUNT(*) FROM t WHERE v >= 2"
            ).scalar() == 2
    finally:
        proc.terminate()
        proc.wait(timeout=10)

"""Analytics pushdown over the wire (PR 9): codec round trips for the new
result types and a live TCP session exercising the pushed-down path
end to end against the proxy-side reference."""

from __future__ import annotations

import random

import pytest

from repro.client.session import EncDBDBSystem
from repro.net.protocol import decode_payload, encode_payload
from repro.sql.result import (
    AggregateFrames,
    PushdownSelectResult,
    RoutingDecision,
)


def roundtrip(value):
    return decode_payload(encode_payload(value))


# ----------------------------------------------------------------------
# Codec round trips (no sockets)
# ----------------------------------------------------------------------


def test_routing_decision_roundtrip():
    decision = RoutingDecision("aggregate", True, "cost: ~1 vs ~2 cycles")
    decoded = roundtrip(decision)
    assert decoded == decision and isinstance(decoded, RoutingDecision)


def test_aggregate_frames_roundtrip():
    frames = AggregateFrames(
        table_name="lineitem",
        group_column="returnflag",
        labels=("count(*)", "sum(price)"),
        frames=[b"\x01frame-a", b"\x02frame-b"],
    )
    decoded = roundtrip(frames)
    assert decoded.table_name == "lineitem"
    assert decoded.group_column == "returnflag"
    assert tuple(decoded.labels) == frames.labels
    assert list(decoded.frames) == list(frames.frames)


def test_pushdown_select_result_roundtrip():
    result = PushdownSelectResult(
        decisions=(
            RoutingDecision("aggregate", True, "pushed"),
            RoutingDecision("order-by", False, "no LIMIT"),
        ),
        aggregate=AggregateFrames("t", None, ("count(*)",), [b"f"]),
        rows=None,
        ordered=False,
    )
    decoded = roundtrip(result)
    assert tuple(decoded.decisions) == tuple(result.decisions)
    assert decoded.aggregate.table_name == "t"
    assert decoded.rows is None and decoded.ordered is False


# ----------------------------------------------------------------------
# Live TCP session
# ----------------------------------------------------------------------


@pytest.fixture
def remote_system(net_server):
    with EncDBDBSystem.connect("127.0.0.1", net_server.port, seed=31) as system:
        yield system


def test_remote_pushdown_equivalence(remote_system):
    """The pushed-down aggregate pipeline works across a real socket: the
    RPC layer carries the plan out and the padded frames back, and the
    proxy merge produces exactly the reference rows."""
    rng = random.Random("remote-pushdown")
    system = remote_system
    system.execute("CREATE TABLE t (g ED1 VARCHAR(8), m ED1 INTEGER)")
    groups = ("x", "y", "z")
    system.bulk_load(
        "t",
        {
            "g": [rng.choice(groups) for _ in range(180)],
            "m": [rng.randrange(0, 30) for _ in range(180)],
        },
    )
    sql = "SELECT g, COUNT(*), SUM(m), AVG(m), MIN(m), MAX(m) FROM t GROUP BY g"
    reference = system.query(sql).rows
    system.proxy.enable_pushdown()
    pushed = system.query(sql).rows
    decisions = system.proxy.last_pushdown
    assert sorted(pushed) == sorted(reference)
    assert decisions and any(
        d.clause == "aggregate" and d.pushed for d in decisions
    )

    explained = system.proxy.explain(sql)
    assert "pushdown:" in explained and "aggregate -> enclave" in explained

    ordered = system.query("SELECT m FROM t ORDER BY m DESC LIMIT 4").rows
    system.proxy.enable_pushdown(False)
    assert ordered == system.query("SELECT m FROM t ORDER BY m DESC LIMIT 4").rows

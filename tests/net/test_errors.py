"""Error propagation: typed wire errors, redaction, no plaintext leakage."""

from __future__ import annotations

import pytest

from repro.client.session import EncDBDBSystem
from repro.exceptions import (
    CatalogError,
    EncDBDBError,
    ProtocolError,
    QueryError,
    SqlSyntaxError,
)
from repro.net.client import NetConnection, connect_system
from repro.net.errors import (
    REDACTED_MESSAGE,
    redact_exception,
    scrub_message,
)
from repro.net.protocol import FrameType


# ----------------------------------------------------------------------
# Redaction unit tests
# ----------------------------------------------------------------------


def test_registered_exception_keeps_type_and_message():
    kind, message = redact_exception(CatalogError("table 'x' does not exist"))
    assert kind == "CatalogError"
    assert message == "table 'x' does not exist"


def test_unregistered_subclass_maps_to_nearest_ancestor():
    class CustomQueryError(QueryError):
        pass

    kind, _ = redact_exception(CustomQueryError("boom"))
    assert kind == "QueryError"


def test_foreign_exception_fully_redacted():
    kind, message = redact_exception(ValueError("secret value 12345"))
    assert kind == "EncDBDBError"
    assert message == REDACTED_MESSAGE
    kind, message = redact_exception(KeyError("skdb"))
    assert message == REDACTED_MESSAGE


def test_scrub_strips_bytes_reprs_and_hex():
    assert "deadbeef" not in scrub_message("key " + "deadbeef" * 8 + " leaked")
    assert scrub_message("got b'\\x01secret' back") == "got <bytes> back"
    assert scrub_message("buf bytearray('abc') here") == "buf <bytes> here"
    assert len(scrub_message("x" * 10_000)) <= 503


# ----------------------------------------------------------------------
# Wire behaviour
# ----------------------------------------------------------------------


def test_typed_errors_cross_the_wire(net_server):
    with EncDBDBSystem.connect("127.0.0.1", net_server.port, seed=1) as system:
        system.execute("CREATE TABLE t (v ED1 INTEGER)")
        with pytest.raises(CatalogError, match="no column"):
            system.query("SELECT nope FROM t")
        with pytest.raises(CatalogError):
            system.query("SELECT v FROM missing_table")
        with pytest.raises(SqlSyntaxError):
            system.execute("SELEC broken")
        # The session survives every failure.
        system.execute("INSERT INTO t VALUES (1)")
        assert system.query("SELECT v FROM t WHERE v = 1").scalar() == 1


def test_internal_server_error_is_redacted(net_server):
    """A non-EncDBDB failure inside the server must reach the client as a
    generic EncDBDBError carrying no detail."""
    conn = NetConnection("127.0.0.1", net_server.port)
    try:
        # execute_select(None) explodes with AttributeError server-side.
        with pytest.raises(EncDBDBError) as excinfo:
            conn.call("execute_select", None)
        assert str(excinfo.value) == REDACTED_MESSAGE
        assert excinfo.type is EncDBDBError
    finally:
        conn.close()


def test_error_frames_carry_no_plaintext(net_server):
    """Sniff the error frame for a failing statement that embeds a secret:
    the secret is in the *client-side* SQL, and the server-side failure
    message must not echo encrypted material back."""
    frames = []
    system = connect_system(
        "127.0.0.1",
        net_server.port,
        seed=2,
        tap=lambda d, t, p: frames.append((d, t, p)),
    )
    try:
        system.execute("CREATE TABLE s (v ED8 VARCHAR(20))")
        with pytest.raises(EncDBDBError):
            # Duplicate create: server-side CatalogError.
            system.execute("CREATE TABLE s (v ED8 VARCHAR(20))")
    finally:
        system.close()
    error_frames = [p for d, t, p in frames if t is FrameType.ERROR]
    assert error_frames, "no error frame observed"
    for payload in error_frames:
        assert b"Traceback" not in payload
        assert b"/root" not in payload and b"site-packages" not in payload


def test_unknown_rpc_method_rejected(net_server):
    conn = NetConnection("127.0.0.1", net_server.port)
    try:
        with pytest.raises(ProtocolError, match="unknown rpc method"):
            conn.call("__init__")
        with pytest.raises(ProtocolError, match="unknown rpc method"):
            conn.call("drop_table", "t")  # deliberately not on the allowlist
    finally:
        conn.close()


def test_provision_outside_attestation_rejected(net_server):
    from repro.exceptions import EnclaveSecurityError

    conn = NetConnection("127.0.0.1", net_server.port)
    try:
        with pytest.raises(EnclaveSecurityError):
            conn.request(FrameType.PROVISION, {"blob": b"\x00" * 64})
        with pytest.raises(EnclaveSecurityError):
            conn.request(
                FrameType.ATTEST, {"op": "accept", "client_public": 12345}
            )
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Post-PR2 verbs: migration, pushdown, cluster key relay
# ----------------------------------------------------------------------


def test_migration_and_cluster_errors_are_wire_safe():
    """The typed errors of the newer verb families round-trip by name."""
    from repro.exceptions import ClusterError, MigrationError
    from repro.net.errors import WIRE_SAFE_EXCEPTIONS, raise_wire_error

    assert WIRE_SAFE_EXCEPTIONS["MigrationError"] is MigrationError
    assert WIRE_SAFE_EXCEPTIONS["ClusterError"] is ClusterError
    with pytest.raises(MigrationError, match="in flight"):
        raise_wire_error("MigrationError", "t.v has no migration in flight")
    with pytest.raises(ClusterError, match="endpoint"):
        raise_wire_error("ClusterError", "every endpoint failed")


def test_migrate_verbs_fail_typed_with_clean_frames(net_server):
    """Migration verbs against missing state produce typed, scrubbed error
    frames — never tracebacks or file paths."""
    from repro.exceptions import MigrationError

    frames = []
    conn = NetConnection(
        "127.0.0.1",
        net_server.port,
        tap=lambda d, t, p: frames.append((d, t, p)),
    )
    try:
        with pytest.raises(CatalogError):
            conn.call("migrate_start", "missing_table", "v")
        with pytest.raises(MigrationError, match="no migration in flight"):
            conn.call("migrate_step", "missing_table", "v")
        with pytest.raises(MigrationError, match="no migration in flight"):
            conn.call("migrate_rollback", "missing_table", "v")
    finally:
        conn.close()
    error_frames = [p for d, t, p in frames if t is FrameType.ERROR]
    assert len(error_frames) == 3
    for payload in error_frames:
        assert b"Traceback" not in payload
        assert b"/root" not in payload and b"site-packages" not in payload


def test_pushdown_verbs_redact_internal_failures(net_server):
    """Garbage pushdown plans explode server-side with non-EncDBDB errors;
    the client must only ever see the generic redacted message."""
    conn = NetConnection("127.0.0.1", net_server.port)
    try:
        with pytest.raises(EncDBDBError) as excinfo:
            conn.call("execute_select_pushdown", None)
        assert str(excinfo.value) == REDACTED_MESSAGE
        assert excinfo.type is EncDBDBError
        # explain is advisory: a non-plan degrades to "no decisions" rather
        # than an error, revealing nothing.
        assert conn.call("explain_pushdown", None) == ()
    finally:
        conn.close()


def test_replicate_key_relay_failure_is_typed_and_scrubbed(net_server):
    """A bogus replication offer fails without echoing key-sized blobs."""
    frames = []
    conn = NetConnection(
        "127.0.0.1",
        net_server.port,
        tap=lambda d, t, p: frames.append((d, t, p)),
    )
    try:
        with pytest.raises(EncDBDBError):
            conn.call("enclave_replicate_key", 12345)
    finally:
        conn.close()
    error_frames = [p for d, t, p in frames if t is FrameType.ERROR]
    assert error_frames, "no error frame observed"
    for payload in error_frames:
        assert b"Traceback" not in payload
        assert b"/root" not in payload and b"site-packages" not in payload


def test_failed_migration_status_error_is_scrubbed(monkeypatch):
    """MigrationStatus.error crosses the wire in typed frames; a failing
    step whose exception embeds raw bytes must arrive scrubbed."""
    from repro.exceptions import CryptoError
    from repro.migrate.runner import MigrationJob

    system = EncDBDBSystem.create(seed=3)
    system.execute("CREATE TABLE m (v ED1 INTEGER)")
    system.bulk_load("m", {"v": [1, 2, 3, 4]})

    def explode(self, step):
        raise CryptoError(f"bad blob {b'secret-key-material'!r} rejected")

    monkeypatch.setattr(MigrationJob, "_execute", explode)
    system.server.migrate_start("m", "v", rotate_key=True)
    status = system.server.migrate_step("m", "v")
    assert status.state == "failed"
    assert "secret-key-material" not in status.error
    assert "<bytes>" in status.error


def test_malformed_frames_get_protocol_errors(net_server):
    import socket

    from repro.net.protocol import HEADER, MAGIC, PROTOCOL_VERSION, read_frame

    with socket.create_connection(("127.0.0.1", net_server.port), 10) as sock:
        sock.sendall(b"GET / HTTP/1.1\r\n\r\n" + bytes(HEADER.size))

        def read_exact(n):
            buf = b""
            while len(buf) < n:
                chunk = sock.recv(n - len(buf))
                if not chunk:
                    raise ConnectionError("closed")
                buf += chunk
            return buf

        frame_type, raw = read_frame(read_exact)
        assert frame_type is FrameType.ERROR
        from repro.net.protocol import decode_payload

        payload = decode_payload(raw)
        assert payload["kind"] == "ProtocolError"

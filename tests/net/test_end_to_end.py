"""End-to-end TCP deployments: provisioning, all nine ED kinds, and the
ciphertext-only wire property (frame sniffing)."""

from __future__ import annotations

import pytest

from repro.client.session import EncDBDBSystem
from repro.encdict.options import ALL_KINDS
from repro.net.client import connect_system
from repro.net.protocol import FrameType, decode_payload
from repro.sgx.attestation import AttestationService


def connect(handle, **kwargs):
    return EncDBDBSystem.connect("127.0.0.1", handle.port, **kwargs)


# ----------------------------------------------------------------------
# Provisioning over the socket
# ----------------------------------------------------------------------


def test_hello_advertises_measurement_and_provisioning(net_server):
    system = connect(net_server, seed=11)
    assert system.server.measurement == net_server.server.dbms.measurement
    assert system.server.provisioned  # this client provisioned it
    with connect(net_server, seed=11) as second:
        assert second.server.provisioned  # observed at hello time
    system.close()


def test_pinned_measurement_mismatch_rejected(net_server):
    from repro.exceptions import AttestationError

    with pytest.raises(AttestationError):
        connect(net_server, seed=1, expected_measurement=b"\x00" * 32)


def test_queries_before_provisioning_fail_typed(net_server):
    from repro.exceptions import EncDBDBError

    system = connect(net_server, seed=2, provision=False)
    system.server.create_table  # the stub exists
    with pytest.raises(EncDBDBError):
        system.execute("CREATE TABLE t (v ED1 INTEGER)")
        system.execute("INSERT INTO t VALUES (1)")
        system.query("SELECT v FROM t WHERE v = 1")
    system.close()


# ----------------------------------------------------------------------
# All nine encrypted dictionary kinds over the wire
# ----------------------------------------------------------------------

VALUES = [17, 3, 42, 17, 99, 3, 3, 56]


def test_all_nine_kinds_roundtrip(net_server):
    columns = ", ".join(
        f"c{kind.number} {kind.name} INTEGER"
        + (" BSMAX 2" if kind.repetition.name == "SMOOTHING" else "")
        for kind in ALL_KINDS
    )
    with connect(net_server, seed=9) as system:
        system.execute(f"CREATE TABLE grid ({columns}, tag VARCHAR(10))")
        rows = ", ".join(
            "(" + ", ".join(str(v) for _ in ALL_KINDS) + f", 'r{i}')"
            for i, v in enumerate(VALUES)
        )
        system.execute(f"INSERT INTO grid VALUES {rows}")
        for kind in ALL_KINDS:
            column = f"c{kind.number}"
            eq = system.query(f"SELECT tag FROM grid WHERE {column} = 3")
            assert sorted(r[0] for r in eq) == ["r1", "r5", "r6"], kind.name
            rng = system.query(
                f"SELECT tag FROM grid WHERE {column} >= 17 AND {column} < 99"
            )
            assert sorted(r[0] for r in rng) == ["r0", "r2", "r3", "r7"], kind.name
        assert system.query("SELECT COUNT(*) FROM grid").scalar() == len(VALUES)


def test_bulk_load_and_merge_over_wire(net_server):
    with connect(net_server, seed=4) as system:
        system.execute("CREATE TABLE bulk (v ED3 INTEGER, w ED7 INTEGER)")
        count = system.bulk_load(
            "bulk", {"v": [5, 9, 5, 2], "w": [1, 2, 3, 4]}
        )
        assert count == 4
        assert system.query("SELECT w FROM bulk WHERE v = 5").rows == [(1,), (3,)]
        system.execute("INSERT INTO bulk VALUES (5, 7)")
        assert sorted(
            r[0] for r in system.query("SELECT w FROM bulk WHERE v = 5")
        ) == [1, 3, 7]
        assert system.merge("bulk") >= 0
        assert sorted(
            r[0] for r in system.query("SELECT w FROM bulk WHERE v = 5")
        ) == [1, 3, 7]


def test_update_delete_join_over_wire(net_server):
    with connect(net_server, seed=5) as system:
        system.execute("CREATE TABLE a (k ED1 INTEGER, v ED7 INTEGER)")
        system.execute("CREATE TABLE b (k ED1 INTEGER, t VARCHAR(8))")
        system.execute("INSERT INTO a VALUES (1, 10), (2, 20), (3, 30)")
        system.execute("INSERT INTO b VALUES (1, 'one'), (3, 'three')")
        joined = system.query(
            "SELECT a.v, b.t FROM a JOIN b ON a.k = b.k"
        )
        assert sorted(joined.rows) == [(10, "one"), (30, "three")]
        system.execute("UPDATE a SET v = 99 WHERE k = 2")
        assert system.query("SELECT v FROM a WHERE k = 2").scalar() == 99
        system.execute("DELETE FROM a WHERE k = 1")
        assert system.query("SELECT COUNT(*) FROM a").scalar() == 2


# ----------------------------------------------------------------------
# Frame sniffing: the wire carries only ciphertext for encrypted columns
# ----------------------------------------------------------------------


class Sniffer:
    """Records every frame payload both directions."""

    def __init__(self) -> None:
        self.frames: list[tuple[str, FrameType, bytes]] = []

    def __call__(self, direction: str, frame_type: FrameType, payload: bytes) -> None:
        self.frames.append((direction, frame_type, payload))

    @property
    def all_bytes(self) -> bytes:
        return b"\n".join(payload for _, _, payload in self.frames)


SECRET_NAME = "XKCDHUNTER2SECRET"
SECRET_AGE = 1987654321  # distinctive byte pattern, inside 32-bit INTEGER
PLAIN_MARKER = "VISIBLEPLAINTEXT"


def test_wire_carries_only_ciphertext(net_server):
    sniffer = Sniffer()
    system = connect_system("127.0.0.1", net_server.port, seed=8, tap=sniffer)
    try:
        system.execute(
            "CREATE TABLE spy (name ED8 VARCHAR(40), age ED1 INTEGER, "
            "note VARCHAR(40))"
        )
        system.execute(
            f"INSERT INTO spy VALUES ('{SECRET_NAME}', {SECRET_AGE}, "
            f"'{PLAIN_MARKER}')"
        )
        result = system.query(
            f"SELECT name, age, note FROM spy WHERE name = '{SECRET_NAME}'"
        )
        assert result.rows == [(SECRET_NAME, SECRET_AGE, PLAIN_MARKER)]
    finally:
        system.close()

    wire = sniffer.all_bytes
    assert sniffer.frames, "the tap saw no frames"
    # Sanity: the tap does see real payloads — the *plaintext* column's
    # value crosses in the clear, exactly as the paper's threat model allows.
    assert PLAIN_MARKER.encode() in wire
    # Encrypted column values never appear, in any encoding direction.
    assert SECRET_NAME.encode() not in wire
    for byte_order in ("big", "little"):
        assert SECRET_AGE.to_bytes(8, byte_order) not in wire
        assert SECRET_AGE.to_bytes(4, byte_order) not in wire
    assert str(SECRET_AGE).encode() not in wire
    # The master key and derived column keys never appear.
    assert system.owner.master_key not in wire
    assert system.owner.column_key("spy", "name") not in wire
    assert system.owner.column_key("spy", "age") not in wire


def test_bulk_load_stats_sanitized_on_wire(net_server):
    """ED2's secret rotation offset must not survive into the wire frames."""
    sniffer = Sniffer()
    system = connect_system("127.0.0.1", net_server.port, seed=13, tap=sniffer)
    try:
        system.execute("CREATE TABLE rot (v ED2 INTEGER)")
        sniffer.frames.clear()
        system.bulk_load("rot", {"v": [4, 8, 15, 16, 23, 42]})
        assert system.query("SELECT COUNT(*) FROM rot WHERE v > 10").scalar() == 4
    finally:
        system.close()

    bulk_calls = [
        decode_payload(payload)
        for direction, frame_type, payload in sniffer.frames
        if direction == "send" and frame_type is FrameType.QUERY
    ]
    bulk = next(c for c in bulk_calls if c["method"] == "bulk_load")
    build = bulk["kwargs"]["encrypted_builds"]["v"]
    assert build.stats.rnd_offset is None
    assert build.stats.unique_values == -1
    assert build.stats.bsmax is None
    # The offset exists on the wire only as ciphertext.
    assert build.dictionary.enc_rnd_offset is not None


def test_partition_metadata_never_crosses_the_wire(net_server):
    """Partition count/boundaries are a server-local layout detail: the
    builds travel as an opaque list and no frame names partition fields."""
    sniffer = Sniffer()
    system = connect_system("127.0.0.1", net_server.port, seed=21, tap=sniffer)
    try:
        system.execute("CREATE TABLE parts (v ED2 INTEGER)")
        sniffer.frames.clear()
        system.bulk_load(
            "parts", {"v": [4, 8, 15, 16, 23, 42]}, partition_rows=2
        )
        assert (
            system.query("SELECT COUNT(*) FROM parts WHERE v > 10").scalar() == 4
        )
    finally:
        system.close()

    wire = sniffer.all_bytes
    assert sniffer.frames, "the tap saw no frames"
    assert b"partition" not in wire  # no frame ever names a partition field
    bulk_calls = [
        decode_payload(payload)
        for direction, frame_type, payload in sniffer.frames
        if direction == "send" and frame_type is FrameType.QUERY
    ]
    bulk = next(c for c in bulk_calls if c["method"] == "bulk_load")
    builds = bulk["kwargs"]["encrypted_builds"]["v"]
    assert isinstance(builds, list) and len(builds) == 3
    for build in builds:
        # Decoded dictionaries carry only the dataclass default: whatever
        # partition id the owner-side objects held was stripped structurally
        # (the field is not registered with the wire codec).
        assert build.dictionary.partition_id == 0
        assert build.stats.rnd_offset is None
        assert build.stats.unique_values == -1


def test_quote_verification_is_client_side(net_server):
    """The verifying AttestationService lives in the trusted realm: it is a
    fresh local instance, not an object the server shipped over."""
    system = connect(net_server, seed=3)
    try:
        assert isinstance(system.server.attestation, AttestationService)
        assert system.server.attestation is not net_server.server.dbms.attestation
    finally:
        system.close()

"""Sealed-storage server restart: unseal SKDB on boot, serve without a new
attestation round trip (paper §4.2's stated purpose of sealing)."""

from __future__ import annotations

import pytest

from repro.client.session import EncDBDBSystem
from repro.exceptions import AuthenticationError
from repro.net.client import connect_system
from repro.net.protocol import FrameType
from repro.net.server import NetServer, ServerThread
from repro.server.dbms import EncDBDBServer

SEED = 21


def test_restart_with_sealed_key_and_saved_database(tmp_path):
    sealed = tmp_path / "skdb.sealed"
    database = tmp_path / "db.encdbdb"

    # First life: attest, provision (writes the sealed blob), load data.
    with ServerThread(NetServer(sealed_key_path=sealed)) as handle:
        with EncDBDBSystem.connect("127.0.0.1", handle.port, seed=SEED) as system:
            system.execute(
                "CREATE TABLE people (name ED5 VARCHAR(30) BSMAX 4, "
                "age ED1 INTEGER)"
            )
            system.execute(
                "INSERT INTO people VALUES ('Jessica', 31), ('Archie', 24), "
                "('Hans', 45)"
            )
            system.save(database)
    assert sealed.exists()
    assert database.exists()

    # Second life: a brand-new process image — fresh DBMS, same enclave
    # identity. The sealed blob restores SKDB before the first connection.
    dbms = EncDBDBServer()
    dbms.load(database)
    frames: list[tuple[str, FrameType, bytes]] = []
    with ServerThread(NetServer(dbms, sealed_key_path=sealed)) as handle:
        system = connect_system(
            "127.0.0.1",
            handle.port,
            seed=SEED,
            tap=lambda d, t, p: frames.append((d, t, p)),
        )
        try:
            # The hello already advertised a provisioned enclave, so the
            # client skipped attestation entirely.
            assert system.server.provisioned
            result = system.query(
                "SELECT name FROM people WHERE age >= 30"
            )
            assert sorted(r[0] for r in result) == ["Hans", "Jessica"]
            system.execute("INSERT INTO people VALUES ('Ella', 31)")
            assert (
                system.query("SELECT COUNT(*) FROM people").scalar() == 4
            )
        finally:
            system.close()

    sent_types = {t for d, t, _ in frames if d == "send"}
    assert FrameType.ATTEST not in sent_types
    assert FrameType.PROVISION not in sent_types
    assert FrameType.QUERY in sent_types


def test_sealed_blob_rejected_by_different_enclave_identity(tmp_path):
    """A sealed blob only opens inside the same (simulated) enclave class;
    a tampered blob must not restore."""
    sealed = tmp_path / "skdb.sealed"
    with ServerThread(NetServer(sealed_key_path=sealed)) as handle:
        with EncDBDBSystem.connect("127.0.0.1", handle.port, seed=SEED):
            pass
    blob = bytearray(sealed.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    sealed.write_bytes(bytes(blob))

    dbms = EncDBDBServer()
    server = NetServer(dbms, sealed_key_path=sealed)
    with pytest.raises(AuthenticationError):
        import asyncio

        asyncio.run(_start_and_stop(server))


async def _start_and_stop(server: NetServer) -> None:
    try:
        await server.start()
    finally:
        await server.stop()


def test_restart_without_sealed_key_requires_attestation(tmp_path):
    """Without sealing, a restarted server is unprovisioned and the client
    re-attests (provision defaults back on)."""
    database = tmp_path / "db.encdbdb"
    with ServerThread(NetServer()) as handle:
        with EncDBDBSystem.connect("127.0.0.1", handle.port, seed=SEED) as system:
            system.execute("CREATE TABLE t (v ED1 INTEGER)")
            system.execute("INSERT INTO t VALUES (7)")
            system.save(database)

    dbms = EncDBDBServer()
    dbms.load(database)
    frames: list[tuple[str, FrameType, bytes]] = []
    with ServerThread(NetServer(dbms)) as handle:
        system = connect_system(
            "127.0.0.1",
            handle.port,
            seed=SEED,
            tap=lambda d, t, p: frames.append((d, t, p)),
        )
        try:
            assert system.query("SELECT v FROM t WHERE v = 7").scalar() == 7
        finally:
            system.close()
    sent_types = {t for d, t, _ in frames if d == "send"}
    assert FrameType.ATTEST in sent_types
    assert FrameType.PROVISION in sent_types

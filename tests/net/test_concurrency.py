"""Concurrent sessions: isolation, admission control, and exact cost
accounting (serialized ecalls make concurrent counters additive)."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.client.session import EncDBDBSystem
from repro.exceptions import NetworkError
from repro.net.client import NetConnection
from repro.net.server import NetServer, ServerThread

CLIENTS = 8
COUNTERS = ("ecalls", "decryptions", "untrusted_loads")


def _workload(system: EncDBDBSystem, table: str, marker: int) -> list[int]:
    """One client's session: DDL, insert, and two selects on its own table.

    ED1 (sorted) and ED3 (unsorted) keep decryption counts deterministic —
    no rotation offset, no smoothing randomness in the search path.
    """
    system.execute(f"CREATE TABLE {table} (k ED1 INTEGER, v ED3 INTEGER)")
    rows = ", ".join(f"({i}, {marker + i})" for i in range(6))
    system.execute(f"INSERT INTO {table} VALUES {rows}")
    low = system.query(f"SELECT v FROM {table} WHERE k < 3")
    high = system.query(f"SELECT v FROM {table} WHERE v >= {marker + 3}")
    return sorted(r[0] for r in low) + sorted(r[0] for r in high)


def _expected(marker: int) -> list[int]:
    return [marker + i for i in range(3)] + [marker + i for i in range(3, 6)]


def test_concurrent_clients_isolated_and_additive(accounting_server):
    port = accounting_server.port
    dbms = accounting_server.server.dbms

    # Provision once up front so the parallel phase has no handshake race.
    with EncDBDBSystem.connect("127.0.0.1", port, seed=0) as bootstrap:
        assert bootstrap.server.provisioned

    # Sequential reference: per-client counter deltas, summed.
    expected_delta = dict.fromkeys(COUNTERS, 0)
    for i in range(CLIENTS):
        before = dbms.cost_model.snapshot()
        with EncDBDBSystem.connect("127.0.0.1", port, seed=0) as system:
            assert _workload(system, f"seq{i}", 1000 * (i + 1)) == _expected(
                1000 * (i + 1)
            )
        after = dbms.cost_model.snapshot()
        for name in COUNTERS:
            expected_delta[name] += after[name] - before[name]

    # Concurrent phase: identical workloads on distinct tables, all at once.
    before = dbms.cost_model.snapshot()

    def run(i: int) -> list[int]:
        with EncDBDBSystem.connect("127.0.0.1", port, seed=0) as system:
            return _workload(system, f"par{i}", 1000 * (i + 1))

    with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
        results = list(pool.map(run, range(CLIENTS)))
    after = dbms.cost_model.snapshot()

    # Isolation: every client saw exactly its own rows.
    for i, result in enumerate(results):
        assert result == _expected(1000 * (i + 1)), f"client {i} cross-talk"

    # Accounting: serialized ecalls mean the concurrent total is exactly the
    # sum of the sequential runs — no lost updates, no double counting.
    for name in COUNTERS:
        assert after[name] - before[name] == expected_delta[name], name


def test_sessions_tracked_and_reaped(net_server):
    with EncDBDBSystem.connect("127.0.0.1", net_server.port, seed=0) as one:
        assert len(net_server.server.sessions) == 1
        with EncDBDBSystem.connect("127.0.0.1", net_server.port, seed=0) as two:
            ids = {s.session_id for s in net_server.server.sessions.values()}
            assert len(ids) == 2
            assert one.server.session_id != two.server.session_id
    # Give the event loop a beat to run the disconnect cleanup.
    import time

    deadline = time.monotonic() + 5
    while net_server.server.sessions and time.monotonic() < deadline:
        time.sleep(0.02)
    assert not net_server.server.sessions


def test_admission_control_rejects_over_capacity():
    with ServerThread(NetServer(max_sessions=2, admission_timeout=0.2)) as handle:
        first = NetConnection("127.0.0.1", handle.port)
        second = NetConnection("127.0.0.1", handle.port)
        try:
            with pytest.raises(NetworkError, match="capacity"):
                NetConnection("127.0.0.1", handle.port)
        finally:
            first.close()
            second.close()
        # Capacity frees up once a session disconnects.
        import time

        deadline = time.monotonic() + 5
        third = None
        while third is None:
            try:
                third = NetConnection("127.0.0.1", handle.port)
            except NetworkError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)
        assert third.hello["server"] == "encdbdb"
        third.close()


def test_concurrent_provisioning_single_winner(accounting_server):
    """Many clients racing to provision: the channel handshake is serialized
    by the provisioning lock, and every client ends up with a working
    session (same deterministic SKDB from the shared seed)."""
    port = accounting_server.port

    def connect_and_count(i: int) -> int:
        with EncDBDBSystem.connect("127.0.0.1", port, seed=0, provision=None) as s:
            s.execute(f"CREATE TABLE race{i} (v ED1 INTEGER)")
            s.execute(f"INSERT INTO race{i} VALUES ({i})")
            return s.query(f"SELECT v FROM race{i} WHERE v = {i}").scalar()

    with ThreadPoolExecutor(max_workers=4) as pool:
        assert list(pool.map(connect_and_count, range(4))) == list(range(4))

"""Shared fixtures for the network-layer tests: live TCP servers."""

from __future__ import annotations

import pytest

from repro.net.server import NetServer, ServerThread
from repro.server.dbms import EncDBDBServer
from repro.sgx.cache import FastPathConfig


@pytest.fixture
def net_server():
    """A running TCP server on an ephemeral port (default DBMS config)."""
    with ServerThread(NetServer(max_sessions=16)) as handle:
        yield handle


@pytest.fixture
def accounting_server():
    """A server with the fast path disabled: enclave counters are exactly
    the paper's sequential cost model, so concurrency tests can assert
    additivity without cache-eviction noise."""
    dbms = EncDBDBServer(fastpath=FastPathConfig.disabled())
    with ServerThread(NetServer(dbms, max_sessions=16)) as handle:
        yield handle

"""Wire codec and framing tests (no sockets involved)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import AttestationError, ProtocolError
from repro.net.protocol import (
    HEADER,
    MAGIC,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameType,
    decode_payload,
    encode_frame,
    encode_payload,
    parse_header,
    read_frame,
)
from repro.columnstore.types import ColumnSpec, parse_type
from repro.encdict.options import ED1, ED5, kind_by_name
from repro.sgx.attestation import Quote
from repro.sql.ast_nodes import Aggregate, OrderItem
from repro.sql.planner import (
    EncryptedRangeFilter,
    FilterNode,
    PostProcessing,
    RangeFilter,
    SelectPlan,
)
from repro.sql.result import ResultColumn, ServerResult


def roundtrip(value):
    return decode_payload(encode_payload(value))


# ----------------------------------------------------------------------
# Scalar and container round trips
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        False,
        0,
        -1,
        2**2048 - 1,  # a DH public value
        -(2**70),
        3.25,
        "hello",
        "späße",
        b"\x00\xffciphertext",
        [1, "two", None],
        (1, 2, 3),
        {"a": 1, 2: "b", b"k": [True]},
        {"nested": {"deep": [(1, b"x")]}},
    ],
)
def test_scalar_roundtrip(value):
    assert roundtrip(value) == value


def test_tuple_and_list_are_distinguished():
    assert roundtrip((1, 2)) == (1, 2)
    assert isinstance(roundtrip((1, 2)), tuple)
    assert isinstance(roundtrip([1, 2]), list)


@pytest.mark.parametrize(
    "array",
    [
        np.arange(10, dtype=np.int64),
        np.array([], dtype=np.int32),
        np.arange(6, dtype=np.float64).reshape(2, 3),
        np.frombuffer(b"\x01\x00\xfe", dtype=np.uint8),
    ],
)
def test_ndarray_roundtrip(array):
    decoded = roundtrip(array)
    assert decoded.dtype == array.dtype
    assert decoded.shape == array.shape
    assert np.array_equal(decoded, array)


def test_numpy_scalars_decay_to_python():
    assert roundtrip(np.int64(7)) == 7
    assert isinstance(roundtrip(np.int64(7)), int)
    assert roundtrip(np.float64(1.5)) == 1.5


def test_object_dtype_rejected():
    with pytest.raises(ProtocolError):
        encode_payload(np.array([object()], dtype=object))


# ----------------------------------------------------------------------
# Registered dataclasses
# ----------------------------------------------------------------------


def test_column_spec_roundtrip():
    spec = ColumnSpec("age", parse_type("INTEGER"), ED1)
    decoded = roundtrip(spec)
    assert decoded.name == "age"
    assert decoded.protection is ED1
    assert decoded.value_type.sql_name == "INTEGER"
    assert decoded.bsmax == spec.bsmax

    varchar = ColumnSpec("name", parse_type("VARCHAR(30)"), ED5, 4)
    decoded = roundtrip(varchar)
    assert decoded.bsmax == 4
    assert decoded.value_type.sql_name == "VARCHAR(30)"


def test_kind_roundtrip():
    assert roundtrip(ED5) is kind_by_name("ED5")


def test_select_plan_roundtrip():
    plan = SelectPlan(
        table="people",
        needed_columns=["name", "age"],
        filter=FilterNode(
            "and",
            [
                EncryptedRangeFilter("name", (b"\x01tau-lo", b"\x02tau-hi"), False),
                RangeFilter("age", 30, True, 50, False, False),
            ],
        ),
        post=PostProcessing(
            items=[Aggregate("count", "*")],
            group_by=["name"],
            order_by=[OrderItem("name", True)],
            limit=5,
            distinct=True,
        ),
    )
    decoded = roundtrip(plan)
    assert decoded.table == "people"
    assert decoded.filter.operator == "and"
    assert decoded.filter.children[0].tau == (b"\x01tau-lo", b"\x02tau-hi")
    assert decoded.post.order_by[0].descending is True
    assert decoded.post.items[0].function == "count"


def test_server_result_roundtrip():
    result = ServerResult(
        table_name="t",
        record_ids=np.array([3, 1, 4], dtype=np.int64),
        columns={
            "c": ResultColumn("t", "c", True, [b"ct-1", b"ct-2", b"ct-3"]),
        },
    )
    decoded = roundtrip(result)
    assert np.array_equal(decoded.record_ids, result.record_ids)
    assert decoded.columns["c"].encrypted is True
    assert decoded.columns["c"].data == [b"ct-1", b"ct-2", b"ct-3"]


def test_unregistered_type_rejected_on_encode():
    class Unknown:
        pass

    with pytest.raises(ProtocolError, match="not registered"):
        encode_payload(Unknown())


def test_unregistered_type_rejected_on_decode():
    # Hand-craft an object frame naming a type the registry does not know.
    out = bytearray([0x0B])  # _T_OBJECT
    name = b"EvilType"
    out += len(name).to_bytes(4, "big") + name
    out += (0).to_bytes(4, "big")
    with pytest.raises(ProtocolError, match="unregistered wire type"):
        decode_payload(bytes(out))


def test_unexpected_field_rejected_on_decode():
    # A registered wire type with a field outside its allowlist must not
    # decode (no attribute smuggling through known types).
    out = bytearray([0x0B])  # _T_OBJECT
    name = b"OrderItem"
    out += len(name).to_bytes(4, "big") + name
    out += (1).to_bytes(4, "big")
    field = b"__class__"
    out += len(field).to_bytes(4, "big") + field
    out += encode_payload("repro.evil")
    with pytest.raises(ProtocolError, match="unexpected field"):
        decode_payload(bytes(out))


# ----------------------------------------------------------------------
# Quotes
# ----------------------------------------------------------------------


def test_quote_wire_roundtrip():
    quote = Quote(
        measurement=b"m" * 32, report_data=b"r" * 256, signature=b"sig-bytes"
    )
    decoded = roundtrip(quote)
    assert decoded.measurement == quote.measurement
    assert decoded.report_data == quote.report_data
    assert decoded.signature == quote.signature


def test_quote_from_wire_rejects_truncation():
    quote = Quote(measurement=b"m" * 32, report_data=b"r" * 256, signature=b"s" * 4)
    wire = quote.to_wire()
    with pytest.raises(AttestationError):
        Quote.from_wire(wire[:-1])
    with pytest.raises(AttestationError):
        Quote.from_wire(wire + b"\x00")


# ----------------------------------------------------------------------
# Framing and hostile input
# ----------------------------------------------------------------------


def test_frame_roundtrip():
    payload = encode_payload({"method": "table_names"})
    frame = encode_frame(FrameType.QUERY, payload)
    chunks = [frame]

    def read_exact(n):
        data = chunks[0][:n]
        chunks[0] = chunks[0][n:]
        return data

    frame_type, raw = read_frame(read_exact)
    assert frame_type is FrameType.QUERY
    assert decode_payload(raw) == {"method": "table_names"}


def test_bad_magic_rejected():
    with pytest.raises(ProtocolError, match="magic"):
        parse_header(b"HTTP" + bytes(HEADER.size - 4))


def test_version_mismatch_rejected():
    header = HEADER.pack(MAGIC, PROTOCOL_VERSION + 1, int(FrameType.HELLO), 0)
    with pytest.raises(ProtocolError, match="version mismatch"):
        parse_header(header)


def test_unknown_frame_type_rejected():
    header = HEADER.pack(MAGIC, PROTOCOL_VERSION, 99, 0)
    with pytest.raises(ProtocolError, match="unknown frame type"):
        parse_header(header)


def test_oversized_announcement_rejected():
    header = HEADER.pack(
        MAGIC, PROTOCOL_VERSION, int(FrameType.QUERY), MAX_FRAME_BYTES + 1
    )
    with pytest.raises(ProtocolError, match="exceeds"):
        parse_header(header)


def test_truncated_payload_rejected():
    payload = encode_payload([1, 2, 3])
    with pytest.raises(ProtocolError):
        decode_payload(payload[:-1])


def test_trailing_bytes_rejected():
    with pytest.raises(ProtocolError, match="trailing"):
        decode_payload(encode_payload(1) + b"\x00")


def test_huge_collection_count_rejected_before_allocation():
    # A list header claiming 2**31 elements in a 5-byte payload.
    evil = bytes([0x07]) + (2**31).to_bytes(4, "big")
    with pytest.raises(ProtocolError, match="count exceeds"):
        decode_payload(evil)


def test_nesting_depth_bounded():
    evil = bytes([0x07]) + (1).to_bytes(4, "big")  # [ [ [ ...
    payload = evil * 100 + bytes([0x00])
    with pytest.raises(ProtocolError, match="nesting too deep"):
        decode_payload(payload)

"""Bulk loads must not starve concurrent sessions (PR 4).

``bulk_load`` performs no enclave calls — the data owner ships finished
ciphertext — so the net server runs it off the ecall lock. The regression
here: while one session's (artificially slow) load is in flight, a query
on another session completes.
"""

from __future__ import annotations

import threading
import time

from repro.client.session import EncDBDBSystem
from repro.net.server import LOCK_FREE_METHODS


def test_query_completes_while_large_load_is_in_flight(net_server):
    dbms = net_server.server.dbms
    port = net_server.port

    with EncDBDBSystem.connect("127.0.0.1", port, seed=0) as loader:
        loader.execute("CREATE TABLE small (k ED1 INTEGER)")
        loader.bulk_load("small", {"k": [1, 2, 3, 4, 5]})
        loader.execute("CREATE TABLE big (k ED1 INTEGER)")

        load_started = threading.Event()
        release_load = threading.Event()
        original_bulk_load = dbms.bulk_load

        def slow_bulk_load(*args, **kwargs):
            load_started.set()
            assert release_load.wait(20), "test never released the load"
            return original_bulk_load(*args, **kwargs)

        dbms.bulk_load = slow_bulk_load
        try:
            load_result: list = []

            def run_load() -> None:
                load_result.append(
                    loader.bulk_load("big", {"k": list(range(100))})
                )

            load_thread = threading.Thread(target=run_load)
            load_thread.start()
            assert load_started.wait(10), "load RPC never reached the DBMS"

            # The load is parked inside its RPC. A second session's query
            # must still go through the (free) ecall lock and finish.
            with EncDBDBSystem.connect("127.0.0.1", port, seed=0) as reader:
                started = time.monotonic()
                rows = reader.query("SELECT k FROM small WHERE k <= 3").rows
                elapsed = time.monotonic() - started
            assert sorted(r[0] for r in rows) == [1, 2, 3]
            assert load_thread.is_alive(), "query should finish mid-load"
            assert elapsed < 10

            release_load.set()
            load_thread.join(20)
            assert not load_thread.is_alive()
            assert load_result == [100]
        finally:
            release_load.set()
            dbms.bulk_load = original_bulk_load

    # And the loaded table is fully queryable afterwards.
    with EncDBDBSystem.connect("127.0.0.1", port, seed=0) as check:
        rows = check.query("SELECT k FROM big WHERE k < 10").rows
        assert sorted(r[0] for r in rows) == list(range(10))


def test_bulk_load_is_declared_lock_free():
    assert "bulk_load" in LOCK_FREE_METHODS
    # Everything touching the enclave stays serialized.
    assert "execute_select" not in LOCK_FREE_METHODS
    assert "execute_merge" not in LOCK_FREE_METHODS

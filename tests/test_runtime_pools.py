"""The shared worker-pool registry: naming, growth, idempotent teardown."""

from __future__ import annotations

import threading

from repro.runtime import (
    BUILD_THREAD_POOL,
    SCAN_POOL,
    active_pool,
    map_on_build_pool,
    pool_workers,
    shared_pool,
    shutdown_pool,
    shutdown_pools,
)


def setup_function(_):
    shutdown_pools()


def teardown_function(_):
    shutdown_pools()


def test_named_pools_are_independent():
    scan = shared_pool(SCAN_POOL, 2)
    build = shared_pool(BUILD_THREAD_POOL, 3)
    assert scan is not build
    assert pool_workers(SCAN_POOL) == 2
    assert pool_workers(BUILD_THREAD_POOL) == 3
    shutdown_pool(SCAN_POOL)
    assert active_pool(SCAN_POOL) is None
    assert active_pool(BUILD_THREAD_POOL) is build


def test_pool_grows_upward_and_never_shrinks():
    small = shared_pool(SCAN_POOL, 2)
    assert shared_pool(SCAN_POOL, 2) is small
    big = shared_pool(SCAN_POOL, 5)
    assert big is not small
    assert shared_pool(SCAN_POOL, 3) is big  # fewer workers: reuse
    assert pool_workers(SCAN_POOL) == 5


def test_shutdown_is_idempotent():
    shared_pool(SCAN_POOL, 2)
    shutdown_pools()
    shutdown_pools()  # second call is a no-op
    shutdown_pool(SCAN_POOL)  # and so is a late single-name call
    assert pool_workers(SCAN_POOL) == 0


def test_concurrent_create_and_shutdown_never_deadlocks_or_leaks():
    """Hammer the registry from 8 threads mixing creation and teardown.

    Every surviving executor must still accept work afterwards — i.e. no
    thread ever observed a half-torn-down pool.
    """
    errors: list[BaseException] = []

    def worker(seed: int):
        try:
            for i in range(30):
                pool = shared_pool(SCAN_POOL, 1 + (seed + i) % 4)
                try:
                    pool.submit(int, "7").result()
                except RuntimeError:
                    # racing teardown shut this executor down; the next
                    # shared_pool() call returns a live one
                    pass
                if i % 10 == seed % 10:
                    shutdown_pools(wait=False)
        except BaseException as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    final = shared_pool(SCAN_POOL, 2)
    assert final.submit(int, "42").result() == 42


def test_map_on_build_pool_matches_serial_results():
    items = list(range(40))
    assert map_on_build_pool(lambda x: x * x, items, max_workers=4) == [
        x * x for x in items
    ]
    # degenerate fan-outs take the serial path but give identical results
    assert map_on_build_pool(lambda x: x + 1, [7], max_workers=8) == [8]
    assert map_on_build_pool(lambda x: x + 1, items, max_workers=1) == [
        x + 1 for x in items
    ]


def test_pipeline_reexports_still_work():
    from repro.encdict.pipeline import map_on_build_pool as reexported
    from repro.encdict.pipeline import shutdown_build_pools

    assert reexported is map_on_build_pool
    shared_pool(BUILD_THREAD_POOL, 2)
    shutdown_build_pools()
    assert active_pool(BUILD_THREAD_POOL) is None

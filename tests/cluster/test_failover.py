"""Replica failover: killing one of two replicas must not change results."""

from __future__ import annotations

import time

import pytest

from repro.cluster import ClusterSystem
from repro.exceptions import ClusterError
from repro.net import RetryPolicy

from tests.cluster.conftest import live_cluster

ROWS = 42
VALUES = [(i * 11) % 17 for i in range(ROWS)]
SQL = "SELECT id FROM t WHERE v BETWEEN 4 AND 12"

# Dead-endpoint detection should be quick: one connect attempt, no backoff.
IMPATIENT = RetryPolicy.none()


def _load(system) -> None:
    system.execute("CREATE TABLE t (id INTEGER, v ED3 INTEGER)")
    system.bulk_load(
        "t",
        {"id": list(range(ROWS)), "v": list(VALUES)},
        partition_rows=6,
    )


def _expected():
    return sorted(i for i, v in enumerate(VALUES) if 4 <= v <= 12)


def test_query_survives_primary_crash():
    """2 shards x 2 replicas; shard 1 loses its primary mid-session."""
    with live_cluster(2, replicas=1) as handles:
        with ClusterSystem.connect(
            handles.shard_map, seed=5, retry=IMPATIENT
        ) as cluster:
            _load(cluster)
            expected = _expected()
            assert sorted(cluster.query(SQL).column("id")) == expected
            handles.stop(1, replica=0)  # crash shard 1's primary
            # The router retries the shard on its replica — same rows, same
            # padded union, RecordIDs rebased identically.
            assert sorted(cluster.query(SQL).column("id")) == expected
            # Failover is sticky: subsequent queries keep working too.
            assert sorted(cluster.query(SQL).column("id")) == expected


def test_query_survives_replica_crash_of_every_shard():
    with live_cluster(2, replicas=1) as handles:
        with ClusterSystem.connect(
            handles.shard_map, seed=5, retry=IMPATIENT
        ) as cluster:
            _load(cluster)
            handles.stop(0, replica=1)
            handles.stop(1, replica=1)
            assert sorted(cluster.query(SQL).column("id")) == _expected()


def test_losing_every_endpoint_of_a_shard_is_a_loud_error():
    with live_cluster(2, replicas=1) as handles:
        with ClusterSystem.connect(
            handles.shard_map, seed=5, retry=IMPATIENT
        ) as cluster:
            _load(cluster)
            handles.stop(1, replica=0)
            handles.stop(1, replica=1)
            with pytest.raises(ClusterError, match="every endpoint failed"):
                cluster.query(SQL)


def test_restarted_replica_rejoins_rotation():
    """Kill a replica, boot a fresh keyed server on its port: it must pick
    up subsequent writes and re-enter the read rotation — proven by killing
    the primary afterwards, leaving the rejoined replica as the only copy."""
    with live_cluster(2, replicas=1) as handles:
        with ClusterSystem.connect(
            handles.shard_map, seed=5, retry=IMPATIENT, probe_interval=0.05
        ) as cluster:
            handles.stop(1, replica=1)
            handles.restart(1, replica=1, key_from=(1, 0))
            time.sleep(0.1)  # past the probe interval
            _load(cluster)  # broadcasts reach the restarted server
            expected = _expected()
            # Round-robin over healthy endpoints must include the rejoined
            # replica; every rotation position answers identically.
            for _ in range(4):
                assert sorted(cluster.query(SQL).column("id")) == expected
            cluster.execute("INSERT INTO t VALUES (999, 8)")
            handles.stop(1, replica=0)  # only the rejoined replica remains
            assert sorted(cluster.query(SQL).column("id")) == expected + [999]


def test_writes_reach_surviving_replica():
    """An insert broadcast still lands when the tail primary is down."""
    with live_cluster(2, replicas=1) as handles:
        with ClusterSystem.connect(
            handles.shard_map, seed=5, retry=IMPATIENT
        ) as cluster:
            _load(cluster)
            handles.stop(1, replica=0)  # shard 1 owns the table's tail
            cluster.execute("INSERT INTO t VALUES (999, 8)")
            got = sorted(cluster.query(SQL).column("id"))
            assert got == _expected() + [999]

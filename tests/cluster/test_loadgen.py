"""Unit tests for the load-test harness (no network required)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.cluster import LoadGenerator, percentile


def test_percentile_nearest_rank():
    values = [float(v) for v in range(1, 101)]
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 0.50) == 51.0
    assert percentile(values, 0.99) == 99.0
    assert percentile(values, 1.0) == 100.0
    assert percentile([], 0.5) == 0.0
    with pytest.raises(ValueError):
        percentile(values, 1.5)


def test_run_completes_every_request_and_orders_latencies():
    seen = set()
    lock = threading.Lock()

    def issue(client_id, seq):
        with lock:
            seen.add((client_id, seq))

    stats = LoadGenerator(issue, clients=8, requests_per_client=3).run()
    assert stats.completed == 24
    assert stats.errors == 0
    assert len(seen) == 24
    assert stats.throughput_qps > 0
    assert 0 <= stats.p50_ms <= stats.p99_ms <= stats.max_ms
    summary = stats.as_dict()
    assert summary["completed"] == 24
    assert summary["first_error"] is None
    assert "latencies_ms" not in summary


def test_admission_control_bounds_inflight_requests():
    limit = 3
    inflight = 0
    peak = 0
    lock = threading.Lock()

    def issue(client_id, seq):
        nonlocal inflight, peak
        with lock:
            inflight += 1
            peak = max(peak, inflight)
        time.sleep(0.002)
        with lock:
            inflight -= 1

    stats = LoadGenerator(
        issue, clients=12, requests_per_client=2, max_inflight=limit
    ).run()
    assert stats.completed == 24
    assert peak <= limit
    assert stats.max_inflight == limit


def test_errors_are_counted_not_raised():
    def issue(client_id, seq):
        if client_id == 0:
            raise RuntimeError("boom")
        return "ok"

    stats = LoadGenerator(issue, clients=4, requests_per_client=2).run()
    assert stats.completed == 6
    assert stats.errors == 2
    assert "RuntimeError: boom" in stats.first_error


def test_check_hook_failures_count_as_errors():
    def issue(client_id, seq):
        return seq

    def check(client_id, seq, response):
        if response == 1:
            raise AssertionError("wrong answer")

    stats = LoadGenerator(
        issue, clients=3, requests_per_client=2, check=check
    ).run()
    assert stats.errors == 3
    assert stats.completed == 3
    assert "wrong answer" in stats.first_error


def test_rejects_degenerate_fleet():
    with pytest.raises(ValueError):
        LoadGenerator(lambda c, s: None, clients=0)
    with pytest.raises(ValueError):
        LoadGenerator(lambda c, s: None, requests_per_client=0)

"""Cluster analytics pushdown (PR 9): partial aggregates merge across
shards, and disagreeing shard cost gates degrade to row shipping — never
to a refusal."""

from __future__ import annotations

import random

import pytest

from repro.cluster import ClusterSystem

from tests.cluster.conftest import FAST_RETRY, live_cluster

GROUPS = ("ga", "gb", "gc", "gd")


@pytest.fixture(scope="module")
def cluster():
    with live_cluster(2) as handles:
        with ClusterSystem.connect(
            handles.shard_map, seed=17, retry=FAST_RETRY
        ) as system:
            rng = random.Random("cluster-pushdown")
            system.execute(
                "CREATE TABLE t (g ED1 VARCHAR(4), m ED1 INTEGER, "
                "v ED1 INTEGER)"
            )
            rows = 1200
            system.bulk_load(
                "t",
                {
                    "g": [rng.choice(GROUPS) for _ in range(rows)],
                    "m": [rng.randrange(0, 40) for _ in range(rows)],
                    # strictly increasing: the row span maps to a value
                    # range, so a filter can hit exactly one shard
                    "v": list(range(rows)),
                },
                partition_rows=300,  # 4 partitions -> spans 2/2
            )
            yield system


def _both(system, sql: str):
    proxy = system.proxy
    proxy.enable_pushdown(False)
    reference = system.query(sql).rows
    proxy.enable_pushdown(True)
    try:
        pushed = system.query(sql).rows
        decisions = proxy.last_pushdown or ()
    finally:
        proxy.enable_pushdown(False)
    return reference, pushed, decisions


def _cluster_decision(decisions):
    return next((d for d in decisions if d.clause == "cluster"), None)


def test_cross_shard_partial_aggregates_merge(cluster):
    sql = (
        "SELECT g, COUNT(*), SUM(m), AVG(m), MIN(m), MAX(m) FROM t GROUP BY g"
    )
    reference, pushed, decisions = _both(cluster, sql)
    assert sorted(pushed) == sorted(reference)
    gather = _cluster_decision(decisions)
    assert gather is not None and gather.pushed
    assert "scatter over 2 shard(s)" in gather.reason
    assert any(d.clause == "aggregate" and d.pushed for d in decisions)


def test_cross_shard_global_aggregate(cluster):
    reference, pushed, decisions = _both(
        cluster, "SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM t"
    )
    assert pushed == reference == [(1200, sum(range(1200)), 0, 1199)]
    gather = _cluster_decision(decisions)
    assert gather is not None and gather.pushed


def test_disagreeing_shards_fall_back_to_row_shipping(cluster):
    """``v <= 500`` matches rows on shard 0 only; shard 0's gate pushes,
    shard 1 sees zero matching rows and routes proxy-side. The router must
    re-issue as row shipping (EXPLAIN-noted), not refuse the query."""
    sql = "SELECT g, COUNT(*), SUM(m) FROM t WHERE v <= 500 GROUP BY g"
    reference, pushed, decisions = _both(cluster, sql)
    assert sorted(pushed) == sorted(reference)
    gather = _cluster_decision(decisions)
    assert gather is not None and not gather.pushed
    assert "pushdown-fallback" in gather.reason
    # After the fallback every clause decision reads as proxy-side.
    assert all(not d.pushed for d in decisions)


def test_cluster_explain_notes_scatter(cluster):
    proxy = cluster.proxy
    proxy.enable_pushdown()
    try:
        text = cluster.explain("SELECT g, COUNT(*) FROM t GROUP BY g")
    finally:
        proxy.enable_pushdown(False)
    assert "pushdown:" in text
    assert "aggregate -> enclave" in text
    assert "cluster ->" in text and "scatter over 2 shard(s)" in text

"""Key replication never puts secrets — or data-layout hints — on the wire.

A frame tap records every byte every router connection sends or receives.
During cluster provisioning the untrusted relay (and the network) must see
nothing but handshake material: DH publics, one quote, PAE ciphertext. In
particular ``SKDB`` itself must never cross in the clear, and replication
traffic must not mention tables or partitions (the key hand-off is
layout-oblivious).
"""

from __future__ import annotations

from repro.client.owner import DataOwner
from repro.cluster import ClusterCoordinator, ClusterSystem
from repro.crypto.drbg import HmacDrbg
from repro.net.protocol import FrameType

from tests.cluster.conftest import FAST_RETRY, live_cluster


class FrameLog:
    def __init__(self) -> None:
        self.frames: list[tuple[str, FrameType, bytes]] = []

    def __call__(self, direction: str, frame_type: FrameType, raw: bytes):
        self.frames.append((direction, frame_type, raw))

    def payloads(self) -> list[bytes]:
        return [raw for _, _, raw in self.frames]


def test_provisioning_frames_carry_only_channel_material():
    tap = FrameLog()
    with live_cluster(2, replicas=1) as handles:
        owner = DataOwner(rng=HmacDrbg(2024).fork("owner"))
        coordinator = ClusterCoordinator(
            handles.shard_map, owner, retry=FAST_RETRY, tap=tap
        )
        try:
            assert coordinator.provision() == 4  # one primary + 3 hand-offs
        finally:
            coordinator.close()

    assert tap.frames, "tap saw no traffic"
    replication_frames = [
        raw for raw in tap.payloads() if b"enclave_replicate_key" in raw
    ]
    assert len(replication_frames) >= 3  # one hand-off per secondary
    for raw in tap.payloads():
        # SKDB must never cross in the clear — not in the owner's own
        # provisioning, not in any primary-to-replica hand-off.
        assert owner.master_key not in raw
        # Replication is layout-oblivious: no table/partition structure is
        # negotiated or leaked while keys move.
        assert b"partition" not in raw
        assert b"bulk_load" not in raw
        assert b"create_table" not in raw
        assert b"execute_" not in raw


def test_master_key_never_crosses_during_a_full_lifecycle():
    """DDL + bulk load + queries: SKDB stays off the wire end to end."""
    tap = FrameLog()
    rows = 24
    with live_cluster(2) as handles:
        with ClusterSystem.connect(
            handles.shard_map, seed=77, retry=FAST_RETRY, tap=tap
        ) as cluster:
            key = cluster.owner.master_key
            cluster.execute("CREATE TABLE t (id INTEGER, v ED5 INTEGER)")
            cluster.bulk_load(
                "t",
                {"id": list(range(rows)), "v": [i % 9 for i in range(rows)]},
                partition_rows=6,
            )
            cluster.query("SELECT id FROM t WHERE v BETWEEN 2 AND 6")
    assert len(tap.frames) > 20
    for raw in tap.payloads():
        assert key not in raw


def test_plaintext_of_encrypted_columns_stays_off_the_wire():
    """The ED column's values cross only as ciphertext dictionaries."""
    tap = FrameLog()
    # Distinctive plaintext values: any accidental cleartext encoding of
    # the column (packed ints, decimal strings) would contain these bytes.
    sentinel = 0x5A5A5A5A
    values = [sentinel + i for i in range(12)]
    with live_cluster(1) as handles:
        with ClusterSystem.connect(
            handles.shard_map, seed=3, retry=FAST_RETRY, tap=tap
        ) as cluster:
            cluster.execute("CREATE TABLE t (v ED1 INTEGER)")
            cluster.bulk_load("t", {"v": values}, partition_rows=6)
            cluster.query(
                f"SELECT v FROM t WHERE v BETWEEN {sentinel} AND {sentinel + 20}"
            )
    import struct

    for value in values[:3]:
        for pattern in (
            struct.pack("<q", value),
            struct.pack(">q", value),
            str(value).encode(),
        ):
            assert all(pattern not in raw for raw in tap.payloads()), value

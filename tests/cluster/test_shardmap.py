"""Unit tests for the pure-data shard map: spans, row bases, ownership."""

from __future__ import annotations

import pytest

from repro.cluster import Endpoint, Shard, ShardMap, assign_spans
from repro.exceptions import ClusterError


def _map(shards: int) -> ShardMap:
    return ShardMap.of_endpoints(
        [[("127.0.0.1", 9000 + shard)] for shard in range(shards)]
    )


@pytest.mark.parametrize("total_rows", [1, 6, 42, 100, 101])
@pytest.mark.parametrize("partition_rows", [1, 6, 40])
@pytest.mark.parametrize("shard_count", [1, 2, 3, 5])
def test_assign_spans_is_a_contiguous_cover(
    total_rows, partition_rows, shard_count
):
    spans = assign_spans(total_rows, partition_rows, shard_count)
    assert len(spans) == shard_count
    partition_count = -(-total_rows // partition_rows)
    assert spans[0][0] == 0
    assert spans[-1][1] == partition_count
    for (_, hi, base, rows), (next_lo, _, next_base, _) in zip(
        spans, spans[1:]
    ):
        assert hi == next_lo  # no gap, no overlap
        assert base + rows == next_base
    assert sum(rows for _, _, _, rows in spans) == total_rows


def test_row_bases_match_partition_boundaries():
    # 42 rows / 6 per partition = 7 partitions over 3 shards: 2 + 2 + 3.
    spans = assign_spans(42, 6, 3)
    assert spans == [(0, 2, 0, 12), (2, 4, 12, 12), (4, 7, 24, 18)]


def test_short_final_partition_rows_are_counted_exactly():
    # 40 rows / 6 per partition = 7 partitions, the last holding 4 rows.
    spans = assign_spans(40, 6, 3)
    assert sum(rows for *_, rows in spans) == 40
    assert spans[-1] == (4, 7, 24, 16)


def test_more_shards_than_partitions_leaves_empty_spans():
    shard_map = _map(5)
    assignment = shard_map.assign("t", 10, 5)  # 2 partitions, 5 shards
    populated = assignment.populated_spans()
    assert len(populated) == 2
    assert all(span.partitions == 1 for span in populated)
    assert assignment.last_span() is populated[-1]


def test_span_for_row_maps_main_and_delta_ids():
    shard_map = _map(3)
    assignment = shard_map.assign("t", 42, 6)
    assert assignment.span_for_row(0).shard_id == 0
    assert assignment.span_for_row(11).shard_id == 0
    assert assignment.span_for_row(12).shard_id == 1
    assert assignment.span_for_row(41).shard_id == 2
    # Delta RecordIDs (>= total_rows) live with the tail span.
    assert assignment.span_for_row(42).shard_id == 2
    assert assignment.span_for_row(10_000).shard_id == 2


def test_assignment_errors():
    shard_map = _map(2)
    shard_map.assign("t", 10, 5)
    with pytest.raises(ClusterError, match="already assigned"):
        shard_map.assign("t", 10, 5)
    shard_map.drop("t")
    assert shard_map.assignment("t") is None
    with pytest.raises(ClusterError):
        assign_spans(0, 5, 2)
    with pytest.raises(ClusterError):
        assign_spans(10, 0, 2)


def test_shard_map_validates_topology():
    with pytest.raises(ClusterError, match="at least one shard"):
        ShardMap([])
    with pytest.raises(ClusterError, match="contiguous"):
        ShardMap([Shard(1, (Endpoint("h", 1),))])
    with pytest.raises(ClusterError, match="no endpoints"):
        Shard(0, ())


def test_primary_and_replicas_split():
    shard = Shard(0, (Endpoint("a", 1), Endpoint("b", 2), Endpoint("c", 3)))
    assert shard.primary.address == "a:1"
    assert [endpoint.address for endpoint in shard.replicas] == ["b:2", "c:3"]

"""Scatter-gather leaves the leakage contract intact (DESIGN.md §15).

The same paired-dataset discipline as ``tests/security/test_leak_oracle.py``
applied to the cluster path: a value-shift pair (identical histogram and
order, every value and query bound displaced by a constant) must produce
the *same multiset* of provider-observable events — ecall shapes on every
shard plus wire-frame byte sizes — across a live two-shard scatter-gather
deployment. Event order is compared as a sorted multiset because scatter
fan-out interleaves server threads nondeterministically.

One kind per repetition option keeps the topology cost bounded: ED1
(revealing/sorted), ED5 (smoothing/rotated), ED9 (hiding/unsorted) cover
the leakage lattice's diagonal.
"""

from __future__ import annotations

import pytest

from repro.analysis.leakoracle import capture_trace
from repro.cluster import ClusterSystem

from tests.cluster.conftest import FAST_RETRY, live_cluster

KINDS = ("ED1", "ED5", "ED9")
VALUES = [110 + 5 * (i % 12) for i in range(24)]
PARTITION_ROWS = 6  # 4 partitions -> 2 spans on a 2-shard cluster


def run_cluster_workload(kind: str, shift: int = 0):
    with capture_trace() as trace:
        with live_cluster(2) as handles:
            with ClusterSystem.connect(
                handles.shard_map, seed=11, retry=FAST_RETRY
            ) as system:
                system.execute(
                    f"CREATE TABLE t (v {kind} INTEGER BSMAX 4)"
                )
                system.bulk_load(
                    "t",
                    {"v": [value + shift for value in VALUES]},
                    partition_rows=PARTITION_ROWS,
                )
                system.query(
                    f"SELECT v FROM t WHERE v >= {120 + shift} "
                    f"AND v <= {140 + shift}"
                )
                system.query(f"SELECT v FROM t WHERE v > {1000 + shift}")
    return trace


def as_multiset(trace):
    return sorted((e.channel, e.name, repr(e.shape)) for e in trace)


@pytest.mark.parametrize("kind", KINDS)
def test_cluster_value_shift_pair_is_trace_identical(kind):
    baseline = as_multiset(run_cluster_workload(kind))
    shifted = as_multiset(run_cluster_workload(kind, shift=1000))
    assert baseline == shifted

"""Shared fixtures for the cluster tests: live multi-server topologies.

``live_cluster`` stands up one real TCP server per endpoint (each with its
own simulated enclave) and yields the matching :class:`ShardMap`. The
returned handle list allows tests to kill individual servers for failover
scenarios.
"""

from __future__ import annotations

import contextlib

import pytest

from repro.cluster import ShardMap
from repro.net import NetServer, RetryPolicy, ServerThread
from repro.server.dbms import EncDBDBServer


# Tests should fail fast, not sit through production-sized backoff.
FAST_RETRY = RetryPolicy(attempts=3, base_delay=0.02, max_delay=0.2)


class ClusterHandles:
    """The live servers of one topology, addressable by (shard, replica)."""

    def __init__(self) -> None:
        self.by_endpoint: dict[tuple[int, int], ServerThread] = {}
        self.ports: dict[tuple[int, int], int] = {}
        self.shard_map: ShardMap | None = None

    def stop(self, shard_id: int, replica: int = 0) -> None:
        """Kill one server (primary is replica 0) to simulate a crash."""
        self.by_endpoint.pop((shard_id, replica)).__exit__(None, None, None)

    def restart(
        self,
        shard_id: int,
        replica: int = 0,
        *,
        key_from: tuple[int, int] | None = None,
    ) -> None:
        """Boot a fresh server on a stopped endpoint's original port.

        The replacement is a brand-new process-equivalent: empty catalog,
        unkeyed enclave. ``key_from`` (another live (shard, replica)) pulls
        ``SKDB`` enclave-to-enclave before serving, like
        ``repro.cli serve --replica-of``.
        """
        key = (shard_id, replica)
        if key in self.by_endpoint:
            raise AssertionError(f"endpoint {key} is still running")
        dbms = EncDBDBServer()
        if key_from is not None:
            from repro.cluster import pull_master_key_from

            source = self.by_endpoint[key_from]
            pull_master_key_from(dbms, "127.0.0.1", source.port)
        handle = ServerThread(
            NetServer(
                dbms,
                port=self.ports[key],
                max_sessions=32,
                shard=shard_id,
            )
        )
        handle.__enter__()
        self.by_endpoint[key] = handle


@contextlib.contextmanager
def live_cluster(shards: int, *, replicas: int = 0, max_sessions: int = 32):
    """``shards`` servers (each plus ``replicas`` extras) on ephemeral ports."""
    handles = ClusterHandles()
    try:
        endpoints = []
        for shard_id in range(shards):
            group = []
            for replica in range(1 + replicas):
                handle = ServerThread(
                    NetServer(
                        EncDBDBServer(),
                        max_sessions=max_sessions,
                        shard=shard_id,
                    )
                )
                handle.__enter__()
                handles.by_endpoint[(shard_id, replica)] = handle
                handles.ports[(shard_id, replica)] = handle.port
                group.append(("127.0.0.1", handle.port))
            endpoints.append(group)
        handles.shard_map = ShardMap.of_endpoints(endpoints)
        yield handles
    finally:
        for handle in reversed(list(handles.by_endpoint.values())):
            handle.__exit__(None, None, None)
        handles.by_endpoint.clear()


@pytest.fixture
def fast_retry() -> RetryPolicy:
    return FAST_RETRY

"""Scatter-gather is invisible to query results.

The cluster twin of ``tests/system/test_partition_equivalence.py``: every
one of the nine ED kinds must return the *identical RecordID set* for range
queries whether the table lives on one node or is scattered over 1, 2, or 3
shards — the gathered union of per-shard padded results, rebased by span
row bases, must equal the single-node padded union exactly.
"""

from __future__ import annotations

import contextlib

import pytest

from repro import EncDBDBSystem
from repro.cluster import ClusterSystem
from repro.sql.parser import parse
from repro.sql.planner import SelectPlan

from tests.cluster.conftest import FAST_RETRY, live_cluster

KINDS = [f"ED{i}" for i in range(1, 10)]
ROWS = 42
PARTITION_ROWS = 6  # 7 partitions: spans 2/2/3 on a 3-shard cluster
SEED = 99
VALUES = [((i * 7) % 13) + 1 for i in range(ROWS)]  # 13 uniques, repeated
QUERIES = [(2, 5), (7, 7), (10, 12), (1, 13)]
SHARD_COUNTS = (1, 2, 3)


def _load(system) -> None:
    specs = ", ".join(f"c{i} {kind} INTEGER" for i, kind in enumerate(KINDS, 1))
    system.execute(f"CREATE TABLE t ({specs})")
    system.bulk_load(
        "t",
        {f"c{i}": list(VALUES) for i in range(1, 10)},
        partition_rows=PARTITION_ROWS,
    )


def _record_ids(system, sql):
    """Server-side RecordID set for ``sql``, via a manually encrypted plan."""
    plan = system.proxy._planner.plan(parse(sql))
    encrypted = SelectPlan(
        plan.table,
        plan.needed_columns,
        system.proxy._encrypt_filter(plan.table, plan.filter),
        plan.post,
    )
    return {int(rid) for rid in system.server.execute_select(encrypted).record_ids}


@pytest.fixture(scope="module")
def deployments():
    """The same seed deployed single-node and as 1/2/3-shard clusters."""
    with contextlib.ExitStack() as stack:
        single = EncDBDBSystem.create(seed=SEED)
        _load(single)
        systems = {"single": single}
        for shards in SHARD_COUNTS:
            handles = stack.enter_context(live_cluster(shards))
            cluster = stack.enter_context(
                ClusterSystem.connect(
                    handles.shard_map, seed=SEED, retry=FAST_RETRY
                )
            )
            _load(cluster)
            systems[shards] = cluster
        yield systems


def test_spans_cover_expected_partitions(deployments):
    assignment = deployments[3].router.shard_map.assignment("t")
    assert [span.partitions for span in assignment.spans] == [2, 2, 3]
    assert [span.row_base for span in assignment.spans] == [0, 12, 24]


def test_all_kinds_return_identical_record_ids_across_topologies(deployments):
    for low, high in QUERIES:
        truth = {
            rid for rid, value in enumerate(VALUES) if low <= value <= high
        }
        for index, kind in enumerate(KINDS, 1):
            sql = (
                f"SELECT c{index} FROM t WHERE c{index} "
                f"BETWEEN {low} AND {high}"
            )
            single = _record_ids(deployments["single"], sql)
            assert single == truth, kind
            for shards in SHARD_COUNTS:
                assert _record_ids(deployments[shards], sql) == truth, (
                    kind,
                    shards,
                    (low, high),
                )


def test_full_query_path_returns_identical_rows(deployments):
    sql = "SELECT c1, c5, c9 FROM t WHERE c5 BETWEEN 3 AND 9"
    expected = sorted(
        zip(*(deployments["single"].query(sql).column(c) for c in ("c1", "c5", "c9")))
    )
    for shards in SHARD_COUNTS:
        result = deployments[shards].query(sql)
        got = sorted(zip(*(result.column(c) for c in ("c1", "c5", "c9"))))
        assert got == expected, shards


def test_explain_surfaces_cluster_routing(deployments):
    text = deployments[3].explain("SELECT c1 FROM t WHERE c1 BETWEEN 2 AND 5")
    assert "cluster routing (3 shard(s))" in text
    assert "scatter over 3 shard(s), 7 partition(s)" in text
    assert "delta on shard 2" in text


def test_equivalence_holds_with_delta_rows(deployments):
    """Inserts land on the tail shard; delta RecordIDs stay global."""
    row = ", ".join(["4"] * 9)
    for system in deployments.values():
        system.execute(f"INSERT INTO t VALUES ({row})")
    sql = "SELECT c1 FROM t WHERE c1 BETWEEN 3 AND 5"
    truth = {rid for rid, value in enumerate(VALUES) if 3 <= value <= 5}
    truth.add(ROWS)  # the freshly inserted delta row
    assert _record_ids(deployments["single"], sql) == truth
    for shards in SHARD_COUNTS:
        assert _record_ids(deployments[shards], sql) == truth, shards


def test_delete_by_global_record_id_reaches_owning_shards(deployments):
    """DELETE planned from global ids must translate per shard."""
    sql = "DELETE FROM t WHERE c2 BETWEEN 6 AND 6"
    expected = deployments["single"].execute(sql)
    assert expected > 0
    for shards in SHARD_COUNTS:
        assert deployments[shards].execute(sql) == expected, shards
    check = "SELECT c2 FROM t WHERE c2 BETWEEN 1 AND 13"
    remaining = _record_ids(deployments["single"], check)
    for shards in SHARD_COUNTS:
        assert _record_ids(deployments[shards], check) == remaining, shards

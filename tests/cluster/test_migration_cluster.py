"""Online rotation across a sharded, replicated cluster.

The migrate verbs broadcast to *every* endpoint of every populated shard
(``broadcast_all`` — a replica missing a rotation would diverge, not lag),
and the deterministic rotation DRBG makes all endpoints of a shard converge
on byte-identical ciphertext without coordinating. Queries through the
scatter-gather router stay correct at every intermediate step.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSystem
from repro.columnstore.storage import encrypted_partition_frame
from repro.exceptions import ClusterError
from repro.net import RetryPolicy

from tests.cluster.conftest import live_cluster

ROWS = 48
VALUES = [(i * 5) % 21 for i in range(ROWS)]
SQL = "SELECT id FROM t WHERE v BETWEEN 4 AND 12"
IMPATIENT = RetryPolicy.none()


def _load(system) -> None:
    system.execute("CREATE TABLE t (id INTEGER, v ED3 INTEGER)")
    system.bulk_load(
        "t",
        {"id": list(range(ROWS)), "v": list(VALUES)},
        partition_rows=8,
    )


def _expected():
    return sorted(i for i, v in enumerate(VALUES) if 4 <= v <= 12)


def _column(handles, shard_id, replica):
    dbms = handles.by_endpoint[(shard_id, replica)].server.dbms
    return dbms.catalog.table("t").column("v")


def test_cluster_rotation_stays_correct_and_replicas_converge():
    with live_cluster(2, replicas=1) as handles:
        with ClusterSystem.connect(
            handles.shard_map, seed=5, retry=IMPATIENT
        ) as cluster:
            _load(cluster)
            expected = _expected()
            assert sorted(cluster.query(SQL).column("id")) == expected

            statuses = cluster.server.migrate_start(
                "t", "v", new_kind="ED9", rotate_key=True
            )
            # One status per endpoint of every populated shard.
            assert [s.state for s in statuses] == ["running"] * len(statuses)
            assert len(statuses) == 4

            # Mid-flight: EXPLAIN surfaces the rotation, queries stay right.
            while True:
                statuses = cluster.server.migrate_step("t", "v")
                assert sorted(cluster.query(SQL).column("id")) == expected
                if all(s.state != "running" for s in statuses):
                    break
                assert "migration: t.v ED3->ED9" in cluster.proxy.explain(SQL)
            assert [s.state for s in statuses] == ["done"] * len(statuses), [
                s.error for s in statuses
            ]

            assert sorted(cluster.query(SQL).column("id")) == expected
            cluster.execute("INSERT INTO t VALUES (999, 8)")
            assert sorted(cluster.query(SQL).column("id")) == expected + [999]

        # Replicas of each shard hold byte-identical rotated partitions.
        for shard_id in (0, 1):
            primary = _column(handles, shard_id, 0)
            replica = _column(handles, shard_id, 1)
            assert primary.key_epoch == replica.key_epoch == 1
            assert primary.partition_ids == replica.partition_ids
            frames = lambda column: [
                encrypted_partition_frame(build, pid)
                for build, pid in zip(
                    column.partition_builds, column.partition_ids
                )
            ]
            assert frames(primary) == frames(replica)


def test_rotation_refuses_to_run_with_a_replica_down():
    """A dead replica aborts the migration loudly — divergence, not
    staleness — and the rotation proceeds after a rollback once the
    operator decides the topology is what it is."""
    with live_cluster(2, replicas=1) as handles:
        with ClusterSystem.connect(
            handles.shard_map, seed=5, retry=IMPATIENT
        ) as cluster:
            _load(cluster)
            handles.stop(1, replica=1)
            with pytest.raises(ClusterError, match="needs every replica"):
                cluster.server.migrate_start("t", "v", new_kind="ED9")
            # The surviving endpoints may have registered the migration
            # before the broadcast failed; status shows where things stand.
            for status in cluster.server.migrate_status("t"):
                assert status.state in ("running", "rolled-back")


def test_cluster_rollback_everywhere():
    with live_cluster(2, replicas=0) as handles:
        with ClusterSystem.connect(
            handles.shard_map, seed=5, retry=IMPATIENT
        ) as cluster:
            _load(cluster)
            cluster.server.migrate_start("t", "v", new_kind="ED9")
            cluster.server.migrate_step("t", "v", 2)
            statuses = cluster.server.migrate_rollback("t", "v")
            assert [s.state for s in statuses] == ["rolled-back"] * len(statuses)
            assert sorted(cluster.query(SQL).column("id")) == _expected()
            for shard_id in (0, 1):
                column = _column(handles, shard_id, 0)
                assert column.key_epoch == 0
                assert column.shadow is None

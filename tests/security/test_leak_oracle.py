"""Paired-dataset trace equivalence for the nine ED kinds (DESIGN.md §15).

The leakage oracle records the provider-observable trace — every ecall
with argument/return *shapes* (sizes and counts, never content) and every
wire frame's byte size. These tests run the same workload over paired
datasets that differ **only in protected values** and assert:

- **value-shift pairs** (same histogram, same order, values and query
  bounds shifted by a constant) produce *identical* traces for all nine
  kinds — no kind may leak value magnitudes through sizes or counts;
- **cardinality pairs** (same row count, different distinct-value counts)
  produce identical traces exactly for the frequency-*hiding* kinds
  (ED7-9, whose dictionary size is the row count by construction) and
  *different* traces for the revealing/smoothing kinds — that divergence
  is their declared Table-3 leakage, asserted intentionally;
- the pushdown GROUP BY response pads its group frames to a power of
  two: group counts inside one padding bucket produce identical response
  shapes, counts crossing a bucket boundary differ (the declared
  power-of-two residual).

Only the *empty* and *full-covering* queries run in the cardinality
pairs: a selective range would match different row counts on the two
histograms, and the provider legitimately observes matching record sets
(access-pattern leakage, every kind) — the pair must differ only in what
the *dictionary* reveals.
"""

from __future__ import annotations

import pytest

from repro import EncDBDBSystem
from repro.analysis.leakoracle import capture_trace
from repro.encdict.options import ALL_KINDS

KIND_NAMES = [kind.name for kind in ALL_KINDS]

#: Same multiset shape: 12 distinct values x 2 occurrences, interleaved.
BASE_VALUES = [110 + 5 * (i % 12) for i in range(24)]

#: Same row count (24), different distinct counts: 8 values x 3 occurrences.
FEWER_DISTINCT = [110 + 5 * (i % 8) for i in range(24)]

#: The extreme cardinality pair: one value repeated 24 times vs. 24
#: distinct values. The all-distinct dictionary has |D| = N under *every*
#: repetition option, while the all-same dictionary is at most N and at
#: least N/bsmax entries — so any kind whose frequency leakage is not
#: "none" must distinguish this pair.
ONE_VALUE = [150] * 24
ALL_DISTINCT = [110 + 3 * i for i in range(24)]  # 110..179: inside [100, 200]


def run_workload(
    kind: str, values: list[int], *, shift: int = 0, selective: bool = True
):
    """Build a one-column system, load ``values``, query it; return trace.

    ``shift`` displaces every value *and* every query bound by the same
    constant, so the two runs of a value-shift pair execute structurally
    identical plans over disjoint value domains.
    """
    with capture_trace() as trace:
        system = EncDBDBSystem.create(seed=7)
        system.execute(
            f"CREATE TABLE t (v {kind} INTEGER BSMAX 4, tag INTEGER)"
        )
        # Bulk load builds the encrypted dictionaries (the paper's setting);
        # INSERT would park everything in the per-row delta store and no
        # dictionary would exist to leak anything.
        system.bulk_load(
            "t",
            {
                "v": [value + shift for value in values],
                "tag": [i % 7 for i in range(len(values))],
            },
        )
        if selective:
            system.query(
                f"SELECT tag FROM t WHERE v >= {120 + shift} "
                f"AND v <= {140 + shift}"
            )
        system.query(f"SELECT tag FROM t WHERE v > {1000 + shift}")
        system.query(
            f"SELECT tag FROM t WHERE v >= {100 + shift} AND v <= {200 + shift}"
        )
    return trace


@pytest.mark.parametrize("kind", KIND_NAMES)
def test_value_shift_pair_is_trace_identical(kind):
    """No ED kind may leak value magnitudes: shifted data, same trace."""
    baseline = run_workload(kind, BASE_VALUES)
    shifted = run_workload(kind, BASE_VALUES, shift=1000)
    assert baseline == shifted


@pytest.mark.parametrize("kind", KIND_NAMES)
def test_cardinality_pair_leaks_exactly_per_kind(kind):
    """Distinct-value count leaks exactly as Table 3 declares.

    The full-covering query matches all 24 rows in both runs and the
    empty query none, so result sets cannot explain a divergence — only
    the dictionary itself can.

    - *revealing* (ED1-3): |D| equals the distinct count — the moderate
      pair (12 vs 8 distinct) must produce different traces;
    - *smoothing* (ED4-6): leakage is *bounded*, not exact — the
      bucketized dictionaries of the moderate pair land on the same entry
      count and the traces coincide (that absorption is the smoothing);
    - *hiding* (ED7-9): |D| is the row count by construction — identical
      traces, no frequency leak.
    """
    baseline = run_workload(kind, BASE_VALUES, selective=False)
    fewer = run_workload(kind, FEWER_DISTINCT, selective=False)
    if kind in ("ED1", "ED2", "ED3"):
        assert baseline != fewer
    else:
        assert baseline == fewer


@pytest.mark.parametrize("kind", KIND_NAMES)
def test_extreme_cardinality_pair_separates_bounded_from_none(kind):
    """Smoothing is bounded leakage, not none: the extreme pair shows it.

    One value x 24 rows vs. 24 distinct values: every non-hiding kind's
    dictionary must distinguish the pair (for smoothing, |D| = N on the
    all-distinct side but strictly fewer entries on the all-same side);
    the hiding kinds must not — their dictionaries are N entries either
    way.
    """
    same = run_workload(kind, ONE_VALUE, selective=False)
    distinct = run_workload(kind, ALL_DISTINCT, selective=False)
    if kind in ("ED7", "ED8", "ED9"):
        assert same == distinct
    else:
        assert same != distinct


def run_groupby(distinct_groups: int):
    """Pushdown GROUP BY with N distinct group keys; return the trace.

    Both columns are ED1: the router only pushes fully-encrypted
    aggregates, and the cost gate only routes to the enclave when the
    dictionary bounds the distinct count well below the row count, which
    is exactly the revealing/smoothing regime. What the *response*
    reveals about the group count is the padding contract under test;
    the dictionary's own (declared) leakage is not.
    """
    with capture_trace() as trace:
        system = EncDBDBSystem.create(seed=7)
        system.proxy.enable_pushdown()
        system.execute("CREATE TABLE g (k ED1 INTEGER, v ED1 INTEGER)")
        system.bulk_load(
            "g",
            {
                "k": [i % distinct_groups for i in range(96)],
                "v": [i % 5 for i in range(96)],
            },
        )
        system.query("SELECT k, COUNT(*), SUM(v) FROM g GROUP BY k")
    return trace


def aggregate_response_shapes(trace):
    """The provider-observable *response* shapes of the pushdown path."""
    shapes = [
        event.shape[2]
        for event in trace
        if event.channel == "ecall" and event.name == "aggregate_groups"
    ]
    assert shapes, "workload never reached the aggregate_groups ecall"
    return shapes


def test_groupby_counts_inside_one_padding_bucket_are_identical():
    """3 and 4 groups both pad to 4 uniform frames: indistinguishable."""
    assert aggregate_response_shapes(
        run_groupby(3)
    ) == aggregate_response_shapes(run_groupby(4))


def test_groupby_counts_across_padding_buckets_differ():
    """4 -> 4 frames but 5 -> 8: the declared power-of-two residual."""
    assert aggregate_response_shapes(
        run_groupby(4)
    ) != aggregate_response_shapes(run_groupby(5))

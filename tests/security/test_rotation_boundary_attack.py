"""Query-observation attack on rotated dictionaries (ED2/ED5/ED8).

Demonstrates empirically what the paper's Table 5 citations ([41, 62]) say
about MOPE-style schemes: the "bounded" order leakage of the rotated kinds
holds only for "an attacker who can observe no or a limited number of
queries" (§4.1) — the ValueID ranges of enough observed queries localize
the secret rotation offset.
"""

from __future__ import annotations

import pytest

from repro.encdict.options import ED2, ED5
from repro.encdict.search import OrdinalRange, SearchResult
from repro.security.attacks import rotation_boundary_attack

from tests.encdict.conftest import EdHarness


def _observe_queries(harness, build, query_bounds):
    """Run queries and collect the SearchResults a server would see."""
    value_type = build.dictionary.value_type
    observed = []
    for low, high in query_bounds:
        observed.append(
            harness.searcher.search(
                build.dictionary,
                OrdinalRange(value_type.ordinal(low), value_type.ordinal(high)),
                key=harness.key,
            )
        )
    return observed


def test_true_offset_always_survives():
    """Soundness: elimination never discards the real rotation boundary."""
    harness = EdHarness(seed=b"rb-sound")
    values = [f"v{i:02d}" for i in range(24)]
    build = harness.build(values, ED2)
    queries = [(f"v{i:02d}", f"v{min(i + 4, 23):02d}") for i in range(0, 24, 3)]
    observed = _observe_queries(harness, build, queries)
    candidates = rotation_boundary_attack(observed, len(build.dictionary))
    assert build.stats.rnd_offset in candidates


def test_candidates_shrink_with_more_queries():
    harness = EdHarness(seed=b"rb-shrink")
    values = [f"v{i:02d}" for i in range(32)]
    build = harness.build(values, ED2)
    n = len(build.dictionary)
    queries = [
        (f"v{i:02d}", f"v{min(i + 5, 31):02d}") for i in range(31)
    ]
    observed = _observe_queries(harness, build, queries)
    few = rotation_boundary_attack(observed[:2], n)
    many = rotation_boundary_attack(observed, n)
    assert many <= few
    assert len(many) < len(few) < n


def test_enough_queries_pin_the_offset():
    """Dense query coverage leaves only the boundary (and its neighbors)."""
    harness = EdHarness(seed=b"rb-pin")
    values = [f"v{i:02d}" for i in range(20)]
    build = harness.build(values, ED2)
    queries = [(f"v{i:02d}", f"v{i + 1:02d}") for i in range(19)]
    observed = _observe_queries(harness, build, queries)
    candidates = rotation_boundary_attack(observed, len(build.dictionary))
    assert build.stats.rnd_offset in candidates
    # Adjacent-pair queries eliminate every interior candidate: at most the
    # boundary itself plus position 0 (never strictly inside a range that
    # starts at 0) can survive.
    assert len(candidates) <= 2


def test_attack_works_on_smoothing_kind_too():
    harness = EdHarness(seed=b"rb-ed5")
    values = [f"v{i:02d}" for i in range(12)] * 3
    build = harness.build(values, ED5, bsmax=3)
    queries = [(f"v{i:02d}", f"v{min(i + 2, 11):02d}") for i in range(11)]
    observed = _observe_queries(harness, build, queries)
    candidates = rotation_boundary_attack(observed, len(build.dictionary))
    assert len(candidates) < len(build.dictionary) / 2


def test_no_queries_no_information():
    """Without observations every offset is possible — the §4.1 guarantee."""
    assert rotation_boundary_attack([], 10) == set(range(10))


def test_empty_and_dummy_results_eliminate_nothing():
    observed = [SearchResult(ranges=((-1, -1), (-1, -1)))]
    assert rotation_boundary_attack(observed, 8) == set(range(8))

"""The §6.4 usage-guideline advisor."""

from __future__ import annotations

import pytest

from repro.encdict.options import ED1, ED2, ED3, ED5, ED6, ED7, ED8, ED9
from repro.security.classify import no_less_secure
from repro.security.guideline import (
    ColumnProfile,
    LeakageTolerance,
    Recommendation,
    recommend,
)

FULL = LeakageTolerance.FULL
BOUNDED = LeakageTolerance.BOUNDED
NONE = LeakageTolerance.NONE

SMALL = ColumnProfile(rows=100_000, unique_values=500, typical_range_size=2)
LARGE = ColumnProfile(rows=10_000_000, unique_values=7_000_000,
                      typical_range_size=100)


def test_profile_from_values():
    profile = ColumnProfile.from_values(["a", "b", "a", "c"], typical_range_size=3)
    assert profile.rows == 4
    assert profile.unique_values == 3
    assert profile.unique_ratio == pytest.approx(0.75)


def test_weakest_level_is_ed1():
    rec = recommend(SMALL, order_tolerance=FULL, frequency_tolerance=FULL)
    assert rec.kind is ED1
    assert "PlainDBDB" in rec.rationale


def test_reduced_order_leakage_is_ed2():
    rec = recommend(SMALL, order_tolerance=BOUNDED, frequency_tolerance=FULL)
    assert rec.kind is ED2


def test_no_order_leakage_few_uniques_is_ed3():
    rec = recommend(SMALL, order_tolerance=NONE, frequency_tolerance=FULL)
    assert rec.kind is ED3
    assert not rec.warnings


def test_ed3_warns_on_high_cardinality():
    rec = recommend(LARGE, order_tolerance=NONE, frequency_tolerance=FULL)
    assert rec.kind is ED3
    assert rec.warnings  # linear-scan caveat


def test_balanced_tradeoff_is_ed5():
    for order in (FULL, BOUNDED):
        rec = recommend(SMALL, order_tolerance=order, frequency_tolerance=BOUNDED)
        assert rec.kind is ED5
        assert "best security, latency and storage tradeoff" in rec.rationale


def test_bounded_frequency_no_order_is_ed6_with_warning():
    rec = recommend(SMALL, order_tolerance=NONE, frequency_tolerance=BOUNDED)
    assert rec.kind is ED6
    assert rec.warnings


def test_frequency_hiding_variants():
    assert recommend(SMALL, order_tolerance=FULL, frequency_tolerance=NONE).kind is ED7
    rec = recommend(SMALL, order_tolerance=BOUNDED, frequency_tolerance=NONE)
    assert rec.kind is ED8
    rec = recommend(SMALL, order_tolerance=NONE, frequency_tolerance=NONE)
    assert rec.kind is ED9
    assert rec.warnings


def test_storage_critical_warning_on_hiding():
    rec = recommend(
        SMALL, order_tolerance=BOUNDED, frequency_tolerance=NONE,
        storage_critical=True,
    )
    assert rec.kind is ED8
    assert any("storage" in warning for warning in rec.warnings)


@pytest.mark.parametrize("order", [FULL, BOUNDED, NONE])
@pytest.mark.parametrize("frequency", [FULL, BOUNDED, NONE])
def test_recommendation_always_meets_the_tolerances(order, frequency):
    """The advisor never recommends a kind weaker than what was asked:
    the recommended kind's leakage profile is within both tolerances."""
    grades = {FULL: 2, BOUNDED: 1, NONE: 0}
    rec = recommend(SMALL, order_tolerance=order, frequency_tolerance=frequency)
    from repro.security.classify import LEVEL_BY_LABEL, leakage_profile

    frequency_grade, order_grade = leakage_profile(rec.kind)
    assert frequency_grade <= grades[frequency]
    assert order_grade <= grades[order]


def test_stricter_tolerances_never_weaken_security():
    rec_loose = recommend(SMALL, order_tolerance=FULL, frequency_tolerance=FULL)
    rec_tight = recommend(SMALL, order_tolerance=NONE, frequency_tolerance=NONE)
    assert no_less_secure(rec_tight.kind, rec_loose.kind)

"""Leakage quantifiers, attack simulations, and the Figure 6 lattice."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.encdict.options import (
    ALL_KINDS,
    ED1,
    ED2,
    ED3,
    ED4,
    ED5,
    ED6,
    ED7,
    ED8,
    ED9,
)
from repro.security.attacks import (
    frequency_analysis_attack,
    order_reconstruction_attack,
)
from repro.security.classify import (
    leakage_profile,
    no_less_secure,
    security_lattice_edges,
)
from repro.security.leakage import (
    frequency_histogram,
    frequency_multiset_distance,
    max_frequency,
    normalized_frequency_entropy,
)

from tests.encdict.conftest import EdHarness

# A deliberately skewed column: frequency analysis should crack revealing
# dictionaries on this, and be powerless against hiding ones.
SKEWED = ["very_common"] * 60 + ["medium"] * 25 + ["rare"] * 10 + ["unicorn"] * 5


def _ground_truth(harness: EdHarness, build) -> list:
    value_type = build.dictionary.value_type
    return [
        value_type.from_bytes(harness.pae.decrypt(harness.key, blob))
        for blob in build.dictionary.entries()
    ]


@pytest.fixture(scope="module")
def harness() -> EdHarness:
    return EdHarness(seed=b"security")


# ----------------------------------------------------------------------
# Leakage measures
# ----------------------------------------------------------------------


def test_frequency_histogram_and_max():
    av = np.array([0, 0, 1, 2, 2, 2])
    assert frequency_histogram(av) == {0: 2, 1: 1, 2: 3}
    assert max_frequency(av) == 3
    assert max_frequency(np.array([], dtype=np.int64)) == 0


def test_revealing_leaks_exact_frequencies(harness):
    build = harness.build(SKEWED, ED1)
    observed = sorted(frequency_histogram(build.attribute_vector).values())
    assert observed == sorted(Counter(SKEWED).values())
    assert frequency_multiset_distance(SKEWED, build.attribute_vector) == 0.0


def test_smoothing_bounds_frequencies(harness):
    for kind in (ED4, ED5, ED6):
        build = harness.build(SKEWED, kind, bsmax=4)
        assert max_frequency(build.attribute_vector) <= 4
        assert frequency_multiset_distance(SKEWED, build.attribute_vector) > 0.2


def test_hiding_equalizes_frequencies(harness):
    for kind in (ED7, ED8, ED9):
        build = harness.build(SKEWED, kind)
        assert max_frequency(build.attribute_vector) == 1
        assert normalized_frequency_entropy(build.attribute_vector) == pytest.approx(1.0)


def test_entropy_ordering_across_repetition_options(harness):
    """Observed-histogram entropy increases from revealing to hiding."""
    revealing = normalized_frequency_entropy(
        harness.build(SKEWED, ED1).attribute_vector
    )
    smoothing = normalized_frequency_entropy(
        harness.build(SKEWED, ED4, bsmax=4).attribute_vector
    )
    hiding = normalized_frequency_entropy(harness.build(SKEWED, ED7).attribute_vector)
    assert revealing < smoothing <= hiding


# ----------------------------------------------------------------------
# Frequency analysis attack (Naveed et al. style)
# ----------------------------------------------------------------------


def _attack_accuracy(harness, kind, bsmax=4) -> float:
    build = harness.build(SKEWED, kind, bsmax=bsmax)
    return frequency_analysis_attack(
        build.attribute_vector,
        auxiliary_distribution=dict(Counter(SKEWED)),
        ground_truth=_ground_truth(harness, build),
    )


def test_frequency_attack_cracks_revealing(harness):
    """Full frequency leakage: rank matching recovers most rows."""
    for kind in (ED1, ED2, ED3):
        assert _attack_accuracy(harness, kind) >= 0.95, kind.name


def test_frequency_attack_degraded_by_smoothing(harness):
    for kind in (ED4, ED5, ED6):
        assert _attack_accuracy(harness, kind) < 0.95, kind.name


def test_frequency_attack_defeated_by_hiding(harness):
    """With all-equal frequencies the rank match is no better than luck."""
    baseline = max(Counter(SKEWED).values()) / len(SKEWED)
    for kind in (ED7, ED8, ED9):
        accuracy = _attack_accuracy(harness, kind)
        assert accuracy <= baseline + 0.05, (kind.name, accuracy)


# ----------------------------------------------------------------------
# Order reconstruction attack
# ----------------------------------------------------------------------


def _order_accuracy(harness, kind) -> float:
    build = harness.build(SKEWED, kind, bsmax=4)
    ground_truth = _ground_truth(harness, build)
    auxiliary = sorted(ground_truth)  # attacker knows the (multi)set of values
    return order_reconstruction_attack(
        kind, build.attribute_vector, auxiliary, ground_truth
    )


def test_order_attack_cracks_sorted(harness):
    assert _order_accuracy(harness, ED1) == pytest.approx(1.0)
    # ED4/ED7 stay fully order-leaking too (sorted), up to duplicate ties.
    assert _order_accuracy(harness, ED7) == pytest.approx(1.0)


def test_order_attack_bounded_on_rotated(harness):
    """Expected accuracy over the unknown offset collapses."""
    accuracy = _order_accuracy(harness, ED2)
    assert accuracy < 0.75  # well below the sorted read-off
    assert _order_accuracy(harness, ED5) < 0.75


def test_order_attack_blind_on_unsorted(harness):
    sorted_accuracy = _order_accuracy(harness, ED1)
    unsorted_accuracy = _order_accuracy(harness, ED3)
    assert unsorted_accuracy < sorted_accuracy
    assert unsorted_accuracy <= 0.6  # expectation of a random bijection


def test_order_attack_monotone_in_order_option(harness):
    for sorted_kind, rotated_kind, unsorted_kind in [
        (ED1, ED2, ED3), (ED7, ED8, ED9),
    ]:
        a_sorted = _order_accuracy(harness, sorted_kind)
        a_rotated = _order_accuracy(harness, rotated_kind)
        a_unsorted = _order_accuracy(harness, unsorted_kind)
        # Rotated and unsorted can tie in expectation (e.g. for frequency
        # hiding both collapse to the duplicate-collision probability), so
        # the comparison allows floating-point-scale equality.
        assert a_sorted >= a_rotated - 1e-9
        assert a_rotated >= a_unsorted - 1e-9


# ----------------------------------------------------------------------
# Figure 6 lattice
# ----------------------------------------------------------------------


def test_leakage_profiles():
    assert leakage_profile(ED1) == (2, 2)
    assert leakage_profile(ED5) == (1, 1)
    assert leakage_profile(ED9) == (0, 0)


def test_figure6_relations_hold():
    """Every arrow of Figure 6: down a column and right along a row."""
    figure6 = [
        ("ED1", "ED4"), ("ED4", "ED7"), ("ED2", "ED5"), ("ED5", "ED8"),
        ("ED3", "ED6"), ("ED6", "ED9"), ("ED1", "ED2"), ("ED2", "ED3"),
        ("ED4", "ED5"), ("ED5", "ED6"), ("ED7", "ED8"), ("ED8", "ED9"),
    ]
    by_name = {kind.name: kind for kind in ALL_KINDS}
    for weaker, stronger in figure6:
        assert no_less_secure(by_name[stronger], by_name[weaker]), (weaker, stronger)
        assert not no_less_secure(by_name[weaker], by_name[stronger])


def test_incomparable_kinds():
    """ED3 (no order leak, full freq) vs ED7 (full order leak, no freq)."""
    assert not no_less_secure(ED3, ED7)
    assert not no_less_secure(ED7, ED3)


def test_lattice_edges_are_exactly_figure6():
    expected = {
        ("ED1", "ED2"), ("ED2", "ED3"), ("ED4", "ED5"), ("ED5", "ED6"),
        ("ED7", "ED8"), ("ED8", "ED9"), ("ED1", "ED4"), ("ED4", "ED7"),
        ("ED2", "ED5"), ("ED5", "ED8"), ("ED3", "ED6"), ("ED6", "ED9"),
    }
    assert security_lattice_edges() == expected


def test_ed9_is_top_of_lattice():
    for kind in ALL_KINDS:
        assert no_less_secure(ED9, kind)
    for kind in ALL_KINDS:
        assert no_less_secure(kind, ED1)

"""The nine encrypted dictionaries side by side: the §6.4 usage guideline.

Builds the same skewed column under every encrypted dictionary and prints,
per kind: dictionary size, storage, observed frequency bound, the accuracy
of a frequency-analysis attack and an order-reconstruction attack, and the
measured query latency — the security / performance / storage tradeoff the
data owner picks from (paper Tables 3-5, §6.4).

Run with::

    python examples/security_tradeoffs.py
"""

from collections import Counter

from repro.bench.engines import EncDbdbColumnEngine
from repro.bench.harness import measure_query_latency
from repro.columnstore.types import VarcharType
from repro.crypto.drbg import HmacDrbg
from repro.encdict.options import ALL_KINDS
from repro.security.attacks import (
    frequency_analysis_attack,
    order_reconstruction_attack,
)
from repro.security.leakage import max_frequency
from repro.workloads.generator import C2_SPEC, generate_bw_column
from repro.workloads.queries import random_range_queries

ROWS = 3000
BSMAX = 5


def main() -> None:
    rng = HmacDrbg(b"tradeoffs")
    values = generate_bw_column(C2_SPEC, ROWS, rng.fork("column"))
    queries = random_range_queries(values, 10, 10, rng.fork("queries"))
    value_type = VarcharType(C2_SPEC.string_length)

    print(
        f"column: {ROWS} rows, {len(set(values))} uniques, "
        f"max value frequency {max(Counter(values).values())}"
    )
    header = (
        f"{'kind':5s} {'|D|':>6s} {'storage':>10s} {'freq<=':>7s} "
        f"{'freq-atk':>9s} {'order-atk':>10s} {'latency':>11s}"
    )
    print(header)
    print("-" * len(header))

    for kind in ALL_KINDS:
        engine = EncDbdbColumnEngine(
            values, kind, value_type=value_type, bsmax=BSMAX,
            rng=rng.fork(kind.name),
        )
        build = engine.build
        ground_truth = [
            value_type.from_bytes(engine._pae.decrypt(engine._column_key, blob))
            for blob in build.dictionary.entries()
        ]
        frequency_accuracy = frequency_analysis_attack(
            build.attribute_vector, dict(Counter(values)), ground_truth
        )
        order_accuracy = order_reconstruction_attack(
            kind, build.attribute_vector, sorted(ground_truth), ground_truth
        )
        latency = measure_query_latency(engine.run, queries)
        print(
            f"{kind.name:5s} {len(build.dictionary):6d} "
            f"{engine.storage_bytes() / 1024:8.1f}KB "
            f"{max_frequency(build.attribute_vector):7d} "
            f"{frequency_accuracy:9.3f} {order_accuracy:10.3f} "
            f"{latency.mean_ms:9.3f}ms"
        )

    print(
        "\nGuideline (paper §6.4): ED1 fastest/weakest; ED2 hides where the\n"
        "domain starts; ED3 hides order but leaks frequencies; ED5 is the\n"
        "recommended balance; ED8 trades storage for security and speed;\n"
        "ED9 is the most secure and the most expensive."
    )


if __name__ == "__main__":
    main()

"""Quickstart: stand up an EncDBDB deployment and run encrypted SQL.

Run with::

    python examples/quickstart.py

``EncDBDBSystem.create`` performs the paper's whole setup phase: it
generates the data owner's master key, remote-attests the (simulated) SGX
enclave at the DBaaS server, provisions the key through an encrypted
channel, and wires the trusted proxy in front of the server. After that,
applications just speak SQL — every filter on an ED-protected column is
converted to an encrypted range and evaluated inside the enclave.
"""

from repro import EncDBDBSystem


def main() -> None:
    system = EncDBDBSystem.create(seed=2024)

    # Column protections are part of the schema: ED5 (frequency smoothing +
    # rotated) for names, ED1 (fastest, order-revealing) for ages, and an
    # unprotected plaintext column for the city.
    system.execute(
        "CREATE TABLE people ("
        "  name ED5 VARCHAR(30) BSMAX 4,"
        "  age  ED1 INTEGER,"
        "  city VARCHAR(20)"
        ")"
    )
    system.execute(
        "INSERT INTO people VALUES "
        "('Jessica', 31, 'berlin'), ('Archie', 24, 'paris'), "
        "('Hans', 45, 'berlin'), ('Ella', 31, 'rome'), "
        "('Archie', 52, 'berlin')"
    )

    print("All people older than 30, by name:")
    result = system.query(
        "SELECT name, age FROM people WHERE age > 30 ORDER BY name"
    )
    for name, age in result:
        print(f"  {name:10s} {age}")

    print("\nRange query on the encrypted name column:")
    result = system.query(
        "SELECT name, city FROM people WHERE name BETWEEN 'A' AND 'I'"
    )
    for name, city in result:
        print(f"  {name:10s} {city}")

    print("\nAggregates are computed by the trusted proxy after decryption:")
    count = system.query("SELECT COUNT(*) FROM people WHERE age < 40").scalar()
    print(f"  people younger than 40: {count}")

    print("\nWhat the untrusted server sees for column 'name':")
    column = system.server.catalog.table("people").column("name")
    blob = column.delta_blobs[0]
    print(f"  first stored blob ({len(blob)} bytes): {blob.hex()[:48]}...")
    print(f"  enclave ecalls so far: {system.server.cost_model.ecalls}")


if __name__ == "__main__":
    main()

-- Demo script for the EncDBDB shell:
--     python -m repro.cli --script examples/demo.sql
CREATE TABLE employees (
    name ED5 VARCHAR(30) BSMAX 4,
    dept VARCHAR(12),
    salary ED2 INTEGER,
    hired ED1 DATE
);

INSERT INTO employees VALUES
    ('Jessica', 'research', 7200, '2021-03-01'),
    ('Archie',  'sales',    5100, '2023-11-15'),
    ('Hans',    'research', 6800, '2019-06-20'),
    ('Ella',    'sales',    5900, '2022-01-10'),
    ('Noor',    'ops',      6100, '2024-05-02');

SELECT name, salary FROM employees
    WHERE salary BETWEEN 5500 AND 7000 ORDER BY salary DESC;

SELECT dept, COUNT(*), AVG(salary) FROM employees
    GROUP BY dept ORDER BY dept;

SELECT name FROM employees WHERE hired >= '2022-01-01' AND name LIKE 'A%';

UPDATE employees SET dept = 'platform' WHERE name = 'Noor';
DELETE FROM employees WHERE salary < 5500;
MERGE TABLE employees;

SELECT COUNT(*) FROM employees;

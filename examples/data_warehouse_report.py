"""Data-warehouse analytics over encrypted columns.

The paper's motivating workload (§2.1): "a report on total sales per
country for products in a certain price range" — a complex, read-oriented,
analytic query over a bulk-loaded dataset. This example bulk-loads a
synthetic sales fact table whose sensitive columns are protected with
different encrypted dictionaries, then runs the report and a few more
OLAP-style queries.

Run with::

    python examples/data_warehouse_report.py
"""

from repro import EncDBDBSystem
from repro.crypto.drbg import HmacDrbg

COUNTRIES = ["DE", "FR", "IT", "US", "JP", "BR"]
PRODUCTS = [f"PROD-{i:04d}" for i in range(120)]


def synthesize_sales(rows: int, seed: bytes):
    """A skewed fact table: product, country, unit price, quantity."""
    rng = HmacDrbg(seed)
    products, countries, prices, quantities = [], [], [], []
    for _ in range(rows):
        product_index = min(
            rng.randint(0, len(PRODUCTS) - 1), rng.randint(0, len(PRODUCTS) - 1)
        )  # mild skew toward the catalog head
        products.append(PRODUCTS[product_index])
        countries.append(COUNTRIES[rng.randint(0, len(COUNTRIES) - 1)])
        prices.append(5 + 3 * product_index)  # price follows the product
        quantities.append(rng.randint(1, 20))
    return {
        "product": products,
        "country": countries,
        "price": prices,
        "quantity": quantities,
    }


def main() -> None:
    system = EncDBDBSystem.create(seed=7)

    # The product catalog and prices are business-sensitive: the catalog
    # gets ED5 (the paper's recommended tradeoff), the price column ED2
    # (rotated, fast range queries), quantities ED1, and the country code
    # stays plaintext for cheap grouping.
    system.execute(
        "CREATE TABLE sales ("
        "  product  ED5 VARCHAR(12) BSMAX 8,"
        "  country  VARCHAR(2),"
        "  price    ED2 INTEGER,"
        "  quantity ED1 INTEGER"
        ")"
    )
    data = synthesize_sales(rows=4000, seed=b"bw-example")
    loaded = system.bulk_load("sales", data)
    print(f"bulk-loaded {loaded} encrypted rows")

    print("\nTotal quantity per country for products priced 50..150:")
    report = system.query(
        "SELECT country, COUNT(*), SUM(quantity) FROM sales "
        "WHERE price BETWEEN 50 AND 150 "
        "GROUP BY country ORDER BY country"
    )
    print(f"  {'country':8s} {'orders':>7s} {'units':>7s}")
    for country, orders, units in report:
        print(f"  {country:8s} {orders:7d} {units:7d}")

    print("\nTop of the catalog by average order size (price < 100):")
    result = system.query(
        "SELECT product, AVG(quantity), COUNT(*) FROM sales "
        "WHERE price < 100 GROUP BY product ORDER BY product LIMIT 5"
    )
    for product, average_quantity, orders in result:
        print(f"  {product}: avg {average_quantity:5.2f} units over {orders} orders")

    print("\nRange filter on the encrypted product catalog:")
    count = system.query(
        "SELECT COUNT(*) FROM sales "
        "WHERE product >= 'PROD-0010' AND product <= 'PROD-0019'"
    ).scalar()
    print(f"  orders for PROD-0010..PROD-0019: {count}")

    # Encrypted equi-join against a dimension table: the enclave issues
    # per-query join tokens for both 'sku' columns, the untrusted server
    # hash-joins the attribute vectors on them.
    system.execute(
        "CREATE TABLE catalog (sku ED2 VARCHAR(12), supplier VARCHAR(8))"
    )
    system.bulk_load(
        "catalog",
        {
            "sku": PRODUCTS,
            "supplier": [f"SUP-{i % 4}" for i in range(len(PRODUCTS))],
        },
    )
    print("\nUnits per supplier (encrypted join sales x catalog):")
    per_supplier = system.query(
        "SELECT catalog.supplier, SUM(sales.quantity) FROM sales "
        "JOIN catalog ON sales.product = catalog.sku "
        "GROUP BY catalog.supplier ORDER BY catalog.supplier"
    )
    for supplier, units in per_supplier:
        print(f"  {supplier}: {units} units")

    cost = system.server.cost_model
    print(
        f"\nenclave usage: {cost.ecalls} ecalls, "
        f"{cost.decryptions} in-enclave decryptions "
        f"({cost.estimated_cycles():,} modeled cycles)"
    )


if __name__ == "__main__":
    main()

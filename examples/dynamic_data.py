"""Dynamic data: delta store, updates, deletes, merge, persistence (§4.3).

EncDBDB's main store is read-optimized; inserts land in a write-optimized
ED9 delta store after being re-encrypted inside the enclave (so neither
order nor frequency leaks on insertion), deletes flip a validity bit, and a
periodic MERGE rebuilds the main store — re-encrypting, re-rotating and
re-shuffling so old and new stores cannot be linked. This example walks
through the whole lifecycle and finishes with disk persistence.

Run with::

    python examples/dynamic_data.py
"""

import tempfile
from pathlib import Path

from repro import EncDBDBSystem
from repro.client.proxy import Proxy
from repro.crypto.drbg import HmacDrbg
from repro.crypto.pae import default_pae
from repro.server.dbms import EncDBDBServer


def main() -> None:
    system = EncDBDBSystem.create(seed=11)
    system.execute(
        "CREATE TABLE inventory (sku ED2 VARCHAR(12), stock ED1 INTEGER)"
    )
    system.bulk_load(
        "inventory",
        {
            "sku": [f"SKU-{i:04d}" for i in range(200)],
            "stock": [(i * 37) % 500 for i in range(200)],
        },
    )

    table = system.server.catalog.table("inventory")
    sku_column = table.column("sku")
    print(f"after bulk load: main={sku_column.main_length} delta=0 rows")

    # Inserts go to the ED9 delta store, re-encrypted inside the enclave.
    system.execute(
        "INSERT INTO inventory VALUES ('SKU-9001', 10), ('SKU-9002', 0)"
    )
    print(
        f"after 2 inserts: main={sku_column.main_length} "
        f"delta={len(sku_column.delta_blobs)} rows"
    )

    # Reads transparently merge both stores.
    low_stock = system.query(
        "SELECT sku, stock FROM inventory WHERE stock < 5 ORDER BY sku"
    )
    print(f"low-stock items (both stores): {low_stock.rows[:4]} ...")

    # Updates are read + invalidate + re-insert; deletes flip validity bits.
    updated = system.execute("UPDATE inventory SET stock = 99 WHERE sku = 'SKU-9002'")
    deleted = system.execute("DELETE FROM inventory WHERE stock = 0")
    print(f"updated {updated} row(s), deleted {deleted} row(s)")
    print(
        f"live rows: {table.live_row_count} of {table.row_count} "
        "(deleted rows linger until the merge)"
    )

    # The periodic merge rebuilds the main store inside the enclave.
    survivors = system.merge("inventory")
    print(
        f"after MERGE: {survivors} rows, main={sku_column.main_length}, "
        f"delta={len(sku_column.delta_blobs)}"
    )
    assert system.query(
        "SELECT stock FROM inventory WHERE sku = 'SKU-9002'"
    ).scalar() == 99

    # Persistence: the storage manager writes ciphertext structures to disk;
    # a fresh server loads them and the owner re-attests its enclave.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "inventory.encdbdb"
        system.save(path)
        print(f"\npersisted database: {path.stat().st_size} bytes on disk")

        fresh_server = EncDBDBServer(rng=HmacDrbg(b"restarted-server"))
        fresh_server.load(path)
        system.owner.attest_and_provision(fresh_server)
        proxy = Proxy(
            fresh_server, system.owner.master_key, default_pae(rng=HmacDrbg(b"p"))
        )
        proxy.register_schema(
            "inventory", fresh_server.catalog.table("inventory").specs
        )
        count = proxy.execute("SELECT COUNT(*) FROM inventory").scalar()
        print(f"fresh server answers after reload: {count} rows")


if __name__ == "__main__":
    main()

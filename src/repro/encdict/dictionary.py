"""The encrypted dictionary data structure (paper §5).

Following the MonetDB integration, each dictionary is split into a
*dictionary head* of fixed-size offsets (ordered according to the selected
encrypted dictionary) and a *dictionary tail* holding the variable-length
PAE blobs. The split supports variable-length values while enabling an
efficient binary search over the head. The whole structure lives in
**untrusted** memory; the enclave loads single entries on demand, which is
why the required enclave memory is constant and independent of ``|D|``.

The same layout with raw value bytes instead of PAE blobs backs PlainDBDB
(``encrypted=False``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.columnstore.dictionary import attribute_vector_bytes_per_entry
from repro.columnstore.types import ValueType
from repro.encdict.options import EncryptedDictionaryKind

#: Fixed size of one dictionary-head slot (an offset into the tail).
HEAD_ENTRY_BYTES = 8


@dataclass
class EncryptedDictionary:
    """Head/tail encrypted dictionary plus its column metadata.

    ``enc_rnd_offset`` is the PAE-encrypted rotation offset attached by
    ``EncDB 2/5/8``; it is ``None`` for the other kinds. The query
    evaluation engine enriches the structure with the table/column names the
    enclave needs to derive ``SKD`` (paper §4.2 step 7).
    """

    kind: EncryptedDictionaryKind | None
    value_type: ValueType
    table_name: str
    column_name: str
    offsets: np.ndarray  # int64, len = entries + 1; entry i = tail[o[i]:o[i+1]]
    tail: bytes
    enc_rnd_offset: bytes | None = None
    encrypted: bool = True
    #: Server-side partition bookkeeping: which main-store partition of the
    #: column this dictionary backs (−1 = the ED9 delta store). Deliberately
    #: NOT registered on the wire (``net/protocol.py``) — partition layout
    #: is assigned by the server and must not cross the network.
    partition_id: int = 0
    #: Which column-key epoch the blobs are encrypted under (online key
    #: rotation, ``repro.migrate``). Epoch 0 is the original column key.
    #: Like ``partition_id`` this is server-side bookkeeping and is not
    #: registered on the wire — owner-shipped builds are always epoch 0.
    key_epoch: int = 0
    #: Number of attribute-vector entries this dictionary serves; only used
    #: for storage accounting of the packed ValueID width.
    load_count: int = field(default=0, repr=False)
    #: Lazily materialized ``offsets.tolist()``: plain-int indexing is far
    #: cheaper than numpy scalar indexing on the per-probe hot path.
    _offsets_list: list | None = field(default=None, repr=False, compare=False)

    @classmethod
    def from_blobs(
        cls,
        blobs: list[bytes],
        *,
        kind: EncryptedDictionaryKind | None,
        value_type: ValueType,
        table_name: str,
        column_name: str,
        enc_rnd_offset: bytes | None = None,
        encrypted: bool = True,
        partition_id: int = 0,
        key_epoch: int = 0,
    ) -> "EncryptedDictionary":
        offsets = np.zeros(len(blobs) + 1, dtype=np.int64)
        np.cumsum([len(blob) for blob in blobs], out=offsets[1:])
        return cls(
            kind=kind,
            value_type=value_type,
            table_name=table_name,
            column_name=column_name,
            offsets=offsets,
            tail=b"".join(blobs),
            enc_rnd_offset=enc_rnd_offset,
            encrypted=encrypted,
            partition_id=partition_id,
            key_epoch=key_epoch,
        )

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def entry(self, index: int) -> bytes:
        """The raw (encrypted) blob of dictionary entry ``index``."""
        offsets = self._offsets_list
        if offsets is None:
            offsets = self._offsets_list = self.offsets.tolist()
        if not 0 <= index < len(offsets) - 1:
            raise IndexError(f"dictionary index {index} out of range 0..{len(self)-1}")
        self.load_count += 1
        return self.tail[offsets[index]:offsets[index + 1]]

    def entries(self) -> Iterator[bytes]:
        """Iterate over all blobs (used by the linear unsorted search)."""
        for index in range(len(self)):
            yield self.entry(index)

    # ------------------------------------------------------------------
    # Storage accounting (paper Table 6)
    # ------------------------------------------------------------------
    def head_bytes(self) -> int:
        return len(self) * HEAD_ENTRY_BYTES

    def tail_bytes(self) -> int:
        return len(self.tail)

    def storage_bytes(self) -> int:
        extra = len(self.enc_rnd_offset) if self.enc_rnd_offset else 0
        return self.head_bytes() + self.tail_bytes() + extra

    def attribute_vector_bytes(self, av_length: int) -> int:
        """Packed size of an attribute vector referencing this dictionary."""
        return av_length * attribute_vector_bytes_per_entry(max(len(self), 1))

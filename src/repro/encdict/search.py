"""``EnclDictSearch``: the dictionary searches that run inside the enclave.

This module is part of the reproduction's trusted computing base (see
DESIGN.md §10). It deliberately contains *only* the search logic; the enclave
program in :mod:`repro.encdict.enclave_app` wires it to ecalls and key
material.

Three search families correspond to the order options:

- **sorted** (ED1/ED4/ED7): one leftmost and one rightmost binary search
  (Algorithm 1), returning a single ValueID range.
- **rotated** (ED2/ED5/ED8): the special binary search of Algorithm 3 in the
  ``(ENCODE(v) - ENCODE(D[0])) mod N`` shifted space, whose probe sequence
  does not trivially reveal the rotation offset, followed by the
  postprocessing of Algorithm 2. Up to two ValueID ranges are returned; a
  single range is padded with a ``(-1, -1)`` dummy so the attribute-vector
  search always sees two (as the paper does). The published pseudocode
  leaves two corner cases open ("special handling for brevity"): a rotation
  offset of 0, and duplicates of ``D[0]``'s value wrapping around the array
  end for the smoothing/hiding kinds (the ED5 corner case of §4.1). Both are
  handled here; the duplicate-wrap case needs ``rndOffset`` to classify
  zero-shift probes, which is exactly why Algorithm 2 decrypts
  ``encRndOffset`` inside the enclave.
- **unsorted** (ED3/ED6/ED9): a linear scan over all entries (Algorithm 4),
  returning an explicit ValueID list.

All comparisons happen on order-preserving ordinals
(:meth:`~repro.columnstore.types.ValueType.ordinal`), so one code path
serves VARCHAR and INTEGER columns. Every entry access decrypts one blob
loaded from untrusted memory and is charged to the cost model; enclave
memory use is constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.columnstore.types import ValueType
from repro.crypto.pae import Pae
from repro.encdict import kernels
from repro.encdict.dictionary import EncryptedDictionary
from repro.encdict.options import EncryptedDictionaryKind, OrderOption
from repro.exceptions import QueryError
from repro.sgx.costs import CostModel

#: The dummy range the rotated search uses to pad single-range results.
DUMMY_RANGE = (-1, -1)

#: Cache-key sentinel for a partition's packed-ordinal array. A string can
#: never collide with the ``bytes`` ciphertext blobs the per-entry keys end
#: in, and the key shares the ``(table, column, partition, epoch)`` prefix,
#: so partition-granular invalidation and ``group_usage`` accounting work
#: unchanged. The full key also carries the dictionary's length and first
#: ciphertext blob: PAE IVs are draw-unique, so — exactly like the
#: blob-keyed entry cache — a different dictionary under the same name can
#: never be served another dictionary's packed ordinals.
PACKED_SENTINEL = "packed-ordinals"

#: Serialized width of one ordinal bound. 40 bytes fit the largest ordinal a
#: supported column domain can produce (a VARCHAR(255)-scale ordinal far
#: exceeds 64 bits), so both bounds of a search range are fixed-width and the
#: ciphertext length cannot leak the queried values' magnitudes.
ORDINAL_BOUND_BYTES = 40

#: Serialized width of a whole :class:`OrdinalRange` (both bounds).
SEARCH_RANGE_BYTES = 2 * ORDINAL_BOUND_BYTES


@dataclass(frozen=True)
class OrdinalRange:
    """A closed search range in ordinal space.

    The proxy normalizes every filter (equality, open/half-open/closed
    ranges, exclusive bounds) to a closed ordinal interval before
    encryption, exploiting that column domains are finite and discrete:
    ``v > x`` is ``v >= x + 1`` in ordinal space.
    """

    low: int
    high: int

    @property
    def is_empty(self) -> bool:
        return self.low > self.high

    def to_bytes(self) -> bytes:
        low = self.low.to_bytes(ORDINAL_BOUND_BYTES, "big", signed=True)
        high = self.high.to_bytes(ORDINAL_BOUND_BYTES, "big", signed=True)
        return low + high

    @classmethod
    def from_bytes(cls, data: bytes) -> "OrdinalRange":
        if len(data) != SEARCH_RANGE_BYTES:
            raise QueryError("malformed search-range payload")
        return cls(
            int.from_bytes(data[:ORDINAL_BOUND_BYTES], "big", signed=True),
            int.from_bytes(data[ORDINAL_BOUND_BYTES:], "big", signed=True),
        )


@dataclass
class SearchResult:
    """Outcome of ``EnclDictSearch``: ValueID ranges or an explicit list."""

    ranges: tuple[tuple[int, int], ...] = ()
    vids: tuple[int, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not self.vids and all(r == DUMMY_RANGE for r in self.ranges)

    def matched_vid_count(self) -> int:
        from_ranges = sum(
            high - low + 1 for low, high in self.ranges if (low, high) != DUMMY_RANGE
        )
        return from_ranges + len(self.vids)


@dataclass
class CachedEntry:
    """One memoized decryption: plaintext, decoded value, lazy ordinal.

    ``ordinal`` starts as ``None`` and is backfilled on first use; the entry
    is cached by reference, so the backfill persists and repeated binary
    searches skip both the decryption *and* the ``ENCODE`` computation.
    """

    plaintext: bytes
    value: object
    ordinal: int | None = None


def cached_entry_footprint(blob: bytes, plaintext: bytes) -> int:
    """Bytes one cache entry is charged for: key blob + plaintext + decoded
    value and bookkeeping overhead (a fixed conservative constant)."""
    return len(blob) + 2 * len(plaintext) + 64


class DictionaryAccessor:
    """Loads, authenticates and decodes dictionary entries for the searches.

    For an encrypted dictionary this decrypts with the per-column key; for
    the PlainDBDB baseline (``encrypted=False``) it only deserializes. Every
    access is charged to the cost model, and the probe sequence is recorded
    so tests can assert access-pattern properties.

    When an :class:`~repro.sgx.cache.EnclaveLruCache` is attached, decrypted
    entries are memoized per ``(table, column, epoch, ciphertext)``. Keying
    by the ciphertext blob itself makes a stale hit structurally impossible
    — a different blob is a different key — while the epoch (bumped by the
    enclave on every write ecall) bounds the lifetime of dead entries after
    re-encryption. Cache hits skip the PAE decryption (and its cost-model
    charge) but are still recorded in the probe log and charged as untrusted
    loads, so the access pattern the server observes is unchanged.
    """

    def __init__(
        self,
        dictionary: EncryptedDictionary,
        *,
        key: bytes | None,
        pae: Pae | None,
        cost_model: CostModel | None = None,
        cache=None,
        cache_epoch: int = 0,
    ) -> None:
        if dictionary.encrypted and (key is None or pae is None):
            raise QueryError("encrypted dictionary requires a key and PAE backend")
        self._dictionary = dictionary
        self._key = key
        self._pae = pae
        self._cost = cost_model
        self._cache = cache
        self._cache_epoch = cache_epoch
        # Cache-key prefix, built once: every probe of this accessor shares
        # the same (table, column, partition, epoch) tuple. Partitions of
        # one column carry independent dictionaries, so their cached
        # plaintext must never collide — and keying by partition lets the
        # enclave invalidate exactly the partition a write touched.
        self._cache_prefix = (
            dictionary.table_name,
            dictionary.column_name,
            getattr(dictionary, "partition_id", 0),
            cache_epoch,
        )
        self._packed: object | None = None  # numpy array once attached
        self.probes: list[int] = []

    def __len__(self) -> int:
        return len(self._dictionary)

    @property
    def value_type(self) -> ValueType:
        return self._dictionary.value_type

    def _decrypt_blob(self, blob: bytes) -> CachedEntry:
        """Decrypt + decode one ciphertext blob, through the cache if any."""
        cache = self._cache
        if cache is not None:
            cache_key = self._cache_prefix + (blob,)
            cached = cache.get(cache_key)
            if cached is not None:
                return cached
        plaintext = self._pae.decrypt(self._key, blob)
        if self._cost is not None:
            self._cost.record_decryption(len(blob))
        entry = CachedEntry(plaintext, self._dictionary.value_type.from_bytes(plaintext))
        if cache is not None:
            cache.put(cache_key, entry, cached_entry_footprint(blob, plaintext))
        return entry

    def raw_value(self, index: int):
        """Load entry ``index`` from untrusted memory and decode it."""
        self.probes.append(index)
        blob = self._dictionary.entry(index)
        if self._cost is not None:
            self._cost.record_untrusted_load()
        if not self._dictionary.encrypted:
            return self._dictionary.value_type.from_bytes(blob)
        return self._decrypt_blob(blob).value

    @property
    def packed(self):
        """The attached packed-ordinal array, or ``None``."""
        return self._packed

    def charge_probes(self, count: int) -> None:
        """Charge ``count`` probes (one untrusted load + one comparison
        each) in a single locked update — the batched equivalent of the
        per-probe charge in :meth:`ordinal`."""
        cost = self._cost
        if cost is not None and count > 0:
            with cost._lock:
                cost.untrusted_loads += count
                cost.comparisons += count

    def packed_ordinals(self, *, fill: bool):
        """The partition's packed-ordinal array, via the enclave cache.

        Returns the array when it is already resident (or already attached
        to this accessor); with ``fill=True`` a missing array is built by
        decrypting the whole dictionary once (every entry charged to the
        cost model, exactly like a cold linear scan) and cached under the
        partition's key prefix. ``fill=False`` never decrypts — the
        logarithmic searches use the packed array opportunistically but
        must not trade their O(log n) decryption count for an O(n) fill.
        """
        if self._packed is not None:
            return self._packed
        cache = self._cache
        cache_key = None
        if cache is not None:
            dictionary = self._dictionary
            n = len(dictionary)
            cache_key = self._cache_prefix + (
                PACKED_SENTINEL,
                n,
                dictionary.entry(0) if n else b"",
            )
            packed = cache.get(cache_key)
            if packed is not None:
                self._packed = packed
                return packed
        if not fill:
            return None
        packed = self._fill_packed()
        if cache is not None:
            cache.put(cache_key, packed, kernels.packed_footprint(packed))
        self._packed = packed
        return packed

    def _fill_packed(self):
        """Decrypt-once: every entry's ordinal, packed into one array.

        Charges one decryption per entry (the same logical count a cold
        scalar linear scan pays) in a single locked cost-model update, and
        decrypts through the PAE batch API so the whole partition reuses
        one cipher context.
        """
        dictionary = self._dictionary
        value_type = dictionary.value_type
        blobs = [dictionary.entry(i) for i in range(len(dictionary))]
        if not dictionary.encrypted:
            plaintexts = blobs
        else:
            plaintexts = self._pae.decrypt_many(self._key, blobs)
            if self._cost is not None:
                self._cost.record_decryption_batch(
                    len(blobs), sum(len(blob) for blob in blobs)
                )
        return kernels.pack_ordinals(
            [value_type.ordinal(value_type.from_bytes(p)) for p in plaintexts]
        )

    def ordinal(self, index: int) -> int:
        """``ENCODE`` of entry ``index`` (one comparison-ready integer)."""
        packed = self._packed
        if packed is not None:
            # Packed fast path: the plaintext ordinal is enclave-resident,
            # so no decryption happens — but the probe is still logged and
            # charged as a load + comparison, the same contract as an
            # entry-cache hit (module docstring of repro.sgx.cache).
            self.probes.append(index)
            self.charge_probes(1)
            return int(packed[index])
        self.probes.append(index)
        blob = self._dictionary.entry(index)
        cost = self._cost
        if cost is not None:
            # Inlined record_untrusted_load()/record_comparison() under one
            # lock acquisition: this is the hottest line of every search
            # (once per probe), and the counters stay lock-disciplined.
            with cost._lock:
                cost.untrusted_loads += 1
                cost.comparisons += 1
        if not self._dictionary.encrypted:
            return self._dictionary.value_type.ordinal(
                self._dictionary.value_type.from_bytes(blob)
            )
        entry = self._decrypt_blob(blob)
        if entry.ordinal is None:
            entry.ordinal = self._dictionary.value_type.ordinal(entry.value)
        return entry.ordinal

    def rotation_offset(self) -> int:
        """Decrypt ``encRndOffset`` (Algorithm 2 line 3)."""
        blob = self._dictionary.enc_rnd_offset
        if blob is None:
            raise QueryError("dictionary carries no rotation offset")
        if not self._dictionary.encrypted:
            return int.from_bytes(blob, "big")
        if self._cache is not None:
            cache_key = self._cache_prefix + (blob,)
            cached = self._cache.get(cache_key)
            if cached is not None:
                return cached.value
        plaintext = self._pae.decrypt(self._key, blob)
        if self._cost is not None:
            self._cost.record_decryption(len(blob))
        offset = int.from_bytes(plaintext, "big")
        if self._cache is not None:
            self._cache.put(
                cache_key,
                CachedEntry(plaintext, offset),
                cached_entry_footprint(blob, plaintext),
            )
        return offset


# ----------------------------------------------------------------------
# Shared binary-search helpers (half-open interval [low, high))
# ----------------------------------------------------------------------


def _leftmost(low: int, high: int, below_target: Callable[[int], bool]) -> int:
    """First index in ``[low, high)`` where ``below_target`` turns False."""
    while low < high:
        mid = (low + high) // 2
        if below_target(mid):
            low = mid + 1
        else:
            high = mid
    return low


def search_sorted(accessor: DictionaryAccessor, search: OrdinalRange) -> SearchResult:
    """``EnclDictSearch`` for ED1/ED4/ED7 (Algorithm 1).

    A leftmost binary search locates where the range starts, a rightmost
    one where it ends; duplicates from frequency smoothing/hiding are
    handled inherently.
    """
    n = len(accessor)
    if n == 0 or search.is_empty:
        return SearchResult(ranges=(DUMMY_RANGE, DUMMY_RANGE))
    vid_min = _leftmost(0, n, lambda i: accessor.ordinal(i) < search.low)
    vid_max = _leftmost(0, n, lambda i: accessor.ordinal(i) <= search.high) - 1
    if vid_min > vid_max:
        return SearchResult(ranges=(DUMMY_RANGE, DUMMY_RANGE))
    return SearchResult(ranges=((vid_min, vid_max), DUMMY_RANGE))


def search_unsorted(accessor: DictionaryAccessor, search: OrdinalRange) -> SearchResult:
    """``EnclDictSearch`` for ED3/ED6/ED9 (Algorithm 4): linear scan.

    With a packed-ordinal array attached the scan is one boolean-mask
    kernel (:func:`repro.encdict.kernels.unsorted_scan`); results, the
    probe log, and the logical cost charges (one untrusted load + one
    comparison per entry) are identical to the scalar loop, which remains
    below as the reference oracle.
    """
    if search.is_empty:
        return SearchResult(vids=())
    packed = accessor.packed
    if packed is not None:
        n = len(accessor)
        accessor.probes.extend(range(n))
        accessor.charge_probes(n)
        return SearchResult(
            vids=kernels.unsorted_scan(packed, search.low, search.high)
        )
    vids = tuple(
        index
        for index in range(len(accessor))
        if search.low <= accessor.ordinal(index) <= search.high
    )
    return SearchResult(vids=vids)


def search_rotated(accessor: DictionaryAccessor, search: OrdinalRange) -> SearchResult:
    """``EnclDictSearch`` for ED2/ED5/ED8 (Algorithms 2 and 3).

    Works in the shifted ordinal space ``c(i) = (ENCODE(D[i]) - r) mod N``
    with ``r = ENCODE(D[0])``, in which the rotated dictionary is sorted
    except for a possible run of ``D[0]``-duplicates wrapped to the array
    end. The plaintext matches are exactly the entries whose shifted ordinal
    lies in the circular interval ``[t_s, t_e]`` (the mod-N shift is a
    bijection preserving circular intervals), yielding one or two physical
    ValueID ranges.
    """
    n = len(accessor)
    if n == 0 or search.is_empty:
        return SearchResult(ranges=(DUMMY_RANGE, DUMMY_RANGE))

    modulus = accessor.value_type.domain_size
    # Algorithm 2 line 3: the rotation offset is decrypted inside the
    # enclave on every query (it is needed for the duplicate-wrap corner
    # case below, and decrypting unconditionally keeps the access pattern
    # query-independent and authenticates the stored offset).
    rnd_offset = accessor.rotation_offset()
    reference = accessor.ordinal(0)  # r = ENCODE(PAE_Dec(SKD, eD[0]))
    t_start_value = (search.low - reference) % modulus
    t_end_value = (search.high - reference) % modulus

    def shifted(index: int) -> int:
        return (accessor.ordinal(index) - reference) % modulus

    # Locate the trailing run of D[0]-duplicates wrapped past the rotation
    # point (the ED5/ED8 corner case). It exists only when the last entry
    # equals D[0]'s value, and then starts within [rndOffset, n).
    trailing_start = n
    if n > 1:
        # Probe the last entry unconditionally so the probe prefix stays
        # independent of the secret offset.
        last_entry_wraps = shifted(n - 1) == 0
        if rnd_offset > 0 and last_entry_wraps:
            trailing_start = _leftmost(rnd_offset, n, lambda i: shifted(i) != 0)

    # Within [0, trailing_start) the shifted sequence is non-decreasing:
    # zeros (D[0]-duplicates), then strictly greater shifted ordinals.
    sorted_end = trailing_start
    first_at_or_above_start = _leftmost(
        0, sorted_end, lambda i: shifted(i) < t_start_value
    )
    last_at_or_below_end = (
        _leftmost(0, sorted_end, lambda i: shifted(i) <= t_end_value) - 1
    )

    ranges: list[tuple[int, int]] = []
    has_trailing = trailing_start < n
    if t_start_value == 0:
        # The range starts exactly at D[0]'s value: the leading duplicates
        # (and any prefix of larger matches) match, plus the whole trailing
        # run.
        ranges.append((0, last_at_or_below_end))
        if has_trailing:
            ranges.append((trailing_start, n - 1))
    elif t_start_value <= t_end_value:
        # No wrap in shifted space: at most one contiguous physical range.
        if first_at_or_above_start <= last_at_or_below_end:
            ranges.append((first_at_or_above_start, last_at_or_below_end))
    else:
        # Wrap: the plaintext range contains D[0]'s value, so the lower part
        # always matches from index 0; the upper part (values >= range
        # start) runs to the end of the array if it exists.
        ranges.append((0, last_at_or_below_end))
        if first_at_or_above_start < sorted_end:
            ranges.append((first_at_or_above_start, n - 1))
        elif has_trailing:
            ranges.append((trailing_start, n - 1))

    while len(ranges) < 2:
        ranges.append(DUMMY_RANGE)
    return SearchResult(ranges=tuple(ranges[:2]))


_SEARCHERS = {
    OrderOption.SORTED: search_sorted,
    OrderOption.ROTATED: search_rotated,
    OrderOption.UNSORTED: search_unsorted,
}


class DictionarySearcher:
    """Dispatches ``EnclDictSearch`` by encrypted-dictionary kind.

    With ``vectorized=True`` (the fast path's default) each search first
    tries the partition's packed-ordinal array: the unsorted family fills
    it eagerly (decrypt-once, then the boolean-mask kernel — its cold cost
    already equals a full decrypt pass), while the logarithmic sorted and
    rotated searches attach it only when already resident, keeping their
    O(log n) decryption profile intact. ``vectorized=False`` is the scalar
    reference path the paper figures are reproduced against.
    """

    def __init__(
        self,
        pae: Pae,
        cost_model: CostModel | None = None,
        cache=None,
        *,
        vectorized: bool = True,
    ) -> None:
        self._pae = pae
        self._cost = cost_model
        self._cache = cache
        self._vectorized = vectorized

    def search(
        self,
        dictionary: EncryptedDictionary,
        search: OrdinalRange,
        *,
        key: bytes | None,
        cache_epoch: int = 0,
    ) -> SearchResult:
        kind = dictionary.kind
        order = kind.order if kind is not None else OrderOption.SORTED
        accessor = DictionaryAccessor(
            dictionary,
            key=key,
            pae=self._pae,
            cost_model=self._cost,
            cache=self._cache,
            cache_epoch=cache_epoch,
        )
        if self._vectorized and len(dictionary) > 0 and not search.is_empty:
            accessor.packed_ordinals(fill=order is OrderOption.UNSORTED)
        return _SEARCHERS[order](accessor, search)


def plain_search(
    dictionary: EncryptedDictionary,
    search: OrdinalRange,
    *,
    kind: EncryptedDictionaryKind | None = None,
    cost_model: CostModel | None = None,
) -> SearchResult:
    """PlainDBDB's dictionary search: same algorithms, no enclave, no PAE."""
    accessor = DictionaryAccessor(dictionary, key=None, pae=None, cost_model=cost_model)
    effective_kind = kind if kind is not None else dictionary.kind
    order = effective_kind.order if effective_kind is not None else OrderOption.SORTED
    return _SEARCHERS[order](accessor, search)

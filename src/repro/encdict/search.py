"""``EnclDictSearch``: the dictionary searches that run inside the enclave.

This module is part of the reproduction's trusted computing base (see
DESIGN.md §5). It deliberately contains *only* the search logic; the enclave
program in :mod:`repro.encdict.enclave_app` wires it to ecalls and key
material.

Three search families correspond to the order options:

- **sorted** (ED1/ED4/ED7): one leftmost and one rightmost binary search
  (Algorithm 1), returning a single ValueID range.
- **rotated** (ED2/ED5/ED8): the special binary search of Algorithm 3 in the
  ``(ENCODE(v) - ENCODE(D[0])) mod N`` shifted space, whose probe sequence
  does not trivially reveal the rotation offset, followed by the
  postprocessing of Algorithm 2. Up to two ValueID ranges are returned; a
  single range is padded with a ``(-1, -1)`` dummy so the attribute-vector
  search always sees two (as the paper does). The published pseudocode
  leaves two corner cases open ("special handling for brevity"): a rotation
  offset of 0, and duplicates of ``D[0]``'s value wrapping around the array
  end for the smoothing/hiding kinds (the ED5 corner case of §4.1). Both are
  handled here; the duplicate-wrap case needs ``rndOffset`` to classify
  zero-shift probes, which is exactly why Algorithm 2 decrypts
  ``encRndOffset`` inside the enclave.
- **unsorted** (ED3/ED6/ED9): a linear scan over all entries (Algorithm 4),
  returning an explicit ValueID list.

All comparisons happen on order-preserving ordinals
(:meth:`~repro.columnstore.types.ValueType.ordinal`), so one code path
serves VARCHAR and INTEGER columns. Every entry access decrypts one blob
loaded from untrusted memory and is charged to the cost model; enclave
memory use is constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.columnstore.types import ValueType
from repro.crypto.pae import Pae
from repro.encdict.dictionary import EncryptedDictionary
from repro.encdict.options import EncryptedDictionaryKind, OrderOption
from repro.exceptions import QueryError
from repro.sgx.costs import CostModel

#: The dummy range the rotated search uses to pad single-range results.
DUMMY_RANGE = (-1, -1)


@dataclass(frozen=True)
class OrdinalRange:
    """A closed search range in ordinal space.

    The proxy normalizes every filter (equality, open/half-open/closed
    ranges, exclusive bounds) to a closed ordinal interval before
    encryption, exploiting that column domains are finite and discrete:
    ``v > x`` is ``v >= x + 1`` in ordinal space.
    """

    low: int
    high: int

    @property
    def is_empty(self) -> bool:
        return self.low > self.high

    def to_bytes(self) -> bytes:
        low = self.low.to_bytes(40, "big", signed=True)
        high = self.high.to_bytes(40, "big", signed=True)
        return low + high

    @classmethod
    def from_bytes(cls, data: bytes) -> "OrdinalRange":
        if len(data) != 80:
            raise QueryError("malformed search-range payload")
        return cls(
            int.from_bytes(data[:40], "big", signed=True),
            int.from_bytes(data[40:], "big", signed=True),
        )


@dataclass
class SearchResult:
    """Outcome of ``EnclDictSearch``: ValueID ranges or an explicit list."""

    ranges: tuple[tuple[int, int], ...] = ()
    vids: tuple[int, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not self.vids and all(r == DUMMY_RANGE for r in self.ranges)

    def matched_vid_count(self) -> int:
        from_ranges = sum(
            high - low + 1 for low, high in self.ranges if (low, high) != DUMMY_RANGE
        )
        return from_ranges + len(self.vids)


class DictionaryAccessor:
    """Loads, authenticates and decodes dictionary entries for the searches.

    For an encrypted dictionary this decrypts with the per-column key; for
    the PlainDBDB baseline (``encrypted=False``) it only deserializes. Every
    access is charged to the cost model, and the probe sequence is recorded
    so tests can assert access-pattern properties.
    """

    def __init__(
        self,
        dictionary: EncryptedDictionary,
        *,
        key: bytes | None,
        pae: Pae | None,
        cost_model: CostModel | None = None,
    ) -> None:
        if dictionary.encrypted and (key is None or pae is None):
            raise QueryError("encrypted dictionary requires a key and PAE backend")
        self._dictionary = dictionary
        self._key = key
        self._pae = pae
        self._cost = cost_model
        self.probes: list[int] = []

    def __len__(self) -> int:
        return len(self._dictionary)

    @property
    def value_type(self) -> ValueType:
        return self._dictionary.value_type

    def raw_value(self, index: int):
        """Load entry ``index`` from untrusted memory and decode it."""
        self.probes.append(index)
        blob = self._dictionary.entry(index)
        if self._cost is not None:
            self._cost.record_untrusted_load()
        if self._dictionary.encrypted:
            plaintext = self._pae.decrypt(self._key, blob)
            if self._cost is not None:
                self._cost.record_decryption(len(blob))
        else:
            plaintext = blob
        return self._dictionary.value_type.from_bytes(plaintext)

    def ordinal(self, index: int) -> int:
        """``ENCODE`` of entry ``index`` (one comparison-ready integer)."""
        value = self.raw_value(index)
        if self._cost is not None:
            self._cost.record_comparison()
        return self._dictionary.value_type.ordinal(value)

    def rotation_offset(self) -> int:
        """Decrypt ``encRndOffset`` (Algorithm 2 line 3)."""
        blob = self._dictionary.enc_rnd_offset
        if blob is None:
            raise QueryError("dictionary carries no rotation offset")
        if not self._dictionary.encrypted:
            return int.from_bytes(blob, "big")
        plaintext = self._pae.decrypt(self._key, blob)
        if self._cost is not None:
            self._cost.record_decryption(len(blob))
        return int.from_bytes(plaintext, "big")


# ----------------------------------------------------------------------
# Shared binary-search helpers (half-open interval [low, high))
# ----------------------------------------------------------------------


def _leftmost(low: int, high: int, below_target: Callable[[int], bool]) -> int:
    """First index in ``[low, high)`` where ``below_target`` turns False."""
    while low < high:
        mid = (low + high) // 2
        if below_target(mid):
            low = mid + 1
        else:
            high = mid
    return low


def search_sorted(accessor: DictionaryAccessor, search: OrdinalRange) -> SearchResult:
    """``EnclDictSearch`` for ED1/ED4/ED7 (Algorithm 1).

    A leftmost binary search locates where the range starts, a rightmost
    one where it ends; duplicates from frequency smoothing/hiding are
    handled inherently.
    """
    n = len(accessor)
    if n == 0 or search.is_empty:
        return SearchResult(ranges=(DUMMY_RANGE, DUMMY_RANGE))
    vid_min = _leftmost(0, n, lambda i: accessor.ordinal(i) < search.low)
    vid_max = _leftmost(0, n, lambda i: accessor.ordinal(i) <= search.high) - 1
    if vid_min > vid_max:
        return SearchResult(ranges=(DUMMY_RANGE, DUMMY_RANGE))
    return SearchResult(ranges=((vid_min, vid_max), DUMMY_RANGE))


def search_unsorted(accessor: DictionaryAccessor, search: OrdinalRange) -> SearchResult:
    """``EnclDictSearch`` for ED3/ED6/ED9 (Algorithm 4): linear scan."""
    if search.is_empty:
        return SearchResult(vids=())
    vids = tuple(
        index
        for index in range(len(accessor))
        if search.low <= accessor.ordinal(index) <= search.high
    )
    return SearchResult(vids=vids)


def search_rotated(accessor: DictionaryAccessor, search: OrdinalRange) -> SearchResult:
    """``EnclDictSearch`` for ED2/ED5/ED8 (Algorithms 2 and 3).

    Works in the shifted ordinal space ``c(i) = (ENCODE(D[i]) - r) mod N``
    with ``r = ENCODE(D[0])``, in which the rotated dictionary is sorted
    except for a possible run of ``D[0]``-duplicates wrapped to the array
    end. The plaintext matches are exactly the entries whose shifted ordinal
    lies in the circular interval ``[t_s, t_e]`` (the mod-N shift is a
    bijection preserving circular intervals), yielding one or two physical
    ValueID ranges.
    """
    n = len(accessor)
    if n == 0 or search.is_empty:
        return SearchResult(ranges=(DUMMY_RANGE, DUMMY_RANGE))

    modulus = accessor.value_type.domain_size
    # Algorithm 2 line 3: the rotation offset is decrypted inside the
    # enclave on every query (it is needed for the duplicate-wrap corner
    # case below, and decrypting unconditionally keeps the access pattern
    # query-independent and authenticates the stored offset).
    rnd_offset = accessor.rotation_offset()
    reference = accessor.ordinal(0)  # r = ENCODE(PAE_Dec(SKD, eD[0]))
    t_start_value = (search.low - reference) % modulus
    t_end_value = (search.high - reference) % modulus

    def shifted(index: int) -> int:
        return (accessor.ordinal(index) - reference) % modulus

    # Locate the trailing run of D[0]-duplicates wrapped past the rotation
    # point (the ED5/ED8 corner case). It exists only when the last entry
    # equals D[0]'s value, and then starts within [rndOffset, n).
    trailing_start = n
    if n > 1:
        # Probe the last entry unconditionally so the probe prefix stays
        # independent of the secret offset.
        last_entry_wraps = shifted(n - 1) == 0
        if rnd_offset > 0 and last_entry_wraps:
            trailing_start = _leftmost(rnd_offset, n, lambda i: shifted(i) != 0)

    # Within [0, trailing_start) the shifted sequence is non-decreasing:
    # zeros (D[0]-duplicates), then strictly greater shifted ordinals.
    sorted_end = trailing_start
    first_at_or_above_start = _leftmost(
        0, sorted_end, lambda i: shifted(i) < t_start_value
    )
    last_at_or_below_end = (
        _leftmost(0, sorted_end, lambda i: shifted(i) <= t_end_value) - 1
    )

    ranges: list[tuple[int, int]] = []
    has_trailing = trailing_start < n
    if t_start_value == 0:
        # The range starts exactly at D[0]'s value: the leading duplicates
        # (and any prefix of larger matches) match, plus the whole trailing
        # run.
        ranges.append((0, last_at_or_below_end))
        if has_trailing:
            ranges.append((trailing_start, n - 1))
    elif t_start_value <= t_end_value:
        # No wrap in shifted space: at most one contiguous physical range.
        if first_at_or_above_start <= last_at_or_below_end:
            ranges.append((first_at_or_above_start, last_at_or_below_end))
    else:
        # Wrap: the plaintext range contains D[0]'s value, so the lower part
        # always matches from index 0; the upper part (values >= range
        # start) runs to the end of the array if it exists.
        ranges.append((0, last_at_or_below_end))
        if first_at_or_above_start < sorted_end:
            ranges.append((first_at_or_above_start, n - 1))
        elif has_trailing:
            ranges.append((trailing_start, n - 1))

    while len(ranges) < 2:
        ranges.append(DUMMY_RANGE)
    return SearchResult(ranges=tuple(ranges[:2]))


_SEARCHERS = {
    OrderOption.SORTED: search_sorted,
    OrderOption.ROTATED: search_rotated,
    OrderOption.UNSORTED: search_unsorted,
}


class DictionarySearcher:
    """Dispatches ``EnclDictSearch`` by encrypted-dictionary kind."""

    def __init__(self, pae: Pae, cost_model: CostModel | None = None) -> None:
        self._pae = pae
        self._cost = cost_model

    def search(
        self,
        dictionary: EncryptedDictionary,
        search: OrdinalRange,
        *,
        key: bytes | None,
    ) -> SearchResult:
        kind = dictionary.kind
        order = kind.order if kind is not None else OrderOption.SORTED
        accessor = DictionaryAccessor(
            dictionary, key=key, pae=self._pae, cost_model=self._cost
        )
        return _SEARCHERS[order](accessor, search)


def plain_search(
    dictionary: EncryptedDictionary,
    search: OrdinalRange,
    *,
    kind: EncryptedDictionaryKind | None = None,
    cost_model: CostModel | None = None,
) -> SearchResult:
    """PlainDBDB's dictionary search: same algorithms, no enclave, no PAE."""
    accessor = DictionaryAccessor(dictionary, key=None, pae=None, cost_model=cost_model)
    effective_kind = kind if kind is not None else dictionary.kind
    order = effective_kind.order if effective_kind is not None else OrderOption.SORTED
    return _SEARCHERS[order](accessor, search)

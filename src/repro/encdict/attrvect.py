"""``AttrVectSearch``: the untrusted attribute-vector scan.

Runs entirely outside the enclave (paper §3.1): given the ValueID ranges or
list produced by ``EnclDictSearch``, it linearly scans the attribute vector
and returns the matching RecordIDs. Only integers are compared, which the
paper highlights as highly optimized and easily parallelizable — here the
scan is vectorized with numpy, and large vectors can additionally be split
into chunks scanned by a thread pool (numpy comparisons release the GIL),
the Python equivalent of that observation.

Cost accounting is *uniform over range slots*: every slot of
``result.ranges`` — real, empty (``low > high``), or the explicit
``(-1, -1)`` dummy padding — charges one comparison per attribute-vector
entry. The ranges arrive padded to a fixed width precisely so the untrusted
side cannot tell how many were real (§4.1); an honest cost model therefore
must not make the comparison count depend on that secret either. A
sorted-dictionary query always charges ``2·|AV|``, exactly Table 4's
``O(|AV|)`` row. Wall-clock execution still skips non-matchable slots —
that shortcut is untrusted-side and data-independent given the padded
result shape. The explicit-ValueID path (unsorted dictionaries) charges
``|AV|·|vids|``, Table 4's ``O(|AV|·|vid|)`` row, unchanged.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor
from typing import Sequence

import numpy as np

from repro.encdict.search import DUMMY_RANGE, SearchResult
from repro.runtime import (
    SCAN_POOL,
    dispatch_decision,
    kernel_cost,
    note_kernel_cost,
    shared_pool,
    shutdown_pool,
)
from repro.sgx.costs import CostModel

#: Default rows per chunk when a chunked scan is requested without a size.
DEFAULT_SCAN_CHUNK_ROWS = 1 << 18


def _shared_pool(max_workers: int) -> Executor:
    """The process-wide scan pool (named slot in the runtime registry).

    The registry keeps one lazily created pool per name and resizes it
    upward only — a request for fewer workers reuses the bigger pool; the
    caller still bounds its own fan-out by how much work it submits. Call
    :func:`shutdown_scan_pools` to release the threads explicitly.
    """
    return shared_pool(SCAN_POOL, max_workers, thread_name_prefix="attrvect-scan")


def shutdown_scan_pools(wait: bool = True) -> None:
    """Explicitly release the shared scan pool (server shutdown hook).

    Idempotent and concurrent-safe (the registry guarantees each executor
    is shut down exactly once); the next scan lazily recreates the pool.
    """
    shutdown_pool(SCAN_POOL, wait=wait)


def _prepare_scan(
    attribute_vector: np.ndarray, result: SearchResult
) -> tuple[int, list[tuple[int, int]], np.ndarray | None]:
    """Uniform cost + matchable slots of one attribute-vector scan.

    Returns ``(comparisons, matchable_ranges, vids)``. The comparison count
    is charged per padded slot regardless of whether the slot is real, empty
    or dummy — see the module docstring.
    """
    n = len(attribute_vector)
    comparisons = 0
    matchable_ranges: list[tuple[int, int]] = []
    for low, high in result.ranges:
        # Uniform charge per slot: the slot count is padding-fixed, so the
        # comparison count must not reveal how many slots were real.
        comparisons += n
        if (low, high) == DUMMY_RANGE:
            # Dummy padding from the rotated/sorted searches: by
            # construction it matches nothing; skip the actual scan.
            continue
        if low > high:
            # Empty real range (e.g. an unsatisfiable filter): same
            # treatment as a dummy — charged, not scanned.
            continue
        matchable_ranges.append((low, high))

    vids: np.ndarray | None = None
    if result.vids:
        vids = np.asarray(result.vids, dtype=attribute_vector.dtype)
        comparisons += n * len(vids)
    return comparisons, matchable_ranges, vids


def _scan_mask(
    segment: np.ndarray,
    ranges: Sequence[tuple[int, int]],
    vids: np.ndarray | None,
) -> np.ndarray:
    """Boolean match mask of one attribute-vector segment."""
    mask = np.zeros(len(segment), dtype=bool)
    for low, high in ranges:
        mask |= (segment >= low) & (segment <= high)
    if vids is not None:
        mask |= np.isin(segment, vids)
    return mask


def _estimated_scan_s(rows: int) -> float | None:
    """Estimated serial cost of scanning ``rows``, from measured history."""
    rate = kernel_cost(SCAN_POOL)
    return rate * rows if rate is not None else None


def attr_vect_search(
    attribute_vector: np.ndarray,
    result: SearchResult,
    *,
    cost_model: CostModel | None = None,
    chunk_rows: int | None = None,
    max_workers: int | None = None,
    adaptive: bool | None = None,
) -> np.ndarray:
    """RecordIDs whose ValueID matches the dictionary-search result.

    For range results (sorted/rotated dictionaries) each attribute-vector
    entry is compared against the fixed number of ``[low, high]`` range
    slots; for explicit ValueID lists (unsorted dictionaries) every entry
    is compared against every returned ValueID — the ``O(|AV| * |vid|)``
    cost of Table 4.

    When ``chunk_rows`` is given (and ``max_workers > 1``), vectors larger
    than one chunk are scanned in slices on a shared thread pool — unless
    adaptive dispatch (:func:`repro.runtime.dispatch_decision`) determines
    the fan-out cannot win (too few cores, or the estimated work is smaller
    than the pool's own per-task overhead), in which case the scan stays
    serial. ``adaptive=False`` forces the legacy always-parallel behaviour.
    Either way the result is bit-identical to the single-shot scan and the
    cost accounting is unaffected — dispatch changes wall-clock time only.
    """
    n = len(attribute_vector)
    comparisons, matchable_ranges, vids = _prepare_scan(attribute_vector, result)
    if cost_model is not None:
        cost_model.record_comparison(comparisons)

    if n == 0:
        return np.empty(0, dtype=np.int64)

    # Short-circuit: nothing can match (all slots dummy/empty, no ValueIDs).
    if not matchable_ranges and vids is None:
        return np.empty(0, dtype=np.int64)

    if chunk_rows is None:
        chunk_rows = DEFAULT_SCAN_CHUNK_ROWS
    workers = max_workers if max_workers is not None else 1
    decision = None
    if workers > 1 and n > chunk_rows:
        decision = dispatch_decision(
            SCAN_POOL,
            requested_workers=workers,
            jobs=(n + chunk_rows - 1) // chunk_rows,
            estimated_serial_s=_estimated_scan_s(n),
            adaptive=adaptive,
        )
    if decision is not None and decision.parallel:
        starts = range(0, n, chunk_rows)
        pool = _shared_pool(decision.workers)
        masks = list(
            pool.map(
                lambda start: _scan_mask(
                    attribute_vector[start : start + chunk_rows],
                    matchable_ranges,
                    vids,
                ),
                starts,
            )
        )
        mask = np.concatenate(masks)
    else:
        start = time.perf_counter()
        mask = _scan_mask(attribute_vector, matchable_ranges, vids)
        note_kernel_cost(SCAN_POOL, (time.perf_counter() - start) / n)
    return np.nonzero(mask)[0].astype(np.int64)


def attr_vect_search_many(
    jobs: Sequence[tuple[np.ndarray, SearchResult]],
    *,
    cost_model: CostModel | None = None,
    max_workers: int | None = None,
    adaptive: bool | None = None,
) -> list[np.ndarray]:
    """Scan many (attribute vector, search result) pairs — one per column
    partition — returning per-job RecordID arrays (partition-local).

    Cost accounting happens up front in the caller thread (one charge per
    call, independent of worker scheduling) and equals the sum of the
    per-job uniform charges — identical to scanning the concatenated vector,
    so partitioning a column never changes its comparison count. Each job is
    scanned single-shot (no nested chunking: the jobs themselves are the
    parallelism units, and submitting chunked sub-scans from pool workers
    into the same bounded pool could deadlock).
    """
    prepared = []
    total_comparisons = 0
    total_rows = 0
    for attribute_vector, result in jobs:
        comparisons, matchable_ranges, vids = _prepare_scan(
            attribute_vector, result
        )
        total_comparisons += comparisons
        total_rows += len(attribute_vector)
        prepared.append((attribute_vector, matchable_ranges, vids))
    if cost_model is not None:
        cost_model.record_comparison(total_comparisons)

    def scan(job: tuple) -> np.ndarray:
        attribute_vector, matchable_ranges, vids = job
        if len(attribute_vector) == 0 or (not matchable_ranges and vids is None):
            return np.empty(0, dtype=np.int64)
        mask = _scan_mask(attribute_vector, matchable_ranges, vids)
        return np.nonzero(mask)[0].astype(np.int64)

    workers = max_workers if max_workers is not None else 1
    decision = None
    if workers > 1 and len(prepared) > 1:
        decision = dispatch_decision(
            SCAN_POOL,
            requested_workers=workers,
            jobs=len(prepared),
            estimated_serial_s=_estimated_scan_s(total_rows),
            adaptive=adaptive,
        )
    if decision is not None and decision.parallel:
        pool = _shared_pool(decision.workers)
        return list(pool.map(scan, prepared))
    start = time.perf_counter()
    out = [scan(job) for job in prepared]
    if total_rows > 0:
        note_kernel_cost(SCAN_POOL, (time.perf_counter() - start) / total_rows)
    return out

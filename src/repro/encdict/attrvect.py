"""``AttrVectSearch``: the untrusted attribute-vector scan.

Runs entirely outside the enclave (paper §3.1): given the ValueID ranges or
list produced by ``EnclDictSearch``, it linearly scans the attribute vector
and returns the matching RecordIDs. Only integers are compared, which the
paper highlights as highly optimized and easily parallelizable — here the
scan is vectorized with numpy, the Python equivalent of that observation.
"""

from __future__ import annotations

import numpy as np

from repro.encdict.search import DUMMY_RANGE, SearchResult
from repro.sgx.costs import CostModel


def attr_vect_search(
    attribute_vector: np.ndarray,
    result: SearchResult,
    *,
    cost_model: CostModel | None = None,
) -> np.ndarray:
    """RecordIDs whose ValueID matches the dictionary-search result.

    For range results (sorted/rotated dictionaries) each attribute-vector
    entry is compared against up to two ``[low, high]`` ranges; for explicit
    ValueID lists (unsorted dictionaries) every entry is compared against
    every returned ValueID — the ``O(|AV| * |vid|)`` cost of Table 4.
    """
    if len(attribute_vector) == 0:
        return np.empty(0, dtype=np.int64)

    mask = np.zeros(len(attribute_vector), dtype=bool)
    comparisons = 0
    for low, high in result.ranges:
        if (low, high) == DUMMY_RANGE or low > high:
            continue
        mask |= (attribute_vector >= low) & (attribute_vector <= high)
        comparisons += len(attribute_vector)
    if result.vids:
        vids = np.asarray(result.vids, dtype=attribute_vector.dtype)
        mask |= np.isin(attribute_vector, vids)
        comparisons += len(attribute_vector) * len(result.vids)

    if cost_model is not None:
        cost_model.record_comparison(comparisons)
    return np.nonzero(mask)[0].astype(np.int64)

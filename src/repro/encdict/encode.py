"""The ``ENCODE`` order-preserving embedding of Algorithm 3.

``ENCODE`` converts each column value into an integer in ``[0, N)`` — where
``N`` is the size of the column's value domain — such that the plaintext
order equals the integer order. The rotated dictionary search then works in
the *shifted* space ``(ENCODE(v) - ENCODE(D[0])) mod N``, which makes the
rotated sequence monotone and the binary-search probe sequence independent
of the secret rotation offset.

The embedding itself lives on :class:`~repro.columnstore.types.ValueType`
(``ordinal``); this module adds the modular-shift helpers used inside the
enclave.
"""

from __future__ import annotations

from typing import Any

from repro.columnstore.types import ValueType


def encode(value_type: ValueType, value: Any) -> int:
    """``ENCODE``: order-preserving integer of ``value`` in ``[0, N)``."""
    return value_type.ordinal(value)


def modulus(value_type: ValueType) -> int:
    """``N``: the ``ENCODE`` of the column maximum plus one (domain size)."""
    return value_type.domain_size


def shifted(value_type: ValueType, value: Any, reference_ordinal: int) -> int:
    """``(ENCODE(value) - r) mod N``: position in the rotation-shifted space."""
    return (value_type.ordinal(value) - reference_ordinal) % value_type.domain_size

"""The parallel, batched, streaming build pipeline (PR 4).

``EncDB`` — splitting a column, arranging its dictionary, and PAE-sealing
every value — is the write path the paper evaluates in Table 6, and until
this module it was fully serial and materialized whole tables before a
single byte was encrypted. The pipeline turns a bulk load (or the dirty
half of a merge) into a DAG of independent **(column × partition) build
tasks** executed on a bounded worker pool, with the source rows streamed
in partition-sized slices:

.. code-block:: text

    slice(p)  ──►  build(c₀, p) ─┐
              ──►  build(c₁, p) ─┼──►  assemble(p)  ──►  yield p (in order)
              ──►  build(c₂, p) ─┘

    slice(p+1) … runs while p's builds are still in flight (bounded window)

- **Parallel.** Tasks run on a shared thread pool (the pattern of
  ``attrvect.py``'s scan pool) or a process pool for CPU-bound multi-core
  builds; the fan-out defaults to the same knob as the scan pool
  (``ENCDBDB_SCAN_WORKERS``, :mod:`repro.runtime`).
- **Deterministic.** Every task's randomness (bucket splits, rotation
  offsets, shuffles, PAE IVs) comes from DRBGs pre-derived per (column,
  partition) by :func:`~repro.encdict.builder.derive_partition_rngs`, so a
  parallel build is **bit-for-bit identical** to the serial
  :func:`~repro.encdict.builder.encdb_build_partitioned` loop — same
  ciphertexts, same attribute vectors, same ``BuildStats``.
- **Streaming with backpressure.** At most ``max_inflight_partitions``
  partitions of plaintext are resident at once; completed partitions are
  yielded in order while later slices are still being read, so peak memory
  on the build side is O(partition), not O(table).

Security: parallelism changes *when* each ciphertext is produced, never
*what* is produced (byte-identity with the serial build is tested), so the
Table 5 leakage profile is unchanged — see DESIGN.md §7.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import Executor, Future
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Iterable, Iterator, Mapping

from repro.columnstore.types import ColumnSpec, ValueType
from repro.crypto.drbg import HmacDrbg
from repro.crypto.pae import Pae, default_pae
from repro.encdict.builder import BuildResult, encdb_build
from repro.encdict.options import EncryptedDictionaryKind
from repro.exceptions import CatalogError
from repro.runtime import (
    BUILD_PROCESS_POOL,
    BUILD_THREAD_POOL,
    configured_workers,
    dispatch_decision,
    map_on_build_pool,
    shared_pool,
    shutdown_pool,
)

#: Dispatch-log kind under which the pipeline records its serial/parallel
#: choice (shown by EXPLAIN and BenchStats).
BUILD_DISPATCH = "build-pipeline"

__all__ = [
    "BuildPipeline",
    "BuildTask",
    "ColumnPlan",
    "EXECUTOR_KINDS",
    "PartitionBuild",
    "build_encrypt_operations",
    "map_on_build_pool",  # re-export; lives in repro.runtime since PR 5
    "shutdown_build_pools",
]

#: Executor kinds the pipeline can run build tasks on.
EXECUTOR_KINDS = ("serial", "thread", "process")


# ----------------------------------------------------------------------
# Shared pools (named slots in the repro.runtime registry)
# ----------------------------------------------------------------------
def _shared_thread_pool(max_workers: int) -> Executor:
    """The process-wide build thread pool, resized upward."""
    return shared_pool(
        BUILD_THREAD_POOL, max_workers, thread_name_prefix="encdb-build"
    )


def _shared_process_pool(max_workers: int) -> Executor:
    """The process-wide build process pool.

    Worker processes import this module and run :func:`_run_build_task`
    with their own PAE backend; ciphertexts depend only on the task's key
    and DRBGs, never on which process seals them.
    """
    return shared_pool(BUILD_PROCESS_POOL, max_workers, kind="process")


def shutdown_build_pools(wait: bool = True) -> None:
    """Release the shared build pools (server shutdown hook). Idempotent."""
    shutdown_pool(BUILD_THREAD_POOL, wait=wait)
    shutdown_pool(BUILD_PROCESS_POOL, wait=wait)


# ----------------------------------------------------------------------
# Build tasks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BuildTask:
    """One (column × partition) unit of the build DAG.

    Self-contained and picklable: the values slice plus the pre-derived
    DRBGs. Executing it touches no shared mutable state, which is exactly
    why tasks may run on any worker in any order.
    """

    table_name: str
    column_name: str
    kind: EncryptedDictionaryKind
    value_type: ValueType
    key: bytes
    bsmax: int
    partition_index: int
    values: tuple
    build_rng: HmacDrbg
    iv_rng: HmacDrbg


def _execute_build_task(task: BuildTask, pae: Pae) -> BuildResult:
    return encdb_build(
        list(task.values),
        task.kind,
        value_type=task.value_type,
        key=task.key,
        pae=pae,
        rng=task.build_rng,
        iv_rng=task.iv_rng,
        bsmax=task.bsmax,
        table_name=task.table_name,
        column_name=task.column_name,
        encrypted=True,
    )


def _run_build_task(task: BuildTask) -> BuildResult:
    """Process-pool entry point: build with a worker-local PAE backend.

    AES-GCM is deterministic given (key, IV), so the backend instance is
    irrelevant to the produced bytes; operation counts are reconciled into
    the parent's backend by the pipeline (:meth:`BuildPipeline._collect`).
    """
    return _execute_build_task(task, default_pae())


def build_encrypt_operations(build: BuildResult) -> int:
    """PAE encryptions one build performed (entries + rotation offset)."""
    count = build.stats.dictionary_entries
    if build.dictionary.enc_rnd_offset is not None:
        count += 1
    return count


# ----------------------------------------------------------------------
# Pipeline inputs and outputs
# ----------------------------------------------------------------------
@dataclass
class ColumnPlan:
    """One column's contribution to a streamed build.

    ``source`` may be any iterable — including a generator — consumed in
    row order, one partition slice at a time. Encrypted columns need their
    per-column key ``SKD`` and column DRBG (the owner derives both);
    plaintext columns pass values through unencrypted.
    """

    spec: ColumnSpec
    source: Iterable[Any]
    key: bytes | None = None
    rng: HmacDrbg | None = None

    def __post_init__(self) -> None:
        if self.spec.is_encrypted and (self.key is None or self.rng is None):
            raise CatalogError(
                f"encrypted column {self.spec.name!r} needs a key and a DRBG"
            )


@dataclass
class PartitionBuild:
    """One completed partition, every column aligned to the same rows."""

    index: int
    row_count: int
    builds: dict[str, BuildResult] = field(default_factory=dict)
    plain_values: dict[str, list] = field(default_factory=dict)


@dataclass
class _PendingPartition:
    index: int
    row_count: int
    futures: dict[str, Future] = field(default_factory=dict)
    plain_values: dict[str, list] = field(default_factory=dict)


def _partition_rng_stream(
    rng: HmacDrbg,
) -> Iterator[tuple[HmacDrbg, HmacDrbg]]:
    """Lazily yield the ``(build_rng, iv_rng)`` pairs of
    :func:`~repro.encdict.builder.derive_partition_rngs`, one partition at
    a time — identical streams, but usable when the partition count is not
    known up front (streamed sources)."""
    index = 0
    while True:
        build_rng = rng.fork(f"part-{index}")
        yield build_rng, build_rng.fork("pae-iv")
        index += 1


class BuildPipeline:
    """Orchestrates a streamed multi-column build over a bounded pool.

    ``executor`` selects where build tasks run:

    - ``"serial"`` — inline in the calling thread (the reference path;
      still streamed and batched);
    - ``"thread"`` — the shared build thread pool. Useful when the PAE
      backend releases the GIL and always safe; the default.
    - ``"process"`` — the shared process pool, for multi-core speedups on
      CPU-bound builds (the Python split/arrange stages hold the GIL).

    All three produce byte-identical artifacts; only wall-clock differs.
    """

    def __init__(
        self,
        *,
        pae: Pae,
        max_workers: int | None = None,
        executor: str = "thread",
        max_inflight_partitions: int | None = None,
        adaptive: bool | None = None,
    ) -> None:
        if executor not in EXECUTOR_KINDS:
            raise CatalogError(
                f"unknown build executor {executor!r}; pick from {EXECUTOR_KINDS}"
            )
        self.pae = pae
        self.max_workers = (
            max_workers if max_workers is not None else configured_workers()
        )
        #: The executor kind the caller asked for, before any downgrade.
        self.requested_executor = executor
        self.executor = executor if self.max_workers > 1 else "serial"
        if self.executor != "serial":
            # Adaptive dispatch: on a host where workers cannot overlap,
            # downgrade to the inline serial path — artifacts are
            # byte-identical either way, only wall-clock differs. Thread
            # pools never beat serial on one core, and process pools lose
            # their fork/pickle cost too. ``adaptive=False`` pins the
            # requested executor (tests exercise the real pools with it).
            decision = dispatch_decision(
                BUILD_DISPATCH,
                requested_workers=self.max_workers,
                adaptive=adaptive,
            )
            if not decision.parallel:
                self.executor = "serial"
        # The backpressure window: how many partitions may hold plaintext
        # (and in-flight build state) at once. Bounds peak build-side
        # memory at O(max_inflight_partitions * partition_rows).
        self.max_inflight_partitions = (
            max_inflight_partitions
            if max_inflight_partitions is not None
            else max(2, 2 * self.max_workers)
        )
        if self.max_inflight_partitions < 1:
            raise CatalogError("max_inflight_partitions must be at least 1")

    # ------------------------------------------------------------------
    def _pool(self) -> Executor | None:
        if self.executor == "thread":
            return _shared_thread_pool(self.max_workers)
        if self.executor == "process":
            return _shared_process_pool(self.max_workers)
        return None

    def _submit(self, pool: Executor | None, task: BuildTask) -> Future:
        future: Future
        if pool is None:
            future = Future()
            try:
                future.set_result(_execute_build_task(task, self.pae))
            except BaseException as exc:  # pragma: no cover - propagated
                future.set_exception(exc)
            return future
        if self.executor == "process":
            return pool.submit(_run_build_task, task)
        return pool.submit(_execute_build_task, task, self.pae)

    def _collect(self, pending: _PendingPartition) -> PartitionBuild:
        finished = PartitionBuild(
            index=pending.index,
            row_count=pending.row_count,
            plain_values=pending.plain_values,
        )
        for name, future in pending.futures.items():
            build = future.result()
            if self.executor == "process":
                # Worker processes count on their own backends; fold the
                # exact operation count back so accounting stays additive.
                self.pae.add_operation_counts(
                    encrypts=build_encrypt_operations(build)
                )
            finished.builds[name] = build
        return finished

    # ------------------------------------------------------------------
    def build_stream(
        self,
        table_name: str,
        plans: Mapping[str, ColumnPlan],
        *,
        partition_rows: int,
    ) -> Iterator[PartitionBuild]:
        """Stream the (column × partition) DAG, yielding partitions in order.

        Slicing, encryption, and downstream consumption (storage-frame
        writing at the server) overlap: while partition *p* is being
        yielded, up to ``max_inflight_partitions`` later slices are already
        building on the pool. Raises :class:`CatalogError` when column
        sources run out of rows at different points.
        """
        if partition_rows <= 0:
            raise CatalogError("partition_rows must be positive")
        if not plans:
            raise CatalogError("bulk load requires at least one column")
        iterators = {name: iter(plan.source) for name, plan in plans.items()}
        rng_streams = {
            name: _partition_rng_stream(plan.rng)
            for name, plan in plans.items()
            if plan.spec.is_encrypted
        }
        pool = self._pool()
        window: deque[_PendingPartition] = deque()
        index = 0
        try:
            while True:
                chunks = {
                    name: list(islice(iterator, partition_rows))
                    for name, iterator in iterators.items()
                }
                lengths = {len(chunk) for chunk in chunks.values()}
                if lengths == {0}:
                    break
                if len(lengths) != 1:
                    raise CatalogError(
                        f"columns of {table_name!r} ran out of rows at "
                        f"different points (partition {index})"
                    )
                (row_count,) = lengths
                pending = _PendingPartition(index=index, row_count=row_count)
                for name, plan in plans.items():
                    if plan.spec.is_encrypted:
                        build_rng, iv_rng = next(rng_streams[name])
                        pending.futures[name] = self._submit(
                            pool,
                            BuildTask(
                                table_name=table_name,
                                column_name=plan.spec.name,
                                kind=plan.spec.protection,
                                value_type=plan.spec.value_type,
                                key=plan.key,
                                bsmax=plan.spec.bsmax,
                                partition_index=index,
                                values=tuple(chunks[name]),
                                build_rng=build_rng,
                                iv_rng=iv_rng,
                            ),
                        )
                    else:
                        pending.plain_values[name] = chunks[name]
                window.append(pending)
                index += 1
                # Backpressure: drain the oldest partition before slicing
                # beyond the window, keeping resident plaintext bounded.
                while len(window) >= self.max_inflight_partitions:
                    yield self._collect(window.popleft())
            while window:
                yield self._collect(window.popleft())
        finally:
            # On abandonment (consumer stopped early, or a task failed)
            # drop references to whatever was still in flight.
            for pending in window:
                for future in pending.futures.values():
                    future.cancel()

    def build_columns(
        self,
        table_name: str,
        plans: Mapping[str, ColumnPlan],
        *,
        partition_rows: int,
    ) -> tuple[dict[str, list[BuildResult]], dict[str, list]]:
        """Non-streaming convenience: run the DAG, collect whole columns.

        Returns ``(encrypted_builds, plain_columns)`` in the shape
        :meth:`repro.server.dbms.EncDBDBServer.bulk_load` consumes — the
        owner uses this when the server cannot accept a partition stream
        (e.g. a remote deployment whose wire protocol ships one payload).
        """
        encrypted: dict[str, list[BuildResult]] = {
            name: [] for name, plan in plans.items() if plan.spec.is_encrypted
        }
        plain: dict[str, list] = {
            name: []
            for name, plan in plans.items()
            if not plan.spec.is_encrypted
        }
        for partition in self.build_stream(
            table_name, plans, partition_rows=partition_rows
        ):
            for name, build in partition.builds.items():
                encrypted[name].append(build)
            for name, values in partition.plain_values.items():
                plain[name].extend(values)
        return encrypted, plain

"""The frequency-smoothing random bucket experiment (paper Algorithm 5).

``getRndBucketSizes(|oc(C, v)|, bsmax)`` splits the occurrences of one
unique value into buckets whose sizes are drawn uniformly from
``U{1, bsmax}`` until the drawn total covers the occurrence count; the last
bucket is shrunk to make the total exact. Every bucket becomes one
dictionary entry, so a ValueID in the attribute vector repeats at most
``bsmax`` times — the bounded frequency leakage of Table 3.

The method is the Uniform Random Salt Frequencies scheme of Pouliot, Griffy
and Wright [70].
"""

from __future__ import annotations

from repro.crypto.drbg import HmacDrbg


def get_rnd_bucket_sizes(occurrences: int, bsmax: int, rng: HmacDrbg) -> list[int]:
    """Return the random bucket sizes for a value occurring ``occurrences`` times.

    Follows Algorithm 5 line by line; the returned list is ``bssizes`` and
    its length is ``#bs``.

    >>> sizes = get_rnd_bucket_sizes(10, 3, HmacDrbg(b"doc"))
    >>> sum(sizes)
    10
    >>> all(1 <= s <= 3 for s in sizes)
    True
    """
    if occurrences < 1:
        raise ValueError("a dictionary value must occur at least once")
    if bsmax < 1:
        raise ValueError("bsmax must be >= 1")
    previous_total = 0
    total = 0
    bucket_sizes: list[int] = []
    while total < occurrences:
        size = rng.randint(1, bsmax)
        bucket_sizes.append(size)
        previous_total = total
        total += size
    bucket_sizes[-1] = occurrences - previous_total
    return bucket_sizes


def expected_bucket_count(occurrences: int, bsmax: int) -> float:
    """Expected ``#bs`` for one value: ``2 * occurrences / (1 + bsmax)``.

    This is the per-value term of the Table 3 dictionary-size estimate
    ``|D| ~ sum_v 2*|oc(C,v)| / (1 + bsmax)`` (mean bucket size is
    ``(1 + bsmax) / 2``).
    """
    return 2 * occurrences / (1 + bsmax)

"""The EncDBDB enclave program.

This is the complete trusted interface of the system — the reproduction's
analogue of the paper's 1129-LOC C enclave. Its ecalls are:

- the secure-provisioning handshake (``channel_offer`` / ``channel_accept``
  / ``provision_master_key``), through which the data owner deploys
  ``SKDB`` after attesting the enclave (paper §4.2 step 2);
- ``seal_master_key`` / ``restore_master_key`` for persistence across
  enclave restarts without a new attestation round trip;
- ``dict_search``, the per-query entry point (§4.2 step 8): derives the
  per-column key, decrypts the encrypted range ``τ``, and runs the
  ``EnclDictSearch`` matching the dictionary's kind. One ecall per query;
  dictionary entries are pulled from untrusted memory one at a time, so
  enclave memory use is constant and independent of ``|D|`` (§5);
- ``reencrypt_for_delta`` and ``rebuild_for_merge`` for dynamic data
  (§4.3): inserts are re-encrypted under a fresh IV inside the enclave, and
  the periodic delta merge re-encrypts, re-rotates and re-shuffles so old
  and new main stores cannot be linked.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.drbg import HmacDrbg
from repro.crypto.kdf import derive_column_key
from repro.crypto.pae import Pae, default_pae
from repro.encdict.builder import BuildResult, encdb_build
from repro.encdict.dictionary import EncryptedDictionary
from repro.encdict.options import EncryptedDictionaryKind
from repro.encdict.search import (
    ORDINAL_BOUND_BYTES,
    DictionarySearcher,
    OrdinalRange,
    SearchResult,
)
from repro.exceptions import EnclaveSecurityError, QueryError
from repro.sgx.attestation import AttestationService
from repro.sgx.cache import EnclaveLruCache, FastPathConfig
from repro.sgx.channel import ChannelOffer, SecureChannelListener
from repro.sgx.enclave import Enclave, ecall
from repro.sgx.sealing import seal, unseal

_MASTER_KEY = "SKDB"
_CHANNEL = "provisioning-channel"
_LISTENER = "channel-listener"
_KEY_CACHE = "SKD-cache"

#: Pseudo-column name under which the per-table *aggregate transit key* is
#: derived (analytics pushdown, PR 9). '#' cannot appear in a SQL identifier,
#: so the derivation can never collide with a real column's ``SKD``.
AGGREGATE_KEY_COLUMN = "#aggregate"

_AGGREGATE_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")

#: Upper bound on memoized ``(table, column) -> SKD`` derivations; far above
#: any realistic schema, it only guards against unbounded growth if a caller
#: streams made-up column names through the enclave.
_KEY_CACHE_MAX_ENTRIES = 512


def encrypt_search_range(pae: Pae, key: bytes, search: OrdinalRange) -> tuple[bytes, bytes]:
    """Proxy-side helper: build the encrypted range ``τ = (τ_s, τ_e)``.

    Start and end are encrypted individually with fresh random IVs, so the
    server cannot tell whether two queries touch the same bounds (§4.2
    step 5).
    """
    payload = search.to_bytes()
    return (
        pae.encrypt(key, payload[:ORDINAL_BOUND_BYTES]),
        pae.encrypt(key, payload[ORDINAL_BOUND_BYTES:]),
    )


# ----------------------------------------------------------------------
# Group-frame codec (analytics pushdown, PR 9)
# ----------------------------------------------------------------------
# A *group frame* is the fixed-shape unit in which aggregation results leave
# the enclave: one frame per result group, each PAE-encrypted under the
# table's aggregate transit key. Frame plaintext layout:
#
#   payload_len u32 | payload | zero pad to the uniform frame size
#   payload = dummy u8 | key_len u32 | key bytes | n_aggs u32
#             | per aggregate: present u8 | a s64 | b s64
#
# ``(a, b)`` is the mergeable state of one aggregate — COUNT/SUM/MIN/MAX in
# ``a``, AVG as the ``(sum, count)`` pair — so partials from different shards
# combine without re-decrypting rows. Every frame of a response shares one
# byte length, and the frame *count* is padded to a power of two with dummy
# frames, so the ciphertexts reveal only an upper bound on the group
# cardinality (DESIGN.md §14).


def encode_frame_payload(
    dummy: bool, key_bytes: bytes, states: Sequence[tuple[bool, int, int]]
) -> bytes:
    """Serialize one group frame's payload (pre-padding, pre-encryption)."""
    parts = [
        b"\x01" if dummy else b"\x00",
        len(key_bytes).to_bytes(4, "big"),
        key_bytes,
        len(states).to_bytes(4, "big"),
    ]
    for present, a, b in states:
        parts.append(b"\x01" if present else b"\x00")
        parts.append(int(a).to_bytes(8, "big", signed=True))
        parts.append(int(b).to_bytes(8, "big", signed=True))
    return b"".join(parts)


def decode_group_frame(
    plaintext: bytes,
) -> tuple[bool, bytes, list[tuple[bool, int, int]]]:
    """``(dummy, key_bytes, states)`` from one decrypted group frame."""
    length = int.from_bytes(plaintext[:4], "big")
    payload = plaintext[4 : 4 + length]
    dummy = payload[0] == 1
    key_len = int.from_bytes(payload[1:5], "big")
    key_bytes = payload[5 : 5 + key_len]
    cursor = 5 + key_len
    n_aggs = int.from_bytes(payload[cursor : cursor + 4], "big")
    cursor += 4
    states = []
    for _ in range(n_aggs):
        present = payload[cursor] == 1
        a = int.from_bytes(payload[cursor + 1 : cursor + 9], "big", signed=True)
        b = int.from_bytes(payload[cursor + 9 : cursor + 17], "big", signed=True)
        states.append((present, a, b))
        cursor += 17
    return dummy, key_bytes, states


def padded_frame_count(real_frames: int) -> int:
    """Next power of two ≥ max(1, real_frames): the padded wire frame count."""
    return 1 << (max(1, real_frames) - 1).bit_length()


class EncDBDBEnclave(Enclave):
    """The DBMS-side enclave holding ``SKDB`` and running dictionary searches."""

    def __init__(
        self,
        *,
        attestation: AttestationService | None = None,
        pae: Pae | None = None,
        rng: HmacDrbg | None = None,
        fastpath: FastPathConfig | None = None,
    ) -> None:
        super().__init__(rng=rng)
        self._attestation = attestation if attestation is not None else AttestationService()
        self._pae = pae if pae is not None else default_pae()
        # A bare enclave defaults to the paper-faithful slow path (constant
        # enclave memory, decrypt-every-probe); EncDBDBServer opts into the
        # fast path explicitly. This keeps Figure 8 engines and the
        # constant-memory tests untouched by PR 1's optimizations.
        self.fastpath = fastpath if fastpath is not None else FastPathConfig.disabled()
        self._entry_cache: EnclaveLruCache | None = None
        if self.fastpath.entry_cache_enabled:
            self._entry_cache = EnclaveLruCache(
                budget_bytes=self.fastpath.dictionary_cache_bytes,
                cost_model=self.cost_model,
                epc=self.epc,
            )
        # Monotonic per-(table, column, partition) write counters. Not
        # secret: each bump corresponds to a write ecall the untrusted side
        # already observes. Partition granularity means rebuilding one
        # partition leaves every other partition's cached plaintext valid.
        self._column_epochs: dict[tuple[str, str, int], int] = {}
        self._searcher = DictionarySearcher(
            self._pae,
            self.cost_model,
            cache=self._entry_cache,
            vectorized=self.fastpath.vectorized_kernels_enabled,
        )

    # ------------------------------------------------------------------
    # Fast-path bookkeeping
    # ------------------------------------------------------------------
    @property
    def entry_cache(self) -> EnclaveLruCache | None:
        """The decrypted-entry cache (``None`` when the fast path is off)."""
        return self._entry_cache

    def fastpath_stats(self) -> dict[str, int] | None:
        """Cache counters for benchmarks/tests; ``None`` without a cache."""
        if self._entry_cache is None:
            return None
        return self._entry_cache.stats.snapshot()

    def fastpath_partition_usage(self) -> dict[tuple, int] | None:
        """EPC bytes the entry cache holds per (table, column, partition).

        Partition-granular accounting: shows which partitions' plaintext is
        resident and lets tests assert that evictions/invalidations are
        scoped to single partitions. ``None`` without a cache.
        """
        if self._entry_cache is None:
            return None
        return self._entry_cache.group_usage()

    def _epoch(
        self, table_name: str, column_name: str, partition_id: int | None = None
    ) -> int:
        """The write epoch of one partition, or — with ``partition_id=None``
        — the column-wide maximum (any write anywhere advances it)."""
        if partition_id is not None:
            return self._column_epochs.get(
                (table_name, column_name, partition_id), 0
            )
        return max(
            (
                epoch
                for (table, column, _), epoch in self._column_epochs.items()
                if table == table_name and column == column_name
            ),
            default=0,
        )

    def _bump_epoch(
        self, table_name: str, column_name: str, partition_id: int = 0
    ) -> None:
        """Advance one partition's epoch and drop its cached plaintext.

        Called from every write ecall. The epoch is part of every cache key,
        so even without the eager invalidation a stale hit is impossible —
        the invalidation just frees the budget immediately. Only the written
        partition is invalidated: an incremental merge that rebuilds one
        dirty partition keeps every clean partition's cache warm.
        """
        key = (table_name, column_name, partition_id)
        self._column_epochs[key] = self._column_epochs.get(key, 0) + 1
        if self._entry_cache is not None:
            self._entry_cache.invalidate_prefix(
                (table_name, column_name, partition_id)
            )

    def _reset_caches(self) -> None:
        """Drop all memoized key material and plaintext.

        Invoked when ``SKDB`` (re)enters the enclave: every derived key and
        every decrypted entry may be stale under the new master key.
        """
        self.protected_set(_KEY_CACHE, {})
        if self._entry_cache is not None:
            self._entry_cache.clear()

    # ------------------------------------------------------------------
    # Provisioning (paper §4.2, steps 1-2)
    # ------------------------------------------------------------------
    @ecall
    def channel_offer(self) -> ChannelOffer:
        """Start an attested handshake: quote over a fresh DH public value."""
        listener = SecureChannelListener(self._attestation, self._rng.fork("channel"))
        self.protected_set(_LISTENER, listener)
        return listener.offer(self)

    @ecall
    def channel_accept(self, client_public: int) -> None:
        """Finish the handshake with the data owner's DH public value."""
        if not self.protected_has(_LISTENER):
            raise EnclaveSecurityError("channel_accept before channel_offer")
        listener: SecureChannelListener = self.protected_get(_LISTENER)
        self.protected_set(_CHANNEL, listener.accept(client_public))

    @ecall
    def provision_master_key(self, wire_blob: bytes) -> None:
        """Receive ``SKDB`` through the established secure channel."""
        if not self.protected_has(_CHANNEL):
            raise EnclaveSecurityError("no secure channel established")
        channel = self.protected_get(_CHANNEL)
        self.protected_set(_MASTER_KEY, channel.receive(wire_blob))
        self._reset_caches()

    @ecall
    def replicate_master_key(self, offer: ChannelOffer) -> tuple[int, bytes]:
        """Primary-side key hand-off to a replica enclave (cluster role).

        ``offer`` is the attested channel offer of another enclave running
        the *same* program. This enclave — already provisioned — plays the
        data owner's role of the §4.2 handshake entirely inside the ecall:
        it verifies the replica's quote against its **own** measurement,
        derives the DH channel, and wraps ``SKDB`` under the session key.
        The return value ``(client_public, wire_blob)`` is relayed by the
        untrusted coordinator to the replica's ``channel_accept`` and
        ``provision_master_key`` ecalls; the relay observes only a public
        DH value and a PAE blob, so the master key moves enclave-to-enclave
        without ever existing unwrapped outside either TCB.
        """
        if not self.protected_has(_MASTER_KEY):
            raise EnclaveSecurityError(
                "cannot replicate: master key has not been provisioned"
            )
        from repro.sgx.channel import SecureChannel

        channel, client_public = SecureChannel.connect(
            offer,
            self._attestation,
            self.measurement,
            rng=self._rng.fork("replicate"),
            pae=self._pae,
        )
        # lint: allow(plaintext-taint) justification="sanctioned key egress: SecureChannel.send wraps SKDB under the attested session key before it leaves the TCB (paper 4.2 step 5)"
        return client_public, channel.send(self.protected_get(_MASTER_KEY))

    @ecall
    def is_provisioned(self) -> bool:
        """Whether ``SKDB`` is currently resident in the enclave.

        Not a secret: the untrusted host already observes whether the
        provisioning ecalls ran. The network server advertises this in its
        hello frame so remote clients know whether to attest-and-provision
        or to resume with an existing key.
        """
        return self.protected_has(_MASTER_KEY)

    @ecall
    def seal_master_key(self) -> bytes:
        """Seal ``SKDB`` to this enclave identity for persistence."""
        return seal(self.measurement, self.protected_get(_MASTER_KEY), pae=self._pae)

    @ecall
    def restore_master_key(self, sealed_blob: bytes) -> None:
        """Restore ``SKDB`` from a sealed blob (same enclave identity only)."""
        self.protected_set(
            _MASTER_KEY, unseal(self.measurement, sealed_blob, pae=self._pae)
        )
        self._reset_caches()

    def _column_key(
        self, table_name: str, column_name: str, key_epoch: int = 0
    ) -> bytes:
        """``SKD = DeriveKey(SKDB, tabName, colName)`` (Algorithm 1 line 1).

        ``key_epoch`` selects the storage-key generation of an online key
        rotation (``repro.migrate``); epoch 0 is both the original column key
        and the fixed *transit* key for proxy↔enclave encodings. With the
        fast path on, derivations are memoized in the protected store — HKDF
        per ecall is pure overhead once ``SKDB`` is fixed, and the cache is
        wiped whenever the master key is (re)provisioned.
        """
        if not self.protected_has(_MASTER_KEY):
            raise EnclaveSecurityError("master key has not been provisioned")
        if not self.fastpath.key_cache_enabled:
            return derive_column_key(
                self.protected_get(_MASTER_KEY), table_name, column_name, key_epoch
            )
        if not self.protected_has(_KEY_CACHE):
            self.protected_set(_KEY_CACHE, {})
        cache: dict = self.protected_get(_KEY_CACHE)
        cache_key = (table_name, column_name, key_epoch)
        derived = cache.get(cache_key)
        if derived is None:
            derived = derive_column_key(
                self.protected_get(_MASTER_KEY), table_name, column_name, key_epoch
            )
            if len(cache) >= _KEY_CACHE_MAX_ENTRIES:
                cache.clear()
            cache[cache_key] = derived
        return derived

    # ------------------------------------------------------------------
    # Query processing (paper §4.2, step 8)
    # ------------------------------------------------------------------
    def _dict_search_one(
        self, dictionary: EncryptedDictionary, tau: tuple[bytes, bytes]
    ) -> SearchResult:
        """One ``EnclDictSearch``: decrypt ``τ``, derive ``SKD``, dispatch.

        ``τ`` is always under the transit key (epoch 0) — clients need not
        know a column's storage-key generation to query it — while the
        dictionary entries are opened under the dictionary's own
        ``key_epoch``, so queries keep working across an online key rotation
        even while old- and new-epoch partitions coexist.
        """
        transit_key = self._column_key(
            dictionary.table_name, dictionary.column_name
        )
        low_blob, high_blob = tau
        search = OrdinalRange.from_bytes(
            self._pae.decrypt(transit_key, low_blob)
            + self._pae.decrypt(transit_key, high_blob)
        )
        self.cost_model.record_decryption(len(low_blob))
        self.cost_model.record_decryption(len(high_blob))
        key_epoch = getattr(dictionary, "key_epoch", 0)
        key = (
            transit_key
            if not key_epoch
            else self._column_key(
                dictionary.table_name, dictionary.column_name, key_epoch
            )
        )
        return self._searcher.search(
            dictionary,
            search,
            key=key,
            cache_epoch=self._epoch(
                dictionary.table_name,
                dictionary.column_name,
                getattr(dictionary, "partition_id", 0),
            ),
        )

    @ecall
    def dict_search(
        self, dictionary: EncryptedDictionary, tau: tuple[bytes, bytes]
    ) -> SearchResult:
        """``EnclDictSearch`` on one encrypted dictionary.

        ``dictionary`` is a *reference* into untrusted memory enriched with
        the table/column metadata; ``tau`` is the PAE-encrypted range.
        """
        return self._dict_search_one(dictionary, tau)

    @ecall
    def dict_search_batch(
        self,
        requests: Sequence[tuple[EncryptedDictionary, tuple[bytes, bytes]]],
    ) -> list[SearchResult]:
        """``EnclDictSearch`` over many ``(dictionary, τ)`` pairs at once.

        One boundary crossing serves a whole multi-filter plan (conjunctive
        or disjunctive filters, main + delta stores, join-side lookups) —
        the DuckDB-SGX2 lesson that transition costs dominate repeated small
        enclave calls. The dictionaries may belong to different columns;
        results are returned in request order.
        """
        if not requests:
            raise QueryError("dict_search_batch requires at least one request")
        return [
            self._dict_search_one(dictionary, tau) for dictionary, tau in requests
        ]

    @ecall
    def join_tokens(self, dictionary: EncryptedDictionary, salt: bytes) -> list[bytes]:
        """Equi-join support (paper §4.2 names joins as future work).

        Returns one opaque token per dictionary entry, ``HMAC(k_join,
        plaintext)`` under a per-query join key derived from ``SKDB`` and a
        fresh salt. Equal plaintexts — across *different* columns and their
        different ``SKD`` keys — map to equal tokens, so the untrusted side
        can hash-join attribute vectors on tokens.

        Leakage: within one query, the equality pattern of the two join
        columns' dictionary entries (comparable to CryptDB's deterministic
        join keys). The fresh salt prevents linking tokens across queries.
        """
        if len(salt) < 16:
            raise EnclaveSecurityError("join salt must be at least 16 bytes")
        from repro.crypto.kdf import hkdf_sha256
        import hashlib
        import hmac as hmac_module

        from repro.encdict.search import CachedEntry, cached_entry_footprint

        key = self._column_key(
            dictionary.table_name,
            dictionary.column_name,
            getattr(dictionary, "key_epoch", 0),
        )
        join_key = hkdf_sha256(
            self.protected_get(_MASTER_KEY),
            info=b"EncDBDB-join\x00" + salt,
            length=16,
        )
        partition_id = getattr(dictionary, "partition_id", 0)
        epoch = self._epoch(
            dictionary.table_name, dictionary.column_name, partition_id
        )
        tokens = []
        for blob in dictionary.entries():
            # Join-side decryptions share the entry cache with dict_search:
            # a join after a scan of the same column costs no re-decryption.
            entry = None
            cache_key = None
            if self._entry_cache is not None:
                cache_key = (
                    dictionary.table_name,
                    dictionary.column_name,
                    partition_id,
                    epoch,
                    blob,
                )
                entry = self._entry_cache.get(cache_key)
            if entry is None:
                plaintext = self._pae.decrypt(key, blob)
                self.cost_model.record_decryption(len(blob))
                if self._entry_cache is not None:
                    self._entry_cache.put(
                        cache_key,
                        CachedEntry(
                            plaintext, dictionary.value_type.from_bytes(plaintext)
                        ),
                        cached_entry_footprint(blob, plaintext),
                    )
            else:
                plaintext = entry.plaintext
            tokens.append(
                hmac_module.new(join_key, plaintext, hashlib.sha256).digest()[:16]
            )
        return tokens

    # ------------------------------------------------------------------
    # Dynamic data (paper §4.3)
    # ------------------------------------------------------------------
    @ecall
    def reencrypt_for_delta(
        self,
        table_name: str,
        column_name: str,
        transit_blob: bytes,
        *,
        key_epoch: int = 0,
    ) -> bytes:
        """Re-encrypt an inserted value with a fresh IV for the delta store.

        The stored ciphertext is unlinkable to the one that travelled over
        the network, so neither order nor frequency leaks on insertion. The
        transit blob is always under the epoch-0 key; ``key_epoch`` is the
        column's current *storage* epoch (post key rotation), so new inserts
        land under the same key generation as the rotated main store.
        """
        from repro.columnstore.partition import DELTA_PARTITION_ID

        # Only the delta store changes: main-partition caches stay warm.
        self._bump_epoch(table_name, column_name, DELTA_PARTITION_ID)
        transit_key = self._column_key(table_name, column_name)
        plaintext = self._pae.decrypt(transit_key, transit_blob)
        self.cost_model.record_decryption(len(transit_blob))
        store_key = (
            transit_key
            if not key_epoch
            else self._column_key(table_name, column_name, key_epoch)
        )
        return self._pae.encrypt(store_key, plaintext)

    @ecall
    def rebuild_for_merge(
        self,
        table_name: str,
        column_name: str,
        kind: EncryptedDictionaryKind,
        value_type,
        value_blobs: Sequence[bytes],
        *,
        bsmax: int = 10,
        partition_id: int = 0,
        key_epoch: int = 0,
        blob_epochs: Sequence[int] | None = None,
    ) -> BuildResult:
        """Merge delta values into a fresh main-store partition.

        ``value_blobs`` is the merged partition in row order, as ciphertext
        references collected by the untrusted side. Every value is decrypted
        here and the partition rebuilt with fresh IVs, a fresh rotation,
        and a fresh shuffle, breaking any linkage between old and new stores
        (the oblivious-merge requirement of §4.3). ``partition_id`` scopes
        the epoch bump: an incremental merge rebuilding one dirty partition
        leaves the cached plaintext of every clean partition valid.

        After an online key rotation the whole column sits under one storage
        epoch (the flip re-seals main and delta together): ``key_epoch`` is
        that uniform epoch, for the input blobs and the rebuilt partition
        alike. ``blob_epochs`` overrides per input blob for callers merging
        mixed-epoch ciphertext.
        """
        if not value_blobs:
            raise QueryError("rebuild_for_merge requires at least one value")
        if blob_epochs is not None and len(blob_epochs) != len(value_blobs):
            raise QueryError("blob_epochs does not match value_blobs")
        self._bump_epoch(table_name, column_name, partition_id)
        from repro.sgx.oblivious import oblivious_shuffle

        keys_by_epoch = {
            epoch: self._column_key(table_name, column_name, epoch)
            for epoch in set(blob_epochs or ()) | {key_epoch}
        }
        key = keys_by_epoch[key_epoch]
        plaintexts = []
        for index, blob in enumerate(value_blobs):
            blob_key = keys_by_epoch[blob_epochs[index]] if blob_epochs else key
            plaintext = self._pae.decrypt(blob_key, blob)
            self.cost_model.record_decryption(len(blob))
            plaintexts.append(value_type.from_bytes(plaintext))
        # Obliviously permute row order before rebuilding: with the fresh
        # IVs/rotation/shuffle of the rebuild this breaks any positional
        # linkage between old and new stores, and the shuffle's own memory
        # trace is data-independent (§4.3's oblivious-primitives requirement).
        order = oblivious_shuffle(
            list(range(len(plaintexts))), self._rng.fork("merge-shuffle")
        )
        shuffled = [plaintexts[i] for i in order]
        fork_label = f"merge-{table_name}-{column_name}"
        if partition_id:
            # Distinct DRBG stream per partition so two partitions rebuilt in
            # one merge never share a rotation offset or shuffle. Partition 0
            # keeps the historical label (bit-identical single-partition
            # merges).
            fork_label += f"-p{partition_id}"
        build = encdb_build(
            shuffled,
            kind,
            value_type=value_type,
            key=key,
            pae=self._pae,
            rng=self._rng.fork(fork_label),
            bsmax=bsmax,
            table_name=table_name,
            column_name=column_name,
            encrypted=True,
        )
        # Realign the attribute vector to the caller's row order (all columns
        # of a table must stay row-aligned); the dictionaries themselves were
        # constructed from the shuffled stream.
        import numpy as np

        realigned = np.empty_like(build.attribute_vector)
        realigned[np.asarray(order, dtype=np.int64)] = build.attribute_vector
        build.attribute_vector = realigned
        build.dictionary.partition_id = partition_id
        build.dictionary.key_epoch = key_epoch
        return build

    # ------------------------------------------------------------------
    # Online rotation (repro.migrate)
    # ------------------------------------------------------------------
    @ecall
    def rotate_partition(
        self,
        old_dictionary: EncryptedDictionary,
        attribute_vector,
        *,
        new_kind: EncryptedDictionaryKind,
        key_epoch: int = 0,
        partition_index: int = 0,
        bsmax: int = 10,
    ) -> BuildResult:
        """Re-encrypt one main-store partition to a new ED kind / key epoch.

        The shadow build of an online rotation (``repro.migrate``): the old
        partition's ciphertext is opened here — plaintext never leaves the
        TCB — and rebuilt with ``new_kind`` under the ``key_epoch`` storage
        key. Row order is preserved (the other columns' attribute vectors
        stay row-aligned, so a rotation must not move rows), and the build
        DRBG is derived deterministically from ``SKDB`` and the rotation
        target via :func:`derive_rotation_seed` with the exact per-partition
        fork discipline of :func:`encdb_build_partitioned`. Consequences:
        the rotated column is byte-identical to a from-scratch deterministic
        build the data owner can reproduce, and replicas rotating
        independently converge on identical ciphertext.
        """
        from repro.crypto.kdf import derive_rotation_seed
        from repro.encdict.builder import derive_partition_rngs

        table_name = old_dictionary.table_name
        column_name = old_dictionary.column_name
        value_type = old_dictionary.value_type
        partition_id = getattr(old_dictionary, "partition_id", 0)
        if partition_index < 0:
            raise QueryError(f"invalid partition index {partition_index}")
        if len(old_dictionary) == 0:
            raise QueryError("cannot rotate an empty partition")
        # The old partition's cached plaintext is dropped now (write-ecall
        # discipline); queries re-warm it from the still-serving old build.
        self._bump_epoch(table_name, column_name, partition_id)
        old_key = self._column_key(
            table_name, column_name, getattr(old_dictionary, "key_epoch", 0)
        )
        entry_blobs = list(old_dictionary.entries())
        entry_plaintexts = self._pae.decrypt_many(old_key, entry_blobs)
        for blob in entry_blobs:
            self.cost_model.record_decryption(len(blob))
        entries = [value_type.from_bytes(raw) for raw in entry_plaintexts]
        values = [entries[int(vid)] for vid in attribute_vector]
        # Replay the canonical fork discipline: child i of the rotation root
        # is a pure function of (SKDB, rotation target, partition index), so
        # rotating partitions out of order — or in parallel on replicas —
        # yields the same streams a serial from-scratch build would draw.
        root = HmacDrbg(
            derive_rotation_seed(
                self.protected_get(_MASTER_KEY),
                table_name,
                column_name,
                new_kind.name,
                key_epoch,
            )
        )
        build_rng, iv_rng = derive_partition_rngs(root, partition_index + 1)[
            partition_index
        ]
        build = encdb_build(
            values,
            new_kind,
            value_type=value_type,
            key=self._column_key(table_name, column_name, key_epoch),
            pae=self._pae,
            rng=build_rng,
            iv_rng=iv_rng,
            bsmax=bsmax,
            table_name=table_name,
            column_name=column_name,
            encrypted=True,
        )
        build.dictionary.partition_id = partition_id
        build.dictionary.key_epoch = key_epoch
        return build

    @ecall
    def rotate_delta(
        self,
        table_name: str,
        column_name: str,
        delta_blobs: Sequence[bytes],
        *,
        old_key_epoch: int = 0,
        key_epoch: int = 0,
    ) -> list[bytes]:
        """Re-encrypt the ED9 delta store under a new storage-key epoch.

        Runs once, at the atomic flip of a key rotation: every delta blob is
        opened under the old epoch and resealed under the new one with fresh
        IVs, order preserved (delta RecordIDs are positional). The untrusted
        side sees a same-length list of same-size blobs — nothing about the
        values.
        """
        from repro.columnstore.partition import DELTA_PARTITION_ID

        self._bump_epoch(table_name, column_name, DELTA_PARTITION_ID)
        if not delta_blobs:
            return []
        old_key = self._column_key(table_name, column_name, old_key_epoch)
        new_key = self._column_key(table_name, column_name, key_epoch)
        plaintexts = self._pae.decrypt_many(old_key, list(delta_blobs))
        for blob in delta_blobs:
            self.cost_model.record_decryption(len(blob))
        return self._pae.encrypt_many(new_key, plaintexts)

    # ------------------------------------------------------------------
    # Analytics pushdown (PR 9)
    # ------------------------------------------------------------------
    def _open_distinct_entries(
        self, dictionary: EncryptedDictionary, indices: Sequence[int]
    ) -> list[bytes]:
        """Plaintext bytes of the dictionary entries at ``indices``.

        The caller passes *distinct* ValueIDs — the pushdown's one-decryption-
        per-distinct-value contract — and the lookups share the dict_search /
        join entry cache, so a range scan followed by an aggregate over the
        same column costs no re-decryption.
        """
        from repro.encdict.search import CachedEntry, cached_entry_footprint

        key = self._column_key(
            dictionary.table_name,
            dictionary.column_name,
            getattr(dictionary, "key_epoch", 0),
        )
        partition_id = getattr(dictionary, "partition_id", 0)
        epoch = self._epoch(
            dictionary.table_name, dictionary.column_name, partition_id
        )
        plaintexts: list = [None] * len(indices)
        miss_positions: list[int] = []
        miss_blobs: list[bytes] = []
        miss_keys: list[tuple] = []
        for position, index in enumerate(indices):
            blob = dictionary.entry(int(index))
            cache_key = (
                dictionary.table_name,
                dictionary.column_name,
                partition_id,
                epoch,
                blob,
            )
            entry = (
                self._entry_cache.get(cache_key)
                if self._entry_cache is not None
                else None
            )
            if entry is not None:
                plaintexts[position] = entry.plaintext
            else:
                miss_positions.append(position)
                miss_blobs.append(blob)
                miss_keys.append(cache_key)
        if miss_blobs:
            opened = self._pae.decrypt_many(key, miss_blobs)
            self.cost_model.record_decryption_batch(
                len(miss_blobs), sum(len(blob) for blob in miss_blobs)
            )
            for position, blob, cache_key, plaintext in zip(
                miss_positions, miss_blobs, miss_keys, opened
            ):
                plaintexts[position] = plaintext
                if self._entry_cache is not None:
                    self._entry_cache.put(
                        cache_key,
                        CachedEntry(
                            plaintext, dictionary.value_type.from_bytes(plaintext)
                        ),
                        cached_entry_footprint(blob, plaintext),
                    )
        return plaintexts

    @ecall
    def aggregate_groups(
        self,
        table_name: str,
        specs: Sequence[tuple],
        segments: Sequence[dict],
        *,
        group_column: str | None = None,
    ) -> list[bytes]:
        """COUNT/SUM/MIN/MAX/AVG (+ GROUP BY) over packed ordinals (PR 9).

        ``specs`` is ``(function, measure_column | None, label)`` per
        aggregate output; ``segments`` carries, per store (main partitions in
        order, then delta — i.e. RecordID order), the filtered rows' group
        ValueIDs with their dictionary and the measure columns' ValueIDs with
        theirs. Grouping happens entirely in the ordinal domain (one
        ``np.unique`` + bincount-style reductions); only the *distinct* group
        and measure entries are ever decrypted — never one row at a time.
        Groups whose entries decrypt to equal plaintexts (ED1/ED4/ED7
        duplicate entries, cross-partition dictionaries, delta rows) merge by
        plaintext, in first-occurrence RecordID order so the result rows line
        up exactly with the proxy-side reference grouping.

        The reply is a list of padded, PAE-encrypted group frames under the
        table's aggregate transit key (epoch 0): uniform byte length, count
        padded to a power of two with dummy frames. The untrusted side learns
        an upper bound on the group cardinality and nothing else — no row
        sets, values, or per-group counts (DESIGN.md §14).
        """
        import numpy as np

        from repro.encdict.kernels import (
            group_counts,
            group_firsts,
            group_index,
            group_maxs,
            group_mins,
            group_sums,
        )

        if not specs:
            raise QueryError("aggregate_groups requires at least one aggregate")
        for function, column, _label in specs:
            if function not in _AGGREGATE_FUNCTIONS:
                raise QueryError(f"unsupported aggregate function {function!r}")
            if function != "COUNT" and column is None:
                raise QueryError(f"{function} requires a measure column")

        #: plaintext group key -> per-spec mergeable [a, b] states.
        merged: dict[bytes, list[list[int]]] = {}
        for segment in segments:
            group_ref = segment.get("group")
            if group_ref is not None:
                group_dictionary, group_vids = group_ref
                group_vids = np.asarray(group_vids, dtype=np.int64)
                rows = len(group_vids)
                if rows == 0:
                    continue
                distinct_vids, dense = group_index(group_vids)
                key_blobs = self._open_distinct_entries(
                    group_dictionary, distinct_vids.tolist()
                )
            else:
                rows = int(segment["rows"])
                if rows == 0:
                    continue
                dense = np.zeros(rows, dtype=np.int64)
                key_blobs = [b""]
            n_groups = len(key_blobs)
            counts = group_counts(dense, n_groups)
            firsts = group_firsts(dense, n_groups)
            zeros = np.zeros(n_groups, dtype=np.int64)

            measure_values: dict[str, np.ndarray] = {}

            def row_values(column: str) -> np.ndarray:
                values = measure_values.get(column)
                if values is None:
                    reference = segment.get("measures", {}).get(column)
                    if reference is None:
                        raise QueryError(
                            f"aggregate_groups segment is missing measure {column!r}"
                        )
                    m_dictionary, m_vids = reference
                    m_vids = np.asarray(m_vids, dtype=np.int64)
                    if len(m_vids) != rows:
                        raise QueryError(
                            "measure rows do not line up with group rows"
                        )
                    m_distinct, m_inverse = np.unique(m_vids, return_inverse=True)
                    opened = self._open_distinct_entries(
                        m_dictionary, m_distinct.tolist()
                    )
                    decoded = np.asarray(
                        [
                            m_dictionary.value_type.from_bytes(plaintext)
                            for plaintext in opened
                        ],
                        dtype=np.int64,
                    )
                    values = decoded[m_inverse]
                    measure_values[column] = values
                return values

            spec_states = []
            for function, column, _label in specs:
                if function == "COUNT":
                    spec_states.append((counts, zeros))
                elif function == "SUM":
                    spec_states.append(
                        (group_sums(dense, n_groups, row_values(column)), zeros)
                    )
                elif function == "AVG":
                    spec_states.append(
                        (group_sums(dense, n_groups, row_values(column)), counts)
                    )
                elif function == "MIN":
                    spec_states.append(
                        (group_mins(dense, n_groups, row_values(column)), zeros)
                    )
                else:  # MAX
                    spec_states.append(
                        (group_maxs(dense, n_groups, row_values(column)), zeros)
                    )

            # Fold ValueID-level states into plaintext-keyed groups in
            # first-occurrence order; segments arrive in RecordID order, so
            # dict insertion order *is* global first-occurrence order.
            for group_position in np.argsort(firsts, kind="stable").tolist():
                key_bytes = bytes(key_blobs[group_position])
                states = merged.get(key_bytes)
                if states is None:
                    merged[key_bytes] = [
                        [int(a[group_position]), int(b[group_position])]
                        for a, b in spec_states
                    ]
                    continue
                for index, (function, _column, _label) in enumerate(specs):
                    a, b = spec_states[index]
                    if function == "MIN":
                        states[index][0] = min(states[index][0], int(a[group_position]))
                    elif function == "MAX":
                        states[index][0] = max(states[index][0], int(a[group_position]))
                    else:
                        states[index][0] += int(a[group_position])
                        states[index][1] += int(b[group_position])

        # A global (ungrouped) aggregate over zero matching rows still yields
        # one result row — COUNT(*) = 0, every other aggregate NULL — to
        # match the proxy-side reference. A grouped aggregate yields none.
        empty_global = group_column is None and not merged
        if empty_global:
            merged[b""] = [[0, 0] for _ in specs]

        payloads = []
        for key_bytes, states in merged.items():
            frame_states = []
            for index, (function, _column, _label) in enumerate(specs):
                a, b = states[index]
                if empty_global and function != "COUNT":
                    frame_states.append((False, 0, 0))
                else:
                    frame_states.append((True, a, b))
            payloads.append(encode_frame_payload(False, key_bytes, frame_states))
        dummy_payload = encode_frame_payload(
            True, b"", [(False, 0, 0)] * len(specs)
        )
        frame_size = max(len(payload) for payload in payloads + [dummy_payload])
        payloads.extend(
            [dummy_payload] * (padded_frame_count(len(payloads)) - len(payloads))
        )
        transit_key = self._column_key(table_name, AGGREGATE_KEY_COLUMN)
        plaintexts = [
            len(payload).to_bytes(4, "big")
            + payload
            + b"\x00" * (frame_size - len(payload))
            for payload in payloads
        ]
        return self._pae.encrypt_many(transit_key, plaintexts)

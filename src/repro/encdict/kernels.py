"""Vectorized search kernels over packed-ordinal dictionaries (PR 6).

Part of the trusted computing base (DESIGN.md §9–§10): these kernels model the
enclave decrypting a partition dictionary *once* into a contiguous ordinal
array held in enclave-protected memory, then answering searches with bulk
integer comparisons instead of one decrypt-and-compare per probe. That is
the DuckDB-SGX2 lesson — vectorized execution, not threads, makes enclave
analytics competitive — applied to ``EnclDictSearch``.

Two representations back one API:

- ``int64``: the fast path. Every ordinal of an INTEGER/DATE column (and
  any VARCHAR short enough) fits a machine word, so the packed dictionary
  is a plain numpy array and the kernels are single C loops.
- ``object``: the correctness fallback. VARCHAR ordinals are base-257
  positional codes that can exceed 64 bits (``ORDINAL_BOUND_BYTES`` in
  :mod:`repro.encdict.search` is 40 bytes for a reason); those pack into an
  object-dtype array of Python ints. The kernels still vectorize the loop
  structure (numpy broadcasts rich comparisons elementwise), just without
  machine-word arithmetic.

Leakage and cost contract: the kernels change *how fast* a search runs,
never *what* the cost model records or what probe sequence the accessor
logs — the caller (:mod:`repro.encdict.search`) charges the same logical
untrusted loads, comparisons and decryptions the scalar reference path
charges, and the equivalence suite (tests/encdict/test_kernels.py) pins
results, probes and cost counters against that oracle. No randomness is
drawn here; the kernels are pure functions of the packed array.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "INT64_MAX",
    "INT64_MIN",
    "group_counts",
    "group_firsts",
    "group_index",
    "group_maxs",
    "group_mins",
    "group_sums",
    "pack_ordinals",
    "packed_footprint",
    "sorted_bounds",
    "unsorted_scan",
]

INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1

#: Conservative resident bytes per element of an object-dtype packed array
#: (pointer + small-int object). Used only for cache accounting.
_OBJECT_ELEMENT_BYTES = 48


def pack_ordinals(ordinals: Sequence[int]) -> np.ndarray:
    """Pack a dictionary's ordinals into a contiguous numpy array.

    ``int64`` when every ordinal fits a machine word, else ``object`` dtype
    holding arbitrary-precision Python ints (large VARCHAR ordinals). Both
    shapes are accepted by every kernel in this module.
    """
    if all(INT64_MIN <= ordinal <= INT64_MAX for ordinal in ordinals):
        return np.asarray(ordinals, dtype=np.int64)
    packed = np.empty(len(ordinals), dtype=object)
    packed[:] = list(ordinals)
    return packed


def packed_footprint(packed: np.ndarray) -> int:
    """Bytes a packed-ordinal array is charged for in the enclave cache.

    Mirrors :func:`repro.encdict.search.cached_entry_footprint`'s role for
    single entries: data bytes plus a fixed bookkeeping constant. A packed
    partition is far smaller than the per-entry plaintext cache it
    replaces (8 machine bytes vs. blob + plaintext + overhead per entry).
    """
    if packed.dtype == object:
        return _OBJECT_ELEMENT_BYTES * len(packed) + 64
    return int(packed.nbytes) + 64


def _clamped_bounds(
    packed: np.ndarray, low: int, high: int
) -> tuple[int, int, bool]:
    """Clamp a closed ordinal range into the packed array's value domain.

    An ``int64`` array cannot hold values outside the machine-word range,
    so bounds beyond it clamp to the extremes (or mark the range as
    provably empty) before numpy ever sees them — some numpy versions
    raise ``OverflowError`` on out-of-range Python-int comparisons.
    """
    if packed.dtype == object:
        return low, high, False
    if low > INT64_MAX or high < INT64_MIN:
        return 0, -1, True
    return max(low, INT64_MIN), min(high, INT64_MAX), False


def unsorted_scan(packed: np.ndarray, low: int, high: int) -> tuple[int, ...]:
    """Algorithm 4 as one boolean-mask kernel: ValueIDs with ordinal in
    ``[low, high]``, in index order — exactly the scalar linear scan's
    output over the same dictionary."""
    low, high, empty = _clamped_bounds(packed, low, high)
    if empty or len(packed) == 0:
        return ()
    mask = (packed >= low) & (packed <= high)
    return tuple(np.nonzero(mask)[0].tolist())


def sorted_bounds(packed: np.ndarray, low: int, high: int) -> tuple[int, int]:
    """Algorithm 1 as an ``np.searchsorted`` kernel over a sorted packed
    array: ``(vid_min, vid_max)`` of the entries in ``[low, high]``, with
    ``vid_min > vid_max`` when nothing matches."""
    low, high, empty = _clamped_bounds(packed, low, high)
    if empty or len(packed) == 0:
        return (0, -1)
    vid_min = int(np.searchsorted(packed, low, side="left"))
    vid_max = int(np.searchsorted(packed, high, side="right")) - 1
    return vid_min, vid_max


# ----------------------------------------------------------------------
# Ordinal-space aggregation (analytics pushdown, PR 9)
# ----------------------------------------------------------------------
# GROUP BY over a dictionary-encoded column never has to touch row values:
# the per-row ValueIDs *are* the group labels, so grouping a million rows is
# one ``np.unique`` + one ``np.bincount``, and only the distinct group
# entries (plus distinct measure entries) need a dictionary decryption. The
# same cost contract as the search kernels applies: callers charge the
# logical decryptions themselves; nothing here draws randomness.


def group_index(group_vids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(distinct_vids, dense_index)`` of a per-row group-ValueID array.

    ``distinct_vids`` is sorted ascending; ``dense_index[i]`` is the
    position of ``group_vids[i]`` inside ``distinct_vids`` — the dense
    group label every reduction kernel below keys on.
    """
    group_vids = np.asarray(group_vids, dtype=np.int64)
    return np.unique(group_vids, return_inverse=True)


def group_counts(dense_index: np.ndarray, n_groups: int) -> np.ndarray:
    """COUNT(*) per dense group label: one bincount."""
    return np.bincount(dense_index, minlength=n_groups).astype(np.int64)


def group_sums(
    dense_index: np.ndarray, n_groups: int, row_values: np.ndarray
) -> np.ndarray:
    """SUM(measure) per dense group label, in exact int64 arithmetic.

    ``np.add.at`` rather than ``bincount(weights=...)``: weights go through
    float64 and silently lose precision past 2**53.
    """
    acc = np.zeros(n_groups, dtype=np.int64)
    np.add.at(acc, dense_index, np.asarray(row_values, dtype=np.int64))
    return acc


def group_mins(
    dense_index: np.ndarray, n_groups: int, row_values: np.ndarray
) -> np.ndarray:
    """MIN(measure) per dense group label."""
    acc = np.full(n_groups, INT64_MAX, dtype=np.int64)
    np.minimum.at(acc, dense_index, np.asarray(row_values, dtype=np.int64))
    return acc


def group_maxs(
    dense_index: np.ndarray, n_groups: int, row_values: np.ndarray
) -> np.ndarray:
    """MAX(measure) per dense group label."""
    acc = np.full(n_groups, INT64_MIN, dtype=np.int64)
    np.maximum.at(acc, dense_index, np.asarray(row_values, dtype=np.int64))
    return acc


def group_firsts(dense_index: np.ndarray, n_groups: int) -> np.ndarray:
    """First-occurrence row position per dense group label.

    Lets the enclave emit group frames in first-occurrence (RecordID) order,
    matching the proxy's insertion-ordered grouping exactly, so the two
    paths produce identical row orders.
    """
    acc = np.full(n_groups, INT64_MAX, dtype=np.int64)
    np.minimum.at(
        acc, dense_index, np.arange(len(dense_index), dtype=np.int64)
    )
    return acc

"""The paper's core contribution: nine encrypted dictionaries.

An encrypted dictionary is defined by a *repetition option* (how often each
plaintext value appears in the dictionary: frequency revealing / smoothing /
hiding) and an *order option* (how dictionary entries are arranged: sorted /
rotated / unsorted), giving the 3x3 grid ED1..ED9 of paper Table 2.

The three operations of §4.1 map to:

- ``EncDB``      -> :mod:`repro.encdict.builder` (data-owner side splits and
  encrypts a column),
- ``EnclDictSearch`` -> :mod:`repro.encdict.search` (runs inside the
  enclave; see :mod:`repro.encdict.enclave_app` for the enclave program),
- ``AttrVectSearch`` -> :mod:`repro.encdict.attrvect` (untrusted, vectorized
  scan over the attribute vector).
"""

from repro.encdict.builder import BuildResult, encdb_build
from repro.encdict.dictionary import EncryptedDictionary
from repro.encdict.enclave_app import EncDBDBEnclave
from repro.encdict.options import (
    ALL_KINDS,
    ED1,
    ED2,
    ED3,
    ED4,
    ED5,
    ED6,
    ED7,
    ED8,
    ED9,
    EncryptedDictionaryKind,
    OrderOption,
    RepetitionOption,
    kind_by_name,
    kind_for,
)
from repro.encdict.search import DictionarySearcher, SearchResult
from repro.encdict.attrvect import attr_vect_search

__all__ = [
    "RepetitionOption",
    "OrderOption",
    "EncryptedDictionaryKind",
    "ALL_KINDS",
    "kind_for",
    "kind_by_name",
    "ED1",
    "ED2",
    "ED3",
    "ED4",
    "ED5",
    "ED6",
    "ED7",
    "ED8",
    "ED9",
    "EncryptedDictionary",
    "encdb_build",
    "BuildResult",
    "DictionarySearcher",
    "SearchResult",
    "attr_vect_search",
    "EncDBDBEnclave",
]

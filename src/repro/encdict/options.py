"""The 3x3 grid of encrypted dictionaries (paper Table 2).

Repetition options control how many times a plaintext value appears in the
dictionary, which fixes the frequency leakage and the dictionary size
(Table 3). Order options control the arrangement of entries, which fixes the
order leakage and the search complexity (Table 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RepetitionOption(enum.Enum):
    """How often each unique plaintext value is repeated in the dictionary."""

    REVEALING = "frequency revealing"  # each unique value once: full leakage
    SMOOTHING = "frequency smoothing"  # bucketized: leakage bounded by bsmax
    HIDING = "frequency hiding"  # one entry per column value: no leakage

    @property
    def frequency_leakage(self) -> str:
        return {  # Table 3
            RepetitionOption.REVEALING: "full",
            RepetitionOption.SMOOTHING: "bounded",
            RepetitionOption.HIDING: "none",
        }[self]


class OrderOption(enum.Enum):
    """Arrangement of the (encrypted) dictionary entries."""

    SORTED = "sorted"  # lexicographic: full order leakage, O(log|D|) search
    ROTATED = "rotated"  # sorted + random rotation: bounded leakage
    UNSORTED = "unsorted"  # random shuffle: no order leakage, O(|D|) search

    @property
    def order_leakage(self) -> str:
        return {  # Table 4
            OrderOption.SORTED: "full",
            OrderOption.ROTATED: "bounded",
            OrderOption.UNSORTED: "none",
        }[self]

    @property
    def dictionary_search_complexity(self) -> str:
        return (
            "O(|D|)" if self is OrderOption.UNSORTED else "O(log|D|)"
        )


@dataclass(frozen=True)
class EncryptedDictionaryKind:
    """One cell of Table 2: a (repetition, order) combination, e.g. ED5."""

    number: int
    repetition: RepetitionOption
    order: OrderOption

    @property
    def name(self) -> str:
        return f"ED{self.number}"

    @property
    def comparable_security(self) -> str | None:
        """The known scheme of Table 5 this kind's leakage profile matches."""
        return _COMPARABLE_SECURITY.get(self.number)

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return (
            f"EncryptedDictionaryKind({self.name}: "
            f"{self.repetition.value}, {self.order.value})"
        )


_ORDER_BY_COLUMN = (OrderOption.SORTED, OrderOption.ROTATED, OrderOption.UNSORTED)
_REPETITION_BY_ROW = (
    RepetitionOption.REVEALING,
    RepetitionOption.SMOOTHING,
    RepetitionOption.HIDING,
)

# Table 2 layout: ED number = 3*row + column + 1.
ALL_KINDS: tuple[EncryptedDictionaryKind, ...] = tuple(
    EncryptedDictionaryKind(3 * row + column + 1, repetition, order)
    for row, repetition in enumerate(_REPETITION_BY_ROW)
    for column, order in enumerate(_ORDER_BY_COLUMN)
)

ED1, ED2, ED3, ED4, ED5, ED6, ED7, ED8, ED9 = ALL_KINDS

_COMPARABLE_SECURITY = {  # Table 5
    1: "ideal deterministic ORE [17]",
    2: "MOPE [13]",
    3: "DET [10]",
    7: "IND-FAOCPA [53]",
    8: "IND-CPA-DS [55]",
    9: "RPE [60]",
}


def kind_for(
    repetition: RepetitionOption, order: OrderOption
) -> EncryptedDictionaryKind:
    """Look up the ED kind for a (repetition, order) combination."""
    for kind in ALL_KINDS:
        if kind.repetition is repetition and kind.order is order:
            return kind
    raise ValueError(f"no kind for {repetition}, {order}")  # pragma: no cover


def kind_by_name(name: str) -> EncryptedDictionaryKind:
    """Look up an ED kind from its SQL spelling (``"ED5"``)."""
    text = name.strip().upper()
    for kind in ALL_KINDS:
        if kind.name == text:
            return kind
    raise ValueError(f"unknown encrypted dictionary {name!r}")

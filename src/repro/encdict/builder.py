"""``EncDB``: the data-owner-side construction of encrypted dictionaries.

For a column ``C`` and a selected kind EDk, the builder

1. splits ``C`` according to the kind's *repetition option* — each unique
   value once (revealing), per random buckets of at most ``bsmax``
   occurrences (smoothing, Algorithm 5), or once per occurrence (hiding);
2. arranges the dictionary according to the *order option* — sorted
   lexicographically, sorted and rotated by a uniformly random offset, or
   randomly shuffled;
3. assigns ValueIDs in the attribute vector so the split is correct
   (Definition 1) while using every ValueID exactly as often as its bucket
   capacity prescribes;
4. encrypts every dictionary value individually with PAE under the
   per-column key ``SKD`` and a fresh random IV (and, for rotated kinds,
   attaches the PAE-encrypted rotation offset).

With ``encrypted=False`` the same construction yields PlainDBDB's plaintext
dictionaries: identical algorithms and layout, no encryption — the second
baseline of the paper's evaluation (§6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.columnstore.types import ValueType
from repro.crypto.drbg import HmacDrbg
from repro.crypto.pae import Pae
from repro.encdict.buckets import get_rnd_bucket_sizes
from repro.encdict.dictionary import EncryptedDictionary
from repro.encdict.options import (
    EncryptedDictionaryKind,
    OrderOption,
    RepetitionOption,
)
from repro.exceptions import CatalogError


@dataclass
class BuildStats:
    """Construction facts used by tests, storage reports and the leakage
    analysis. ``rnd_offset`` is the secret rotation offset — it is exposed
    here for white-box testing only and is never shipped to the server in
    plaintext."""

    kind: EncryptedDictionaryKind
    column_length: int
    unique_values: int
    dictionary_entries: int
    bsmax: int | None
    rnd_offset: int | None


@dataclass
class BuildResult:
    """Everything ``EncDB`` produces for one column."""

    dictionary: EncryptedDictionary
    attribute_vector: np.ndarray
    stats: BuildStats


def encdb_build(
    values: Sequence[Any],
    kind: EncryptedDictionaryKind,
    *,
    value_type: ValueType,
    key: bytes | None,
    pae: Pae | None,
    rng: HmacDrbg,
    iv_rng: HmacDrbg | None = None,
    bsmax: int = 10,
    table_name: str = "",
    column_name: str = "",
    encrypted: bool = True,
) -> BuildResult:
    """Split, arrange, and encrypt one column according to ``kind``.

    ``iv_rng`` is a dedicated DRBG for the PAE IVs of this build. Without it
    IVs come from the backend's internal generator (the historical single-
    build behaviour); with it the build touches no shared mutable state, so
    builds of different (column, partition) tasks can run on any worker in
    any order and still produce bit-for-bit the ciphertexts of a serial run.
    """
    if len(values) == 0:
        raise CatalogError("cannot build a dictionary for an empty column")
    if encrypted and (key is None or pae is None):
        raise CatalogError("encrypted build requires a key and a PAE backend")
    for value in values:
        value_type.validate(value)

    entries, vid_assignment = _split(values, kind.repetition, bsmax, rng)
    entries, vid_assignment, rnd_offset = _arrange(
        entries, vid_assignment, kind.order, value_type, rng
    )
    attribute_vector = _build_attribute_vector(values, vid_assignment, rng)

    payloads = [value_type.to_bytes(value) for value in entries]
    if encrypted:
        # One vectorized pass over the dictionary instead of one call per
        # value: same IV stream, amortized key schedule and bookkeeping.
        blobs = pae.encrypt_many(key, payloads, rng=iv_rng)
    else:
        blobs = payloads

    enc_rnd_offset = None
    if rnd_offset is not None:
        offset_bytes = rnd_offset.to_bytes(8, "big")
        enc_rnd_offset = (
            pae.encrypt(key, offset_bytes, rng=iv_rng)
            if encrypted
            else offset_bytes
        )

    dictionary = EncryptedDictionary.from_blobs(
        blobs,
        kind=kind,
        value_type=value_type,
        table_name=table_name,
        column_name=column_name,
        enc_rnd_offset=enc_rnd_offset,
        encrypted=encrypted,
    )
    stats = BuildStats(
        kind=kind,
        column_length=len(values),
        unique_values=len(set(values)),
        dictionary_entries=len(entries),
        bsmax=bsmax if kind.repetition is RepetitionOption.SMOOTHING else None,
        rnd_offset=rnd_offset,
    )
    return BuildResult(dictionary, attribute_vector, stats)


def derive_partition_rngs(
    rng: HmacDrbg, count: int
) -> list[tuple[HmacDrbg, HmacDrbg]]:
    """Pre-derive the per-partition ``(build_rng, iv_rng)`` DRBG pairs.

    The children are forked from the column's DRBG **in partition order,
    before any build starts** — the HMAC-DRBG fork is the derivation step
    (the same keyed-HMAC construction the KDF uses), so each child stream is
    a pure function of (column seed, partition index). After this point a
    partition build touches no shared randomness: the serial loop and the
    parallel pipeline consume identical streams, which is what makes their
    artifacts bit-for-bit identical.
    """
    pairs = []
    for index in range(count):
        build_rng = rng.fork(f"part-{index}")
        pairs.append((build_rng, build_rng.fork("pae-iv")))
    return pairs


def encdb_build_partitioned(
    values: Sequence[Any],
    kind: EncryptedDictionaryKind,
    *,
    partition_rows: int,
    value_type: ValueType,
    key: bytes | None,
    pae: Pae | None,
    rng: HmacDrbg,
    bsmax: int = 10,
    table_name: str = "",
    column_name: str = "",
    encrypted: bool = True,
) -> list[BuildResult]:
    """``EncDB`` over fixed-row-count partitions: one independent build per
    chunk of ``partition_rows`` consecutive rows.

    Each partition gets its own dictionary (its own IV stream, rotation
    offset and shuffle from DRBGs pre-derived by
    :func:`derive_partition_rngs`), so partitions are independently
    searchable, independently rebuildable at merge time — and independently
    *buildable*: this serial loop is the reference the parallel pipeline
    (:mod:`repro.encdict.pipeline`) must reproduce byte-for-byte. Row order
    is preserved: concatenating the partitions' rows reproduces ``values``
    exactly, which keeps global RecordIDs identical to an unpartitioned
    build.
    """
    from repro.columnstore.partition import partition_lengths, slice_rows

    if len(values) == 0:
        raise CatalogError("cannot build a dictionary for an empty column")
    parts = slice_rows(
        list(values), partition_lengths(len(values), partition_rows)
    )
    rngs = derive_partition_rngs(rng, len(parts))
    return [
        encdb_build(
            part,
            kind,
            value_type=value_type,
            key=key,
            pae=pae,
            rng=build_rng,
            iv_rng=iv_rng,
            bsmax=bsmax,
            table_name=table_name,
            column_name=column_name,
            encrypted=encrypted,
        )
        for part, (build_rng, iv_rng) in zip(parts, rngs)
    ]


def _split(
    values: Sequence[Any],
    repetition: RepetitionOption,
    bsmax: int,
    rng: HmacDrbg,
) -> tuple[list[Any], dict[Any, list[tuple[int, int]]]]:
    """Produce the logical dictionary entries and per-value ValueID budget.

    Returns ``(entries, assignment)`` where ``entries[vid]`` is the
    plaintext of ValueID ``vid`` and ``assignment[v]`` lists
    ``(vid, capacity)`` pairs: how often each of ``v``'s ValueIDs may be
    used in the attribute vector.
    """
    occurrence_counts: dict[Any, int] = {}
    for value in values:
        occurrence_counts[value] = occurrence_counts.get(value, 0) + 1

    entries: list[Any] = []
    assignment: dict[Any, list[tuple[int, int]]] = {}
    for value, count in occurrence_counts.items():
        if repetition is RepetitionOption.REVEALING:
            capacities = [count]
        elif repetition is RepetitionOption.SMOOTHING:
            capacities = get_rnd_bucket_sizes(count, bsmax, rng)
        else:  # HIDING: a separate dictionary entry per occurrence
            capacities = [1] * count
        vid_list = []
        for capacity in capacities:
            vid_list.append((len(entries), capacity))
            entries.append(value)
        assignment[value] = vid_list
    return entries, assignment


def _arrange(
    entries: list[Any],
    assignment: dict[Any, list[tuple[int, int]]],
    order: OrderOption,
    value_type: ValueType,
    rng: HmacDrbg,
) -> tuple[list[Any], dict[Any, list[tuple[int, int]]], int | None]:
    """Reorder the dictionary per the order option and remap ValueIDs."""
    n = len(entries)
    order_of_old: list[int]
    rnd_offset: int | None = None

    if order is OrderOption.SORTED or order is OrderOption.ROTATED:
        sorted_old = sorted(range(n), key=lambda i: value_type.ordinal(entries[i]))
        if order is OrderOption.ROTATED:
            rnd_offset = rng.randint(0, n - 1)
            # D[i] = D'[(i - rndOffset) mod n]  <=>  new position of sorted
            # index j is (j + rndOffset) mod n.
            positions = [0] * n
            for new_index in range(n):
                positions[new_index] = sorted_old[(new_index - rnd_offset) % n]
            sorted_old = positions
        order_of_old = sorted_old
    else:  # UNSORTED: random shuffle
        order_of_old = list(range(n))
        rng.shuffle(order_of_old)

    new_entries = [entries[old] for old in order_of_old]
    new_vid_of_old = {old: new for new, old in enumerate(order_of_old)}
    new_assignment = {
        value: [(new_vid_of_old[vid], capacity) for vid, capacity in vid_list]
        for value, vid_list in assignment.items()
    }
    return new_entries, new_assignment, rnd_offset


def _build_attribute_vector(
    values: Sequence[Any],
    assignment: dict[Any, list[tuple[int, int]]],
    rng: HmacDrbg,
) -> np.ndarray:
    """Assign each occurrence a ValueID, honouring every bucket capacity.

    For each value the multiset of its ValueIDs (each repeated by its
    capacity) is shuffled and consumed occurrence by occurrence, so the
    choice is random but each ValueID is used exactly as often as its bucket
    size prescribes (paper §4.1, frequency smoothing).
    """
    pools: dict[Any, list[int]] = {}
    for value, vid_list in assignment.items():
        if len(vid_list) == 1:
            continue  # fast path: a single ValueID needs no pool
        pool = [vid for vid, capacity in vid_list for _ in range(capacity)]
        rng.shuffle(pool)
        pools[value] = pool

    attribute_vector = np.empty(len(values), dtype=np.int64)
    for record_id, value in enumerate(values):
        pool = pools.get(value)
        if pool is None:
            attribute_vector[record_id] = assignment[value][0][0]
        else:
            attribute_vector[record_id] = pool.pop()
    return attribute_vector

"""Cryptographic substrate of the EncDBDB reproduction.

The paper encrypts every dictionary value with probabilistic authenticated
encryption (PAE), instantiated as AES-128 in GCM mode (paper §2.3 / §5). This
package provides:

- :mod:`repro.crypto.aes` -- AES-128 block cipher written from scratch.
- :mod:`repro.crypto.gcm` -- GCM mode (CTR + GHASH) on top of any block
  cipher, written from scratch.
- :mod:`repro.crypto.pae` -- the PAE interface (``Gen`` / ``Enc`` / ``Dec``)
  with two interchangeable backends: the pure-Python reference and an
  optional fast backend over the ``cryptography`` library.
- :mod:`repro.crypto.kdf` -- HMAC-SHA256 based key derivation used to derive
  per-column keys ``SKD`` from the data owner's ``SKDB`` (paper §4.2).
- :mod:`repro.crypto.drbg` -- a deterministic HMAC-DRBG so every experiment
  in the repository is reproducible from a seed.
"""

from repro.crypto.aes import Aes128
from repro.crypto.drbg import HmacDrbg
from repro.crypto.gcm import AesGcm, ghash
from repro.crypto.kdf import derive_column_key, hkdf_sha256
from repro.crypto.pae import (
    PAE_KEY_BYTES,
    PAE_NONCE_BYTES,
    PAE_OVERHEAD_BYTES,
    PAE_TAG_BYTES,
    LibraryPae,
    Pae,
    PurePythonPae,
    pae_gen,
    default_pae,
)

__all__ = [
    "Aes128",
    "AesGcm",
    "ghash",
    "HmacDrbg",
    "hkdf_sha256",
    "derive_column_key",
    "Pae",
    "PurePythonPae",
    "LibraryPae",
    "default_pae",
    "pae_gen",
    "PAE_KEY_BYTES",
    "PAE_NONCE_BYTES",
    "PAE_TAG_BYTES",
    "PAE_OVERHEAD_BYTES",
]

"""Galois/Counter Mode (GCM) over the from-scratch AES-128 cipher.

Implements NIST SP 800-38D: CTR-mode encryption plus the GHASH authenticator
over GF(2^128). Only 96-bit nonces are supported, which is what EncDBDB uses
(a random 12-byte IV per PAE encryption) and what the NIST test vectors in
``tests/crypto/test_gcm_vectors.py`` exercise.
"""

from __future__ import annotations

from repro.crypto.aes import Aes128
from repro.exceptions import AuthenticationError, CryptoError

_R = 0xE1000000000000000000000000000000  # GHASH reduction polynomial


def _gf128_mul(x: int, y: int) -> int:
    """Multiply two elements of GF(2^128) per SP 800-38D §6.3.

    Bits are interpreted most-significant-bit first, as GCM specifies.
    """
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def ghash(h_key: bytes, data: bytes) -> bytes:
    """GHASH of ``data`` (already padded to 16-byte blocks) under ``h_key``."""
    if len(h_key) != 16:
        raise CryptoError("GHASH key must be 16 bytes")
    if len(data) % 16 != 0:
        raise CryptoError("GHASH input must be a multiple of 16 bytes")
    h = int.from_bytes(h_key, "big")
    y = 0
    for i in range(0, len(data), 16):
        y = _gf128_mul(y ^ int.from_bytes(data[i : i + 16], "big"), h)
    return y.to_bytes(16, "big")


def _pad16(data: bytes) -> bytes:
    remainder = len(data) % 16
    if remainder == 0:
        return data
    return data + bytes(16 - remainder)


class AesGcm:
    """AES-128-GCM authenticated encryption with 96-bit nonces.

    >>> gcm = AesGcm(bytes(16))
    >>> ct, tag = gcm.encrypt(bytes(12), b"hello", b"")
    >>> gcm.decrypt(bytes(12), ct, tag, b"")
    b'hello'
    """

    NONCE_BYTES = 12
    TAG_BYTES = 16

    def __init__(self, key: bytes) -> None:
        self._cipher = Aes128(key)
        self._h = self._cipher.encrypt_block(bytes(16))

    def _counter_block(self, nonce: bytes, counter: int) -> bytes:
        return nonce + counter.to_bytes(4, "big")

    def _ctr_transform(self, nonce: bytes, data: bytes) -> bytes:
        """CTR keystream XOR, starting at counter 2 (1 is reserved for the tag)."""
        out = bytearray(len(data))
        for block_index in range(0, len(data), 16):
            keystream = self._cipher.encrypt_block(
                self._counter_block(nonce, 2 + block_index // 16)
            )
            chunk = data[block_index : block_index + 16]
            out[block_index : block_index + len(chunk)] = bytes(
                a ^ b for a, b in zip(chunk, keystream)
            )
        return bytes(out)

    def _tag(self, nonce: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        lengths = (8 * len(aad)).to_bytes(8, "big") + (8 * len(ciphertext)).to_bytes(
            8, "big"
        )
        s = ghash(self._h, _pad16(aad) + _pad16(ciphertext) + lengths)
        e = self._cipher.encrypt_block(self._counter_block(nonce, 1))
        return bytes(a ^ b for a, b in zip(s, e))

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> tuple[bytes, bytes]:
        """Return ``(ciphertext, tag)`` for ``plaintext`` under ``nonce``."""
        if len(nonce) != self.NONCE_BYTES:
            raise CryptoError(f"GCM nonce must be {self.NONCE_BYTES} bytes")
        ciphertext = self._ctr_transform(nonce, plaintext)
        return ciphertext, self._tag(nonce, ciphertext, aad)

    def decrypt(self, nonce: bytes, ciphertext: bytes, tag: bytes, aad: bytes = b"") -> bytes:
        """Verify ``tag`` and return the plaintext; raise on any mismatch."""
        if len(nonce) != self.NONCE_BYTES:
            raise CryptoError(f"GCM nonce must be {self.NONCE_BYTES} bytes")
        expected = self._tag(nonce, ciphertext, aad)
        # Constant-time-ish comparison; in the simulated setting this guards
        # correctness rather than a real timing channel.
        if len(tag) != self.TAG_BYTES or not _bytes_eq(expected, tag):
            raise AuthenticationError("GCM tag verification failed")
        return self._ctr_transform(nonce, ciphertext)


def _bytes_eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    result = 0
    for x, y in zip(a, b):
        result |= x ^ y
    return result == 0

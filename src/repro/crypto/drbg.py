"""Deterministic randomness for reproducible experiments.

Every stochastic choice in the reproduction (random IVs, dictionary
rotations/shuffles, the frequency-smoothing experiment, workload sampling)
draws from an :class:`HmacDrbg` so a single seed reproduces a whole
experiment bit-for-bit. The construction follows NIST SP 800-90A's HMAC_DRBG
(SHA-256, no reseeding or prediction resistance, which the simulation does
not need).
"""

from __future__ import annotations

import hmac
import hashlib


class HmacDrbg:
    """HMAC-SHA256 deterministic random bit generator.

    >>> HmacDrbg(b"seed").random_bytes(4) == HmacDrbg(b"seed").random_bytes(4)
    True
    """

    def __init__(self, seed: bytes | int | str) -> None:
        if isinstance(seed, int):
            seed = seed.to_bytes((seed.bit_length() + 15) // 8 + 1, "big", signed=True)
        elif isinstance(seed, str):
            seed = seed.encode("utf-8")
        self._key = b"\x00" * 32
        self._value = b"\x01" * 32
        self._update(seed)

    def _hmac(self, key: bytes, data: bytes) -> bytes:
        return hmac.new(key, data, hashlib.sha256).digest()

    def _update(self, provided: bytes | None = None) -> None:
        self._key = self._hmac(self._key, self._value + b"\x00" + (provided or b""))
        self._value = self._hmac(self._key, self._value)
        if provided is not None:
            self._key = self._hmac(self._key, self._value + b"\x01" + provided)
            self._value = self._hmac(self._key, self._value)

    def random_bytes(self, n: int) -> bytes:
        """Return ``n`` pseudorandom bytes."""
        out = bytearray()
        while len(out) < n:
            self._value = self._hmac(self._key, self._value)
            out.extend(self._value)
        self._update()
        return bytes(out[:n])

    def random_bytes_many(self, n: int, count: int) -> list[bytes]:
        """``count`` draws of ``n`` bytes each, in one call.

        Byte-for-byte identical to ``[self.random_bytes(n) for _ in
        range(count)]`` — each draw still ratchets the generator state
        exactly as a standalone call would (one ``HMAC`` block per 32 output
        bytes plus the SP 800-90A post-generate update), so existing IV
        streams are unchanged. The batch only amortizes Python call and
        attribute-lookup overhead, which matters when a PAE backend seals
        thousands of dictionary entries per partition.
        """
        if count <= 0:
            return []
        out: list[bytes] = []
        hmac_fn = self._hmac
        for _ in range(count):
            key = self._key
            value = self._value
            buf = bytearray()
            while len(buf) < n:
                value = hmac_fn(key, value)
                buf.extend(value)
            self._value = value
            self._update()
            out.append(bytes(buf[:n]))
        return out

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the closed interval ``[low, high]``.

        Uses rejection sampling so the distribution is exactly uniform, which
        matters for the frequency-smoothing security argument (paper §4.1).
        """
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        nbytes = (span.bit_length() + 7) // 8
        limit = (256**nbytes // span) * span
        while True:
            candidate = int.from_bytes(self.random_bytes(nbytes), "big")
            if candidate < limit:
                return low + candidate % span

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def choice(self, items: list):
        """Return a uniformly random element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.randint(0, len(items) - 1)]

    def fork(self, label: str) -> "HmacDrbg":
        """Derive an independent child generator for a named purpose.

        Forking keeps subsystems (e.g. workload generation vs. dictionary
        rotation) statistically independent while still fully seeded.
        """
        return HmacDrbg(self.random_bytes(32) + label.encode("utf-8"))

"""Probabilistic authenticated encryption (PAE) as defined in paper §2.3.

``PAE_Enc(SK, IV, v) -> c`` and ``PAE_Dec(SK, c) -> v`` with confidentiality,
integrity, and authenticity; instantiated with AES-128-GCM. The wire format of
every ciphertext is::

    IV (12 bytes) || GCM ciphertext (len(v) bytes) || tag (16 bytes)

so a ciphertext is exactly ``len(v) + 28`` bytes. That constant drives the
paper's storage evaluation (Table 6) and is exposed as
:data:`PAE_OVERHEAD_BYTES`.

Two backends implement the same :class:`Pae` interface:

- :class:`PurePythonPae` -- the from-scratch AES/GCM in this repository;
  the paper-faithful reference used in the crypto test-vector suite and the
  PAE-backend ablation benchmark.
- :class:`LibraryPae` -- ``cryptography``'s AESGCM (OpenSSL, AES-NI), which
  restores the paper's "hardware supported AES-GCM" speed relationship and is
  the default when the library is importable.

Both draw IVs from an :class:`~repro.crypto.drbg.HmacDrbg` so experiments are
reproducible, while remaining probabilistic from an attacker's viewpoint:
equal plaintexts encrypt to different ciphertexts.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Sequence

from repro.crypto.drbg import HmacDrbg
from repro.crypto.gcm import AesGcm
from repro.exceptions import AuthenticationError, CryptoError

try:  # pragma: no cover - availability depends on the environment
    from cryptography.hazmat.primitives.ciphers.aead import AESGCM as _LibAesGcm
except ImportError:  # pragma: no cover
    _LibAesGcm = None

PAE_KEY_BYTES = 16
PAE_NONCE_BYTES = 12
PAE_TAG_BYTES = 16
PAE_OVERHEAD_BYTES = PAE_NONCE_BYTES + PAE_TAG_BYTES


def pae_gen(security_parameter: int = 128, *, rng: HmacDrbg | None = None) -> bytes:
    """``PAE_Gen(1^λ)``: generate a fresh secret key (paper §4.2 step 1)."""
    if security_parameter != 128:
        raise CryptoError("only λ = 128 (AES-128-GCM) is supported")
    if rng is None:
        import os

        # lint: allow(nondet-randomness) justification="PAE_Gen without an explicit DRBG is the interactive key-generation path (owner CLI); every build/test path passes rng"
        return os.urandom(PAE_KEY_BYTES)
    return rng.random_bytes(PAE_KEY_BYTES)


class Pae(ABC):
    """The PAE interface shared by both backends.

    Instances are stateless with respect to keys: the key is passed to each
    call, matching the paper where the enclave derives ``SKD`` per query.

    The operation counters are lock-protected so concurrent build and scan
    workers can share one backend without losing counts; the internal IV
    generator is likewise guarded, but deterministic callers (the parallel
    build pipeline) should pass an explicit per-task ``rng`` instead so the
    IV stream does not depend on thread scheduling.
    """

    #: Human-readable backend name, used in benchmark reports.
    name: str = "abstract"

    def __init__(self, *, rng: HmacDrbg | None = None) -> None:
        self._rng = rng if rng is not None else HmacDrbg(b"repro-pae-default")
        self._counter_lock = threading.RLock()
        self.encrypt_count = 0  # guarded-by: self._counter_lock
        self.decrypt_count = 0  # guarded-by: self._counter_lock

    def add_operation_counts(self, encrypts: int = 0, decrypts: int = 0) -> None:
        """Fold operation counts performed elsewhere (e.g. a build worker
        process) into this backend's counters, atomically."""
        with self._counter_lock:
            self.encrypt_count += encrypts
            self.decrypt_count += decrypts

    def _draw_iv(self, rng: HmacDrbg | None) -> bytes:
        if rng is not None:
            return rng.random_bytes(PAE_NONCE_BYTES)
        with self._counter_lock:
            return self._rng.random_bytes(PAE_NONCE_BYTES)

    def encrypt(
        self,
        key: bytes,
        plaintext: bytes,
        aad: bytes = b"",
        *,
        rng: HmacDrbg | None = None,
    ) -> bytes:
        """``PAE_Enc``: encrypt under a fresh random IV; returns IV||ct||tag.

        ``rng`` overrides the backend's internal IV generator for this call —
        the parallel build pipeline passes a per-(column, partition) DRBG so
        ciphertexts do not depend on which worker encrypts first.
        """
        if len(key) != PAE_KEY_BYTES:
            raise CryptoError(f"PAE key must be {PAE_KEY_BYTES} bytes")
        self.add_operation_counts(encrypts=1)
        iv = self._draw_iv(rng)
        ciphertext, tag = self._seal(key, iv, plaintext, aad)
        return iv + ciphertext + tag

    def encrypt_many(
        self,
        key: bytes,
        plaintexts: Sequence[bytes],
        aad: bytes = b"",
        *,
        rng: HmacDrbg | None = None,
    ) -> list[bytes]:
        """Seal a whole batch in one vectorized pass.

        Bit-for-bit identical to calling :meth:`encrypt` once per plaintext
        with the same ``rng`` (each IV is a separate 12-byte draw, exactly
        the sequential stream), but the key schedule, counter update and —
        without an explicit ``rng`` — the IV-generator lock are amortized
        over the batch instead of paid per value.
        """
        if len(key) != PAE_KEY_BYTES:
            raise CryptoError(f"PAE key must be {PAE_KEY_BYTES} bytes")
        if not plaintexts:
            return []
        # All N IVs come from the DRBG in one batched call (byte-identical
        # to N separate draws) and the counter is bumped once — the only
        # lock traffic of a batch is a single acquisition either way.
        if rng is not None:
            ivs = rng.random_bytes_many(PAE_NONCE_BYTES, len(plaintexts))
            self.add_operation_counts(encrypts=len(plaintexts))
        else:
            with self._counter_lock:
                ivs = self._rng.random_bytes_many(
                    PAE_NONCE_BYTES, len(plaintexts)
                )
                self.encrypt_count += len(plaintexts)
        return self._seal_batch(key, ivs, plaintexts, aad)

    def decrypt(self, key: bytes, blob: bytes, aad: bytes = b"") -> bytes:
        """``PAE_Dec``: authenticate and decrypt an IV||ct||tag blob."""
        if len(key) != PAE_KEY_BYTES:
            raise CryptoError(f"PAE key must be {PAE_KEY_BYTES} bytes")
        if len(blob) < PAE_OVERHEAD_BYTES:
            raise AuthenticationError("ciphertext too short to be authentic")
        self.add_operation_counts(decrypts=1)
        iv = blob[:PAE_NONCE_BYTES]
        ciphertext = blob[PAE_NONCE_BYTES:-PAE_TAG_BYTES]
        tag = blob[-PAE_TAG_BYTES:]
        return self._open(key, iv, ciphertext, tag, aad)

    def decrypt_many(
        self, key: bytes, blobs: Sequence[bytes], aad: bytes = b""
    ) -> list[bytes]:
        """Authenticate and open a whole batch (one counter update)."""
        if len(key) != PAE_KEY_BYTES:
            raise CryptoError(f"PAE key must be {PAE_KEY_BYTES} bytes")
        for blob in blobs:
            if len(blob) < PAE_OVERHEAD_BYTES:
                raise AuthenticationError("ciphertext too short to be authentic")
        self.add_operation_counts(decrypts=len(blobs))
        return self._open_batch(key, blobs, aad)

    def ciphertext_length(self, plaintext_length: int) -> int:
        """Size in bytes of the PAE blob for a plaintext of the given size."""
        return plaintext_length + PAE_OVERHEAD_BYTES

    def reset_counters(self) -> None:
        """Zero the operation counters used by the cost model."""
        with self._counter_lock:
            self.encrypt_count = 0
            self.decrypt_count = 0

    @abstractmethod
    def _seal(
        self, key: bytes, iv: bytes, plaintext: bytes, aad: bytes
    ) -> tuple[bytes, bytes]:
        """Return ``(ciphertext, tag)``."""

    @abstractmethod
    def _open(
        self, key: bytes, iv: bytes, ciphertext: bytes, tag: bytes, aad: bytes
    ) -> bytes:
        """Verify and decrypt; raise :class:`AuthenticationError` on failure."""

    def _seal_batch(
        self,
        key: bytes,
        ivs: Sequence[bytes],
        plaintexts: Sequence[bytes],
        aad: bytes,
    ) -> list[bytes]:
        """Seal a batch; backends override to reuse one cipher context."""
        return [
            iv + b"".join(self._seal(key, iv, plaintext, aad))
            for iv, plaintext in zip(ivs, plaintexts)
        ]

    def _open_batch(
        self, key: bytes, blobs: Sequence[bytes], aad: bytes
    ) -> list[bytes]:
        """Open a batch; backends override to reuse one cipher context."""
        return [
            self._open(
                key,
                blob[:PAE_NONCE_BYTES],
                blob[PAE_NONCE_BYTES:-PAE_TAG_BYTES],
                blob[-PAE_TAG_BYTES:],
                aad,
            )
            for blob in blobs
        ]


class PurePythonPae(Pae):
    """PAE over the from-scratch AES-128-GCM implementation."""

    name = "pure-python-aes-gcm"

    def __init__(self, *, rng: HmacDrbg | None = None) -> None:
        super().__init__(rng=rng)
        self._cache_lock = threading.RLock()
        self._gcm_cache: dict[bytes, AesGcm] = {}  # guarded-by: self._cache_lock

    def _gcm(self, key: bytes) -> AesGcm:
        with self._cache_lock:
            gcm = self._gcm_cache.get(key)
            if gcm is None:
                gcm = AesGcm(key)
                # Bounded cache: one entry per column key is typical.
                if len(self._gcm_cache) > 1024:
                    self._gcm_cache.clear()
                self._gcm_cache[key] = gcm
            return gcm

    def _seal(self, key, iv, plaintext, aad):
        return self._gcm(key).encrypt(iv, plaintext, aad)

    def _open(self, key, iv, ciphertext, tag, aad):
        return self._gcm(key).decrypt(iv, ciphertext, tag, aad)

    def _seal_batch(self, key, ivs, plaintexts, aad):
        # One cache-lock acquisition and key-schedule lookup per batch.
        gcm = self._gcm(key)
        blobs = []
        for iv, plaintext in zip(ivs, plaintexts):
            ciphertext, tag = gcm.encrypt(iv, plaintext, aad)
            blobs.append(iv + ciphertext + tag)
        return blobs

    def _open_batch(self, key, blobs, aad):
        gcm = self._gcm(key)
        return [
            gcm.decrypt(
                blob[:PAE_NONCE_BYTES],
                blob[PAE_NONCE_BYTES:-PAE_TAG_BYTES],
                blob[-PAE_TAG_BYTES:],
                aad,
            )
            for blob in blobs
        ]


class LibraryPae(Pae):
    """PAE over the ``cryptography`` library's AES-GCM (OpenSSL/AES-NI)."""

    name = "library-aes-gcm"

    def __init__(self, *, rng: HmacDrbg | None = None) -> None:
        if _LibAesGcm is None:  # pragma: no cover
            raise CryptoError(
                "the 'cryptography' package is not installed; "
                "use PurePythonPae or install repro[fastcrypto]"
            )
        super().__init__(rng=rng)
        self._cache_lock = threading.RLock()
        self._aead_cache: dict[bytes, object] = {}  # guarded-by: self._cache_lock

    def _aead(self, key: bytes):
        with self._cache_lock:
            aead = self._aead_cache.get(key)
            if aead is None:
                aead = _LibAesGcm(key)
                if len(self._aead_cache) > 1024:
                    self._aead_cache.clear()
                self._aead_cache[key] = aead
            return aead

    def _seal(self, key, iv, plaintext, aad):
        blob = self._aead(key).encrypt(iv, plaintext, aad)
        return blob[:-PAE_TAG_BYTES], blob[-PAE_TAG_BYTES:]

    def _open(self, key, iv, ciphertext, tag, aad):
        try:
            return self._aead(key).decrypt(iv, ciphertext + tag, aad)
        except Exception as exc:
            raise AuthenticationError("GCM tag verification failed") from exc


def default_pae(*, rng: HmacDrbg | None = None) -> Pae:
    """Return the fastest available backend (library if importable)."""
    if _LibAesGcm is not None:
        return LibraryPae(rng=rng)
    return PurePythonPae(rng=rng)  # pragma: no cover

"""Key derivation used by EncDBDB.

The paper derives one key per encrypted column: ``SKD = DeriveKey(SKDB,
table name, column name)`` (§4.1, Algorithm 1 line 1). We instantiate
``DeriveKey`` with HKDF-SHA256 (RFC 5869), a standard extract-and-expand
construction, binding the table and column names into the ``info`` field so
distinct columns always receive independent keys.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.exceptions import CryptoError


def _hmac_sha256(key: bytes, data: bytes) -> bytes:
    return hmac.new(key, data, hashlib.sha256).digest()


def hkdf_sha256(
    input_key: bytes, *, salt: bytes = b"", info: bytes = b"", length: int = 16
) -> bytes:
    """RFC 5869 HKDF with SHA-256.

    >>> len(hkdf_sha256(b"ikm", info=b"ctx", length=16))
    16
    """
    if length <= 0 or length > 255 * 32:
        raise CryptoError(f"invalid HKDF output length {length}")
    pseudo_random_key = _hmac_sha256(salt or b"\x00" * 32, input_key)
    blocks = b""
    previous = b""
    counter = 1
    while len(blocks) < length:
        previous = _hmac_sha256(pseudo_random_key, previous + info + bytes([counter]))
        blocks += previous
        counter += 1
    return blocks[:length]


def derive_column_key(
    master_key: bytes, table_name: str, column_name: str, key_epoch: int = 0
) -> bytes:
    """Derive the per-column key ``SKD`` from the data owner's ``SKDB``.

    The encoding length-prefixes both names so no two distinct
    ``(table, column)`` pairs can collide (e.g. ``("ab", "c")`` vs
    ``("a", "bc")``).

    ``key_epoch`` supports online key rotation (``repro.migrate``): epoch 0
    is the column's original key and keeps the historical derivation
    byte-for-byte, epoch ``n > 0`` appends the epoch to the HKDF info so
    every rotation yields an independent key. Epoch 0 doubles as the
    *transit* key — the proxy↔enclave encoding of filter bounds and insert
    values stays pinned to it so clients never need to learn the storage
    epoch before they can query.
    """
    if not master_key:
        raise CryptoError("master key must not be empty")
    if key_epoch < 0:
        raise CryptoError(f"invalid key epoch {key_epoch}")
    table_bytes = table_name.encode("utf-8")
    column_bytes = column_name.encode("utf-8")
    info = (
        b"EncDBDB-column-key\x00"
        + len(table_bytes).to_bytes(4, "big")
        + table_bytes
        + len(column_bytes).to_bytes(4, "big")
        + column_bytes
    )
    if key_epoch:
        info += b"\x00epoch" + key_epoch.to_bytes(8, "big")
    return hkdf_sha256(master_key, info=info, length=16)


def derive_rotation_seed(
    master_key: bytes,
    table_name: str,
    column_name: str,
    kind_name: str,
    key_epoch: int,
) -> bytes:
    """The DRBG seed of one online rotation's deterministic rebuild.

    Both the enclave's ``rotate_partition`` ecall and the data owner can
    derive it (it is a pure function of ``SKDB`` and the rotation target),
    which is what makes the rotated column byte-identical to a from-scratch
    deterministic build the owner can reproduce and audit.
    """
    if not master_key:
        raise CryptoError("master key must not be empty")
    parts = [
        part.encode("utf-8") for part in (table_name, column_name, kind_name)
    ]
    info = b"EncDBDB-rotation\x00" + b"".join(
        len(part).to_bytes(4, "big") + part for part in parts
    ) + key_epoch.to_bytes(8, "big")
    return hkdf_sha256(master_key, info=info, length=32)

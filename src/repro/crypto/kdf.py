"""Key derivation used by EncDBDB.

The paper derives one key per encrypted column: ``SKD = DeriveKey(SKDB,
table name, column name)`` (§4.1, Algorithm 1 line 1). We instantiate
``DeriveKey`` with HKDF-SHA256 (RFC 5869), a standard extract-and-expand
construction, binding the table and column names into the ``info`` field so
distinct columns always receive independent keys.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.exceptions import CryptoError


def _hmac_sha256(key: bytes, data: bytes) -> bytes:
    return hmac.new(key, data, hashlib.sha256).digest()


def hkdf_sha256(
    input_key: bytes, *, salt: bytes = b"", info: bytes = b"", length: int = 16
) -> bytes:
    """RFC 5869 HKDF with SHA-256.

    >>> len(hkdf_sha256(b"ikm", info=b"ctx", length=16))
    16
    """
    if length <= 0 or length > 255 * 32:
        raise CryptoError(f"invalid HKDF output length {length}")
    pseudo_random_key = _hmac_sha256(salt or b"\x00" * 32, input_key)
    blocks = b""
    previous = b""
    counter = 1
    while len(blocks) < length:
        previous = _hmac_sha256(pseudo_random_key, previous + info + bytes([counter]))
        blocks += previous
        counter += 1
    return blocks[:length]


def derive_column_key(master_key: bytes, table_name: str, column_name: str) -> bytes:
    """Derive the per-column key ``SKD`` from the data owner's ``SKDB``.

    The encoding length-prefixes both names so no two distinct
    ``(table, column)`` pairs can collide (e.g. ``("ab", "c")`` vs
    ``("a", "bc")``).
    """
    if not master_key:
        raise CryptoError("master key must not be empty")
    table_bytes = table_name.encode("utf-8")
    column_bytes = column_name.encode("utf-8")
    info = (
        b"EncDBDB-column-key\x00"
        + len(table_bytes).to_bytes(4, "big")
        + table_bytes
        + len(column_bytes).to_bytes(4, "big")
        + column_bytes
    )
    return hkdf_sha256(master_key, info=info, length=16)

"""AES-128 block cipher implemented from scratch (FIPS 197).

This is the reference implementation backing :class:`repro.crypto.pae.
PurePythonPae`. It exists so that no part of the paper's trusted computing
base hides behind a third-party library: the whole cipher is ~200 lines that
can be audited alongside the enclave code, mirroring the paper's small-TCB
argument (§6.1).

Only encryption is implemented because GCM (the only mode used by EncDBDB)
needs the forward cipher for both directions. The implementation favours
clarity over speed; the benchmark harness uses the library backend by default
and the pure-Python one in the ablation bench.
"""

from __future__ import annotations

from repro.exceptions import CryptoError

_SBOX = (
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
)

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8) modulo the AES polynomial."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a


# Precomputed GF(2^8) multiplication tables for MixColumns.
_MUL2 = tuple(_xtime(a) for a in range(256))
_MUL3 = tuple(_MUL2[a] ^ a for a in range(256))


class Aes128:
    """AES with a 128-bit key operating on 16-byte blocks.

    >>> key = bytes(range(16))
    >>> Aes128(key).encrypt_block(bytes(16)) == Aes128(key).encrypt_block(bytes(16))
    True
    """

    BLOCK_BYTES = 16
    KEY_BYTES = 16
    ROUNDS = 10

    def __init__(self, key: bytes) -> None:
        if len(key) != self.KEY_BYTES:
            raise CryptoError(
                f"AES-128 requires a {self.KEY_BYTES}-byte key, got {len(key)}"
            )
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> list[list[int]]:
        """FIPS 197 §5.2 key expansion into 11 round keys of 16 bytes each."""
        words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 4 * (Aes128.ROUNDS + 1)):
            word = list(words[i - 1])
            if i % 4 == 0:
                word = word[1:] + word[:1]
                word = [_SBOX[b] for b in word]
                word[0] ^= _RCON[i // 4 - 1]
            words.append([a ^ b for a, b in zip(word, words[i - 4])])
        return [
            [b for word in words[r : r + 4] for b in word]
            for r in range(0, len(words), 4)
        ]

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block and return the 16-byte ciphertext."""
        if len(block) != self.BLOCK_BYTES:
            raise CryptoError(f"AES block must be 16 bytes, got {len(block)}")
        state = [b ^ k for b, k in zip(block, self._round_keys[0])]
        for round_number in range(1, self.ROUNDS):
            state = self._round(state, self._round_keys[round_number])
        return bytes(self._final_round(state, self._round_keys[self.ROUNDS]))

    @staticmethod
    def _sub_shift(state: list[int]) -> list[int]:
        """SubBytes followed by ShiftRows on a column-major 16-byte state."""
        s = _SBOX
        return [
            s[state[0]], s[state[5]], s[state[10]], s[state[15]],
            s[state[4]], s[state[9]], s[state[14]], s[state[3]],
            s[state[8]], s[state[13]], s[state[2]], s[state[7]],
            s[state[12]], s[state[1]], s[state[6]], s[state[11]],
        ]

    @classmethod
    def _round(cls, state: list[int], round_key: list[int]) -> list[int]:
        """One full AES round: SubBytes, ShiftRows, MixColumns, AddRoundKey."""
        t = cls._sub_shift(state)
        out = [0] * 16
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = t[c], t[c + 1], t[c + 2], t[c + 3]
            out[c] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3 ^ round_key[c]
            out[c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3 ^ round_key[c + 1]
            out[c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3] ^ round_key[c + 2]
            out[c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3] ^ round_key[c + 3]
        return out

    @classmethod
    def _final_round(cls, state: list[int], round_key: list[int]) -> list[int]:
        """The last round omits MixColumns (FIPS 197 §5.1.4)."""
        t = cls._sub_shift(state)
        return [a ^ k for a, k in zip(t, round_key)]

"""Binary persistence for the in-memory database (paper §4.2 step 4).

The storage manager writes the whole database — catalog, dictionaries
(head/tail), attribute vectors, validity bits, delta stores — to one binary
file so the primary copy in main memory survives restarts, exactly the
persistency role disk plays for MonetDB. Encrypted columns are persisted as
their ciphertext structures: nothing in the file reveals more than the
in-memory representation already does.

Format: ``ENCDBDB3`` magic, length-prefixed frames, SHA-256 integrity
trailer. Tampering or truncation raises :class:`StorageError`. Version 2
introduced the partitioned main-store layout: each column is a sequence of
(dictionary, attribute vector) partitions plus the per-table partition-row
target, and encrypted partitions keep their server-assigned partition ids
so enclave cache epochs stay consistent across a restart. Version 3 adds
the per-column storage-key epoch (``repro.migrate`` key rotations), written
once per encrypted column — the format still records exactly one kind and
one epoch per column, which is why the server refuses to save while a
rotation is mid-flight.
"""

from __future__ import annotations

import hashlib
import io
import struct
from pathlib import Path

import numpy as np

from repro.columnstore.catalog import Catalog
from repro.columnstore.column import EncryptedStoredColumn, PlainStoredColumn
from repro.columnstore.dictionary import DictionaryEncodedColumn
from repro.columnstore.packed import pack_attribute_vector, unpack_attribute_vector
from repro.columnstore.types import ColumnSpec, parse_type
from repro.encdict.builder import BuildResult, BuildStats
from repro.encdict.dictionary import EncryptedDictionary
from repro.encdict.options import kind_by_name
from repro.exceptions import StorageError

_MAGIC = b"ENCDBDB3"


class _Writer:
    def __init__(self) -> None:
        self._buffer = io.BytesIO()

    def bytes_frame(self, data: bytes) -> None:
        self._buffer.write(struct.pack(">Q", len(data)))
        self._buffer.write(data)

    def text(self, text: str) -> None:
        self.bytes_frame(text.encode("utf-8"))

    def u64(self, value: int) -> None:
        self._buffer.write(struct.pack(">Q", value))

    def array(self, array: np.ndarray) -> None:
        self.text(str(array.dtype))
        self.u64(len(array))
        self.bytes_frame(array.tobytes())

    def getvalue(self) -> bytes:
        return self._buffer.getvalue()


class _Reader:
    def __init__(self, data: bytes) -> None:
        self._view = memoryview(data)
        self._pos = 0

    def _take(self, n: int) -> memoryview:
        if self._pos + n > len(self._view):
            raise StorageError("truncated database file")
        chunk = self._view[self._pos : self._pos + n]
        self._pos += n
        return chunk

    def bytes_frame(self) -> bytes:
        (length,) = struct.unpack(">Q", self._take(8))
        return bytes(self._take(length))

    def text(self) -> str:
        return self.bytes_frame().decode("utf-8")

    def u64(self) -> int:
        (value,) = struct.unpack(">Q", self._take(8))
        return value

    def array(self) -> np.ndarray:
        dtype = np.dtype(self.text())
        length = self.u64()
        raw = self.bytes_frame()
        return np.frombuffer(raw, dtype=dtype, count=length).copy()


def _write_spec(writer: _Writer, spec: ColumnSpec) -> None:
    writer.text(spec.name)
    writer.text(spec.value_type.sql_name)
    writer.text(spec.protection.name if spec.protection is not None else "")
    writer.u64(spec.bsmax)


def _read_spec(reader: _Reader) -> ColumnSpec:
    name = reader.text()
    value_type = parse_type(reader.text())
    protection_name = reader.text()
    bsmax = reader.u64()
    protection = kind_by_name(protection_name) if protection_name else None
    return ColumnSpec(name, value_type, protection=protection, bsmax=bsmax)


def _write_packed_av(writer: _Writer, attribute_vector, dictionary_size: int) -> None:
    """Persist an attribute vector bit-packed to ceil(log2 |D|) bits/entry
    (paper §2.1) — the dominant space saving of the on-disk format."""
    packed, width = pack_attribute_vector(attribute_vector, max(dictionary_size, 1))
    writer.u64(len(attribute_vector))
    writer.u64(width)
    writer.bytes_frame(packed)


def _read_packed_av(reader: _Reader) -> "np.ndarray":
    length = reader.u64()
    width = reader.u64()
    packed = reader.bytes_frame()
    return unpack_attribute_vector(packed, width, length)


def _write_plain_column(writer: _Writer, column: PlainStoredColumn) -> None:
    value_type = column.spec.value_type
    writer.u64(len(column.partitions))
    for part in column.partitions:
        writer.u64(len(part.dictionary))
        for value in part.dictionary:
            writer.bytes_frame(value_type.to_bytes(value))
        _write_packed_av(writer, part.attribute_vector, len(part.dictionary))
    writer.u64(len(column.delta_values))
    for value in column.delta_values:
        writer.bytes_frame(value_type.to_bytes(value))


def _read_plain_column(reader: _Reader, spec: ColumnSpec) -> PlainStoredColumn:
    value_type = spec.value_type
    column = PlainStoredColumn(spec)
    partitions = []
    for _ in range(reader.u64()):
        dictionary = [
            value_type.from_bytes(reader.bytes_frame())
            for _ in range(reader.u64())
        ]
        attribute_vector = _read_packed_av(reader)
        partitions.append(DictionaryEncodedColumn(dictionary, attribute_vector))
    column.partitions = partitions
    column.delta_values = [
        value_type.from_bytes(reader.bytes_frame()) for _ in range(reader.u64())
    ]
    return column


def _write_encrypted_partition(
    writer: _Writer, build: BuildResult, partition_id: int
) -> None:
    """One main-store partition as its on-disk frame sequence."""
    dictionary = build.dictionary
    writer.u64(partition_id)
    writer.array(dictionary.offsets)
    writer.bytes_frame(dictionary.tail)
    writer.bytes_frame(dictionary.enc_rnd_offset or b"")
    _write_packed_av(writer, build.attribute_vector, len(dictionary))


def encrypted_partition_frame(build: BuildResult, partition_id: int) -> bytes:
    """The exact bytes :func:`save_database` persists for one partition.

    Gives tests (and audits) partition-granular byte identity: two builds
    are interchangeable on disk iff their frames compare equal.
    """
    writer = _Writer()
    _write_encrypted_partition(writer, build, partition_id)
    return writer.getvalue()


def _write_encrypted_column(writer: _Writer, column: EncryptedStoredColumn) -> None:
    # v3: the storage-key epoch every blob of this column is sealed under.
    writer.u64(column.key_epoch)
    writer.u64(len(column.partition_builds))
    for build, partition_id in zip(column.partition_builds, column.partition_ids):
        _write_encrypted_partition(writer, build, partition_id)
    writer.u64(column._next_partition_id)
    writer.u64(len(column.delta_blobs))
    for blob in column.delta_blobs:
        writer.bytes_frame(blob)


def _read_encrypted_column(
    reader: _Reader, spec: ColumnSpec, table_name: str
) -> EncryptedStoredColumn:
    key_epoch = reader.u64()
    builds = []
    ids = []
    for _ in range(reader.u64()):
        ids.append(reader.u64())
        offsets = reader.array()
        tail = reader.bytes_frame()
        enc_rnd_offset = reader.bytes_frame() or None
        attribute_vector = _read_packed_av(reader)
        dictionary = EncryptedDictionary(
            kind=spec.protection,
            value_type=spec.value_type,
            table_name=table_name,
            column_name=spec.name,
            offsets=offsets,
            tail=tail,
            enc_rnd_offset=enc_rnd_offset,
            key_epoch=key_epoch,
        )
        stats = BuildStats(
            kind=spec.protection,
            column_length=len(attribute_vector),
            unique_values=-1,  # unknown to the (untrusted) storage layer
            dictionary_entries=len(dictionary),
            bsmax=None,
            rnd_offset=None,
        )
        builds.append(BuildResult(dictionary, attribute_vector, stats))
    column = EncryptedStoredColumn(spec, None)
    column.set_partitions(builds, ids=ids)
    # Never reuse an id a dropped partition once held: restore the counter.
    column._next_partition_id = max(column._next_partition_id, reader.u64())
    column.bind(table_name)
    column.set_key_epoch(key_epoch)
    if key_epoch:
        spec.metadata["key_epoch"] = key_epoch
    column.delta_blobs = [reader.bytes_frame() for _ in range(reader.u64())]
    return column


def save_database(catalog: Catalog, path: str | Path) -> None:
    """Persist every table of ``catalog`` to ``path``."""
    writer = _Writer()
    names = catalog.table_names()
    writer.u64(len(names))
    for name in names:
        table = catalog.table(name)
        writer.text(table.name)
        writer.u64(len(table.specs))
        for spec in table.specs:
            _write_spec(writer, spec)
        writer.array(table.validity.astype(np.uint8))
        writer.u64(table.partition_rows or 0)
        for spec in table.specs:
            column = table.columns[spec.name]
            if isinstance(column, PlainStoredColumn):
                writer.text("plain")
                _write_plain_column(writer, column)
            else:
                writer.text("encrypted")
                _write_encrypted_column(writer, column)
    payload = writer.getvalue()
    digest = hashlib.sha256(payload).digest()
    Path(path).write_bytes(_MAGIC + payload + digest)


def load_database(path: str | Path) -> Catalog:
    """Load a database file back into a fresh catalog."""
    raw = Path(path).read_bytes()
    if len(raw) < len(_MAGIC) + 32 or not raw.startswith(_MAGIC):
        raise StorageError(f"{path} is not an EncDBDB database file")
    payload, digest = raw[len(_MAGIC) : -32], raw[-32:]
    if hashlib.sha256(payload).digest() != digest:
        raise StorageError(f"{path} failed its integrity check")

    reader = _Reader(payload)
    catalog = Catalog()
    for _ in range(reader.u64()):
        name = reader.text()
        specs = [_read_spec(reader) for _ in range(reader.u64())]
        table = catalog.create_table(name, specs)
        validity = reader.array().astype(bool)
        partition_rows = reader.u64()
        table.partition_rows = partition_rows or None
        columns = {}
        for spec in specs:
            tag = reader.text()
            if tag == "plain":
                columns[spec.name] = _read_plain_column(reader, spec)
            elif tag == "encrypted":
                columns[spec.name] = _read_encrypted_column(reader, spec, name)
            else:
                raise StorageError(f"unknown column tag {tag!r}")
        table.attach_columns(columns, len(validity))
        table._validity = validity
    return catalog

"""Column-oriented, dictionary-encoding based, in-memory DBMS substrate.

This package is the reproduction's stand-in for MonetDB (paper §5): typed
columns split into dictionary + attribute vector, a catalog of tables, binary
persistence, a delta store for dynamic data, and a faithful model of
MonetDB's own string-dictionary variant used as the plaintext baseline in the
evaluation.
"""

from repro.columnstore.dictionary import DictionaryEncodedColumn, split_column
from repro.columnstore.types import (
    ColumnSpec,
    IntegerType,
    ValueType,
    VarcharType,
)

__all__ = [
    "ValueType",
    "IntegerType",
    "VarcharType",
    "ColumnSpec",
    "split_column",
    "DictionaryEncodedColumn",
]

"""Bit-packed attribute vectors (paper §2.1).

"A ValueID of i Bits is sufficient to represent 2^i different values in the
attribute vector" — the compression that makes dictionary encoding pay off.
At runtime the reproduction keeps attribute vectors as int64 numpy arrays
(vectorized scans), but persistence packs them to ``ceil(log2 |D|)`` bits
per entry, which is also exactly the width the Table 6 storage accounting
assumes.

Packing is fully vectorized: the ValueIDs are expanded into an ``n x width``
bit matrix and collapsed with ``np.packbits`` (and the reverse with
``np.unpackbits``).
"""

from __future__ import annotations

import numpy as np

from repro.columnstore.dictionary import attribute_vector_bits
from repro.exceptions import StorageError


def pack_attribute_vector(
    attribute_vector: np.ndarray, dictionary_size: int
) -> tuple[bytes, int]:
    """Pack ValueIDs into ``ceil(log2 |D|)`` bits each.

    Returns ``(packed_bytes, bits_per_entry)``.
    """
    if dictionary_size < 1:
        raise StorageError("dictionary size must be >= 1")
    values = np.asarray(attribute_vector, dtype=np.int64)
    if len(values) and (values.min() < 0 or values.max() >= dictionary_size):
        raise StorageError("ValueID outside the dictionary range")
    width = attribute_vector_bits(dictionary_size)
    if len(values) == 0:
        return b"", width
    shifts = np.arange(width - 1, -1, -1, dtype=np.int64)
    bits = ((values[:, None] >> shifts[None, :]) & 1).astype(np.uint8)
    return np.packbits(bits.ravel()).tobytes(), width


def unpack_attribute_vector(
    packed: bytes, bits_per_entry: int, length: int
) -> np.ndarray:
    """Inverse of :func:`pack_attribute_vector`."""
    if bits_per_entry < 1 or bits_per_entry > 63:
        raise StorageError(f"invalid ValueID width {bits_per_entry}")
    if length == 0:
        return np.empty(0, dtype=np.int64)
    total_bits = length * bits_per_entry
    available_bits = len(packed) * 8
    if available_bits < total_bits:
        raise StorageError("packed attribute vector is truncated")
    bits = np.unpackbits(np.frombuffer(packed, dtype=np.uint8))[:total_bits]
    matrix = bits.reshape(length, bits_per_entry).astype(np.int64)
    shifts = np.arange(bits_per_entry - 1, -1, -1, dtype=np.int64)
    return (matrix << shifts[None, :]).sum(axis=1)


def packed_size_bytes(length: int, dictionary_size: int) -> int:
    """Size of the packed representation, in whole bytes."""
    width = attribute_vector_bits(max(dictionary_size, 1))
    return (length * width + 7) // 8

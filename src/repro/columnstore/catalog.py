"""The database catalog: table schemas and their column stores."""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.columnstore.table import Table
from repro.columnstore.types import ColumnSpec
from repro.exceptions import CatalogError


class Catalog:
    """Name -> table mapping with schema validation."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def create_table(self, name: str, specs: Sequence[ColumnSpec]) -> Table:
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, specs)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def table_names(self) -> list[str]:
        return sorted(self._tables)

"""Column data types.

The paper's ``ENCODE`` trick (Algorithm 3) requires every column to have a
fixed maximal length fixing a finite, ordered value domain — implicitly for
``INTEGER`` (32 bit) and explicitly for ``VARCHAR(n)`` (paper §4.1, ED2).
A :class:`ValueType` therefore provides, besides serialization, an
*order-preserving ordinal embedding* of its domain into ``[0, domain_size)``;
:mod:`repro.encdict.encode` builds the rotated dictionary search on top of
it.

A :class:`ColumnSpec` pairs a value type with the column's protection: either
plaintext or one of the nine encrypted dictionaries (and ``bsmax`` for the
frequency-smoothing ones).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import CatalogError


class ValueType(ABC):
    """An ordered, finite column domain with byte serialization."""

    #: SQL spelling, e.g. ``VARCHAR(30)`` or ``INTEGER``.
    sql_name: str

    def coerce(self, literal: Any) -> Any:
        """Convert a SQL literal to a domain value, if a conversion exists.

        The SQL layer only produces ``int`` and ``str`` literals; types whose
        Python representation differs (e.g. DATE) override this to parse the
        literal. The default is the identity.
        """
        return literal

    @property
    @abstractmethod
    def domain_size(self) -> int:
        """Number of representable values (the modulus ``N`` of Algorithm 3)."""

    @abstractmethod
    def validate(self, value: Any) -> None:
        """Raise :class:`CatalogError` if ``value`` is outside the domain."""

    @abstractmethod
    def to_bytes(self, value: Any) -> bytes:
        """Serialize a value for encryption/persistence."""

    @abstractmethod
    def from_bytes(self, data: bytes) -> Any:
        """Inverse of :meth:`to_bytes`."""

    @abstractmethod
    def ordinal(self, value: Any) -> int:
        """Order-preserving embedding into ``[0, domain_size)``.

        ``a < b  <=>  ordinal(a) < ordinal(b)`` for all domain values; this
        is the paper's ``ENCODE`` function.
        """

    @property
    def min_value(self) -> Any:
        """Smallest domain value (the ``-inf`` placeholder of §4.2)."""
        return self.from_ordinal(0)

    @property
    def max_value(self) -> Any:
        """Largest domain value (``+inf`` placeholder / 'column maximum')."""
        return self.from_ordinal(self.domain_size - 1)

    @abstractmethod
    def from_ordinal(self, ordinal: int) -> Any:
        """Inverse of :meth:`ordinal` (used for the domain extrema)."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.sql_name == getattr(
            other, "sql_name", None
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.sql_name))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.sql_name})"


class IntegerType(ValueType):
    """Signed 32-bit integers (the paper's MySQL-style INTEGER example)."""

    INT_MIN = -(2**31)
    INT_MAX = 2**31 - 1

    def __init__(self) -> None:
        self.sql_name = "INTEGER"

    @property
    def domain_size(self) -> int:
        return 2**32

    def validate(self, value: Any) -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise CatalogError(f"INTEGER column cannot store {value!r}")
        if not self.INT_MIN <= value <= self.INT_MAX:
            raise CatalogError(f"{value} outside the 32-bit INTEGER range")

    def to_bytes(self, value: int) -> bytes:
        self.validate(value)
        return (value - self.INT_MIN).to_bytes(4, "big")

    def from_bytes(self, data: bytes) -> int:
        if len(data) != 4:
            raise CatalogError(f"INTEGER payload must be 4 bytes, got {len(data)}")
        return int.from_bytes(data, "big") + self.INT_MIN

    def ordinal(self, value: int) -> int:
        self.validate(value)
        return value - self.INT_MIN

    def from_ordinal(self, ordinal: int) -> int:
        return ordinal + self.INT_MIN


class VarcharType(ValueType):
    """``VARCHAR(n)``: byte strings of length <= n.

    Values are compared lexicographically on their UTF-8 bytes, matching how
    the reproduction's dictionaries sort them. The ordinal embedding right-
    pads with zero bytes (the paper's ``ENCODE``), so NUL bytes inside values
    are rejected to keep the embedding order-preserving.
    """

    def __init__(self, max_length: int) -> None:
        if max_length <= 0:
            raise CatalogError("VARCHAR length must be positive")
        self.max_length = max_length
        self.sql_name = f"VARCHAR({max_length})"

    @property
    def domain_size(self) -> int:
        return 256**self.max_length

    @staticmethod
    def _encode(value: str) -> bytes:
        # surrogateescape keeps the byte<->str mapping bijective so the
        # domain extrema produced by from_ordinal() stay representable.
        return value.encode("utf-8", errors="surrogateescape")

    def validate(self, value: Any) -> None:
        if not isinstance(value, str):
            raise CatalogError(f"VARCHAR column cannot store {value!r}")
        encoded = self._encode(value)
        if len(encoded) > self.max_length:
            raise CatalogError(
                f"value of {len(encoded)} bytes exceeds {self.sql_name}"
            )
        if b"\x00" in encoded:
            raise CatalogError("VARCHAR values must not contain NUL bytes")

    def to_bytes(self, value: str) -> bytes:
        self.validate(value)
        return self._encode(value)

    def from_bytes(self, data: bytes) -> str:
        return data.decode("utf-8", errors="surrogateescape")

    def ordinal(self, value: str) -> int:
        self.validate(value)
        encoded = self._encode(value)
        padded = encoded + b"\x00" * (self.max_length - len(encoded))
        return int.from_bytes(padded, "big")

    def from_ordinal(self, ordinal: int) -> str:
        padded = ordinal.to_bytes(self.max_length, "big")
        return padded.rstrip(b"\x00").decode("utf-8", errors="surrogateescape")

    def prefix_ordinal_range(self, prefix: str) -> tuple[int, int]:
        """The closed ordinal interval of all values starting with ``prefix``.

        Because the ordinal embedding is byte-lexicographic with zero
        padding, the strings with a given prefix occupy exactly
        ``[ordinal(prefix), ordinal(prefix || 0xFF...)]`` — which is how a
        LIKE-prefix filter becomes an ordinary (encrypted) range query.
        """
        self.validate(prefix)
        encoded = self._encode(prefix)
        low = self.ordinal(prefix)
        high_bytes = encoded + b"\xff" * (self.max_length - len(encoded))
        return low, int.from_bytes(high_bytes, "big")


class DateType(ValueType):
    """Calendar dates (proleptic Gregorian, year 1 to 9999).

    Values are :class:`datetime.date`; SQL literals are ISO strings
    (``'2026-07-05'``) coerced by :meth:`coerce`. The ordinal embedding is
    the day number, so date ranges work on every encrypted dictionary just
    like integers — the typical time-dimension filter of a warehouse query.
    """

    def __init__(self) -> None:
        self.sql_name = "DATE"

    @property
    def domain_size(self) -> int:
        import datetime

        return datetime.date.max.toordinal()  # 3652059 days

    def coerce(self, literal: Any) -> Any:
        import datetime

        if isinstance(literal, str):
            try:
                return datetime.date.fromisoformat(literal)
            except ValueError:
                raise CatalogError(
                    f"{literal!r} is not an ISO date (YYYY-MM-DD)"
                ) from None
        return literal

    def validate(self, value: Any) -> None:
        import datetime

        if not isinstance(value, datetime.date) or isinstance(
            value, datetime.datetime
        ):
            raise CatalogError(f"DATE column cannot store {value!r}")

    def to_bytes(self, value: Any) -> bytes:
        self.validate(value)
        return self.ordinal(value).to_bytes(4, "big")

    def from_bytes(self, data: bytes) -> Any:
        if len(data) != 4:
            raise CatalogError(f"DATE payload must be 4 bytes, got {len(data)}")
        return self.from_ordinal(int.from_bytes(data, "big"))

    def ordinal(self, value: Any) -> int:
        self.validate(value)
        return value.toordinal() - 1  # day numbers start at 1

    def from_ordinal(self, ordinal: int) -> Any:
        import datetime

        return datetime.date.fromordinal(ordinal + 1)


def parse_type(sql_name: str) -> ValueType:
    """Parse a SQL type spelling into a :class:`ValueType`."""
    text = sql_name.strip().upper()
    if text in ("INTEGER", "INT"):
        return IntegerType()
    if text == "DATE":
        return DateType()
    if text.startswith("VARCHAR(") and text.endswith(")"):
        inner = text[len("VARCHAR(") : -1]
        try:
            return VarcharType(int(inner))
        except ValueError:
            raise CatalogError(f"bad VARCHAR length {inner!r}") from None
    raise CatalogError(f"unsupported column type {sql_name!r}")


@dataclass(frozen=True)
class ColumnSpec:
    """Schema entry for one column: name, domain, and protection.

    ``protection`` is ``None`` for a plaintext dictionary or an
    :class:`~repro.encdict.options.EncryptedDictionaryKind`; ``bsmax`` is the
    frequency-smoothing bucket bound (ignored by non-smoothing kinds).
    """

    name: str
    value_type: ValueType
    protection: Any = None  # EncryptedDictionaryKind | None (avoids a cycle)
    bsmax: int = 10
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise CatalogError(f"invalid column name {self.name!r}")
        if self.bsmax < 1:
            raise CatalogError("bsmax must be >= 1")

    @property
    def is_encrypted(self) -> bool:
        return self.protection is not None

    def adopt_protection(self, kind: Any, key_epoch: int) -> None:
        """Rebind this spec to a rotated protection (``repro.migrate``).

        The one sanctioned in-place mutation of a (frozen) spec: the
        finalize step of an online rotation swaps the ED kind and storage
        key epoch on the *shared* spec object, so table schema and column
        agree atomically. Everything else must treat specs as immutable.
        """
        object.__setattr__(self, "protection", kind)
        self.metadata["key_epoch"] = key_epoch

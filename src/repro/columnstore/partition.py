"""Fixed-row-count column partitions (MonetDB-style fragments).

Every stored column is a sequence of partitions; each partition carries its
own dictionary + attribute vector (plaintext or encrypted). RecordIDs stay
global — main-store rows first in partition order, delta rows after — and
map to ``(partition, offset)`` through the cumulative partition lengths.
Partitioning is a *layout* property: it never changes which RecordIDs a
query returns, only how the work is split (per-partition dictionary
searches fan out in the enclave, per-partition attribute-vector scans fan
out on the shared pool, and the merge rebuilds only dirty partitions).

All columns of one table share identical per-partition lengths so rows stay
aligned across columns; :func:`partition_lengths` is the canonical split of
a row count into fixed-size chunks (every partition holds ``partition_rows``
rows except a shorter final one).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

#: Default rows per partition. Large enough that small interactive tables
#: stay single-partition (preserving the seed layout byte-for-byte), small
#: enough that multi-million-row columns split into a useful fan-out.
DEFAULT_PARTITION_ROWS = 1 << 17

#: Synthetic partition id of the append-only ED9 delta store (never a main
#: partition id, which are non-negative).
DELTA_PARTITION_ID = -1


def partition_lengths(row_count: int, partition_rows: int) -> list[int]:
    """Split ``row_count`` rows into fixed-size partition lengths."""
    if row_count < 0:
        raise ValueError("row_count must be non-negative")
    if partition_rows <= 0:
        raise ValueError("partition_rows must be positive")
    lengths = []
    remaining = row_count
    while remaining > 0:
        take = min(partition_rows, remaining)
        lengths.append(take)
        remaining -= take
    return lengths


def slice_rows(values: Sequence[Any], lengths: Sequence[int]) -> list[list[Any]]:
    """Cut a row-ordered value sequence into per-partition lists."""
    if sum(lengths) != len(values):
        raise ValueError(
            f"partition lengths sum to {sum(lengths)}, have {len(values)} rows"
        )
    parts: list[list[Any]] = []
    start = 0
    for length in lengths:
        parts.append(list(values[start : start + length]))
        start += length
    return parts


def partition_starts(lengths: Sequence[int]) -> list[int]:
    """Global RecordID of the first row of each partition."""
    starts: list[int] = []
    total = 0
    for length in lengths:
        starts.append(total)
        total += length
    return starts


class PartitionMap:
    """Global-RecordID ↔ ``(partition, offset)`` mapping over a layout."""

    def __init__(self, lengths: Sequence[int]) -> None:
        self.lengths = list(lengths)
        self.starts = partition_starts(self.lengths)
        self.total_rows = sum(self.lengths)

    def locate(self, record_id: int) -> tuple[int, int]:
        """``(partition index, offset within partition)`` of a main rid."""
        if not 0 <= record_id < self.total_rows:
            raise IndexError(f"RecordID {record_id} outside main store")
        index = int(np.searchsorted(self.starts, record_id, side="right")) - 1
        return index, record_id - self.starts[index]

    def dirty_partitions(self, validity: np.ndarray) -> list[int]:
        """Partitions containing at least one cleared validity bit."""
        dirty = []
        for index, (start, length) in enumerate(zip(self.starts, self.lengths)):
            if not bool(validity[start : start + length].all()):
                dirty.append(index)
        return dirty

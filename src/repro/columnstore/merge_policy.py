"""Delta-merge policies (paper §4.3, citing Hübner et al. [48]).

"The delta store should be kept orders of magnitude smaller than the main
store to efficiently handle read queries. This is done by periodically
merging the data of the delta store into the main store." A merge is
expensive (the enclave re-encrypts every value), so *when* to merge is a
cost tradeoff — Hübner et al. describe several strategies. This module
implements the two standard ones plus a composite:

- :class:`RatioMergePolicy` — merge when the delta exceeds a fraction of
  the main store (keeps reads fast, amortizes merge cost over growth);
- :class:`AbsoluteMergePolicy` — merge when the delta exceeds a fixed row
  count (bounds the worst-case linear ED9 delta scan);
- :class:`CompositeMergePolicy` — merge when any sub-policy fires.

``EncDBDBServer.enable_auto_merge`` installs a policy; the executor then
checks it after every insert and delete.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.columnstore.column import EncryptedStoredColumn, PlainStoredColumn
from repro.columnstore.table import Table


def delta_row_count(table: Table) -> int:
    """Rows currently in the delta stores (identical across columns)."""
    for name in table.column_names:
        column = table.columns[name]
        if isinstance(column, PlainStoredColumn):
            return len(column.delta_values)
        if isinstance(column, EncryptedStoredColumn):
            return len(column.delta_blobs)
    return 0


def main_row_count(table: Table) -> int:
    for name in table.column_names:
        return table.columns[name].main_length
    return 0


def invalid_row_count(table: Table) -> int:
    return table.row_count - table.live_row_count


class MergePolicy(ABC):
    """Decides whether a table's delta store should be merged now."""

    @abstractmethod
    def should_merge(self, table: Table) -> bool:
        """True when the table has accumulated enough delta/garbage."""


class RatioMergePolicy(MergePolicy):
    """Merge when delta + deleted rows exceed ``ratio`` of the main store.

    A small minimum keeps tiny tables from merging on every insert.
    """

    def __init__(self, ratio: float = 0.1, minimum_rows: int = 64) -> None:
        if ratio <= 0:
            raise ValueError("ratio must be positive")
        self.ratio = ratio
        self.minimum_rows = minimum_rows

    def should_merge(self, table: Table) -> bool:
        pending = delta_row_count(table) + invalid_row_count(table)
        if pending < self.minimum_rows:
            return False
        main_rows = max(1, main_row_count(table))
        return pending / main_rows >= self.ratio


class AbsoluteMergePolicy(MergePolicy):
    """Merge when the delta store alone exceeds ``max_delta_rows``.

    Bounds the linear ED9 delta scan every encrypted read pays (§4.3:
    "periodic merges mitigate" ED9's low performance).
    """

    def __init__(self, max_delta_rows: int = 10_000) -> None:
        if max_delta_rows < 1:
            raise ValueError("max_delta_rows must be >= 1")
        self.max_delta_rows = max_delta_rows

    def should_merge(self, table: Table) -> bool:
        return delta_row_count(table) >= self.max_delta_rows


class CompositeMergePolicy(MergePolicy):
    """Merge when any of the sub-policies says so."""

    def __init__(self, *policies: MergePolicy) -> None:
        if not policies:
            raise ValueError("at least one sub-policy required")
        self.policies = policies

    def should_merge(self, table: Table) -> bool:
        return any(policy.should_merge(table) for policy in self.policies)

"""A faithful model of MonetDB's string-dictionary columns (paper §5, §6.3).

MonetDB stores string columns as an insertion-ordered dictionary addressed by
byte offsets: the attribute vector holds offsets into the string heap, the
dictionary deduplicates values only while it is small (below 64 kB, via a
hash table with collision lists), and afterwards appends duplicates. Because
the heap is neither sorted nor duplicate-free, a range select cannot binary
search — it scans the attribute vector and performs **one string comparison
per row**, which is exactly why the paper's Figure 8 shows MonetDB losing to
EncDBDB's logarithmic dictionary search plus integer scan.

This model reproduces that algorithmic profile. The per-row comparisons are
vectorized with numpy's fixed-width Unicode kernels — the honest Python
analogue of MonetDB's tight C scan loop; the *linear-in-rows string
comparison* behaviour the evaluation depends on is preserved.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: MonetDB deduplicates string dictionaries only below this heap size.
DEDUP_THRESHOLD_BYTES = 64 * 1024

#: MonetDB's offset width for small string heaps.
OFFSET_BYTES = 4


class MonetDBStringColumn:
    """Insertion-ordered, threshold-deduplicated string column."""

    def __init__(self, values: Sequence[str]) -> None:
        self._heap: list[str] = []
        self._heap_bytes = 0
        self._dedup_index: dict[str, int] | None = {}
        offsets = np.empty(len(values), dtype=np.int64)
        for row, value in enumerate(values):
            offsets[row] = self._intern(value)
        self.attribute_vector = offsets
        # Materialized per-row view used by the scan (MonetDB reads the heap
        # through the offsets; numpy's fixed-width array plays the heap).
        heap_array = np.asarray(self._heap, dtype="U")
        self._row_values = heap_array[self.attribute_vector]

    def _intern(self, value: str) -> int:
        if self._dedup_index is not None:
            existing = self._dedup_index.get(value)
            if existing is not None:
                return existing
        index = len(self._heap)
        self._heap.append(value)
        self._heap_bytes += len(value.encode("utf-8"))
        if self._dedup_index is not None:
            self._dedup_index[value] = index
            if self._heap_bytes > DEDUP_THRESHOLD_BYTES:
                # Past the threshold MonetDB stops consulting the collision
                # lists: later values are appended even if duplicated.
                self._dedup_index = None
        return index

    def __len__(self) -> int:
        return len(self.attribute_vector)

    @property
    def dictionary_entries(self) -> int:
        return len(self._heap)

    @property
    def deduplicating(self) -> bool:
        return self._dedup_index is not None

    def range_search(self, low: str, high: str) -> np.ndarray:
        """RecordIDs with ``low <= value <= high`` via a linear string scan."""
        mask = (self._row_values >= low) & (self._row_values <= high)
        return np.nonzero(mask)[0].astype(np.int64)

    def string_comparisons_per_query(self) -> int:
        """The per-query comparison count of this engine: 2 per row."""
        return 2 * len(self)

    def storage_bytes(self) -> int:
        """Heap bytes plus one fixed-width offset per row."""
        return self._heap_bytes + OFFSET_BYTES * len(self)

"""Stored columns: main store + write-optimized delta store (paper §4.3).

Each column of a table is split into a read-optimized *main store* (any
dictionary kind) and an append-only *delta store*. For encrypted columns the
delta store is always ED9 — one probabilistically encrypted dictionary entry
per inserted value, searched with the linear ``EnclDictSearch 9`` — so
neither order nor frequency leaks on insertion. RecordIDs are global: main
rows first, delta rows after; deletions flip a validity bit at table level
and rows are physically dropped at the periodic merge.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.columnstore.dictionary import DictionaryEncodedColumn
from repro.columnstore.types import ColumnSpec
from repro.encdict.attrvect import attr_vect_search
from repro.encdict.builder import BuildResult
from repro.encdict.dictionary import EncryptedDictionary
from repro.encdict.options import ED9
from repro.encdict.search import OrdinalRange, SearchResult
from repro.exceptions import CatalogError, QueryError
from repro.sgx.enclave import EnclaveHost


class PlainStoredColumn:
    """An unprotected column: plaintext dictionary encoding + delta list."""

    def __init__(self, spec: ColumnSpec, values: Sequence[Any] = ()) -> None:
        if spec.is_encrypted:
            raise CatalogError(f"column {spec.name} is declared encrypted")
        self.spec = spec
        for value in values:
            spec.value_type.validate(value)
        self.main = (
            DictionaryEncodedColumn.from_values(list(values))
            if len(values)
            else DictionaryEncodedColumn([], np.empty(0, dtype=np.int64))
        )
        self.delta_values: list[Any] = []

    def __len__(self) -> int:
        return len(self.main) + len(self.delta_values)

    @property
    def main_length(self) -> int:
        return len(self.main)

    def append(self, value: Any) -> int:
        """Insert into the delta store; returns the new global RecordID."""
        self.spec.value_type.validate(value)
        self.delta_values.append(value)
        return len(self) - 1

    def search_range(self, low: Any, high: Any) -> np.ndarray:
        """Global RecordIDs with ``low <= value <= high`` (both stores)."""
        return self.search_filter(low, True, high, True)

    def search_filter(
        self,
        low: Any | None,
        low_inclusive: bool,
        high: Any | None,
        high_inclusive: bool,
    ) -> np.ndarray:
        """Range search with optional open ends and exclusive bounds."""

        def matches(value: Any) -> bool:
            if low is not None:
                if low_inclusive and value < low:
                    return False
                if not low_inclusive and value <= low:
                    return False
            if high is not None:
                if high_inclusive and value > high:
                    return False
                if not high_inclusive and value >= high:
                    return False
            return True

        import bisect

        dictionary = self.main.dictionary
        if low is None:
            vid_min = 0
        elif low_inclusive:
            vid_min = bisect.bisect_left(dictionary, low)
        else:
            vid_min = bisect.bisect_right(dictionary, low)
        if high is None:
            vid_max = len(dictionary) - 1
        elif high_inclusive:
            vid_max = bisect.bisect_right(dictionary, high) - 1
        else:
            vid_max = bisect.bisect_left(dictionary, high) - 1
        main_rids = self.main.attribute_vector_search(vid_min, vid_max)
        delta_rids = [
            self.main_length + i
            for i, value in enumerate(self.delta_values)
            if matches(value)
        ]
        return np.concatenate(
            [main_rids, np.asarray(delta_rids, dtype=np.int64)]
        )

    def value_at(self, record_id: int) -> Any:
        if record_id < self.main_length:
            return self.main.value_at(record_id)
        return self.delta_values[record_id - self.main_length]

    def rebuild(self, values: Sequence[Any]) -> None:
        """Merge: rebuild the main store from the surviving values."""
        self.main = DictionaryEncodedColumn.from_values(list(values))
        self.delta_values = []

    def search_prefix(self, prefix: str) -> np.ndarray:
        """Global RecordIDs whose value starts with ``prefix``.

        Prefix matches are contiguous in the sorted dictionary, so the scan
        starts at ``bisect_left(prefix)`` and stops at the first
        non-matching entry.
        """
        import bisect

        dictionary = self.main.dictionary
        start = bisect.bisect_left(dictionary, prefix)
        end = start
        while end < len(dictionary) and str(dictionary[end]).startswith(prefix):
            end += 1
        main_rids = self.main.attribute_vector_search(start, end - 1)
        delta_rids = [
            self.main_length + i
            for i, value in enumerate(self.delta_values)
            if str(value).startswith(prefix)
        ]
        return np.concatenate(
            [main_rids, np.asarray(delta_rids, dtype=np.int64)]
        )

    def join_keys(self) -> list[Any]:
        """Per-row join keys: for a plaintext column, the values themselves."""
        return [self.value_at(record_id) for record_id in range(len(self))]


class EncryptedStoredColumn:
    """An encrypted column: main-store encrypted dictionary + ED9 delta.

    The server holds only ciphertext; searches go through the enclave host
    and value reconstruction returns PAE blobs for the proxy to decrypt.
    """

    def __init__(self, spec: ColumnSpec, build: BuildResult | None) -> None:
        if not spec.is_encrypted:
            raise CatalogError(f"column {spec.name} is not declared encrypted")
        self.spec = spec
        self.main_build = build
        self.delta_blobs: list[bytes] = []
        self._table_name = build.dictionary.table_name if build else ""

    def __len__(self) -> int:
        main = len(self.main_build.attribute_vector) if self.main_build else 0
        return main + len(self.delta_blobs)

    @property
    def main_length(self) -> int:
        return len(self.main_build.attribute_vector) if self.main_build else 0

    def bind(self, table_name: str) -> None:
        self._table_name = table_name

    def append_transit_blob(self, transit_blob: bytes, host: EnclaveHost) -> int:
        """Insert one proxy-encrypted value: re-encrypted in the enclave,
        appended to the ED9 delta store (paper §4.3)."""
        stored = host.ecall(
            "reencrypt_for_delta", self._table_name, self.spec.name, transit_blob
        )
        self.delta_blobs.append(stored)
        return len(self) - 1

    def _delta_dictionary(self) -> EncryptedDictionary:
        """The delta store viewed as an ED9 encrypted dictionary."""
        return EncryptedDictionary.from_blobs(
            self.delta_blobs,
            kind=ED9,
            value_type=self.spec.value_type,
            table_name=self._table_name,
            column_name=self.spec.name,
        )

    def search_requests(
        self, tau: tuple[bytes, bytes]
    ) -> list[tuple[str, EncryptedDictionary, tuple[bytes, bytes]]]:
        """The labeled ``(store, dictionary, τ)`` searches this column needs.

        One entry per non-empty store ("main" and/or "delta"). The executor
        collects these across all filters of a query plan so the whole plan
        can go through a single ``dict_search_batch`` ecall; the labels route
        each :class:`SearchResult` back through
        :meth:`record_ids_from_results`.
        """
        requests: list[tuple[str, EncryptedDictionary, tuple[bytes, bytes]]] = []
        if self.main_build is not None and self.main_length:
            requests.append(("main", self.main_build.dictionary, tau))
        if self.delta_blobs:
            requests.append(("delta", self._delta_dictionary(), tau))
        return requests

    def record_ids_from_results(
        self,
        labeled_results: Sequence[tuple[str, SearchResult]],
        *,
        cost_model=None,
        chunk_rows: int | None = None,
        max_workers: int | None = None,
        scan_cache: dict | None = None,
    ) -> np.ndarray:
        """Turn the enclave's per-store :class:`SearchResult`\\ s into global
        RecordIDs (the untrusted ``AttrVectSearch`` half of a query).

        ``scan_cache`` (per-query, executor-owned) memoizes the attribute-
        vector scan by ``(column, store, result shape)`` so identical filters
        on one column within a query scan the vector once.
        """
        parts = []
        for label, result in labeled_results:
            if label == "main":
                signature = None
                if scan_cache is not None:
                    signature = (id(self), "main", result.ranges, result.vids)
                    cached = scan_cache.get(signature)
                    if cached is not None:
                        parts.append(cached)
                        continue
                rids = attr_vect_search(
                    self.main_build.attribute_vector,
                    result,
                    cost_model=cost_model,
                    chunk_rows=chunk_rows,
                    max_workers=max_workers,
                )
                if signature is not None:
                    scan_cache[signature] = rids
                parts.append(rids)
            elif label == "delta":
                # The ED9 delta attribute vector is the identity: entry i of
                # the delta dictionary belongs to delta row i.
                delta_rids = np.asarray(result.vids, dtype=np.int64)
                parts.append(delta_rids + self.main_length)
            else:
                raise QueryError(f"unknown search-store label {label!r}")
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def search_tau(
        self,
        tau: tuple[bytes, bytes],
        host: EnclaveHost,
        *,
        chunk_rows: int | None = None,
        max_workers: int | None = None,
        scan_cache: dict | None = None,
    ) -> np.ndarray:
        """Global RecordIDs matching the encrypted range ``τ``.

        The unbatched path: one ``dict_search`` ecall per non-empty store.
        Batched plans instead call :meth:`search_requests` +
        :meth:`record_ids_from_results` around one ``dict_search_batch``.
        """
        labeled = [
            (label, host.ecall("dict_search", dictionary, request_tau))
            for label, dictionary, request_tau in self.search_requests(tau)
        ]
        return self.record_ids_from_results(
            labeled,
            cost_model=host.cost_model,
            chunk_rows=chunk_rows,
            max_workers=max_workers,
            scan_cache=scan_cache,
        )

    def blob_at(self, record_id: int) -> bytes:
        """Tuple reconstruction: the PAE blob of one global RecordID."""
        if record_id < self.main_length:
            build = self.main_build
            vid = int(build.attribute_vector[record_id])
            return build.dictionary.entry(vid)
        delta_index = record_id - self.main_length
        if delta_index >= len(self.delta_blobs):
            raise QueryError(f"RecordID {record_id} out of range")
        return self.delta_blobs[delta_index]

    def all_blobs_in_row_order(self, valid: np.ndarray) -> list[bytes]:
        """Surviving row blobs, for the enclave's merge rebuild."""
        return [
            self.blob_at(record_id)
            for record_id in range(len(self))
            if valid[record_id]
        ]

    def replace_main(self, build: BuildResult) -> None:
        """Install the enclave's merge output and clear the delta store."""
        self.main_build = build
        self.delta_blobs = []

    def join_tokens(self, host: EnclaveHost, salt: bytes) -> list[bytes]:
        """Per-row join tokens issued by the enclave (one per global rid)."""
        tokens: list[bytes] = []
        if self.main_build is not None and self.main_length:
            entry_tokens = host.ecall(
                "join_tokens", self.main_build.dictionary, salt
            )
            tokens.extend(
                entry_tokens[int(vid)] for vid in self.main_build.attribute_vector
            )
        if self.delta_blobs:
            tokens.extend(host.ecall("join_tokens", self._delta_dictionary(), salt))
        return tokens

    def storage_bytes(self) -> int:
        """Table 6 accounting: head + tail + packed AV (+ delta blobs)."""
        total = sum(len(blob) for blob in self.delta_blobs)
        total += 8 * len(self.delta_blobs)  # delta head offsets
        if self.main_build is not None:
            dictionary = self.main_build.dictionary
            total += dictionary.storage_bytes()
            total += dictionary.attribute_vector_bytes(self.main_length)
        return total

"""Stored columns: partitioned main store + write-optimized delta store.

Each column of a table is split into a read-optimized *main store* (any
dictionary kind) and an append-only *delta store*. The main store is a
sequence of fixed-row-count **partitions** (``columnstore/partition.py``),
each with its own dictionary + attribute vector: partition-granular layout
bounds the enclave working set per search, lets attribute-vector scans fan
out across partitions on the shared pool, and lets the merge rebuild only
partitions whose rows actually changed. For encrypted columns the delta
store is always ED9 — one probabilistically encrypted dictionary entry per
inserted value, searched with the linear ``EnclDictSearch 9`` — so neither
order nor frequency leaks on insertion. RecordIDs are global: main rows
first (partitions in order), delta rows after; deletions flip a validity
bit at table level and rows are physically dropped at the periodic merge.

Partitioning never changes query results: per-partition search results keep
the same fixed padded shape as a single-column search (§4.1), and the union
of per-partition RecordID sets equals the unpartitioned answer.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.columnstore.dictionary import DictionaryEncodedColumn
from repro.columnstore.partition import (
    DEFAULT_PARTITION_ROWS,
    DELTA_PARTITION_ID,
    partition_lengths,
    partition_starts,
    slice_rows,
)
from repro.columnstore.types import ColumnSpec
from repro.encdict.attrvect import attr_vect_search, attr_vect_search_many
from repro.encdict.builder import BuildResult
from repro.encdict.dictionary import EncryptedDictionary
from repro.encdict.options import ED9
from repro.encdict.search import SearchResult
from repro.exceptions import CatalogError, QueryError
from repro.sgx.enclave import EnclaveHost


class PlainStoredColumn:
    """An unprotected column: plaintext dictionary partitions + delta list."""

    def __init__(
        self,
        spec: ColumnSpec,
        values: Sequence[Any] = (),
        *,
        partition_rows: int | None = None,
    ) -> None:
        if spec.is_encrypted:
            raise CatalogError(f"column {spec.name} is declared encrypted")
        self.spec = spec
        for value in values:
            spec.value_type.validate(value)
        self.partition_rows = partition_rows
        self.partitions: list[DictionaryEncodedColumn] = []
        if len(values):
            self.set_partition_values(
                slice_rows(
                    list(values),
                    partition_lengths(
                        len(values), partition_rows or DEFAULT_PARTITION_ROWS
                    ),
                )
            )
        self.delta_values: list[Any] = []

    # -- partition layout ------------------------------------------------
    @property
    def partition_lengths(self) -> list[int]:
        return [len(part) for part in self.partitions]

    @property
    def partition_starts(self) -> list[int]:
        return partition_starts(self.partition_lengths)

    def set_partition_values(self, parts: Sequence[Sequence[Any]]) -> None:
        """Install the main store as explicit per-partition value lists."""
        self.partitions = [
            DictionaryEncodedColumn.from_values(list(part)) for part in parts
        ]

    def append_partition_values(self, values: Sequence[Any]) -> None:
        """Append one more main-store partition (streamed bulk load)."""
        self.partitions.append(DictionaryEncodedColumn.from_values(list(values)))

    @property
    def main(self) -> DictionaryEncodedColumn:
        """Single-partition view, kept for pre-partitioning callers."""
        if not self.partitions:
            return DictionaryEncodedColumn([], np.empty(0, dtype=np.int64))
        if len(self.partitions) == 1:
            return self.partitions[0]
        raise CatalogError(
            f"column {self.spec.name} has {len(self.partitions)} partitions; "
            "use .partitions"
        )

    @main.setter
    def main(self, column: DictionaryEncodedColumn) -> None:
        self.partitions = [column] if len(column) else []

    def __len__(self) -> int:
        return self.main_length + len(self.delta_values)

    @property
    def main_length(self) -> int:
        return sum(len(part) for part in self.partitions)

    def append(self, value: Any) -> int:
        """Insert into the delta store; returns the new global RecordID."""
        self.spec.value_type.validate(value)
        self.delta_values.append(value)
        return len(self) - 1

    def search_range(self, low: Any, high: Any) -> np.ndarray:
        """Global RecordIDs with ``low <= value <= high`` (both stores)."""
        return self.search_filter(low, True, high, True)

    def search_filter(
        self,
        low: Any | None,
        low_inclusive: bool,
        high: Any | None,
        high_inclusive: bool,
    ) -> np.ndarray:
        """Range search with optional open ends and exclusive bounds."""

        def matches(value: Any) -> bool:
            if low is not None:
                if low_inclusive and value < low:
                    return False
                if not low_inclusive and value <= low:
                    return False
            if high is not None:
                if high_inclusive and value > high:
                    return False
                if not high_inclusive and value >= high:
                    return False
            return True

        parts = []
        for part, start in zip(self.partitions, self.partition_starts):
            dictionary = part.dictionary
            if low is None:
                vid_min = 0
            elif low_inclusive:
                vid_min = bisect.bisect_left(dictionary, low)
            else:
                vid_min = bisect.bisect_right(dictionary, low)
            if high is None:
                vid_max = len(dictionary) - 1
            elif high_inclusive:
                vid_max = bisect.bisect_right(dictionary, high) - 1
            else:
                vid_max = bisect.bisect_left(dictionary, high) - 1
            parts.append(part.attribute_vector_search(vid_min, vid_max) + start)
        delta_rids = [
            self.main_length + i
            for i, value in enumerate(self.delta_values)
            if matches(value)
        ]
        parts.append(np.asarray(delta_rids, dtype=np.int64))
        return np.concatenate(parts)

    def value_at(self, record_id: int) -> Any:
        if record_id >= self.main_length:
            return self.delta_values[record_id - self.main_length]
        for part, start in zip(self.partitions, self.partition_starts):
            if record_id < start + len(part):
                return part.value_at(record_id - start)
        raise IndexError(f"RecordID {record_id} out of range")

    def rebuild(self, values: Sequence[Any]) -> None:
        """Merge: rebuild the main store from the surviving values."""
        values = list(values)
        if values:
            self.set_partition_values(
                slice_rows(
                    values,
                    partition_lengths(
                        len(values), self.partition_rows or DEFAULT_PARTITION_ROWS
                    ),
                )
            )
        else:
            self.partitions = []
        self.delta_values = []

    def search_prefix(self, prefix: str) -> np.ndarray:
        """Global RecordIDs whose value starts with ``prefix``.

        Prefix matches are contiguous in each partition's sorted dictionary,
        so every partition scan starts at ``bisect_left(prefix)`` and stops
        at the first non-matching entry.
        """
        parts = []
        for part, part_start in zip(self.partitions, self.partition_starts):
            dictionary = part.dictionary
            start = bisect.bisect_left(dictionary, prefix)
            end = start
            while end < len(dictionary) and str(dictionary[end]).startswith(prefix):
                end += 1
            parts.append(part.attribute_vector_search(start, end - 1) + part_start)
        delta_rids = [
            self.main_length + i
            for i, value in enumerate(self.delta_values)
            if str(value).startswith(prefix)
        ]
        parts.append(np.asarray(delta_rids, dtype=np.int64))
        return np.concatenate(parts)

    def join_keys(self) -> list[Any]:
        """Per-row join keys: for a plaintext column, the values themselves."""
        keys: list[Any] = []
        for part in self.partitions:
            keys.extend(part.values())
        keys.extend(self.delta_values)
        return keys


@dataclass
class ShadowPartitions:
    """Dual-version partition slots of one in-flight online rotation.

    While a column rotates (``repro.migrate``), every main partition owns a
    second slot holding the shadow build produced by the ``rotate_partition``
    ecall. A *swap* promotes the shadow build into the serving slot — a
    single list-item store, atomic under the interpreter — and keeps the
    original so the step can be rolled back. Key rotations additionally save
    the pre-flip delta store and epoch so the one-shot finalize flip is
    reversible too.
    """

    kind_name: str
    key_epoch: int
    builds: list[BuildResult | None]
    originals: list[BuildResult | None]
    swapped: list[bool]
    flipped: bool = False
    old_delta: list[bytes] = field(default_factory=list)
    old_key_epoch: int = 0


class EncryptedStoredColumn:
    """An encrypted column: encrypted-dictionary partitions + ED9 delta.

    The server holds only ciphertext; searches go through the enclave host
    and value reconstruction returns PAE blobs for the proxy to decrypt.
    Partition ids are server-side bookkeeping, allocated when builds are
    installed (never shipped by the data owner), and stay stable across
    merges so the enclave's per-partition cache epochs survive rebuilds of
    *other* partitions.
    """

    def __init__(
        self,
        spec: ColumnSpec,
        build: BuildResult | Sequence[BuildResult] | None,
    ) -> None:
        if not spec.is_encrypted:
            raise CatalogError(f"column {spec.name} is not declared encrypted")
        self.spec = spec
        self.partition_builds: list[BuildResult] = []
        self.partition_ids: list[int] = []
        self._next_partition_id = 0
        self._table_name = ""
        if build is not None:
            builds = list(build) if isinstance(build, (list, tuple)) else [build]
            self.set_partitions(builds)
            if builds:
                self._table_name = builds[0].dictionary.table_name
        self.delta_blobs: list[bytes] = []
        # Online rotation state (repro.migrate). The serving structures
        # (partition_builds item stores, the epoch flip) are mutated only
        # under the shadow lock so a migration step is atomic with respect
        # to other steps; readers never take the lock — they work off
        # per-query snapshots instead (search_requests embeds the build it
        # searched in each request label).
        self._shadow_lock = threading.RLock()
        self._shadow: ShadowPartitions | None = None  # guarded-by: self._shadow_lock
        self.key_epoch: int = 0  # guarded-by: self._shadow_lock

    # -- partition layout ------------------------------------------------
    @property
    def partition_lengths(self) -> list[int]:
        return [len(build.attribute_vector) for build in self.partition_builds]

    @property
    def partition_starts(self) -> list[int]:
        return partition_starts(self.partition_lengths)

    def allocate_partition_id(self) -> int:
        """A fresh, never-reused partition id for this column."""
        allocated = self._next_partition_id
        self._next_partition_id += 1
        return allocated

    def set_partitions(
        self, builds: Sequence[BuildResult], ids: Sequence[int] | None = None
    ) -> None:
        """Install the main store as an explicit partition sequence.

        ``ids`` keeps existing partition ids across a merge; without it
        fresh ids are allocated. Each build's dictionary is stamped with its
        partition id so the enclave keys cache epochs per partition.
        """
        builds = list(builds)
        if ids is None:
            ids = [self.allocate_partition_id() for _ in builds]
        else:
            ids = [int(partition_id) for partition_id in ids]
            if len(ids) != len(builds):
                raise CatalogError("partition ids do not match builds")
            if ids:
                self._next_partition_id = max(
                    self._next_partition_id, max(ids) + 1
                )
        for build, partition_id in zip(builds, ids):
            build.dictionary.partition_id = partition_id
        self.partition_builds = builds
        self.partition_ids = list(ids)

    def append_partition(self, build: BuildResult) -> int:
        """Append one more main-store partition (streamed bulk load).

        Returns the freshly allocated partition id; the build's dictionary
        is stamped with it just as :meth:`set_partitions` would.
        """
        partition_id = self.allocate_partition_id()
        build.dictionary.partition_id = partition_id
        self.partition_builds.append(build)
        self.partition_ids.append(partition_id)
        return partition_id

    @property
    def main_build(self) -> BuildResult | None:
        """Single-partition view, kept for pre-partitioning callers."""
        if not self.partition_builds:
            return None
        if len(self.partition_builds) == 1:
            return self.partition_builds[0]
        raise CatalogError(
            f"column {self.spec.name} has {len(self.partition_builds)} "
            "partitions; use .partition_builds"
        )

    @main_build.setter
    def main_build(self, build: BuildResult | None) -> None:
        if build is None:
            self.partition_builds = []
            self.partition_ids = []
        else:
            self.set_partitions([build])

    def __len__(self) -> int:
        return self.main_length + len(self.delta_blobs)

    @property
    def main_length(self) -> int:
        return sum(len(build.attribute_vector) for build in self.partition_builds)

    def bind(self, table_name: str) -> None:
        self._table_name = table_name

    def append_transit_blob(self, transit_blob: bytes, host: EnclaveHost) -> int:
        """Insert one proxy-encrypted value: re-encrypted in the enclave,
        appended to the ED9 delta store (paper §4.3).

        Transit blobs are always epoch 0 (the permanent proxy↔enclave
        encoding); the stored blob is sealed under the column's current
        storage epoch so the delta store stays epoch-uniform with main.
        """
        with self._shadow_lock:
            # Epoch read, re-seal and append are one critical section so an
            # insert can never straddle a key-rotation flip (which re-seals
            # the delta under the same lock).
            stored = host.ecall(
                "reencrypt_for_delta",
                self._table_name,
                self.spec.name,
                transit_blob,
                key_epoch=self.key_epoch,
            )
            self.delta_blobs.append(stored)
            return len(self) - 1

    def _delta_dictionary(self) -> EncryptedDictionary:
        """The delta store viewed as an ED9 encrypted dictionary."""
        with self._shadow_lock:
            # Snapshot blobs and epoch together: a flip replaces both
            # atomically, and a dictionary pairing old blobs with the new
            # epoch (or vice versa) would fail authentication in the enclave.
            blobs = list(self.delta_blobs)
            epoch = self.key_epoch
        return EncryptedDictionary.from_blobs(
            blobs,
            kind=ED9,
            value_type=self.spec.value_type,
            table_name=self._table_name,
            column_name=self.spec.name,
            partition_id=DELTA_PARTITION_ID,
            key_epoch=epoch,
        )

    def search_requests(
        self, tau: tuple[bytes, bytes]
    ) -> list[tuple[Any, EncryptedDictionary, tuple[bytes, bytes]]]:
        """The labeled ``(store, dictionary, τ)`` searches this column needs.

        One entry per non-empty main partition — labeled ``("main", i,
        build)`` — plus one for the delta store (``("delta",)``). The
        executor collects these across all filters of a query plan so the
        whole plan can go through a single ``dict_search_batch`` ecall; the
        labels route each :class:`SearchResult` back through
        :meth:`record_ids_from_results`. Every per-partition search result
        is padded to the same fixed shape as a single-partition search, so
        the fan-out reveals the partition count (a public layout property)
        but nothing beyond §4.1 leakage.

        The build travels inside the label so the attribute-vector scan later
        applies the *same* version of the partition that was searched: during
        an online rotation a swap may promote the shadow build between the
        dictionary search and the scan, and mixing the old dictionary's
        ValueIDs with the new attribute vector would corrupt results.
        """
        requests: list[tuple[Any, EncryptedDictionary, tuple[bytes, bytes]]] = []
        for index, build in enumerate(list(self.partition_builds)):
            if len(build.attribute_vector):
                requests.append((("main", index, build), build.dictionary, tau))
        if self.delta_blobs:
            requests.append((("delta",), self._delta_dictionary(), tau))
        return requests

    def ordinal_segments(
        self, record_ids: np.ndarray
    ) -> list[tuple[EncryptedDictionary, np.ndarray]]:
        """Per-store ``(dictionary, ValueIDs)`` of the given rows (PR 9).

        The ordinal-domain view the aggregation pushdown feeds to the
        ``aggregate_groups`` ecall: for each store holding at least one of
        the (sorted, global) ``record_ids`` — main partitions in order, then
        the delta — the dictionary reference plus the rows' ValueIDs in
        RecordID order. Delta "ValueIDs" are the row positions themselves
        (the ED9 delta dictionary has one entry per row). All columns of a
        table share one partition layout, so calling this on several columns
        with the same ``record_ids`` yields row-aligned segment lists.
        """
        builds, delta_blobs, key_epoch = self.render_view()
        record_ids = np.asarray(record_ids, dtype=np.int64)
        segments: list[tuple[EncryptedDictionary, np.ndarray]] = []
        start = 0
        for build in builds:
            length = len(build.attribute_vector)
            in_store = record_ids[
                (record_ids >= start) & (record_ids < start + length)
            ]
            if len(in_store):
                segments.append(
                    (build.dictionary, build.attribute_vector[in_store - start])
                )
            start += length
        if delta_blobs:
            in_delta = record_ids[record_ids >= start]
            if len(in_delta):
                dictionary = EncryptedDictionary.from_blobs(
                    delta_blobs,
                    kind=ED9,
                    value_type=self.spec.value_type,
                    table_name=self._table_name,
                    column_name=self.spec.name,
                    partition_id=DELTA_PARTITION_ID,
                    key_epoch=key_epoch,
                )
                segments.append((dictionary, in_delta - start))
        return segments

    def record_ids_from_results(
        self,
        labeled_results: Sequence[tuple[Any, SearchResult]],
        *,
        cost_model=None,
        chunk_rows: int | None = None,
        max_workers: int | None = None,
        scan_cache: dict | None = None,
        adaptive: bool | None = None,
    ) -> np.ndarray:
        """Turn the enclave's per-store :class:`SearchResult`\\ s into global
        RecordIDs (the untrusted ``AttrVectSearch`` half of a query).

        Main-partition scans fan out on the shared pool when more than one
        partition is involved and adaptive dispatch judges the fan-out
        worthwhile; partition-local RecordIDs are offset by the partition
        start so the union is the global answer. ``scan_cache`` (per-query,
        executor-owned) memoizes each partition scan by ``(column,
        partition, result shape)`` so identical filters on one column
        within a query scan each attribute vector once.
        """
        parts: list[np.ndarray | None] = []
        starts = self.partition_starts
        pending: list[tuple[int, BuildResult, int, SearchResult, tuple | None]] = []
        for label, result in labeled_results:
            if label == "main":
                label = ("main", 0)
            if isinstance(label, tuple) and label and label[0] == "main":
                index = label[1] if len(label) > 1 else 0
                if not 0 <= index < len(self.partition_builds):
                    raise QueryError(f"unknown main partition {index}")
                # Scan the partition version the label carries (the one whose
                # dictionary produced this result); fall back to the current
                # build for index-only labels from pre-rotation callers.
                build = label[2] if len(label) > 2 else self.partition_builds[index]
                signature = None
                if scan_cache is not None:
                    signature = (
                        id(self),
                        "main",
                        index,
                        id(build.dictionary),
                        result.ranges,
                        result.vids,
                    )
                    cached = scan_cache.get(signature)
                    if cached is not None:
                        parts.append(cached)
                        continue
                parts.append(None)
                pending.append((len(parts) - 1, build, index, result, signature))
            elif label == "delta" or (
                isinstance(label, tuple) and label and label[0] == "delta"
            ):
                # The ED9 delta attribute vector is the identity: entry i of
                # the delta dictionary belongs to delta row i.
                delta_rids = np.asarray(result.vids, dtype=np.int64)
                parts.append(delta_rids + self.main_length)
            else:
                raise QueryError(f"unknown search-store label {label!r}")

        if len(pending) == 1:
            # Single partition: keep the chunked scan of the one vector.
            slot, build, index, result, signature = pending[0]
            rids = attr_vect_search(
                build.attribute_vector,
                result,
                cost_model=cost_model,
                chunk_rows=chunk_rows,
                max_workers=max_workers,
                adaptive=adaptive,
            )
            global_rids = rids + starts[index]
            if signature is not None:
                scan_cache[signature] = global_rids
            parts[slot] = global_rids
        elif pending:
            # Multi-partition fan-out: the partitions are the parallelism
            # units, scanned concurrently on the shared pool.
            rids_list = attr_vect_search_many(
                [
                    (build.attribute_vector, result)
                    for _, build, _, result, _ in pending
                ],
                cost_model=cost_model,
                max_workers=max_workers,
                adaptive=adaptive,
            )
            for (slot, _, index, _, signature), rids in zip(pending, rids_list):
                global_rids = rids + starts[index]
                if signature is not None:
                    scan_cache[signature] = global_rids
                parts[slot] = global_rids

        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def search_tau(
        self,
        tau: tuple[bytes, bytes],
        host: EnclaveHost,
        *,
        chunk_rows: int | None = None,
        max_workers: int | None = None,
        scan_cache: dict | None = None,
        adaptive: bool | None = None,
    ) -> np.ndarray:
        """Global RecordIDs matching the encrypted range ``τ``.

        The unbatched path: one ``dict_search`` ecall per non-empty store
        partition. Batched plans instead call :meth:`search_requests` +
        :meth:`record_ids_from_results` around one ``dict_search_batch``.
        """
        labeled = [
            (label, host.ecall("dict_search", dictionary, request_tau))
            for label, dictionary, request_tau in self.search_requests(tau)
        ]
        return self.record_ids_from_results(
            labeled,
            cost_model=host.cost_model,
            chunk_rows=chunk_rows,
            max_workers=max_workers,
            scan_cache=scan_cache,
            adaptive=adaptive,
        )

    def partition_snapshot(self) -> list[BuildResult]:
        """A consistent point-in-time copy of the serving partition list.

        ``list()`` of a list is atomic under the interpreter even while a
        rotation swap stores into an item, and each :class:`BuildResult` is
        immutable once installed — so one snapshot per query keeps every
        reconstruction on a single version of the column.
        """
        return list(self.partition_builds)

    def render_view(self) -> tuple[list[BuildResult], list[bytes], int]:
        """``(builds, delta_blobs, key_epoch)`` captured in one critical
        section, for result rendering.

        A key-rotation flip replaces partitions, delta and epoch together
        under the shadow lock; taking the same lock here means a rendered
        result is entirely pre-flip or entirely post-flip, and the returned
        epoch is exactly the one every returned blob is sealed under — it is
        stamped on the wire :class:`~repro.sql.result.ResultColumn` so the
        proxy derives the matching decryption key.
        """
        with self._shadow_lock:
            return list(self.partition_builds), list(self.delta_blobs), self.key_epoch

    def blob_at(
        self,
        record_id: int,
        builds: Sequence[BuildResult] | None = None,
        delta_blobs: Sequence[bytes] | None = None,
    ) -> bytes:
        """Tuple reconstruction: the PAE blob of one global RecordID.

        ``builds`` / ``delta_blobs`` pin the lookup to a
        :meth:`render_view` (or :meth:`partition_snapshot`) so a multi-row
        render never mixes partition versions (and thus key epochs) while an
        online rotation swaps partitions underneath it.
        """
        if builds is None:
            builds = self.partition_builds
        if delta_blobs is None:
            delta_blobs = self.delta_blobs
        main_length = sum(len(build.attribute_vector) for build in builds)
        if record_id < main_length:
            start = 0
            for build in builds:
                if record_id < start + len(build.attribute_vector):
                    vid = int(build.attribute_vector[record_id - start])
                    return build.dictionary.entry(vid)
                start += len(build.attribute_vector)
        delta_index = record_id - main_length
        if delta_index >= len(delta_blobs):
            raise QueryError(f"RecordID {record_id} out of range")
        return delta_blobs[delta_index]

    def partition_blobs(
        self, index: int, keep: np.ndarray | None = None
    ) -> list[bytes]:
        """Row-order blobs of one main partition (``keep`` masks survivors)."""
        build = self.partition_builds[index]
        dictionary = build.dictionary
        return [
            dictionary.entry(int(vid))
            for offset, vid in enumerate(build.attribute_vector)
            if keep is None or keep[offset]
        ]

    def all_blobs_in_row_order(self, valid: np.ndarray) -> list[bytes]:
        """Surviving row blobs, for the enclave's merge rebuild."""
        return [
            self.blob_at(record_id)
            for record_id in range(len(self))
            if valid[record_id]
        ]

    def replace_main(self, build: BuildResult) -> None:
        """Install the enclave's merge output and clear the delta store."""
        self.set_partitions([build])
        self.delta_blobs = []

    # -- online rotation (repro.migrate) ---------------------------------
    @property
    def shadow(self) -> ShadowPartitions | None:
        return self._shadow

    def rotation_lock(self) -> threading.RLock:
        """The shadow lock, for callers that must compose several rotation
        operations into one critical section (e.g. the DBMS's flip step:
        read delta → ``rotate_delta`` ecall → :meth:`flip_shadow`)."""
        return self._shadow_lock

    def begin_shadow(self, kind_name: str, key_epoch: int) -> int:
        """Open dual-version slots for an online rotation; returns the
        number of main partitions the backfill must rebuild."""
        with self._shadow_lock:
            if self._shadow is not None:
                raise CatalogError(
                    f"column {self.spec.name} already has a rotation in flight"
                )
            count = len(self.partition_builds)
            self._shadow = ShadowPartitions(
                kind_name=kind_name,
                key_epoch=key_epoch,
                builds=[None] * count,
                originals=[None] * count,
                swapped=[False] * count,
            )
            return count

    def _require_shadow(self) -> ShadowPartitions:
        if self._shadow is None:
            raise CatalogError(
                f"column {self.spec.name} has no rotation in flight"
            )
        return self._shadow

    def install_shadow(self, index: int, build: BuildResult) -> None:
        """Park one partition's rebuilt (shadow) version without serving it."""
        with self._shadow_lock:
            shadow = self._require_shadow()
            current = self.partition_builds[index]
            if len(build.attribute_vector) != len(current.attribute_vector):
                raise CatalogError(
                    f"shadow partition {index} has "
                    f"{len(build.attribute_vector)} rows, expected "
                    f"{len(current.attribute_vector)}"
                )
            shadow.builds[index] = build

    def uninstall_shadow(self, index: int) -> None:
        """Drop one partition's parked shadow build (rotate-step rollback)."""
        with self._shadow_lock:
            shadow = self._require_shadow()
            if shadow.swapped[index]:
                raise CatalogError(
                    f"partition {index} is serving its shadow build; unswap first"
                )
            shadow.builds[index] = None

    def swap_shadow(self, index: int) -> None:
        """Atomically promote one shadow build into the serving slot."""
        with self._shadow_lock:
            shadow = self._require_shadow()
            if shadow.builds[index] is None:
                raise CatalogError(f"partition {index} has no shadow build")
            if shadow.swapped[index]:
                return
            shadow.originals[index] = self.partition_builds[index]
            self.partition_builds[index] = shadow.builds[index]
            shadow.swapped[index] = True

    def unswap_shadow(self, index: int) -> None:
        """Roll one partition back to the version it served before the swap."""
        with self._shadow_lock:
            shadow = self._require_shadow()
            if not shadow.swapped[index]:
                return
            self.partition_builds[index] = shadow.originals[index]
            shadow.originals[index] = None
            shadow.swapped[index] = False

    def flip_shadow(self, new_delta_blobs: list[bytes] | None = None) -> None:
        """Key-rotation finalize: swap every remaining partition, re-seal
        the delta store, and advance the storage epoch in one critical
        section, so no reader can observe a mixed-epoch column.

        The caller (the DBMS) runs this under its session lock with the
        re-sealed delta from the ``rotate_delta`` ecall, making the flip
        atomic against queries and inserts as well.
        """
        with self._shadow_lock:
            shadow = self._require_shadow()
            for index in range(len(shadow.builds)):
                self.swap_shadow(index)
            if new_delta_blobs is not None:
                if len(new_delta_blobs) != len(self.delta_blobs):
                    raise CatalogError(
                        "re-sealed delta store does not match the live delta"
                    )
                shadow.old_delta = self.delta_blobs
                self.delta_blobs = new_delta_blobs
            shadow.old_key_epoch = self.key_epoch
            self.key_epoch = shadow.key_epoch
            shadow.flipped = True

    def unflip_shadow(self, delta_blobs: list[bytes] | None = None) -> None:
        """Undo :meth:`flip_shadow`: restore every original partition and
        the previous storage epoch.

        ``delta_blobs`` replaces the delta store; the DBMS passes the
        pre-flip delta plus any post-flip inserts re-sealed back to the old
        epoch (``rotate_delta``), again under its session lock.
        """
        with self._shadow_lock:
            shadow = self._require_shadow()
            if not shadow.flipped:
                return
            for index in range(len(shadow.builds)):
                self.unswap_shadow(index)
            if delta_blobs is not None:
                self.delta_blobs = delta_blobs
            self.key_epoch = shadow.old_key_epoch
            shadow.flipped = False

    def clear_shadow(self) -> None:
        """Drop the rotation state, keeping whatever versions now serve."""
        with self._shadow_lock:
            self._shadow = None

    def set_key_epoch(self, key_epoch: int) -> None:
        """Adopt a storage epoch outside a flip (kind-only rotations keep
        the epoch; restores after a crash re-pin it from sealed metadata)."""
        with self._shadow_lock:
            self.key_epoch = int(key_epoch)

    def partition_versions(self) -> list[str]:
        """Which version each main partition currently serves: ``old`` /
        ``shadow-ready`` (rebuilt, not yet promoted) / ``new``."""
        with self._shadow_lock:
            if self._shadow is None:
                return ["current"] * len(self.partition_builds)
            versions = []
            for index in range(len(self._shadow.builds)):
                if self._shadow.swapped[index]:
                    versions.append("new")
                elif self._shadow.builds[index] is not None:
                    versions.append("shadow-ready")
                else:
                    versions.append("old")
            return versions

    def join_tokens(self, host: EnclaveHost, salt: bytes) -> list[bytes]:
        """Per-row join tokens issued by the enclave (one per global rid)."""
        tokens: list[bytes] = []
        for build in self.partition_builds:
            if not len(build.attribute_vector):
                continue
            entry_tokens = host.ecall("join_tokens", build.dictionary, salt)
            tokens.extend(
                entry_tokens[int(vid)] for vid in build.attribute_vector
            )
        if self.delta_blobs:
            tokens.extend(host.ecall("join_tokens", self._delta_dictionary(), salt))
        return tokens

    def storage_bytes(self) -> int:
        """Table 6 accounting: head + tail + packed AV (+ delta blobs)."""
        total = sum(len(blob) for blob in self.delta_blobs)
        total += 8 * len(self.delta_blobs)  # delta head offsets
        for build in self.partition_builds:
            dictionary = build.dictionary
            total += dictionary.storage_bytes()
            total += dictionary.attribute_vector_bytes(
                len(build.attribute_vector)
            )
        return total

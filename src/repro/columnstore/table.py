"""Tables: named columns plus the validity vector of the delta-store design.

The overall state of a row is the conjunction of the column stores and a
table-level validity bit (paper §4.3): inserts append to every column's
delta store, deletes clear the bit, updates are delete + insert. Reads merge
main and delta results and drop invalid RecordIDs. A periodic merge rebuilds
the main stores from the surviving rows and compacts RecordIDs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.columnstore.column import EncryptedStoredColumn, PlainStoredColumn
from repro.columnstore.types import ColumnSpec
from repro.exceptions import CatalogError, QueryError

StoredColumn = PlainStoredColumn | EncryptedStoredColumn


class Table:
    """One table of the column store."""

    def __init__(self, name: str, specs: Sequence[ColumnSpec]) -> None:
        if not name or not name.isidentifier():
            raise CatalogError(f"invalid table name {name!r}")
        if not specs:
            raise CatalogError("a table needs at least one column")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in table {name}")
        self.name = name
        self.specs = list(specs)
        self.columns: dict[str, StoredColumn] = {}
        self._validity = np.empty(0, dtype=bool)
        #: Target rows per main-store partition; all columns of the table
        #: share one partition layout so rows stay aligned across columns.
        self.partition_rows: int | None = None

    # ------------------------------------------------------------------
    # Schema access
    # ------------------------------------------------------------------
    def spec(self, column_name: str) -> ColumnSpec:
        for spec in self.specs:
            if spec.name == column_name:
                return spec
        raise CatalogError(f"table {self.name} has no column {column_name!r}")

    def column(self, column_name: str) -> StoredColumn:
        self.spec(column_name)  # raises for unknown names
        return self.columns[column_name]

    @property
    def column_names(self) -> list[str]:
        return [spec.name for spec in self.specs]

    # ------------------------------------------------------------------
    # Row lifecycle
    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return len(self._validity)

    @property
    def live_row_count(self) -> int:
        return int(self._validity.sum())

    @property
    def validity(self) -> np.ndarray:
        return self._validity

    def attach_columns(self, columns: dict[str, StoredColumn], row_count: int) -> None:
        """Install the bulk-loaded column stores (data-owner deployment)."""
        missing = set(self.column_names) - set(columns)
        if missing:
            raise CatalogError(f"missing column data for {sorted(missing)}")
        for name, column in columns.items():
            if len(column) != row_count:
                raise CatalogError(
                    f"column {name} has {len(column)} rows, expected {row_count}"
                )
        self.columns = dict(columns)
        self._validity = np.ones(row_count, dtype=bool)

    def register_insert(self) -> int:
        """Extend the validity vector for one appended row."""
        self._validity = np.append(self._validity, True)
        return self.row_count - 1

    def delete_rows(self, record_ids: np.ndarray) -> int:
        """Clear validity bits; returns how many rows were actually live."""
        record_ids = np.asarray(record_ids, dtype=np.int64)
        if len(record_ids) and (
            record_ids.min() < 0 or record_ids.max() >= self.row_count
        ):
            raise QueryError("RecordID out of range in delete")
        live = int(self._validity[record_ids].sum())
        self._validity[record_ids] = False
        return live

    def filter_valid(self, record_ids: np.ndarray) -> np.ndarray:
        """Drop RecordIDs whose validity bit is cleared (read-path merge)."""
        record_ids = np.asarray(record_ids, dtype=np.int64)
        if len(record_ids) == 0:
            return record_ids
        return record_ids[self._validity[record_ids]]

    def all_valid_rids(self) -> np.ndarray:
        return np.nonzero(self._validity)[0].astype(np.int64)

    def reset_validity(self, row_count: int) -> None:
        """After a merge: all surviving rows are valid and compacted."""
        self._validity = np.ones(row_count, dtype=bool)

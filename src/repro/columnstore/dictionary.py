"""Plaintext dictionary encoding (paper §2.1).

A column ``C`` is split into a dictionary ``D`` (each unique value once,
sorted) and an attribute vector ``AV`` of ValueIDs such that
``D[AV[j]] == C[j]`` for every RecordID ``j`` (Definition 1). Range search is
the two-step dictionary-then-attribute-vector scan the whole paper builds
on. This module is both the reference used in property tests and the storage
layout for unprotected columns.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np


def split_column(values: Sequence[Any]) -> tuple[list[Any], np.ndarray]:
    """Split ``values`` into a sorted unique dictionary and attribute vector.

    >>> dictionary, av = split_column(["b", "a", "b"])
    >>> dictionary
    ['a', 'b']
    >>> av.tolist()
    [1, 0, 1]
    """
    dictionary = sorted(set(values))
    index = {value: vid for vid, value in enumerate(dictionary)}
    attribute_vector = np.fromiter(
        (index[value] for value in values), dtype=np.int64, count=len(values)
    )
    return dictionary, attribute_vector


def attribute_vector_bits(dictionary_size: int) -> int:
    """Bits per ValueID: ``i`` bits represent ``2^i`` dictionary entries."""
    if dictionary_size <= 1:
        return 1
    return (dictionary_size - 1).bit_length()


def attribute_vector_bytes_per_entry(dictionary_size: int) -> int:
    """Byte-granular ValueID width used for storage accounting."""
    return max(1, (attribute_vector_bits(dictionary_size) + 7) // 8)


@dataclass
class DictionaryEncodedColumn:
    """A plaintext dictionary-encoded column with range search.

    The dictionary is kept sorted so the dictionary search is two binary
    searches; the attribute-vector search is a vectorized scan, matching the
    parallelizable linear scan of §2.1.
    """

    dictionary: list[Any]
    attribute_vector: np.ndarray

    @classmethod
    def from_values(cls, values: Sequence[Any]) -> "DictionaryEncodedColumn":
        dictionary, attribute_vector = split_column(values)
        return cls(dictionary, attribute_vector)

    def __len__(self) -> int:
        return len(self.attribute_vector)

    def value_at(self, record_id: int) -> Any:
        """Undo the split for one RecordID (tuple reconstruction)."""
        return self.dictionary[self.attribute_vector[record_id]]

    def values(self) -> list[Any]:
        """Materialize the original column."""
        return [self.dictionary[vid] for vid in self.attribute_vector]

    def dictionary_search(self, low: Any, high: Any) -> tuple[int, int]:
        """ValueID interval ``[vid_min, vid_max]`` of values in ``[low, high]``.

        Returns an empty interval (``vid_min > vid_max``) when nothing falls
        in the range.
        """
        vid_min = bisect.bisect_left(self.dictionary, low)
        vid_max = bisect.bisect_right(self.dictionary, high) - 1
        return vid_min, vid_max

    def attribute_vector_search(self, vid_min: int, vid_max: int) -> np.ndarray:
        """RecordIDs whose ValueID falls in ``[vid_min, vid_max]``."""
        if vid_min > vid_max:
            return np.empty(0, dtype=np.int64)
        mask = (self.attribute_vector >= vid_min) & (self.attribute_vector <= vid_max)
        return np.nonzero(mask)[0].astype(np.int64)

    def range_search(self, low: Any, high: Any) -> np.ndarray:
        """RecordIDs of all entries with ``low <= value <= high``."""
        vid_min, vid_max = self.dictionary_search(low, high)
        return self.attribute_vector_search(vid_min, vid_max)

    def storage_bytes(self, value_size) -> int:
        """Approximate storage footprint for the paper's Table 6 accounting.

        ``value_size`` maps a dictionary value to its serialized size in
        bytes.
        """
        dictionary_bytes = sum(value_size(value) for value in self.dictionary)
        av_bytes = len(self.attribute_vector) * attribute_vector_bytes_per_entry(
            len(self.dictionary)
        )
        return dictionary_bytes + av_bytes

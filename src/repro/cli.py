"""Command-line SQL shell for the EncDBDB reproduction.

Usage::

    python -m repro.cli                      # interactive shell
    python -m repro.cli --script demo.sql    # run a ;-separated script
    python -m repro.cli --seed 7 --save db.encdbdb --script load.sql
    python -m repro.cli serve --port 7482    # run the DBaaS side over TCP
    python -m repro.cli --connect 127.0.0.1:7482   # shell against it
    python -m repro.cli migrate start t c --kind ED9 --connect 127.0.0.1:7482

The CLI stands up a complete deployment (server + enclave + data owner +
proxy) on startup, optionally restores a persisted database, executes SQL
through the trusted proxy, and pretty-prints results. Meta commands:
``.help``, ``.tables``, ``.schema <table>``, ``.stats`` (enclave cost
counters), ``.quit``.

With ``serve`` the process runs only the *untrusted* half (DBMS + enclave)
as a ``repro.net`` TCP server; with ``--connect`` it runs only the trusted
half (data owner + proxy), attesting and provisioning the remote enclave
over the socket before the first statement.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.client.session import EncDBDBSystem
from repro.exceptions import EncDBDBError
from repro.sql.result import QueryResult


def format_result(result: QueryResult) -> str:
    """Align a query result as a text table."""
    headers = result.column_names
    rows = [[str(cell) for cell in row] for row in result.rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    lines.append(f"({len(rows)} row{'s' if len(rows) != 1 else ''})")
    return "\n".join(lines)


def split_statements(text: str) -> list[str]:
    """Split a SQL script on semicolons, respecting strings and comments."""
    statements = []
    current = []
    in_string = False
    index = 0
    while index < len(text):
        char = text[index]
        if not in_string and text.startswith("--", index):
            newline = text.find("\n", index)
            index = len(text) if newline == -1 else newline + 1
            current.append(" ")
            continue
        if char == "'":
            in_string = not in_string
        if char == ";" and not in_string:
            statement = "".join(current).strip()
            if statement:
                statements.append(statement)
            current = []
        else:
            current.append(char)
        index += 1
    tail = "".join(current).strip()
    if tail:
        statements.append(tail)
    return statements


class Shell:
    """Executes SQL statements and meta commands against one system."""

    def __init__(self, system: EncDBDBSystem, out=None) -> None:
        self.system = system
        # Bound at call time so test harnesses that swap sys.stdout work.
        self.out = out if out is not None else sys.stdout

    def _print(self, text: str) -> None:
        print(text, file=self.out)

    def execute_line(self, line: str) -> bool:
        """Run one input line; returns False when the shell should exit."""
        line = line.strip()
        if not line:
            return True
        if line.startswith("."):
            return self._meta(line)
        head, _, rest = line.rstrip(";").partition(" ")
        if head.upper() == "EXPLAIN":
            if not rest.strip():
                self._print("usage: explain <statement>")
            else:
                try:
                    self._print(self.system.proxy.explain(rest.strip()))
                except EncDBDBError as error:
                    self._print(f"error: {error}")
            return True
        try:
            result = self.system.execute(line.rstrip(";"))
        except EncDBDBError as error:
            self._print(f"error: {error}")
            return True
        if isinstance(result, QueryResult):
            self._print(format_result(result))
        else:
            self._print(f"ok ({result} row{'s' if result != 1 else ''} affected)")
        return True

    def _meta(self, line: str) -> bool:
        command, _, argument = line.partition(" ")
        if command in (".quit", ".exit"):
            return False
        if command == ".help":
            self._print(
                "statements: CREATE TABLE / INSERT / SELECT / UPDATE / DELETE"
                " / MERGE TABLE / EXPLAIN <statement>\n"
                "meta: .tables  .schema <table>  .explain <sql>  .stats  "
                ".pushdown on|off  .save <path>  .quit"
            )
        elif command == ".tables":
            names = self.system.server.catalog.table_names()
            self._print("\n".join(names) if names else "(no tables)")
        elif command == ".schema":
            try:
                table = self.system.server.catalog.table(argument.strip())
            except EncDBDBError as error:
                self._print(f"error: {error}")
                return True
            for spec in table.specs:
                protection = spec.protection.name if spec.protection else "PLAIN"
                bsmax = (
                    f" BSMAX {spec.bsmax}"
                    if spec.protection is not None
                    and spec.protection.repetition.name == "SMOOTHING"
                    else ""
                )
                self._print(
                    f"  {spec.name} {protection} {spec.value_type.sql_name}{bsmax}"
                )
        elif command == ".stats":
            cost = self.system.server.cost_model
            self._print(
                f"ecalls={cost.ecalls} decryptions={cost.decryptions} "
                f"untrusted_loads={cost.untrusted_loads} "
                f"modeled_cycles={cost.estimated_cycles():,}"
            )
        elif command == ".pushdown":
            choice = argument.strip().lower()
            if choice in ("on", "off"):
                self.system.proxy.enable_pushdown(choice == "on")
            elif choice:
                self._print("usage: .pushdown on|off")
                return True
            state = "on" if self.system.proxy.pushdown_enabled else "off"
            self._print(f"analytics pushdown is {state}")
        elif command == ".explain":
            if not argument.strip():
                self._print("usage: .explain <statement>")
            else:
                try:
                    self._print(self.system.proxy.explain(argument.strip()))
                except EncDBDBError as error:
                    self._print(f"error: {error}")
        elif command == ".save":
            path = argument.strip()
            if not path:
                self._print("usage: .save <path>")
            else:
                self.system.save(path)
                self._print(f"saved to {path}")
        else:
            self._print(f"unknown meta command {command!r} (try .help)")
        return True

    def run_script(self, text: str) -> None:
        for statement in split_statements(text):
            self.execute_line(statement)

    def run_interactive(self, input_stream=sys.stdin) -> None:
        self._print("EncDBDB reproduction shell — .help for commands")
        buffered = ""
        while True:
            prompt = "encdbdb> " if not buffered else "     ...> "
            print(prompt, end="", file=self.out, flush=True)
            line = input_stream.readline()
            if not line:
                break
            buffered += line
            # Execute on a terminating semicolon or a meta command line.
            if ";" in line or buffered.strip().startswith("."):
                for statement in split_statements(buffered):
                    if not self.execute_line(statement):
                        return
                buffered = ""


def serve_main(argv: list[str]) -> int:
    """``python -m repro.cli serve``: run the untrusted DBaaS side."""
    import asyncio

    from repro.net.server import NetServer
    from repro.server.dbms import EncDBDBServer

    parser = argparse.ArgumentParser(
        prog="repro.cli serve", description="EncDBDB network server"
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=7482, help="TCP port (0 = ephemeral)")
    parser.add_argument("--load", type=Path, help="load a persisted database")
    parser.add_argument(
        "--max-sessions", type=int, default=8, help="admission-control limit"
    )
    parser.add_argument(
        "--sealed-key",
        type=Path,
        help="sealed SKDB blob: restored on boot if present, written after "
        "every provisioning (restart without re-attestation)",
    )
    parser.add_argument(
        "--scan-workers",
        type=int,
        default=None,
        help="worker threads for parallel attribute-vector scans and merge "
        "preparation (default: ENCDBDB_SCAN_WORKERS or 4)",
    )
    parser.add_argument(
        "--shard",
        type=int,
        default=None,
        help="shard id advertised in the hello frame (cluster deployments)",
    )
    parser.add_argument(
        "--replica-of",
        metavar="HOST:PORT",
        help="pull SKDB from the (provisioned) primary at this address "
        "before serving: the local enclave offers a secure channel, the "
        "primary enclave wraps the key for it — enclave to enclave, never "
        "through this process in the clear",
    )
    args = parser.parse_args(argv)

    dbms = EncDBDBServer(scan_workers=args.scan_workers)
    if args.load:
        dbms.load(args.load)
    if args.replica_of:
        host, port = _parse_endpoint(args.replica_of)
        _pull_replica_key(dbms, host, port)
        print(f"replica key pulled from {args.replica_of}", flush=True)
    server = NetServer(
        dbms,
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        sealed_key_path=args.sealed_key,
        shard=args.shard,
    )

    async def _serve() -> None:
        await server.start()
        print(f"encdbdb server listening on {server.host}:{server.port}", flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _pull_replica_key(dbms, host: str, port: int, *, attempts: int = 30) -> None:
    """Boot-time key pull for ``serve --replica-of``, patient by design.

    Retries both transport failures (primary not up yet) and the primary's
    "not provisioned yet" rejection, so shard fleets may start in any order;
    the data owner only ever attests and provisions one primary.
    """
    import time as _time

    from repro.cluster import pull_master_key_from
    from repro.exceptions import EnclaveSecurityError, NetworkError
    from repro.net import RetryPolicy

    retry = RetryPolicy(attempts=3, base_delay=0.1)
    for attempt in range(attempts):
        try:
            pull_master_key_from(dbms, host, port, retry=retry)
            return
        except (NetworkError, EnclaveSecurityError) as error:
            if attempt == attempts - 1:
                raise SystemExit(
                    f"could not replicate key from {host}:{port}: {error}"
                )
            _time.sleep(min(2.0, 0.1 * (attempt + 1)))


def cluster_main(argv: list[str]) -> int:
    """``python -m repro.cli cluster``: an in-process cluster + shell.

    Boots ``--shards`` × (1 + ``--replicas``) TCP servers in this process,
    provisions them through the coordinator (one attestation round, then
    enclave-to-enclave key replication), and opens the ordinary shell
    against the scatter-gather router.
    """
    import contextlib

    from repro.cluster import ClusterSystem, ShardMap
    from repro.net import NetServer, ServerThread
    from repro.server.dbms import EncDBDBServer

    parser = argparse.ArgumentParser(
        prog="repro.cli cluster", description="in-process EncDBDB cluster shell"
    )
    parser.add_argument("--shards", type=int, default=2, help="shard count")
    parser.add_argument(
        "--replicas", type=int, default=0, help="replicas per shard"
    )
    parser.add_argument("--seed", type=int, default=0, help="deployment seed")
    parser.add_argument("--script", type=Path, help="run a SQL script and exit")
    parser.add_argument(
        "--max-sessions", type=int, default=16, help="per-server session limit"
    )
    args = parser.parse_args(argv)
    if args.shards < 1 or args.replicas < 0:
        raise SystemExit("need --shards >= 1 and --replicas >= 0")

    with contextlib.ExitStack() as stack:
        endpoints = []
        for shard_id in range(args.shards):
            group = []
            for _replica in range(1 + args.replicas):
                handle = stack.enter_context(
                    ServerThread(
                        NetServer(
                            EncDBDBServer(),
                            max_sessions=args.max_sessions,
                            shard=shard_id,
                        )
                    )
                )
                group.append(("127.0.0.1", handle.port))
            endpoints.append(group)
        shard_map = ShardMap.of_endpoints(endpoints)
        with ClusterSystem.connect(shard_map, seed=args.seed) as system:
            print(
                f"cluster up: {args.shards} shard(s) x "
                f"{1 + args.replicas} endpoint(s), all enclaves keyed",
                flush=True,
            )
            shell = Shell(system)
            if args.script:
                shell.run_script(args.script.read_text())
            else:
                shell.run_interactive()
    return 0


def migrate_main(argv: list[str]) -> int:
    """``python -m repro.cli migrate``: drive an online rotation.

    Operator tooling for the *untrusted* side: starting, watching, or
    rolling back a rotation needs no keys — the actual re-encryption runs
    inside the server's enclave — so this connects a bare wire client
    without attestation or provisioning.
    """
    from repro.net.client import NetConnection, RemoteServer
    from repro.sql.printer import migration_lines

    parser = argparse.ArgumentParser(
        prog="repro.cli migrate",
        description="online ED-kind / key-epoch rotation of one column",
    )
    parser.add_argument(
        "action", choices=("start", "status", "rollback"), help="what to do"
    )
    parser.add_argument("table", nargs="?", help="table name")
    parser.add_argument("column", nargs="?", help="column name")
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        required=True,
        help="server (`repro.cli serve`) to operate on",
    )
    parser.add_argument(
        "--kind", metavar="EDn", help="target ED kind (start; default: keep)"
    )
    parser.add_argument(
        "--rotate-key",
        action="store_true",
        help="advance the column's storage-key epoch (start)",
    )
    parser.add_argument(
        "--steps",
        type=int,
        metavar="N",
        help="start only: advance N plan steps and return instead of "
        "driving the rotation to completion",
    )
    args = parser.parse_args(argv)
    if args.action in ("start", "rollback") and not (args.table and args.column):
        raise SystemExit(f"migrate {args.action} needs <table> <column>")

    host, port = _parse_endpoint(args.connect)
    connection = NetConnection(host, port)
    try:
        server = RemoteServer(connection)
        if args.action == "start":
            if not args.kind and not args.rotate_key:
                raise SystemExit("migrate start needs --kind and/or --rotate-key")
            server.migrate_start(
                args.table,
                args.column,
                new_kind=args.kind,
                rotate_key=args.rotate_key,
            )
            if args.steps is not None:
                statuses = [
                    server.migrate_step(args.table, args.column, args.steps)
                ]
            else:
                statuses = [server.migrate_run(args.table, args.column)]
        elif args.action == "rollback":
            statuses = [server.migrate_rollback(args.table, args.column)]
        else:
            statuses = server.migrate_status(args.table, args.column)
            if not isinstance(statuses, list):
                statuses = [statuses]
        lines = migration_lines(statuses)
        print("\n".join(lines) if lines else "(no migrations)", flush=True)
        failed = [s for s in statuses if s.state == "failed"]
        return 1 if failed else 0
    except EncDBDBError as error:
        print(f"error: {error}", file=sys.stderr, flush=True)
        return 1
    finally:
        connection.close()


def _parse_endpoint(endpoint: str) -> tuple[str, int]:
    host, _, port = endpoint.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"expected host:port, got {endpoint!r}")
    return host, int(port)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "cluster":
        return cluster_main(argv[1:])
    if argv and argv[0] == "migrate":
        return migrate_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="EncDBDB reproduction SQL shell"
    )
    parser.add_argument("--seed", type=int, default=0, help="deployment seed")
    parser.add_argument("--script", type=Path, help="run a SQL script and exit")
    parser.add_argument("--load", type=Path, help="load a persisted database")
    parser.add_argument("--save", type=Path, help="save the database on exit")
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="run against a remote `repro.cli serve` deployment instead of "
        "an in-process one (attests + provisions over the socket)",
    )
    args = parser.parse_args(argv)

    if args.connect:
        if args.load:
            raise SystemExit("--load is server-side; use `serve --load` instead")
        host, port = _parse_endpoint(args.connect)
        system = EncDBDBSystem.connect(host, port, seed=args.seed)
    else:
        system = EncDBDBSystem.create(seed=args.seed)
        if args.load:
            # Loading replaces the catalog; re-register schemas with the proxy.
            system.server.load(args.load)
            for name in system.server.catalog.table_names():
                system.proxy.register_schema(
                    name, system.server.catalog.table(name).specs
                )
    shell = Shell(system)
    try:
        if args.script:
            shell.run_script(args.script.read_text())
        else:
            shell.run_interactive()
        if args.save:
            system.save(args.save)
    finally:
        system.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

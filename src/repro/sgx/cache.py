"""In-enclave caching and the query fast-path configuration.

EncDBDB's evaluation argues entirely in terms of boundary crossings,
per-entry decryptions, and attribute-vector comparisons (§5, Fig. 8,
Table 4) — and a naive reproduction pays the worst case for all three on
every query. This module provides the two knobs the fast path is built on:

- :class:`EnclaveLruCache`, a strictly budgeted LRU that memoizes decrypted
  dictionary entries *inside* the enclave. Its capacity is charged against
  the :class:`~repro.sgx.memory.EpcModel` (the 96 MiB usable-EPC model), so
  the cache can never silently grow past what SGX hardware would allow, and
  every eviction is reported to the :class:`~repro.sgx.costs.CostModel` as a
  paging event. Enclave analytical engines live or die by amortizing
  transition and EPC-paging costs (DuckDB-SGX2; StealthDB caches decrypted
  state under a strict memory budget) — this is that lever.
- :class:`FastPathConfig`, the single configuration object that switches
  each fast-path layer (entry cache, derived-key cache, batched ecalls,
  chunked parallel attribute-vector scans, scan-mask reuse) on or off. The
  unoptimized paper-faithful path stays available behind
  :meth:`FastPathConfig.disabled` so the Figure 8 numbers remain
  reproducible.

Security argument (see DESIGN.md "Query fast path"): cached plaintext lives
only in enclave-protected memory, keyed by the ciphertext blob itself, so a
hit can never serve a plaintext that does not match the blob the untrusted
side handed in. Access-pattern leakage is unchanged: every probe is still
recorded in the accessor's probe log whether it hits or misses.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.exceptions import EnclaveMemoryError
from repro.runtime import configured_workers
from repro.sgx.costs import CostModel
from repro.sgx.memory import EpcModel


@dataclass
class CacheStats:
    """Observable (non-secret) counters of one :class:`EnclaveLruCache`."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    rejected: int = 0  # entries larger than the whole budget
    peak_bytes: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "rejected": self.rejected,
            "peak_bytes": self.peak_bytes,
        }


class EnclaveLruCache:
    """A byte-budgeted LRU cache living in enclave-protected memory.

    The budget is reserved up front through the EPC model, so a cache that
    would not fit into the usable EPC fails at construction (strict mode)
    instead of silently overcommitting. ``used_bytes`` can never exceed
    ``budget_bytes``: inserts evict least-recently-used entries first and
    each eviction is charged to the cost model as an EPC paging event —
    the architectural price of churning enclave-resident state.

    All cache state is guarded by one re-entrant lock, so concurrent ecalls
    (the server interleaves sessions) can probe and fill the cache without
    corrupting the LRU order or the byte accounting. The lock is ordered
    before the cost model's own lock (``put`` reports evictions while
    holding it); nothing ever acquires them in the opposite order.
    """

    def __init__(
        self,
        *,
        budget_bytes: int,
        cost_model: CostModel | None = None,
        epc: EpcModel | None = None,
    ) -> None:
        if budget_bytes <= 0:
            raise EnclaveMemoryError("cache budget must be positive")
        self._budget = int(budget_bytes)
        self._cost = cost_model
        self._epc = epc
        # Reserve the whole budget against the EPC model: the enclave pays
        # for its cache region whether or not it is full, exactly like a
        # static in-enclave buffer would.
        self._allocation = epc.allocate(self._budget) if epc is not None else None
        self._lock = threading.RLock()
        self._entries: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()  # guarded-by: self._lock
        self._used = 0  # guarded-by: self._lock
        self.stats = CacheStats()  # guarded-by: self._lock

    # ------------------------------------------------------------------
    @property
    def budget_bytes(self) -> int:
        return self._budget

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``; a hit refreshes its LRU position.

        The recency refresh is skipped below half occupancy: with that much
        headroom no insert can force an eviction soon, so the LRU order is
        irrelevant and the ``move_to_end`` would be pure overhead on the
        hottest path of a query (approximate LRU, standard cache practice).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return default
            self.stats.hits += 1
            if 2 * self._used >= self._budget:
                self._entries.move_to_end(key)
            return entry[0]

    def put(self, key: Hashable, value: Any, nbytes: int) -> bool:
        """Insert ``value`` charged at ``nbytes``; evicts LRU entries first.

        Returns ``False`` (and caches nothing) when a single entry exceeds
        the whole budget — such values are served pass-through instead of
        wiping the cache for one oversized resident.
        """
        nbytes = int(nbytes)
        with self._lock:
            if nbytes > self._budget:
                self.stats.rejected += 1
                return False
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._used -= previous[1]
            while self._used + nbytes > self._budget:
                _, (_, evicted_bytes) = self._entries.popitem(last=False)
                self._used -= evicted_bytes
                self.stats.evictions += 1
                if self._cost is not None:
                    # Evicting enclave-resident state is a paging event: the
                    # page's worth of cached plaintext has to be
                    # re-established (re-decrypted) if it is needed again.
                    self._cost.record_page_fault()
            self._entries[key] = (value, nbytes)
            self._used += nbytes
            self.stats.insertions += 1
            self.stats.peak_bytes = max(self.stats.peak_bytes, self._used)
            return True

    def invalidate(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``."""
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                _, nbytes = self._entries.pop(key)
                self._used -= nbytes
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def invalidate_prefix(self, prefix: tuple) -> int:
        """Drop every tuple key starting with ``prefix``.

        Cache keys are structured ``(table, column, partition, epoch,
        blob)``, so a ``(table, column, partition)`` prefix evicts exactly
        one partition's worth of cached plaintext — the partition-granular
        eviction the incremental merge relies on. Non-tuple keys (foreign
        users of the cache) are never matched.
        """
        width = len(prefix)
        return self.invalidate(
            lambda key: isinstance(key, tuple)
            and len(key) >= width
            and key[:width] == prefix
        )

    def group_usage(self, prefix_width: int = 3) -> dict[tuple, int]:
        """Resident bytes per key-prefix group (EPC accounting).

        With the structured keys above and the default width this reports
        bytes held per ``(table, column, partition)`` — how much of the
        enclave's cache budget each partition currently occupies. Non-tuple
        or short keys are pooled under the empty group ``()``.
        """
        usage: dict[tuple, int] = {}
        with self._lock:
            entries = list(self._entries.items())
        for key, (_, nbytes) in entries:
            group = (
                key[:prefix_width]
                if isinstance(key, tuple) and len(key) >= prefix_width
                else ()
            )
            usage[group] = usage.get(group, 0) + nbytes
        return usage

    def clear(self) -> int:
        """Drop everything (e.g. on re-provisioning of key material)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._used = 0
            self.stats.invalidations += dropped
            return dropped


@dataclass(frozen=True)
class FastPathConfig:
    """Configuration of the query fast path (PR 1).

    Every layer can be switched off individually; ``enabled=False`` turns
    the whole fast path off at once, restoring the paper-faithful
    one-ecall-per-filter, decrypt-every-probe behaviour that the Figure 8
    benchmarks reproduce.
    """

    enabled: bool = True
    #: Memoize decrypted dictionary entries inside the enclave.
    cache_dictionary_entries: bool = True
    #: EPC budget of the entry cache (charged against the 96 MiB model).
    dictionary_cache_bytes: int = 8 * 1024 * 1024
    #: Memoize per-column ``SKD = DeriveKey(SKDB, tab, col)`` derivations.
    cache_column_keys: bool = True
    #: Plan multi-filter queries into one ``dict_search_batch`` ecall.
    batch_ecalls: bool = True
    #: Chunk large attribute-vector scans over a thread pool.
    parallel_scan: bool = True
    #: Rows per scan chunk; scans at or below this size stay single-shot.
    scan_chunk_rows: int = 1 << 18
    #: Worker threads for chunked scans. Defaults to the process-wide knob
    #: (``ENCDBDB_SCAN_WORKERS``), which the build pipeline shares.
    scan_max_workers: int = field(default_factory=configured_workers)
    #: Reuse scan results across identical filters on one column per query.
    reuse_scan_masks: bool = True
    #: Decrypt-once packed-ordinal dictionaries + vectorized search kernels
    #: (``repro.encdict.kernels``). Logical cost accounting is unchanged.
    vectorized_kernels: bool = True

    @classmethod
    def disabled(cls) -> "FastPathConfig":
        """The unoptimized baseline: every fast-path layer off."""
        return cls(enabled=False)

    # Effective switches (the master flag gates every layer) -----------
    @property
    def entry_cache_enabled(self) -> bool:
        return self.enabled and self.cache_dictionary_entries

    @property
    def key_cache_enabled(self) -> bool:
        return self.enabled and self.cache_column_keys

    @property
    def batching_enabled(self) -> bool:
        return self.enabled and self.batch_ecalls

    @property
    def parallel_scan_enabled(self) -> bool:
        return self.enabled and self.parallel_scan and self.scan_max_workers > 1

    @property
    def scan_mask_reuse_enabled(self) -> bool:
        return self.enabled and self.reuse_scan_masks

    @property
    def vectorized_kernels_enabled(self) -> bool:
        return self.enabled and self.vectorized_kernels

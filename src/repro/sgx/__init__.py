"""Simulated Intel SGX runtime.

The paper runs its dictionary search inside an SGX enclave. Real SGX hardware
(and its SDK) is unavailable to this reproduction, so this package simulates
the enclave *interface and cost structure* that the paper's design relies on
(see DESIGN.md §1 for the substitution argument):

- :mod:`repro.sgx.enclave` -- enclave programs with a measured code identity,
  a narrow registered-ecall surface, and software-enforced isolation of
  enclave state from untrusted callers.
- :mod:`repro.sgx.memory` -- the EPC model: 128 MiB processor-reserved
  memory of which ~96 MiB is usable, with paging penalties beyond that.
- :mod:`repro.sgx.attestation` -- measurements, quotes, and a simulated
  attestation service so key provisioning can be gated on code identity.
- :mod:`repro.sgx.sealing` -- sealed storage bound to the measurement.
- :mod:`repro.sgx.channel` -- an attested secure channel (finite-field DH +
  HKDF + PAE transport) used to deploy ``SKDB`` into the enclave.
- :mod:`repro.sgx.costs` -- a cycle-cost accounting model for boundary
  crossings, in-enclave decryptions and EPC paging, backing the performance
  discussion of Tables 1 and 4.
"""

from repro.sgx.attestation import AttestationService, Quote, measure_code
from repro.sgx.channel import SecureChannel, SecureChannelListener
from repro.sgx.costs import CostModel, CostParameters
from repro.sgx.enclave import Enclave, EnclaveHost, ecall
from repro.sgx.memory import EPC_TOTAL_BYTES, EPC_USABLE_BYTES, EpcModel
from repro.sgx.sealing import seal, unseal

__all__ = [
    "Enclave",
    "EnclaveHost",
    "ecall",
    "EpcModel",
    "EPC_TOTAL_BYTES",
    "EPC_USABLE_BYTES",
    "AttestationService",
    "Quote",
    "measure_code",
    "SecureChannel",
    "SecureChannelListener",
    "seal",
    "unseal",
    "CostModel",
    "CostParameters",
]

"""EPC (Enclave Page Cache) memory model.

SGX v2 reserves 128 MiB of RAM (the PRM) of which roughly 96 MiB is usable
for enclave pages (paper §2.2). Enclave data beyond that is swapped by the OS
with integrity/confidentiality/freshness protection, at a large performance
penalty. The model tracks per-enclave allocations at 4 KiB page granularity,
simulates an LRU-resident set limited to the usable EPC, and reports page
faults to the cost model.

EncDBDB's design point — only constant enclave memory, dictionaries stay in
untrusted memory — means the model mostly *proves a negative* here: tests
assert that searches never allocate EPC proportional to |D|, which is exactly
the paper's argument that the restricted enclave space is not a limitation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.exceptions import EnclaveMemoryError
from repro.sgx.costs import CostModel

PAGE_BYTES = 4096
EPC_TOTAL_BYTES = 128 * 1024 * 1024
EPC_USABLE_BYTES = 96 * 1024 * 1024


@dataclass
class _Allocation:
    allocation_id: int
    nbytes: int
    pages: int


class EpcModel:
    """Tracks enclave page usage with an LRU resident set.

    ``strict`` mode refuses allocations past the usable EPC instead of
    swapping; EncDBDB never needs swapping, so the default enclave runs
    strict to surface design regressions, while tests of the paging penalty
    turn it off.
    """

    def __init__(
        self,
        cost_model: CostModel | None = None,
        *,
        usable_bytes: int = EPC_USABLE_BYTES,
        strict: bool = False,
    ) -> None:
        self._cost_model = cost_model if cost_model is not None else CostModel()
        self._usable_pages = usable_bytes // PAGE_BYTES
        self._strict = strict
        self._next_id = 1
        self._allocations: dict[int, _Allocation] = {}
        # Resident tracking: (allocation_id, page_index) -> None, in LRU order.
        self._resident: OrderedDict[tuple[int, int], None] = OrderedDict()
        self.peak_pages = 0

    @property
    def allocated_bytes(self) -> int:
        return sum(a.nbytes for a in self._allocations.values())

    @property
    def allocated_pages(self) -> int:
        return sum(a.pages for a in self._allocations.values())

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    def allocate(self, nbytes: int) -> int:
        """Reserve enclave memory; returns an allocation id."""
        if nbytes < 0:
            raise EnclaveMemoryError("negative allocation")
        pages = max(1, -(-nbytes // PAGE_BYTES))
        if self._strict and self.allocated_pages + pages > self._usable_pages:
            raise EnclaveMemoryError(
                f"allocation of {nbytes} bytes exceeds usable EPC "
                f"({self.allocated_pages + pages} > {self._usable_pages} pages)"
            )
        allocation = _Allocation(self._next_id, nbytes, pages)
        self._next_id += 1
        self._allocations[allocation.allocation_id] = allocation
        for page_index in range(pages):
            self._touch(allocation.allocation_id, page_index, faulting=False)
        self.peak_pages = max(self.peak_pages, self.allocated_pages)
        return allocation.allocation_id

    def free(self, allocation_id: int) -> None:
        allocation = self._allocations.pop(allocation_id, None)
        if allocation is None:
            raise EnclaveMemoryError(f"unknown allocation {allocation_id}")
        for page_index in range(allocation.pages):
            self._resident.pop((allocation_id, page_index), None)

    def touch(self, allocation_id: int, offset: int = 0) -> None:
        """Record an access; faults if the page is not EPC-resident."""
        allocation = self._allocations.get(allocation_id)
        if allocation is None:
            raise EnclaveMemoryError(f"unknown allocation {allocation_id}")
        page_index = offset // PAGE_BYTES
        if page_index >= allocation.pages:
            raise EnclaveMemoryError(
                f"offset {offset} outside allocation of {allocation.nbytes} bytes"
            )
        self._touch(allocation_id, page_index, faulting=True)

    def _touch(self, allocation_id: int, page_index: int, *, faulting: bool) -> None:
        key = (allocation_id, page_index)
        if key in self._resident:
            self._resident.move_to_end(key)
            return
        if faulting:
            self._cost_model.record_page_fault()
        self._resident[key] = None
        while len(self._resident) > self._usable_pages:
            self._resident.popitem(last=False)

"""Remote attestation for the simulated enclave runtime.

Models the EPID/DCAP flow at the granularity EncDBDB needs (paper §2.2,
§4.2 step 2): the platform produces a *quote* binding the enclave measurement
to caller-chosen report data (here: the enclave's ephemeral key-exchange
public value), and a verifier checks the quote against an attestation service
before provisioning ``SKDB``.

The hardware root of trust is replaced by an HMAC key held by the simulated
:class:`AttestationService` (standing in for Intel): quotes are HMAC-signed
by the "platform" and verified by the service, so a forged or replayed-with-
different-report-data quote is rejected just as a bad EPID signature would
be.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.exceptions import AttestationError
from repro.sgx.enclave import Enclave, measure_enclave_class

# Public alias: measuring an enclave class is the attestation primitive.
measure_code = measure_enclave_class


@dataclass(frozen=True)
class Quote:
    """A signed statement: 'an enclave with this measurement said this'."""

    measurement: bytes
    report_data: bytes
    signature: bytes

    def body(self) -> bytes:
        return (
            len(self.measurement).to_bytes(2, "big")
            + self.measurement
            + len(self.report_data).to_bytes(4, "big")
            + self.report_data
        )

    # ------------------------------------------------------------------
    # Wire format (used by repro.net when quotes travel over real sockets)
    # ------------------------------------------------------------------
    def to_wire(self) -> bytes:
        """Serialize as ``body || len(sig) || sig`` for network transport."""
        return self.body() + len(self.signature).to_bytes(2, "big") + self.signature

    @classmethod
    def from_wire(cls, data: bytes) -> "Quote":
        """Parse a quote from its wire form; raises on truncation/trailing."""
        try:
            pos = 0
            m_len = int.from_bytes(data[pos : pos + 2], "big")
            pos += 2
            measurement = bytes(data[pos : pos + m_len])
            pos += m_len
            r_len = int.from_bytes(data[pos : pos + 4], "big")
            pos += 4
            report_data = bytes(data[pos : pos + r_len])
            pos += r_len
            s_len = int.from_bytes(data[pos : pos + 2], "big")
            pos += 2
            signature = bytes(data[pos : pos + s_len])
            pos += s_len
            if pos != len(data) or len(measurement) != m_len or len(
                report_data
            ) != r_len or len(signature) != s_len:
                raise ValueError("length mismatch")
        except (IndexError, ValueError) as exc:
            raise AttestationError(f"malformed wire quote: {exc}") from None
        return cls(measurement, report_data, signature)


class AttestationService:
    """Simulated Intel attestation service (IAS/DCAP verifier).

    One instance plays both the quoting enclave on the platform (it signs)
    and the remote verification service (it checks signatures). Splitting the
    two roles would only duplicate the key here.
    """

    def __init__(self, service_key: bytes | None = None) -> None:
        self._service_key = service_key or hashlib.sha256(b"simulated-intel-root").digest()

    def quote(self, enclave: Enclave, report_data: bytes) -> Quote:
        """Produce a quote for a running enclave over ``report_data``."""
        partial = Quote(enclave.measurement, report_data, b"")
        signature = hmac.new(self._service_key, partial.body(), hashlib.sha256).digest()
        return Quote(enclave.measurement, report_data, signature)

    def verify(self, quote: Quote, *, expected_measurement: bytes | None = None) -> None:
        """Check the quote signature and (optionally) the code identity.

        Raises :class:`~repro.exceptions.AttestationError` on any mismatch.
        """
        expected_sig = hmac.new(
            self._service_key, Quote(quote.measurement, quote.report_data, b"").body(),
            hashlib.sha256,
        ).digest()
        if not hmac.compare_digest(expected_sig, quote.signature):
            raise AttestationError("quote signature verification failed")
        if (
            expected_measurement is not None
            and quote.measurement != expected_measurement
        ):
            raise AttestationError(
                "enclave measurement does not match the expected code identity"
            )

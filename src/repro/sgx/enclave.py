"""Enclave programs and the untrusted host interface.

An :class:`Enclave` subclass is the unit of deployment: its public surface is
exactly the methods decorated with :func:`ecall`. Untrusted code never holds
the enclave object itself — it holds an :class:`EnclaveHost`, whose
:meth:`~EnclaveHost.ecall` method is the only way in, mirroring how an SGX
host process can invoke an enclave only through its registered entry points
(paper §2.2).

Isolation is enforced in software: secret enclave state lives in a protected
store that raises :class:`~repro.exceptions.EnclaveSecurityError` whenever it
is touched while no ecall is executing. Every boundary crossing is charged to
the enclave's :class:`~repro.sgx.costs.CostModel`, and in-enclave allocations
go through the strict :class:`~repro.sgx.memory.EpcModel`, so tests can
assert EncDBDB's "constant enclave memory, one ecall per query" properties.
"""

from __future__ import annotations

import hashlib
import inspect
import threading
from typing import Any, Callable

from repro.crypto.drbg import HmacDrbg
from repro.exceptions import EnclaveSecurityError
from repro.sgx.costs import CostModel
from repro.sgx.memory import EpcModel


def ecall(function: Callable) -> Callable:
    """Mark a method of an :class:`Enclave` subclass as an enclave entry point."""
    function.__is_ecall__ = True
    return function


class Enclave:
    """Base class for enclave programs.

    Subclasses define their trusted interface with :func:`ecall`-decorated
    methods and keep secrets in the protected store via
    :meth:`protected_set` / :meth:`protected_get`.
    """

    def __init__(
        self,
        *,
        cost_model: CostModel | None = None,
        rng: HmacDrbg | None = None,
        epc_strict: bool = True,
    ) -> None:
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.epc = EpcModel(self.cost_model, strict=epc_strict)
        # Enclave-internal randomness (sgx_read_rand in the real SDK).
        self._rng = rng if rng is not None else HmacDrbg(b"enclave-rdrand")
        self._protected: dict[str, Any] = {}
        # Serializes boundary crossings: real SGX enclaves support multiple
        # TCS entries, but this program's protected store and call-depth
        # gating assume one thread inside at a time. Host threads (query
        # sessions, the online-rotation driver) may therefore share one
        # enclave; a writer blocks readers for at most one ecall.
        self._boundary_lock = threading.RLock()
        self._call_depth = 0  # guarded-by: self._boundary_lock
        self._measurement = measure_enclave_class(type(self))

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def measurement(self) -> bytes:
        """MRENCLAVE analogue: a hash of the enclave's code identity."""
        return self._measurement

    # ------------------------------------------------------------------
    # Protected memory
    # ------------------------------------------------------------------
    def _require_inside(self, operation: str) -> None:
        if self._call_depth == 0:
            raise EnclaveSecurityError(
                f"{operation} attempted from outside the enclave boundary"
            )

    def protected_set(self, key: str, value: Any) -> None:
        """Store a secret; only callable while an ecall is executing."""
        self._require_inside(f"protected_set({key!r})")
        self._protected[key] = value

    def protected_get(self, key: str) -> Any:
        """Read a secret; only callable while an ecall is executing."""
        self._require_inside(f"protected_get({key!r})")
        try:
            return self._protected[key]
        except KeyError:
            raise EnclaveSecurityError(f"no protected value named {key!r}") from None

    def protected_has(self, key: str) -> bool:
        self._require_inside(f"protected_has({key!r})")
        return key in self._protected

    def enclave_random_bytes(self, n: int) -> bytes:
        """In-enclave randomness (usable only inside an ecall)."""
        self._require_inside("enclave_random_bytes")
        return self._rng.random_bytes(n)

    def enclave_randint(self, low: int, high: int) -> int:
        self._require_inside("enclave_randint")
        return self._rng.randint(low, high)

    # ------------------------------------------------------------------
    # Dispatch (used by EnclaveHost, not by untrusted code directly)
    # ------------------------------------------------------------------
    def _dispatch(self, name: str, args: tuple, kwargs: dict) -> Any:
        method = getattr(type(self), name, None)
        if method is None or not getattr(method, "__is_ecall__", False):
            raise EnclaveSecurityError(f"{name!r} is not a registered ecall")
        with self._boundary_lock:
            self.cost_model.record_ecall(name=name)
            self._call_depth += 1
            try:
                return method(self, *args, **kwargs)
            finally:
                self._call_depth -= 1

    def ecall_names(self) -> tuple[str, ...]:
        """The registered entry points, in definition order."""
        names = []
        for klass in reversed(type(self).__mro__):
            for name, member in vars(klass).items():
                if getattr(member, "__is_ecall__", False) and name not in names:
                    names.append(name)
        return tuple(names)


class EnclaveHost:
    """The untrusted process's handle to a loaded enclave.

    Everything the DBMS (untrusted) does with the enclave goes through
    :meth:`ecall`; the host also exposes the attestation-relevant
    measurement, which is public by design.
    """

    def __init__(self, enclave: Enclave) -> None:
        self._enclave = enclave

    @property
    def measurement(self) -> bytes:
        return self._enclave.measurement

    @property
    def cost_model(self) -> CostModel:
        return self._enclave.cost_model

    def ecall(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke a registered enclave entry point."""
        return self._enclave._dispatch(name, args, kwargs)

    def ecall_names(self) -> tuple[str, ...]:
        return self._enclave.ecall_names()


def measure_enclave_class(enclave_class: type) -> bytes:
    """Compute the MRENCLAVE analogue for an enclave class.

    The measurement hashes the class name and the source code of every ecall
    in MRO order, so any change to the trusted code changes the identity —
    the property remote attestation depends on.
    """
    digest = hashlib.sha256()
    digest.update(enclave_class.__qualname__.encode("utf-8"))
    for klass in reversed(enclave_class.__mro__):
        for name in sorted(vars(klass)):
            member = vars(klass)[name]
            if getattr(member, "__is_ecall__", False):
                digest.update(b"\x00" + name.encode("utf-8") + b"\x00")
                digest.update(_code_identity(member))
    return digest.digest()


def _code_identity(function: Callable) -> bytes:
    try:
        return inspect.getsource(function).encode("utf-8")
    except (OSError, TypeError):  # e.g. defined in a REPL
        code = getattr(function, "__code__", None)
        return code.co_code if code is not None else repr(function).encode("utf-8")

"""Oblivious memory primitives for the enclave (paper §4.3).

The delta-store merge "has to be implemented in a way that does not leak the
relationship between values in the old and new main store, e.g., with
oblivious memory primitives [ZeroTrace, Opaque]". This module provides the
two primitives that requirement needs, with **data-independent access
patterns**:

- :func:`oblivious_sort` — a bitonic sorting network: the sequence of
  compare-exchange index pairs depends only on the input *length*, never on
  the data. Each compare-exchange touches both positions and always writes
  both back, so even a byte-level memory trace shows the same accesses for
  any input.
- :func:`oblivious_shuffle` — assigns each element a random tag drawn from a
  large space and bitonically sorts by tag: a uniformly random permutation
  whose access trace is again input-independent.

An instrumented :class:`TraceRecorder` lets tests assert the
data-independence property directly.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.crypto.drbg import HmacDrbg


class TraceRecorder:
    """Records the (i, j) compare-exchange sequence for obliviousness tests."""

    def __init__(self) -> None:
        self.accesses: list[tuple[int, int]] = []

    def record(self, i: int, j: int) -> None:
        self.accesses.append((i, j))


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


def oblivious_sort(
    items: Sequence[Any],
    key: Callable[[Any], Any] = lambda item: item,
    *,
    trace: TraceRecorder | None = None,
) -> list[Any]:
    """Sort with a bitonic network (data-independent access pattern).

    The input is padded to a power of two with sentinel slots that compare
    greater than everything, sorted by the fixed network, and truncated.
    Runs in O(n log^2 n) compare-exchanges — the classic enclave-friendly
    tradeoff against comparison sorts whose branches leak.
    """
    n = len(items)
    if n <= 1:
        return list(items)
    padded_length = _next_power_of_two(n)
    _SENTINEL = object()
    buffer: list[Any] = list(items) + [_SENTINEL] * (padded_length - n)

    def keyed(value: Any):
        # (0, key) sorts before (1, anything): sentinels sink to the end.
        return (1,) if value is _SENTINEL else (0, key(value))

    def compare_exchange(i: int, j: int, ascending: bool) -> None:
        if trace is not None:
            trace.record(i, j)
        left, right = buffer[i], buffer[j]
        swap = (keyed(left) > keyed(right)) == ascending
        # Always write both slots so the store trace is data-independent.
        buffer[i], buffer[j] = (right, left) if swap else (left, right)

    length = padded_length
    block = 2
    while block <= length:
        stride = block // 2
        while stride > 0:
            for i in range(length):
                partner = i ^ stride
                if partner > i:
                    ascending = (i & block) == 0
                    compare_exchange(i, partner, ascending)
            stride //= 2
        block *= 2
    return buffer[:n]


def oblivious_shuffle(
    items: Sequence[Any],
    rng: HmacDrbg,
    *,
    trace: TraceRecorder | None = None,
) -> list[Any]:
    """Uniformly random permutation with a data-independent access trace.

    Tags each element with 16 random bytes and bitonically sorts by tag
    (the Melbourne-shuffle-style 'sort by random keys' construction). Tag
    collisions are astronomically unlikely and would only bias the order of
    the colliding pair.
    """
    tagged = [(rng.random_bytes(16), item) for item in items]
    shuffled = oblivious_sort(tagged, key=lambda pair: pair[0], trace=trace)
    return [item for _, item in shuffled]

"""Attested secure channel between a remote party and an enclave.

Implements the provisioning step of paper §4.2 ( 2 ): the data owner
attests the DBaaS enclave and pushes ``SKDB`` through a secure channel that
terminates *inside* the enclave. The channel is a real key exchange:

1. the enclave generates an ephemeral finite-field Diffie-Hellman keypair
   (RFC 3526 group 14, 2048-bit MODP) inside an ecall;
2. the platform quotes the enclave with the DH public value as report data;
3. the remote party verifies the quote (signature + expected measurement),
   contributes its own ephemeral public value, and both sides derive a
   session key with HKDF over the shared secret and the full transcript;
4. application messages are protected with PAE under the session key.

Untrusted code relaying the messages sees only public values and PAE blobs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.drbg import HmacDrbg
from repro.crypto.kdf import hkdf_sha256
from repro.crypto.pae import Pae, default_pae
from repro.exceptions import AttestationError, EnclaveSecurityError
from repro.sgx.attestation import AttestationService, Quote

# RFC 3526, group 14: 2048-bit MODP prime with generator 2.
MODP_2048_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
MODP_2048_GENERATOR = 2


def _dh_keypair(rng: HmacDrbg) -> tuple[int, int]:
    private = int.from_bytes(rng.random_bytes(32), "big") | 1
    public = pow(MODP_2048_GENERATOR, private, MODP_2048_PRIME)
    return private, public


def _session_key(shared: int, transcript: bytes) -> bytes:
    shared_bytes = shared.to_bytes(256, "big")
    return hkdf_sha256(
        shared_bytes,
        salt=hashlib.sha256(transcript).digest(),
        info=b"EncDBDB-secure-channel",
        length=16,
    )


@dataclass(frozen=True)
class ChannelOffer:
    """What the enclave publishes to start a handshake: quote over its DH key."""

    quote: Quote

    @property
    def enclave_public(self) -> int:
        return int.from_bytes(self.quote.report_data, "big")


class SecureChannelListener:
    """The enclave side of the handshake.

    This object lives conceptually *inside* the enclave program; the
    EncDBDB enclave exposes its methods via ecalls. It is a separate class so
    the handshake logic is unit-testable without a full enclave.
    """

    def __init__(self, attestation: AttestationService, rng: HmacDrbg) -> None:
        self._attestation = attestation
        self._rng = rng
        self._private: int | None = None
        self._offer: ChannelOffer | None = None

    def offer(self, enclave) -> ChannelOffer:
        """Generate an ephemeral keypair and quote the public value."""
        self._private, public = _dh_keypair(self._rng)
        report_data = public.to_bytes(256, "big")
        self._offer = ChannelOffer(self._attestation.quote(enclave, report_data))
        return self._offer

    def accept(self, peer_public: int) -> "SecureChannel":
        """Complete the handshake with the remote party's public value.

        Single-use: once a channel is derived the offer is consumed, so a
        network attacker replaying ``accept`` against an old quote cannot
        obtain a second channel keyed to the same attested public value.
        """
        if self._private is None or self._offer is None:
            raise EnclaveSecurityError("accept() before offer()")
        if not 1 < peer_public < MODP_2048_PRIME - 1:
            raise EnclaveSecurityError("invalid peer DH public value")
        shared = pow(peer_public, self._private, MODP_2048_PRIME)
        transcript = self._offer.quote.report_data + peer_public.to_bytes(256, "big")
        key = _session_key(shared, transcript)
        self._private = None  # ephemeral: forward secrecy
        self._offer = None  # one handshake per offer (anti-replay over TCP)
        return SecureChannel(key)


class SecureChannel:
    """A PAE-protected duplex channel under an established session key."""

    def __init__(self, session_key: bytes, *, pae: Pae | None = None) -> None:
        self._key = session_key
        self._pae = pae if pae is not None else default_pae()

    def send(self, plaintext: bytes) -> bytes:
        """Protect an outgoing message; the return value goes over the wire."""
        return self._pae.encrypt(self._key, plaintext, aad=b"channel")

    def receive(self, wire_blob: bytes) -> bytes:
        """Open an incoming message; raises on tampering."""
        return self._pae.decrypt(self._key, wire_blob, aad=b"channel")

    @classmethod
    def connect(
        cls,
        offer: ChannelOffer,
        attestation: AttestationService,
        expected_measurement: bytes,
        *,
        rng: HmacDrbg,
        pae: Pae | None = None,
    ) -> tuple["SecureChannel", int]:
        """Client side: verify the attested offer and derive the channel.

        Returns ``(channel, client_public)``; the caller forwards
        ``client_public`` to the enclave's ``accept`` ecall.

        Raises :class:`AttestationError` if the quote does not verify or the
        measurement is not the expected enclave.
        """
        attestation.verify(offer.quote, expected_measurement=expected_measurement)
        enclave_public = offer.enclave_public
        if not 1 < enclave_public < MODP_2048_PRIME - 1:
            raise AttestationError("attested DH public value out of range")
        private, public = _dh_keypair(rng)
        shared = pow(enclave_public, private, MODP_2048_PRIME)
        transcript = offer.quote.report_data + public.to_bytes(256, "big")
        return cls(_session_key(shared, transcript), pae=pae), public

"""Sealed storage: persist enclave secrets bound to the code identity.

SGX's sealing derives a key from the enclave measurement and a platform
fuse key, so only the *same* enclave on the *same* platform can unseal. The
simulation derives the sealing key with HKDF from a platform secret and the
measurement (MRENCLAVE policy), and protects the blob with PAE. EncDBDB uses
sealing to persist ``SKDB`` across enclave restarts without another
attestation round trip.
"""

from __future__ import annotations

import hashlib

from repro.crypto.kdf import hkdf_sha256
from repro.crypto.pae import Pae, default_pae
from repro.exceptions import AuthenticationError

_DEFAULT_PLATFORM_SECRET = hashlib.sha256(b"simulated-sgx-fuse-key").digest()


def _sealing_key(measurement: bytes, platform_secret: bytes) -> bytes:
    return hkdf_sha256(
        platform_secret, info=b"EncDBDB-sealing\x00" + measurement, length=16
    )


def seal(
    measurement: bytes,
    plaintext: bytes,
    *,
    platform_secret: bytes = _DEFAULT_PLATFORM_SECRET,
    pae: Pae | None = None,
) -> bytes:
    """Seal ``plaintext`` to the enclave identity ``measurement``."""
    pae = pae if pae is not None else default_pae()
    return pae.encrypt(_sealing_key(measurement, platform_secret), plaintext, aad=measurement)


def unseal(
    measurement: bytes,
    blob: bytes,
    *,
    platform_secret: bytes = _DEFAULT_PLATFORM_SECRET,
    pae: Pae | None = None,
) -> bytes:
    """Unseal a blob; fails with :class:`AuthenticationError` for any other
    enclave identity or platform."""
    pae = pae if pae is not None else default_pae()
    try:
        return pae.decrypt(_sealing_key(measurement, platform_secret), blob, aad=measurement)
    except AuthenticationError:
        raise AuthenticationError(
            "unsealing failed: wrong enclave identity, wrong platform, or tampered blob"
        ) from None

"""Cycle-cost accounting for the simulated enclave.

Pure-Python wall-clock times do not transfer to the paper's C-on-SGX numbers,
so alongside wall-clock latency the reproduction tracks an architectural cost
model: how many enclave transitions, in-enclave decryptions, untrusted loads
and EPC page faults an operation performs, weighted with cycle costs from the
SGX literature. The *relative* costs (e.g. one ecall per query, logarithmic
vs. linear decrypt counts) are exactly what the paper's evaluation argues
about, and they are deterministic here.

Default cycle weights follow published microbenchmarks (Costan & Devadas
2016; van Bulck et al.; Orenbach et al. "Eleos"): an ecall/ocall round trip
costs ~8,000-14,000 cycles, an EPC page fault ~12,000+ cycles, AES-GCM with
AES-NI ~1-2 cycles/byte plus fixed setup.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostParameters:
    """Cycle weights for the architectural events the simulation counts."""

    ecall_cycles: int = 8_000
    ocall_cycles: int = 8_000
    epc_page_fault_cycles: int = 12_000
    untrusted_load_cycles: int = 100  # cache-missing read of one dict entry
    aes_gcm_fixed_cycles: int = 1_200  # per-message setup (key schedule, IV)
    aes_gcm_per_byte_cycles: int = 2
    compare_cycles: int = 10  # one plaintext comparison inside the enclave

    clock_hz: float = 3.7e9  # the paper's Xeon E-2176G @ 3.70 GHz


@dataclass
class CostModel:
    """Mutable event counters plus the weighting parameters.

    The enclave runtime increments these counters as a side effect of every
    boundary crossing, memory access and decryption; benchmarks read them to
    report architectural costs next to wall-clock numbers. All ``record_*``
    methods (and :meth:`snapshot`/:meth:`reset`) are guarded by one reentrant
    lock so concurrent build and scan workers can charge the same model
    without losing increments — counts stay exactly additive under threads.
    """

    parameters: CostParameters = field(default_factory=CostParameters)
    ecalls: int = 0  # guarded-by: self._lock
    ocalls: int = 0  # guarded-by: self._lock
    epc_page_faults: int = 0  # guarded-by: self._lock
    untrusted_loads: int = 0  # guarded-by: self._lock
    decryptions: int = 0  # guarded-by: self._lock
    decrypted_bytes: int = 0  # guarded-by: self._lock
    comparisons: int = 0  # guarded-by: self._lock
    bytes_copied_in: int = 0  # guarded-by: self._lock
    bytes_copied_out: int = 0  # guarded-by: self._lock
    #: Per-entry-point ecall counts, e.g. {"dict_search": 3}. Benchmarks use
    #: this to assert *which* boundary crossings a query plan performed
    #: (one ``dict_search_batch`` vs N ``dict_search`` calls).
    ecalls_by_name: dict = field(default_factory=dict)  # guarded-by: self._lock
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def record_ecall(
        self, bytes_in: int = 0, bytes_out: int = 0, name: str | None = None
    ) -> None:
        with self._lock:
            self.ecalls += 1
            self.bytes_copied_in += bytes_in
            self.bytes_copied_out += bytes_out
            if name is not None:
                self.ecalls_by_name[name] = self.ecalls_by_name.get(name, 0) + 1

    def record_ocall(self) -> None:
        with self._lock:
            self.ocalls += 1

    def record_page_fault(self, count: int = 1) -> None:
        with self._lock:
            self.epc_page_faults += count

    def record_untrusted_load(self, count: int = 1) -> None:
        with self._lock:
            self.untrusted_loads += count

    def record_decryption(self, nbytes: int) -> None:
        with self._lock:
            self.decryptions += 1
            self.decrypted_bytes += nbytes

    def record_decryption_batch(self, count: int, nbytes: int) -> None:
        """Charge ``count`` decryptions totalling ``nbytes`` in one locked
        update — identical counters to ``count`` single calls, one lock
        acquisition (the packed-dictionary fill decrypts whole partitions)."""
        with self._lock:
            self.decryptions += count
            self.decrypted_bytes += nbytes

    def record_comparison(self, count: int = 1) -> None:
        with self._lock:
            self.comparisons += count

    def estimated_cycles(self) -> int:
        """Total architectural cycles implied by the recorded events."""
        p = self.parameters
        return (
            self.ecalls * p.ecall_cycles
            + self.ocalls * p.ocall_cycles
            + self.epc_page_faults * p.epc_page_fault_cycles
            + self.untrusted_loads * p.untrusted_load_cycles
            + self.decryptions * p.aes_gcm_fixed_cycles
            + self.decrypted_bytes * p.aes_gcm_per_byte_cycles
            + self.comparisons * p.compare_cycles
        )

    def estimated_seconds(self) -> float:
        """The recorded cycles expressed as time on the paper's CPU."""
        return self.estimated_cycles() / self.parameters.clock_hz

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of the counters, convenient for reports."""
        with self._lock:
            return {
                "ecalls": self.ecalls,
                "ocalls": self.ocalls,
                "epc_page_faults": self.epc_page_faults,
                "untrusted_loads": self.untrusted_loads,
                "decryptions": self.decryptions,
                "decrypted_bytes": self.decrypted_bytes,
                "comparisons": self.comparisons,
                "bytes_copied_in": self.bytes_copied_in,
                "bytes_copied_out": self.bytes_copied_out,
            }

    def reset(self) -> None:
        """Zero every counter (the weights are kept)."""
        with self._lock:
            for name in self.snapshot():
                setattr(self, name, 0)
            self.ecalls_by_name.clear()

    def diff(self, earlier: dict[str, int]) -> dict[str, int]:
        """Counters accumulated since an earlier :meth:`snapshot`."""
        current = self.snapshot()
        return {key: current[key] - earlier.get(key, 0) for key in current}

"""Migration plans: a rotation decomposed into reversible phased steps.

A plan is pure data — table, column, source and target (kind, key epoch),
and an ordered tuple of :class:`MigrationStep`\\ s grouped into four phases:

``prep``
    Open the column's dual-version shadow slots (``open-shadow``).
``backfill``
    One ``rotate`` step per main partition: the ``rotate_partition`` ecall
    rebuilds the partition's ciphertext under the target kind/epoch and the
    result is parked in the shadow slot. The old version keeps serving.
``tighten``
    One ``verify`` step per partition: enclave-issued join tokens (fresh
    salt) prove the shadow build holds exactly the old rows in the old
    order, without revealing plaintext to the verifier.
``finalize``
    Kind-only rotations promote partitions one ``swap`` at a time — readers
    stall at most one partition swap. Key rotations instead need one
    atomic ``flip`` (partitions + delta + epoch change together, or the
    proxy could not pick a decryption key per result column). Both end with
    ``adopt``: the catalog spec takes the new kind/epoch and the shadow
    state is dropped — the point of no return.

Every step before ``adopt`` has an inverse, so :meth:`MigrationJob.rollback
<repro.migrate.runner.MigrationJob.rollback>` can unwind any executed
prefix in reverse order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import MigrationError

PHASES = ("prep", "backfill", "tighten", "finalize")

#: Step actions, per phase: prep→open-shadow, backfill→rotate,
#: tighten→verify, finalize→swap|flip then adopt.
ACTIONS = ("open-shadow", "rotate", "verify", "swap", "flip", "adopt")


@dataclass(frozen=True)
class MigrationStep:
    """One reversible unit of work of an online rotation."""

    step_id: int
    phase: str
    action: str
    table: str
    column: str
    #: Main-partition index the step touches; -1 for whole-column steps.
    partition_index: int = -1

    def __post_init__(self) -> None:
        if self.phase not in PHASES:
            raise MigrationError(f"unknown migration phase {self.phase!r}")
        if self.action not in ACTIONS:
            raise MigrationError(f"unknown migration action {self.action!r}")


@dataclass(frozen=True)
class MigrationPlan:
    """A full rotation of one column, as an ordered step sequence."""

    table: str
    column: str
    old_kind: str
    new_kind: str
    old_key_epoch: int
    new_key_epoch: int
    partition_count: int
    steps: tuple[MigrationStep, ...]

    @property
    def rotates_key(self) -> bool:
        return self.new_key_epoch != self.old_key_epoch

    @classmethod
    def for_rotation(
        cls,
        table: str,
        column: str,
        *,
        old_kind: str,
        new_kind: str,
        old_key_epoch: int,
        new_key_epoch: int,
        partition_count: int,
    ) -> "MigrationPlan":
        """Decompose a rotation target into the phased step sequence."""
        if new_kind == old_kind and new_key_epoch == old_key_epoch:
            raise MigrationError(
                f"{table}.{column} is already {new_kind} at key epoch "
                f"{new_key_epoch}; nothing to migrate"
            )
        if new_key_epoch < old_key_epoch:
            raise MigrationError("key epochs only move forward")
        if partition_count < 1:
            raise MigrationError(f"{table}.{column} has no main partitions to rotate")
        steps: list[MigrationStep] = []

        def add(phase: str, action: str, partition_index: int = -1) -> None:
            steps.append(
                MigrationStep(
                    step_id=len(steps),
                    phase=phase,
                    action=action,
                    table=table,
                    column=column,
                    partition_index=partition_index,
                )
            )

        add("prep", "open-shadow")
        for index in range(partition_count):
            add("backfill", "rotate", index)
        for index in range(partition_count):
            add("tighten", "verify", index)
        if new_key_epoch != old_key_epoch:
            # The epoch change must be atomic across the whole column (the
            # delta store re-seals with it), so finalize is a single flip.
            add("finalize", "flip")
        else:
            # Same key, new kind: partitions can promote independently —
            # a reader is never blocked longer than one partition swap.
            for index in range(partition_count):
                add("finalize", "swap", index)
        add("finalize", "adopt")
        return cls(
            table=table,
            column=column,
            old_kind=old_kind,
            new_kind=new_kind,
            old_key_epoch=old_key_epoch,
            new_key_epoch=new_key_epoch,
            partition_count=partition_count,
            steps=tuple(steps),
        )


@dataclass
class MigrationStatus:
    """Wire-safe progress snapshot of one migration job.

    Everything here is public layout/progress metadata — kinds, epochs, the
    phase the cursor sits in, per-partition version labels — matching the
    §4.1 leakage stance: the provider already sees which ciphertext version
    serves; the status frame adds nothing.
    """

    migration_id: int
    table: str
    column: str
    old_kind: str
    new_kind: str
    old_key_epoch: int
    new_key_epoch: int
    state: str  # running | done | failed | rolled-back
    phase: str  # phase of the next (or failed) step; "finalize" when done
    steps_total: int
    steps_done: int
    partition_versions: list[str] = field(default_factory=list)
    error: str = ""

    @property
    def active(self) -> bool:
        return self.state in ("running", "failed")

"""Online ED-kind and key rotation (``repro.migrate``).

EncDBDB's protection kinds are a per-column dial (paper §3): a deployment
may start a column at ED3 and later decide the frequency leakage is too
cheap, or a compliance clock may demand a fresh column key. This package
re-encrypts a *live* column — partition by partition, while queries keep
flowing — to a different encrypted-dictionary kind and/or a new key epoch.

The untrusted side only schedules: every re-encryption happens inside the
enclave (``rotate_partition`` / ``rotate_delta`` ecalls), so plaintext never
leaves the TCB and the migration engine never names key material. A
:class:`MigrationPlan` decomposes one rotation into phased, individually
reversible steps; a :class:`~repro.migrate.runner.MigrationJob` executes
them and can roll back any prefix.
"""

from repro.migrate.plan import MigrationPlan, MigrationStatus, MigrationStep
from repro.migrate.runner import MigrationJob, MigrationManager

__all__ = [
    "MigrationPlan",
    "MigrationStatus",
    "MigrationStep",
    "MigrationJob",
    "MigrationManager",
]

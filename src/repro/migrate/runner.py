"""Migration execution: stepwise drive, verification, and rollback.

A :class:`MigrationJob` walks a :class:`~repro.migrate.plan.MigrationPlan`
one step at a time. Each step holds the enclave for at most one ecall-sized
critical section, so concurrent queries are never blocked longer than one
partition rotation or swap — the driver (``repro.net.server``) deliberately
runs migration verbs *off* the per-connection ecall lock, the same way bulk
load streams do, and relies on the enclave boundary lock plus the column's
shadow lock for correctness.

Verification (the ``tighten`` phase) never sees plaintext: the enclave
issues per-entry join tokens (``HMAC(k_salt, plaintext)`` under a fresh
salt) for the old and the shadow dictionary, and the untrusted runner
checks row-aligned token equality — the shadow build holds exactly the old
rows in the old order, or the job fails before anything is promoted.

A :class:`MigrationManager` owns job identity and the one-active-rotation-
per-column rule, and is what the DBMS front end drives.
"""

from __future__ import annotations

import threading

from repro.crypto.drbg import HmacDrbg
from repro.encdict.options import kind_by_name
from repro.exceptions import EncDBDBError, MigrationError
from repro.migrate.plan import MigrationPlan, MigrationStatus, MigrationStep
from repro.sgx.enclave import EnclaveHost


class MigrationJob:
    """One in-flight (or finished) column rotation."""

    def __init__(
        self,
        migration_id: int,
        plan: MigrationPlan,
        table,
        host: EnclaveHost,
        salt_rng: HmacDrbg,
    ) -> None:
        self.migration_id = migration_id
        self.plan = plan
        self._table = table
        self._host = host
        self._salt_rng = salt_rng
        self._lock = threading.RLock()
        #: Index of the next step to execute.
        self.position = 0  # guarded-by: self._lock
        self.state = "running"  # guarded-by: self._lock
        self.error = ""  # guarded-by: self._lock

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def advance(self, steps: int = 1) -> "MigrationStatus":
        """Execute up to ``steps`` plan steps; stops at completion or on the
        first failing step (which leaves the job ``failed`` and rollable)."""
        with self._lock:
            for _ in range(steps):
                if self.state != "running":
                    break
                step = self.plan.steps[self.position]
                try:
                    self._execute(step)
                except EncDBDBError as exc:
                    # Deferred import: repro.net.protocol imports this
                    # package, so the top level cannot.
                    from repro.net.errors import scrub_message

                    self.state = "failed"
                    # The error string crosses the wire inside typed
                    # MigrationStatus frames; scrub it like any error frame.
                    self.error = scrub_message(f"{step.phase}/{step.action}: {exc}")
                    break
                self.position += 1
                if self.position == len(self.plan.steps):
                    self.state = "done"
            return self.status()

    def run(self) -> "MigrationStatus":
        """Drive the job to completion (or to its first failure)."""
        with self._lock:
            while self.state == "running":
                self.advance()
            return self.status()

    def rollback(self) -> "MigrationStatus":
        """Undo every executed step in reverse order.

        Allowed while ``running`` (operator abort) or ``failed``; refused
        once ``adopt`` ran — the old versions are gone then, and the answer
        to "undo a finished rotation" is a new migration back.
        """
        with self._lock:
            if self.state == "done":
                raise MigrationError(
                    f"migration {self.migration_id} is finalized; "
                    "start a reverse migration instead"
                )
            if self.state == "rolled-back":
                return self.status()
            for index in range(self.position - 1, -1, -1):
                self._undo(self.plan.steps[index])
            self.position = 0
            self.state = "rolled-back"
            return self.status()

    def status(self) -> MigrationStatus:
        with self._lock:
            plan = self.plan
            if self.state == "done":
                phase = "finalize"
            else:
                cursor = min(self.position, len(plan.steps) - 1)
                phase = plan.steps[cursor].phase
            try:
                versions = self._column().partition_versions()
            except EncDBDBError:
                versions = []
            return MigrationStatus(
                migration_id=self.migration_id,
                table=plan.table,
                column=plan.column,
                old_kind=plan.old_kind,
                new_kind=plan.new_kind,
                old_key_epoch=plan.old_key_epoch,
                new_key_epoch=plan.new_key_epoch,
                state=self.state,
                phase=phase,
                steps_total=len(plan.steps),
                steps_done=self.position,
                partition_versions=versions,
                error=self.error,
            )

    # ------------------------------------------------------------------
    # Step implementations
    # ------------------------------------------------------------------
    def _column(self):
        return self._table.column(self.plan.column)

    def _execute(self, step: MigrationStep) -> None:
        getattr(self, "_do_" + step.action.replace("-", "_"))(step)

    def _undo(self, step: MigrationStep) -> None:
        getattr(self, "_undo_" + step.action.replace("-", "_"))(step)

    def _do_open_shadow(self, step: MigrationStep) -> None:
        self._column().begin_shadow(self.plan.new_kind, self.plan.new_key_epoch)

    def _undo_open_shadow(self, step: MigrationStep) -> None:
        self._column().clear_shadow()

    def _do_rotate(self, step: MigrationStep) -> None:
        column = self._column()
        spec = self._table.spec(self.plan.column)
        build = column.partition_builds[step.partition_index]
        rotated = self._host.ecall(
            "rotate_partition",
            build.dictionary,
            build.attribute_vector,
            new_kind=kind_by_name(self.plan.new_kind),
            key_epoch=self.plan.new_key_epoch,
            partition_index=step.partition_index,
            bsmax=spec.bsmax,
        )
        column.install_shadow(step.partition_index, rotated)

    def _undo_rotate(self, step: MigrationStep) -> None:
        self._column().uninstall_shadow(step.partition_index)

    def _do_verify(self, step: MigrationStep) -> None:
        """Row-aligned join-token equality of old vs. shadow partition."""
        column = self._column()
        shadow = column.shadow
        if shadow is None:
            raise MigrationError("verify without an open shadow")
        old = column.partition_builds[step.partition_index]
        new = shadow.builds[step.partition_index]
        if new is None:
            raise MigrationError(
                f"partition {step.partition_index} has no shadow build to verify"
            )
        salt = self._salt_rng.random_bytes(32)
        tokens_old = self._host.ecall("join_tokens", old.dictionary, salt)
        tokens_new = self._host.ecall("join_tokens", new.dictionary, salt)
        av_old = old.attribute_vector
        av_new = new.attribute_vector
        for row in range(len(av_old)):
            if tokens_old[int(av_old[row])] != tokens_new[int(av_new[row])]:
                raise MigrationError(
                    f"partition {step.partition_index} row {row}: rotated "
                    "value does not match the original"
                )

    def _undo_verify(self, step: MigrationStep) -> None:
        pass  # verification has no side effects

    def _do_swap(self, step: MigrationStep) -> None:
        self._column().swap_shadow(step.partition_index)

    def _undo_swap(self, step: MigrationStep) -> None:
        self._column().unswap_shadow(step.partition_index)

    def _do_flip(self, step: MigrationStep) -> None:
        """Atomic key-rotation finalize: partitions, delta and epoch move
        together under the column's rotation lock, with the delta re-sealed
        by the ``rotate_delta`` ecall inside the same critical section (the
        insert path takes the same lock, so no insert can straddle it)."""
        column = self._column()
        plan = self.plan
        with column.rotation_lock():
            resealed = self._host.ecall(
                "rotate_delta",
                plan.table,
                plan.column,
                list(column.delta_blobs),
                old_key_epoch=plan.old_key_epoch,
                key_epoch=plan.new_key_epoch,
            )
            column.flip_shadow(resealed)

    def _undo_flip(self, step: MigrationStep) -> None:
        """Post-flip inserts are sealed under the new epoch; re-seal that
        suffix back to the old epoch so the restored column stays
        epoch-uniform."""
        column = self._column()
        plan = self.plan
        with column.rotation_lock():
            shadow = column.shadow
            if shadow is None or not shadow.flipped:
                return
            suffix = list(column.delta_blobs[len(shadow.old_delta):])
            resealed = self._host.ecall(
                "rotate_delta",
                plan.table,
                plan.column,
                suffix,
                old_key_epoch=plan.new_key_epoch,
                key_epoch=plan.old_key_epoch,
            )
            column.unflip_shadow(list(shadow.old_delta) + resealed)

    def _do_adopt(self, step: MigrationStep) -> None:
        """Point of no return: the catalog spec takes the new kind/epoch and
        the dual-version state is dropped."""
        column = self._column()
        plan = self.plan
        with column.rotation_lock():
            spec = self._table.spec(plan.column)
            # ColumnSpec is shared between table.specs and column.spec, so
            # mutating in place updates every view of the schema at once.
            spec.adopt_protection(kind_by_name(plan.new_kind), plan.new_key_epoch)
            column.set_key_epoch(plan.new_key_epoch)
            column.clear_shadow()

    def _undo_adopt(self, step: MigrationStep) -> None:
        raise MigrationError("a finalized migration cannot be rolled back")


class MigrationManager:
    """Owns migration identity and the one-rotation-per-column rule."""

    def __init__(self, catalog, host: EnclaveHost, salt_rng: HmacDrbg | None = None) -> None:
        self._catalog = catalog
        self._host = host
        self._salt_rng = (
            salt_rng if salt_rng is not None else HmacDrbg(b"EncDBDB-migration-salts")
        )
        self._lock = threading.RLock()
        self._next_id = 1  # guarded-by: self._lock
        # Active jobs keyed by (table, column); final statuses of retired jobs.
        self._jobs: dict[tuple[str, str], MigrationJob] = {}  # guarded-by: self._lock
        self._history: list[MigrationStatus] = []  # guarded-by: self._lock

    # ------------------------------------------------------------------
    def start(
        self,
        table_name: str,
        column_name: str,
        *,
        new_kind: str | None = None,
        rotate_key: bool = False,
    ) -> MigrationStatus:
        """Plan and register a rotation of ``table.column`` to ``new_kind``
        (default: keep the kind) and/or the next key epoch."""
        table = self._catalog.table(table_name)
        spec = table.spec(column_name)
        if not spec.is_encrypted:
            raise MigrationError(
                f"{table_name}.{column_name} is plaintext; nothing to rotate"
            )
        column = table.column(column_name)
        target_kind = new_kind if new_kind is not None else spec.protection.name
        kind_by_name(target_kind)  # raises for unknown names
        old_epoch = column.key_epoch
        plan = MigrationPlan.for_rotation(
            table_name,
            column_name,
            old_kind=spec.protection.name,
            new_kind=target_kind,
            old_key_epoch=old_epoch,
            new_key_epoch=old_epoch + 1 if rotate_key else old_epoch,
            partition_count=len(column.partition_builds),
        )
        with self._lock:
            key = (table_name, column_name)
            if key in self._jobs:
                raise MigrationError(
                    f"{table_name}.{column_name} already has migration "
                    f"{self._jobs[key].migration_id} in flight"
                )
            job = MigrationJob(
                self._next_id, plan, table, self._host, self._salt_rng
            )
            self._next_id += 1
            self._jobs[key] = job
        return job.status()

    def _job(self, table_name: str, column_name: str) -> MigrationJob:
        with self._lock:
            job = self._jobs.get((table_name, column_name))
        if job is None:
            raise MigrationError(
                f"{table_name}.{column_name} has no migration in flight"
            )
        return job

    def _retire_if_final(self, job: MigrationJob) -> None:
        with self._lock:
            if job.state in ("done", "rolled-back"):
                key = (job.plan.table, job.plan.column)
                if self._jobs.get(key) is job:
                    del self._jobs[key]
                    self._history.append(job.status())

    def step(self, table_name: str, column_name: str, steps: int = 1) -> MigrationStatus:
        job = self._job(table_name, column_name)
        status = job.advance(int(steps))
        self._retire_if_final(job)
        return status

    def run(self, table_name: str, column_name: str) -> MigrationStatus:
        job = self._job(table_name, column_name)
        status = job.run()
        self._retire_if_final(job)
        return status

    def rollback(self, table_name: str, column_name: str) -> MigrationStatus:
        job = self._job(table_name, column_name)
        status = job.rollback()
        self._retire_if_final(job)
        return status

    def status(
        self, table_name: str | None = None, column_name: str | None = None
    ) -> list[MigrationStatus]:
        """Active jobs first (id order), then retired history, optionally
        filtered to one table / column."""
        with self._lock:
            statuses = [
                job.status()
                for job in sorted(self._jobs.values(), key=lambda j: j.migration_id)
            ]
            statuses.extend(self._history)
        if table_name is not None:
            statuses = [s for s in statuses if s.table == table_name]
        if column_name is not None:
            statuses = [s for s in statuses if s.column == column_name]
        return statuses

    def active_tables(self) -> set[str]:
        """Tables with a rotation in flight (merge/save must wait)."""
        with self._lock:
            return {table for table, _ in self._jobs}

    @property
    def any_active(self) -> bool:
        with self._lock:
            return bool(self._jobs)

"""Cluster topology data: shards, endpoints, and partition assignments.

Pure data, importable from anywhere (trust level ``public``): which TCP
endpoints form each shard (primary first, then replicas) and which
contiguous range of a table's partitions every shard holds. Nothing here
touches connections, ciphertext, or key material — the shard map is what
the untrusted routing tier is *allowed* to know, which is exactly the
partition layout the servers store anyway (DESIGN.md §12).

Assignment is deterministic and contiguous: partition ``p`` of a table with
``P`` partitions over ``S`` shards lands on shard ``k`` iff
``k*P//S <= p < (k+1)*P//S`` — near-even spans in partition order, so the
concatenation of per-shard results in shard order equals the single-node
partition order and RecordIDs rebase by a per-shard constant
(:attr:`ShardSpan.row_base`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ClusterError


@dataclass(frozen=True)
class Endpoint:
    """One server address (host, port)."""

    host: str
    port: int

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass(frozen=True)
class Shard:
    """One replica group: the endpoints holding identical data.

    ``endpoints[0]`` is the primary (the preferred target); the rest are
    replicas a router may fail over to. All endpoints of a shard hold the
    same rows, so reads are served by any one of them and writes are
    broadcast to all of them.
    """

    shard_id: int
    endpoints: tuple[Endpoint, ...]

    def __post_init__(self) -> None:
        if not self.endpoints:
            raise ClusterError(f"shard {self.shard_id} has no endpoints")

    @property
    def primary(self) -> Endpoint:
        return self.endpoints[0]

    @property
    def replicas(self) -> tuple[Endpoint, ...]:
        return self.endpoints[1:]


@dataclass(frozen=True)
class ShardSpan:
    """The contiguous slice of one table that lives on one shard."""

    shard_id: int
    #: Half-open partition range ``[partition_lo, partition_hi)`` in the
    #: table's global partition order.
    partition_lo: int
    partition_hi: int
    #: Global RecordID of the span's first row: a shard-local main-store
    #: RecordID ``i`` is global ``row_base + i``.
    row_base: int
    #: Main-store rows resident in this span.
    row_count: int

    @property
    def partitions(self) -> int:
        return self.partition_hi - self.partition_lo

    def contains_row(self, global_row: int) -> bool:
        return self.row_base <= global_row < self.row_base + self.row_count


@dataclass(frozen=True)
class TableAssignment:
    """Where one table's partitions live across the cluster."""

    table_name: str
    partition_rows: int
    total_rows: int
    spans: tuple[ShardSpan, ...]

    @property
    def partition_count(self) -> int:
        return self.spans[-1].partition_hi if self.spans else 0

    def populated_spans(self) -> tuple[ShardSpan, ...]:
        """Spans that actually hold partitions (skips empty assignments
        when a table has fewer partitions than the cluster has shards)."""
        return tuple(span for span in self.spans if span.partitions > 0)

    def last_span(self) -> ShardSpan:
        """The span holding the table's tail — also where the delta store
        (inserts) lives, so delta RecordIDs stay globally contiguous."""
        populated = self.populated_spans()
        if not populated:
            raise ClusterError(
                f"table {self.table_name!r} has no populated shard span"
            )
        return populated[-1]

    def span_for_row(self, global_row: int) -> ShardSpan:
        """The span owning a global RecordID.

        RecordIDs at or past ``total_rows`` address delta rows, which all
        live with the last span (inserts are routed there).
        """
        if global_row >= self.total_rows:
            return self.last_span()
        for span in self.populated_spans():
            if span.contains_row(global_row):
                return span
        raise ClusterError(
            f"record id {global_row} outside every span of "
            f"{self.table_name!r}"
        )


def assign_spans(
    total_rows: int, partition_rows: int, shard_count: int
) -> list[tuple[int, int, int, int]]:
    """Contiguous near-even ``(lo, hi, row_base, row_count)`` per shard.

    Every partition holds exactly ``partition_rows`` rows except the last,
    which holds the remainder — the layout the streaming build pipeline
    produces — so row bases follow directly from partition indices.
    """
    if total_rows <= 0:
        raise ClusterError("cannot assign an empty table to shards")
    if partition_rows <= 0:
        raise ClusterError("partition_rows must be positive")
    partition_count = -(-total_rows // partition_rows)  # ceil

    def rows_before(partition: int) -> int:
        return min(partition * partition_rows, total_rows)

    spans = []
    for shard_id in range(shard_count):
        lo = shard_id * partition_count // shard_count
        hi = (shard_id + 1) * partition_count // shard_count
        base = rows_before(lo)
        spans.append((lo, hi, base, rows_before(hi) - base))
    return spans


class ShardMap:
    """The cluster's shards plus the per-table partition assignments."""

    def __init__(self, shards: list[Shard] | tuple[Shard, ...]) -> None:
        shards = tuple(shards)
        if not shards:
            raise ClusterError("a cluster needs at least one shard")
        if [shard.shard_id for shard in shards] != list(range(len(shards))):
            raise ClusterError("shard ids must be contiguous from 0")
        self.shards = shards
        self._assignments: dict[str, TableAssignment] = {}

    @classmethod
    def of_endpoints(
        cls, endpoints: list[list[tuple[str, int]]]
    ) -> "ShardMap":
        """Build a map from ``[[(host, port), ...], ...]`` — one inner list
        per shard, primary first."""
        return cls(
            [
                Shard(
                    shard_id,
                    tuple(Endpoint(host, int(port)) for host, port in group),
                )
                for shard_id, group in enumerate(endpoints)
            ]
        )

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def assign(
        self, table_name: str, total_rows: int, partition_rows: int
    ) -> TableAssignment:
        """Record the contiguous span assignment for one table load."""
        if table_name in self._assignments:
            raise ClusterError(f"table {table_name!r} is already assigned")
        assignment = TableAssignment(
            table_name,
            partition_rows,
            total_rows,
            tuple(
                ShardSpan(shard_id, lo, hi, base, rows)
                for shard_id, (lo, hi, base, rows) in enumerate(
                    assign_spans(total_rows, partition_rows, self.shard_count)
                )
            ),
        )
        self._assignments[table_name] = assignment
        return assignment

    def assignment(self, table_name: str) -> TableAssignment | None:
        return self._assignments.get(table_name)

    def drop(self, table_name: str) -> None:
        self._assignments.pop(table_name, None)

"""Scatter-gather query routing across a sharded EncDBDB cluster.

:class:`ClusterRouter` duck-types the :class:`~repro.server.dbms.
EncDBDBServer` surface the trusted proxy calls, so the existing
:class:`~repro.client.proxy.Proxy` — plan encryption, result decryption,
post-processing — runs against a whole cluster unchanged. Routing only ever
sees what a single untrusted server would see anyway: encrypted plans in,
padded per-partition result unions out.

- **Scatter.** A SELECT on a sharded table fans the *same* encrypted plan
  out to one healthy endpoint of every populated shard, concurrently on a
  shared worker pool. Each shard runs the ordinary ``EnclDictSearch`` over
  its resident partitions.
- **Gather.** Per-shard results are concatenated in shard order — which is
  global partition order by construction (contiguous spans) — and shard-
  local RecordIDs are rebased by the span's ``row_base``. The merged result
  is exactly the padded union a single node would produce, so the §6
  leakage argument carries over (DESIGN.md §12).
- **Failover.** Endpoints of one shard are replicas; a transport failure
  against one retries the call on the next, sticking to whichever endpoint
  last answered.
- **Writes.** Inserts go to the shard holding the table's tail (keeping
  delta RecordIDs globally contiguous) and are broadcast to all of its
  replicas; deletes/merges broadcast to every populated shard.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterable

import numpy as np

from repro.cluster.shardmap import Shard, ShardMap, TableAssignment
from repro.exceptions import ClusterError, NetworkError, QueryError
from repro.net.client import (
    FrameTap,
    NetConnection,
    RemoteServer,
    RetryPolicy,
    _RemoteTable,
)
from repro.runtime import CLUSTER_POOL, shared_pool
from repro.sql.result import (
    AggregateFrames,
    PushdownSelectResult,
    ResultColumn,
    RoutingDecision,
    ServerResult,
)


class EndpointPool:
    """A bounded pool of client connections to one server endpoint.

    ``capacity`` is the admission control on the client side: at most that
    many connections (and therefore server sessions) exist per endpoint, and
    a caller needing one past capacity *blocks* until a lease frees up —
    backpressure instead of an unbounded connection storm. Connections are
    reused LIFO; a lease that ends in a transport error discards its
    connection instead of returning it.

    The pool also tracks endpoint **health**: a transport failure marks the
    endpoint down (and drops every idle socket — they share the dead
    server), and after ``probe_interval`` seconds the next :meth:`healthy`
    check re-probes with one fresh connection attempt. A restarted replica
    therefore rejoins the shard group's read rotation by itself, instead of
    staying parked behind a sticky preference forever.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        capacity: int = 8,
        timeout: float = 60.0,
        retry: RetryPolicy | None = None,
        tap: FrameTap | None = None,
        probe_interval: float = 2.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.tap = tap
        self.probe_interval = probe_interval
        self._slots = threading.BoundedSemaphore(capacity)
        self._lock = threading.Lock()
        self._idle: list[RemoteServer] = []  # guarded-by: self._lock
        self._closed = False  # guarded-by: self._lock
        self._healthy = True  # guarded-by: self._lock
        self._next_probe = 0.0  # guarded-by: self._lock

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _connect(self, retry: RetryPolicy | None) -> RemoteServer:
        return RemoteServer(
            NetConnection(
                self.host,
                self.port,
                timeout=self.timeout,
                tap=self.tap,
                retry=retry,
            )
        )

    def _checkout(self) -> RemoteServer:
        with self._lock:
            if self._closed:
                raise ClusterError(f"endpoint pool {self.address} is closed")
            if self._idle:
                return self._idle.pop()
        return self._connect(self.retry)

    def _checkin(self, server: RemoteServer) -> None:
        with self._lock:
            if not self._closed:
                self._idle.append(server)
                return
        server.close()

    @contextmanager
    def lease(self):
        """One connection, held across every request issued inside the
        block (required by session-bound sequences like provisioning)."""
        with self._slots:
            server = self._checkout()
            try:
                yield server
            except NetworkError:
                # Transport state is unknown — do not reuse the socket, and
                # treat the endpoint as down until a probe says otherwise.
                server.close()
                self.mark_failed()
                raise
            except BaseException:
                self._checkin(server)  # typed server errors leave it usable
                raise
            else:
                self._checkin(server)
                with self._lock:
                    self._healthy = True

    def call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """One RPC on a pooled connection.

        A *reused* idle socket that fails gets one retry on a fresh
        connection before the endpoint is declared down: a restarted server
        leaves every pooled socket dead while the endpoint itself is fine,
        and without the retry the first write after a restart would be
        skipped as "replica stale" even though the replica is back.
        """
        with self._slots:
            with self._lock:
                if self._closed:
                    raise ClusterError(f"endpoint pool {self.address} is closed")
                reused = self._idle.pop() if self._idle else None
            server = reused if reused is not None else self._connect(self.retry)
            for attempt in (0, 1):
                try:
                    value = getattr(server, method)(*args, **kwargs)
                except NetworkError:
                    server.close()
                    if attempt == 0 and reused is not None:
                        try:
                            server = self._connect(RetryPolicy.none())
                        except NetworkError:
                            self.mark_failed()
                            raise
                        continue
                    self.mark_failed()
                    raise
                except BaseException:
                    self._checkin(server)  # typed server errors leave it usable
                    raise
                else:
                    self._checkin(server)
                    with self._lock:
                        self._healthy = True
                    return value
            raise AssertionError("unreachable")  # pragma: no cover

    # -- health (periodic re-probe; a restarted server rejoins) ----------
    def mark_failed(self) -> None:
        """Record a transport failure: down until a probe succeeds, and the
        idle sockets are dropped (they point at the dead server)."""
        with self._lock:
            self._healthy = False
            self._next_probe = time.monotonic() + self.probe_interval
            idle, self._idle = self._idle, []
        for server in idle:
            server.close()

    def healthy(self) -> bool:
        """Current health; re-probes at most once per ``probe_interval``."""
        with self._lock:
            if self._closed:
                return False
            if self._healthy:
                return True
            if time.monotonic() < self._next_probe:
                return False
        return self.probe()

    def probe(self) -> bool:
        """One fresh connection attempt (no retries, fails fast). Success
        marks the endpoint healthy and keeps the socket for reuse."""
        try:
            server = self._connect(RetryPolicy.none())
        except NetworkError:
            with self._lock:
                self._healthy = False
                self._next_probe = time.monotonic() + self.probe_interval
            return False
        with self._lock:
            self._healthy = True
            if not self._closed:
                self._idle.append(server)
                server = None
        if server is not None:
            server.close()
        return True

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for server in idle:
            server.close()


class ShardGroup:
    """One shard's endpoints (primary + replicas) with failover.

    Reads rotate round-robin over the endpoints the pools currently report
    healthy; endpoints that went down keep being probed on their pools'
    ``probe_interval`` and re-enter the rotation as soon as a probe
    succeeds — a restarted replica rejoins without operator action.
    Unhealthy endpoints are still *tried last* rather than skipped, so a
    shard whose every endpoint died fails loudly, not silently.
    """

    def __init__(self, shard: Shard, pools: list[EndpointPool]) -> None:
        self.shard = shard
        self.pools = pools
        self._rr = 0  # guarded-by: self._rr_lock
        self._rr_lock = threading.Lock()

    def _order(self) -> list[int]:
        with self._rr_lock:
            start = self._rr
            self._rr += 1
        healthy = [i for i, pool in enumerate(self.pools) if pool.healthy()]
        if not healthy:
            count = len(self.pools)
            return [(start + i) % count for i in range(count)]
        rotated = [
            healthy[(start + i) % len(healthy)] for i in range(len(healthy))
        ]
        return rotated + [i for i in range(len(self.pools)) if i not in healthy]

    def call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Run one RPC on the first endpoint that answers.

        Only transport failures fail over — a typed server error (query,
        catalog, security) is an *answer* and propagates as-is, so replicas
        are never asked to re-run a semantically rejected request.
        """
        failures: list[str] = []
        for index in self._order():
            pool = self.pools[index]
            try:
                value = pool.call(method, *args, **kwargs)
            except NetworkError as exc:
                failures.append(f"{pool.address}: {exc}")
                continue
            return value
        raise ClusterError(
            f"shard {self.shard.shard_id}: every endpoint failed "
            f"({'; '.join(failures)})"
        )

    def broadcast(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Run one RPC on **every** reachable endpoint (replica writes).

        Returns the first successful result; raises only when no endpoint
        succeeded. A replica that is down simply misses the write — it is
        stale, not inconsistent, and the topology treats it as failed.
        """
        result = None
        succeeded = False
        failures: list[str] = []
        for pool in self.pools:
            try:
                value = pool.call(method, *args, **kwargs)
            except NetworkError as exc:
                failures.append(f"{pool.address}: {exc}")
                continue
            if not succeeded:
                result = value
                succeeded = True
        if not succeeded:
            raise ClusterError(
                f"shard {self.shard.shard_id}: broadcast {method!r} failed "
                f"on every endpoint ({'; '.join(failures)})"
            )
        return result

    def broadcast_all(self, method: str, *args: Any, **kwargs: Any) -> list[Any]:
        """Run one RPC on every endpoint, requiring **all** to succeed.

        Migration verbs use this instead of :meth:`broadcast`: a replica
        that silently misses a rotation would adopt a different schema than
        its peers, which is divergence, not staleness — so an unreachable
        endpoint aborts the verb loudly.
        """
        values = []
        for pool in self.pools:
            try:
                values.append(pool.call(method, *args, **kwargs))
            except NetworkError as exc:
                raise ClusterError(
                    f"shard {self.shard.shard_id}: {method!r} needs every "
                    f"replica, but {pool.address} failed: {exc}"
                ) from exc
        return values

    def broadcast_each(self, method: str, *args: Any, **kwargs: Any) -> list[Any]:
        """Run one RPC on every endpoint that answers; skip the dead ones.

        The read-only companion of :meth:`broadcast_all` (migration
        *status* wants the reachable endpoints' view even when a replica is
        down — observing is not mutating)."""
        values = []
        for pool in self.pools:
            try:
                values.append(pool.call(method, *args, **kwargs))
            except NetworkError:
                continue
        return values

    def close(self) -> None:
        for pool in self.pools:
            pool.close()


class _RouterCostModel:
    """Aggregated cost-model view (drives the shell's ``.stats``)."""

    def __init__(self, router: "ClusterRouter") -> None:
        self._router = router

    def snapshot(self) -> dict:
        return self._router.cost_snapshot()

    @property
    def ecalls(self) -> int:
        return self.snapshot()["ecalls"]

    @property
    def decryptions(self) -> int:
        return self.snapshot()["decryptions"]

    @property
    def untrusted_loads(self) -> int:
        return self.snapshot()["untrusted_loads"]

    def estimated_cycles(self) -> float:
        return self.snapshot()["estimated_cycles"]


class _RouterCatalog:
    """Schema-only catalog shim, served by shard 0 (all shards agree)."""

    def __init__(self, router: "ClusterRouter") -> None:
        self._router = router

    def table_names(self) -> list[str]:
        return self._router.group(0).call("table_names")

    def table(self, name: str) -> _RemoteTable:
        return _RemoteTable(name, self._router.group(0).call("table_specs", name))


class ClusterRouter:
    """The scatter-gather client of a replicated EncDBDB cluster."""

    def __init__(
        self,
        shard_map: ShardMap,
        *,
        capacity: int = 8,
        timeout: float = 60.0,
        retry: RetryPolicy | None = None,
        tap: FrameTap | None = None,
        scatter_workers: int | None = None,
        probe_interval: float = 2.0,
    ) -> None:
        self.shard_map = shard_map
        self.groups = [
            ShardGroup(
                shard,
                [
                    EndpointPool(
                        endpoint.host,
                        endpoint.port,
                        capacity=capacity,
                        timeout=timeout,
                        retry=retry,
                        tap=tap,
                        probe_interval=probe_interval,
                    )
                    for endpoint in shard.endpoints
                ],
            )
            for shard in shard_map.shards
        ]
        self._scatter_workers = (
            scatter_workers
            if scatter_workers is not None
            else max(2, 2 * shard_map.shard_count)
        )
        self.catalog = _RouterCatalog(self)
        self.cost_model = _RouterCostModel(self)

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def group(self, shard_id: int) -> ShardGroup:
        return self.groups[shard_id]

    def _assignment(self, table_name: str) -> TableAssignment | None:
        return self.shard_map.assignment(table_name)

    def _read_targets(self, table_name: str) -> list[tuple[Any, ShardGroup]]:
        """(span | None, group) pairs a read of ``table_name`` must visit.

        A table never deployed through the coordinator (DDL + inserts only)
        has no assignment; all of its rows live on shard 0 by convention.
        """
        assignment = self._assignment(table_name)
        if assignment is None:
            return [(None, self.groups[0])]
        return [
            (span, self.groups[span.shard_id])
            for span in assignment.populated_spans()
        ]

    def _scatter(self, thunks: list[Callable[[], Any]]) -> list[Any]:
        """Run the per-shard thunks concurrently; propagate the first error."""
        if len(thunks) == 1:
            return [thunks[0]()]
        pool = shared_pool(
            CLUSTER_POOL, self._scatter_workers, thread_name_prefix="cluster"
        )
        futures = [pool.submit(thunk) for thunk in thunks]
        try:
            return [future.result() for future in futures]
        finally:
            for future in futures:
                future.cancel()

    # ------------------------------------------------------------------
    # Reads: scatter the plan, gather the padded unions
    # ------------------------------------------------------------------
    def execute_select(self, plan) -> ServerResult:
        targets = self._read_targets(plan.table)
        results = self._scatter(
            [
                (lambda group=group: group.call("execute_select", plan))
                for _span, group in targets
            ]
        )
        if len(targets) == 1 and targets[0][0] is None:
            return results[0]
        return self._merge_results(
            plan.table, [span for span, _group in targets], results
        )

    def execute_select_pushdown(self, plan) -> PushdownSelectResult:
        """Scatter a routed SELECT; merge pushed-down partial aggregates.

        Aggregate states are associative (COUNT/SUM add, MIN/MAX fold, AVG
        is a sum+count pair), so when every shard answers with group frames
        the router simply concatenates them in span order — the proxy's
        frame merge folds same-group partials exactly as it folds a single
        node's per-partition frames. When every shard ships rows, the
        ordinary padded-union gather applies (a per-shard ORDER BY top-K
        union is a superset of the global top-K; the proxy re-sorts and
        re-limits). Only when shards *disagree* — per-shard cost gates can
        route the same plan differently — is the plan re-issued as plain
        row shipping, recorded as a ``cluster: pushdown-fallback`` routing
        decision instead of a refusal.
        """
        targets = self._read_targets(plan.table)
        results = self._scatter(
            [
                (lambda group=group: group.call("execute_select_pushdown", plan))
                for _span, group in targets
            ]
        )
        if len(targets) == 1 and targets[0][0] is None:
            return results[0]
        spans = [span for span, _group in targets]
        have_frames = [result.aggregate is not None for result in results]
        if all(have_frames):
            first = results[0].aggregate
            for result in results[1:]:
                if (
                    result.aggregate.group_column != first.group_column
                    or result.aggregate.labels != first.labels
                ):
                    raise ClusterError(
                        f"table {plan.table!r}: shards answered with "
                        "mismatched aggregate frame layouts"
                    )
            frames = tuple(
                frame for result in results for frame in result.aggregate.frames
            )
            merged = AggregateFrames(
                first.table_name, first.group_column, first.labels, frames
            )
            decisions = results[0].decisions + (
                RoutingDecision(
                    "cluster",
                    True,
                    f"scatter over {len(results)} shard(s): partial "
                    "aggregate frames merge at the proxy",
                ),
            )
            return PushdownSelectResult(decisions, aggregate=merged)
        if not any(have_frames):
            merged_rows = self._merge_results(
                plan.table, spans, [result.rows for result in results]
            )
            # Per-shard ordering does not survive concatenation; the proxy
            # re-sorts the union, so the merged result is unordered.
            return PushdownSelectResult(results[0].decisions, rows=merged_rows)
        plain = self._scatter(
            [
                (lambda group=group: group.call("execute_select", plan))
                for _span, group in targets
            ]
        )
        merged_rows = self._merge_results(plan.table, spans, plain)
        decisions = tuple(
            RoutingDecision(decision.clause, False, decision.reason)
            for decision in results[0].decisions
        ) + (
            RoutingDecision(
                "cluster",
                False,
                "pushdown-fallback: shard cost gates disagreed; "
                "re-issued as row shipping",
            ),
        )
        return PushdownSelectResult(decisions, rows=merged_rows)

    def explain_pushdown(self, plan) -> tuple:
        """EXPLAIN hook: per-clause pushdown routing, cluster-wide.

        Shard 0's decisions stand in for the cluster (all shards see the
        same plan); a trailing ``cluster`` decision reports the gather —
        or, when the shards' static routing disagrees, the row-shipping
        fallback execution would take.
        """
        table_name = getattr(plan, "table", None)
        if table_name is None:
            return tuple(self.group(0).call("explain_pushdown", plan))
        targets = self._read_targets(table_name)
        per_shard = self._scatter(
            [
                (
                    lambda group=group: tuple(
                        group.call("explain_pushdown", plan)
                    )
                )
                for _span, group in targets
            ]
        )
        decisions = per_shard[0]
        if len(per_shard) == 1:
            return decisions
        shapes = {
            tuple((decision.clause, decision.pushed) for decision in shard)
            for shard in per_shard
        }
        if len(shapes) > 1:
            return decisions + (
                RoutingDecision(
                    "cluster",
                    False,
                    f"pushdown-fallback: {len(per_shard)} shard(s) route "
                    "this plan differently; execution re-issues row shipping",
                ),
            )
        if any(decision.pushed for decision in decisions):
            return decisions + (
                RoutingDecision(
                    "cluster",
                    True,
                    f"scatter over {len(per_shard)} shard(s): partial "
                    "results merge at the proxy",
                ),
            )
        return decisions

    def _merge_results(
        self, table_name: str, spans: list, results: list[ServerResult]
    ) -> ServerResult:
        """Union per-shard results exactly as a single node unions its
        per-partition results: concatenate in (shard =) partition order and
        rebase shard-local RecordIDs by the span's ``row_base``."""
        record_ids: list[np.ndarray] = []
        columns: dict[str, ResultColumn] = {}
        for span, result in zip(spans, results):
            rebased = np.asarray(result.record_ids, dtype=np.int64)
            record_ids.append(rebased + span.row_base)
            for name, column in result.columns.items():
                merged = columns.get(name)
                if merged is None:
                    columns[name] = ResultColumn(
                        column.table_name,
                        column.column_name,
                        column.encrypted,
                        list(column.data),
                        key_epoch=getattr(column, "key_epoch", 0),
                    )
                else:
                    if getattr(column, "key_epoch", 0) != merged.key_epoch:
                        # Shards rotate independently; a scatter that lands
                        # mid-flip on one shard would need per-span epochs.
                        # Refuse rather than hand the proxy undecryptable
                        # blobs under one stamped epoch.
                        raise ClusterError(
                            f"column {name!r}: shards answered with mixed "
                            "key epochs; retry after the rotation settles"
                        )
                    merged.data.extend(column.data)
        merged_ids = (
            np.concatenate(record_ids)
            if record_ids
            else np.empty(0, dtype=np.int64)
        )
        return ServerResult(table_name, merged_ids, columns)

    def execute_join_select(self, plan, salt: bytes) -> ServerResult:
        """Joins pass through only when both tables live on one shard.

        Cross-shard joins would need the proxy to match enclave-issued join
        tokens across shard results; that is future work and refused loudly
        rather than answered wrong.
        """
        shard_ids = set()
        for table_name in (plan.left_table, plan.right_table):
            for _span, group in self._read_targets(table_name):
                shard_ids.add(group.shard.shard_id)
        if len(shard_ids) > 1:
            raise QueryError(
                f"join of {plan.left_table!r} and {plan.right_table!r} "
                f"spans shards {sorted(shard_ids)}; cross-shard joins are "
                "not supported"
            )
        return self.group(shard_ids.pop()).call(
            "execute_join_select", plan, salt
        )

    # ------------------------------------------------------------------
    # Writes: route to the owning shard group, broadcast to its replicas
    # ------------------------------------------------------------------
    def _tail_group(self, table_name: str) -> ShardGroup:
        assignment = self._assignment(table_name)
        if assignment is None:
            return self.groups[0]
        return self.groups[assignment.last_span().shard_id]

    def execute_insert(self, table_name: str, prepared_rows: list[dict]) -> int:
        return self._tail_group(table_name).broadcast(
            "execute_insert", table_name, prepared_rows
        )

    def execute_delete(self, plan) -> int:
        counts = self._scatter(
            [
                (lambda group=group: group.broadcast("execute_delete", plan))
                for _span, group in self._read_targets(plan.table)
            ]
        )
        return sum(counts)

    def delete_record_ids(self, table_name: str, record_ids) -> int:
        assignment = self._assignment(table_name)
        if assignment is None:
            return self.groups[0].broadcast(
                "delete_record_ids", table_name, record_ids
            )
        by_shard: dict[int, list[int]] = {}
        for global_id in np.asarray(record_ids, dtype=np.int64):
            span = assignment.span_for_row(int(global_id))
            by_shard.setdefault(span.shard_id, []).append(
                int(global_id) - span.row_base
            )
        deleted = 0
        for shard_id, local_ids in by_shard.items():
            deleted += self.groups[shard_id].broadcast(
                "delete_record_ids", table_name, local_ids
            )
        return deleted

    def execute_merge(self, plan) -> int:
        counts = self._scatter(
            [
                (lambda group=group: group.broadcast("execute_merge", plan))
                for _span, group in self._read_targets(plan.table)
            ]
        )
        return sum(counts)

    # ------------------------------------------------------------------
    # Online rotation (repro.migrate): every replica of every populated
    # shard rotates, and the deterministic rotation seed guarantees they
    # all converge on byte-identical ciphertext.
    # ------------------------------------------------------------------
    def _migrate_groups(self, table_name: str) -> list[ShardGroup]:
        """Populated shard groups of ``table_name``, span-ordered."""
        groups: list[ShardGroup] = []
        for _span, group in self._read_targets(table_name):
            if group not in groups:
                groups.append(group)
        return groups

    def _migrate_scatter(
        self,
        table_name: str,
        method: str,
        *args: Any,
        strict: bool = True,
        **kwargs: Any,
    ) -> list:
        """Run one migrate verb on every endpoint of every populated shard;
        the flattened per-endpoint statuses come back in span order (and
        endpoint order within a shard), so progress reads top-to-bottom as
        the data lays out. ``strict`` verbs (anything mutating) require
        every endpoint; status reads settle for the reachable ones."""
        groups = self._migrate_groups(table_name)
        fan_out = "broadcast_all" if strict else "broadcast_each"
        per_group = self._scatter(
            [
                (lambda g=group: getattr(g, fan_out)(method, *args, **kwargs))
                for group in groups
            ]
        )
        statuses: list = []
        for values in per_group:
            for value in values:
                statuses.extend(value if isinstance(value, list) else [value])
        return statuses

    def migrate_start(
        self,
        table_name: str,
        column_name: str,
        *,
        new_kind: str | None = None,
        rotate_key: bool = False,
    ) -> list:
        return self._migrate_scatter(
            table_name,
            "migrate_start",
            table_name,
            column_name,
            new_kind=new_kind,
            rotate_key=rotate_key,
        )

    def migrate_step(
        self, table_name: str, column_name: str, steps: int = 1
    ) -> list:
        return self._migrate_scatter(
            table_name, "migrate_step", table_name, column_name, steps
        )

    def migrate_run(self, table_name: str, column_name: str) -> list:
        return self._migrate_scatter(
            table_name, "migrate_run", table_name, column_name
        )

    def migrate_status(
        self, table_name: str | None = None, column_name: str | None = None
    ) -> list:
        if table_name is None:
            statuses: list = []
            for name in self.table_names():
                statuses.extend(self.migrate_status(name, column_name))
            return statuses
        return self._migrate_scatter(
            table_name, "migrate_status", table_name, column_name, strict=False
        )

    def migrate_rollback(self, table_name: str, column_name: str) -> list:
        return self._migrate_scatter(
            table_name, "migrate_rollback", table_name, column_name
        )

    def explain_migrations(self, plan) -> list:
        """EXPLAIN hook: active rotations on the plan's table(s), cluster-
        wide (span-ordered, one status per endpoint)."""
        tables = [
            name
            for name in (
                getattr(plan, "table", None),
                getattr(plan, "left_table", None),
                getattr(plan, "right_table", None),
            )
            if name is not None
        ]
        statuses: list = []
        for table_name in dict.fromkeys(tables):
            try:
                statuses.extend(
                    status
                    for status in self.migrate_status(table_name)
                    if status.active
                )
            except (ClusterError, NetworkError):
                continue  # EXPLAIN stays best-effort when shards are down
        return statuses

    # ------------------------------------------------------------------
    # DDL and bulk import
    # ------------------------------------------------------------------
    def create_table(self, plan) -> None:
        for group in self.groups:
            group.broadcast("create_table", plan)

    def bulk_load_stream(self, table_name: str, partitions: Iterable) -> int:
        """Deploy a partition stream according to the table's assignment.

        Consumes :class:`~repro.encdict.pipeline.PartitionBuild` items in
        partition order, buffering only the current shard's span; when a
        span completes, its builds are shipped to every endpoint of that
        shard as one ``bulk_load`` (replicas receive byte-identical
        ciphertext — the build is deterministic and already done). Peak
        client memory is O(largest span), not O(table).
        """
        assignment = self._assignment(table_name)
        if assignment is None:
            raise ClusterError(
                f"table {table_name!r} has no shard assignment; "
                "assign it on the shard map before deploying"
            )
        spans = list(assignment.populated_spans())
        span_index = 0
        builds: dict[str, list] = {}
        plains: dict[str, list] = {}
        total_rows = 0
        next_partition = 0
        for partition in partitions:
            if span_index >= len(spans):
                raise ClusterError(
                    f"table {table_name!r}: more partitions streamed than "
                    "assigned"
                )
            for name, build in partition.builds.items():
                builds.setdefault(name, []).append(build)
            for name, values in partition.plain_values.items():
                plains.setdefault(name, []).extend(values)
            next_partition += 1
            if next_partition == spans[span_index].partition_hi:
                total_rows += self._flush_span(
                    table_name, spans[span_index], builds, plains
                )
                builds, plains = {}, {}
                span_index += 1
        if span_index != len(spans) or builds or plains:
            raise ClusterError(
                f"table {table_name!r}: partition stream ended before the "
                "assigned layout was covered"
            )
        return total_rows

    def _flush_span(
        self,
        table_name: str,
        span,
        builds: dict[str, list],
        plains: dict[str, list],
    ) -> int:
        group = self.groups[span.shard_id]
        return group.broadcast(
            "bulk_load",
            table_name,
            plain_columns=plains or None,
            encrypted_builds=builds or None,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def table_names(self) -> list[str]:
        return self.group(0).call("table_names")

    def table_specs(self, table_name: str) -> tuple:
        return tuple(self.group(0).call("table_specs", table_name))

    def cost_snapshot(self) -> dict:
        """Aggregate enclave cost counters over every shard primary."""
        shard_snapshots = [
            group.call("cost_snapshot") for group in self.groups
        ]
        merged: dict[str, Any] = {}
        for snapshot in shard_snapshots:
            for key, value in snapshot.items():
                if isinstance(value, (int, float)):
                    merged[key] = merged.get(key, 0) + value
                elif isinstance(value, dict):
                    bucket = merged.setdefault(key, {})
                    for name, count in value.items():
                        bucket[name] = bucket.get(name, 0) + count
        merged["shards"] = shard_snapshots
        return merged

    def save(self, path) -> None:
        raise ClusterError(
            "cluster-wide save is not supported; persist each shard through "
            "its own server"
        )

    # ------------------------------------------------------------------
    # EXPLAIN support (consumed by Proxy.explain via duck typing)
    # ------------------------------------------------------------------
    def explain_routing(self, plan) -> list[str]:
        from repro.sql.printer import cluster_routing_lines

        return cluster_routing_lines(plan, self.shard_map)

    def close(self) -> None:
        for group in self.groups:
            group.close()

"""Scatter-gather query routing across a sharded EncDBDB cluster.

:class:`ClusterRouter` duck-types the :class:`~repro.server.dbms.
EncDBDBServer` surface the trusted proxy calls, so the existing
:class:`~repro.client.proxy.Proxy` — plan encryption, result decryption,
post-processing — runs against a whole cluster unchanged. Routing only ever
sees what a single untrusted server would see anyway: encrypted plans in,
padded per-partition result unions out.

- **Scatter.** A SELECT on a sharded table fans the *same* encrypted plan
  out to one healthy endpoint of every populated shard, concurrently on a
  shared worker pool. Each shard runs the ordinary ``EnclDictSearch`` over
  its resident partitions.
- **Gather.** Per-shard results are concatenated in shard order — which is
  global partition order by construction (contiguous spans) — and shard-
  local RecordIDs are rebased by the span's ``row_base``. The merged result
  is exactly the padded union a single node would produce, so the §6
  leakage argument carries over (DESIGN.md §12).
- **Failover.** Endpoints of one shard are replicas; a transport failure
  against one retries the call on the next, sticking to whichever endpoint
  last answered.
- **Writes.** Inserts go to the shard holding the table's tail (keeping
  delta RecordIDs globally contiguous) and are broadcast to all of its
  replicas; deletes/merges broadcast to every populated shard.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterable

import numpy as np

from repro.cluster.shardmap import Shard, ShardMap, TableAssignment
from repro.exceptions import ClusterError, NetworkError, QueryError
from repro.net.client import (
    FrameTap,
    NetConnection,
    RemoteServer,
    RetryPolicy,
    _RemoteTable,
)
from repro.runtime import CLUSTER_POOL, shared_pool
from repro.sql.result import ResultColumn, ServerResult


class EndpointPool:
    """A bounded pool of client connections to one server endpoint.

    ``capacity`` is the admission control on the client side: at most that
    many connections (and therefore server sessions) exist per endpoint, and
    a caller needing one past capacity *blocks* until a lease frees up —
    backpressure instead of an unbounded connection storm. Connections are
    reused LIFO; a lease that ends in a transport error discards its
    connection instead of returning it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        capacity: int = 8,
        timeout: float = 60.0,
        retry: RetryPolicy | None = None,
        tap: FrameTap | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.tap = tap
        self._slots = threading.BoundedSemaphore(capacity)
        self._lock = threading.Lock()
        self._idle: list[RemoteServer] = []  # guarded-by: self._lock
        self._closed = False  # guarded-by: self._lock

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _checkout(self) -> RemoteServer:
        with self._lock:
            if self._closed:
                raise ClusterError(f"endpoint pool {self.address} is closed")
            if self._idle:
                return self._idle.pop()
        return RemoteServer(
            NetConnection(
                self.host,
                self.port,
                timeout=self.timeout,
                tap=self.tap,
                retry=self.retry,
            )
        )

    def _checkin(self, server: RemoteServer) -> None:
        with self._lock:
            if not self._closed:
                self._idle.append(server)
                return
        server.close()

    @contextmanager
    def lease(self):
        """One connection, held across every request issued inside the
        block (required by session-bound sequences like provisioning)."""
        with self._slots:
            server = self._checkout()
            try:
                yield server
            except NetworkError:
                # Transport state is unknown — do not reuse the socket.
                server.close()
                raise
            except BaseException:
                self._checkin(server)  # typed server errors leave it usable
                raise
            else:
                self._checkin(server)

    def call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        with self.lease() as server:
            return getattr(server, method)(*args, **kwargs)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for server in idle:
            server.close()


class ShardGroup:
    """One shard's endpoints (primary + replicas) with failover."""

    def __init__(self, shard: Shard, pools: list[EndpointPool]) -> None:
        self.shard = shard
        self.pools = pools
        self._preferred = 0  # guarded-by: self._preferred_lock
        self._preferred_lock = threading.Lock()

    def _order(self) -> list[int]:
        with self._preferred_lock:
            start = self._preferred
        count = len(self.pools)
        return [(start + i) % count for i in range(count)]

    def call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Run one RPC on the first endpoint that answers.

        Only transport failures fail over — a typed server error (query,
        catalog, security) is an *answer* and propagates as-is, so replicas
        are never asked to re-run a semantically rejected request.
        """
        failures: list[str] = []
        for index in self._order():
            pool = self.pools[index]
            try:
                value = pool.call(method, *args, **kwargs)
            except NetworkError as exc:
                failures.append(f"{pool.address}: {exc}")
                continue
            with self._preferred_lock:
                self._preferred = index
            return value
        raise ClusterError(
            f"shard {self.shard.shard_id}: every endpoint failed "
            f"({'; '.join(failures)})"
        )

    def broadcast(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Run one RPC on **every** reachable endpoint (replica writes).

        Returns the first successful result; raises only when no endpoint
        succeeded. A replica that is down simply misses the write — it is
        stale, not inconsistent, and the topology treats it as failed.
        """
        result = None
        succeeded = False
        failures: list[str] = []
        for pool in self.pools:
            try:
                value = pool.call(method, *args, **kwargs)
            except NetworkError as exc:
                failures.append(f"{pool.address}: {exc}")
                continue
            if not succeeded:
                result = value
                succeeded = True
        if not succeeded:
            raise ClusterError(
                f"shard {self.shard.shard_id}: broadcast {method!r} failed "
                f"on every endpoint ({'; '.join(failures)})"
            )
        return result

    def close(self) -> None:
        for pool in self.pools:
            pool.close()


class _RouterCostModel:
    """Aggregated cost-model view (drives the shell's ``.stats``)."""

    def __init__(self, router: "ClusterRouter") -> None:
        self._router = router

    def snapshot(self) -> dict:
        return self._router.cost_snapshot()

    @property
    def ecalls(self) -> int:
        return self.snapshot()["ecalls"]

    @property
    def decryptions(self) -> int:
        return self.snapshot()["decryptions"]

    @property
    def untrusted_loads(self) -> int:
        return self.snapshot()["untrusted_loads"]

    def estimated_cycles(self) -> float:
        return self.snapshot()["estimated_cycles"]


class _RouterCatalog:
    """Schema-only catalog shim, served by shard 0 (all shards agree)."""

    def __init__(self, router: "ClusterRouter") -> None:
        self._router = router

    def table_names(self) -> list[str]:
        return self._router.group(0).call("table_names")

    def table(self, name: str) -> _RemoteTable:
        return _RemoteTable(name, self._router.group(0).call("table_specs", name))


class ClusterRouter:
    """The scatter-gather client of a replicated EncDBDB cluster."""

    def __init__(
        self,
        shard_map: ShardMap,
        *,
        capacity: int = 8,
        timeout: float = 60.0,
        retry: RetryPolicy | None = None,
        tap: FrameTap | None = None,
        scatter_workers: int | None = None,
    ) -> None:
        self.shard_map = shard_map
        self.groups = [
            ShardGroup(
                shard,
                [
                    EndpointPool(
                        endpoint.host,
                        endpoint.port,
                        capacity=capacity,
                        timeout=timeout,
                        retry=retry,
                        tap=tap,
                    )
                    for endpoint in shard.endpoints
                ],
            )
            for shard in shard_map.shards
        ]
        self._scatter_workers = (
            scatter_workers
            if scatter_workers is not None
            else max(2, 2 * shard_map.shard_count)
        )
        self.catalog = _RouterCatalog(self)
        self.cost_model = _RouterCostModel(self)

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def group(self, shard_id: int) -> ShardGroup:
        return self.groups[shard_id]

    def _assignment(self, table_name: str) -> TableAssignment | None:
        return self.shard_map.assignment(table_name)

    def _read_targets(self, table_name: str) -> list[tuple[Any, ShardGroup]]:
        """(span | None, group) pairs a read of ``table_name`` must visit.

        A table never deployed through the coordinator (DDL + inserts only)
        has no assignment; all of its rows live on shard 0 by convention.
        """
        assignment = self._assignment(table_name)
        if assignment is None:
            return [(None, self.groups[0])]
        return [
            (span, self.groups[span.shard_id])
            for span in assignment.populated_spans()
        ]

    def _scatter(self, thunks: list[Callable[[], Any]]) -> list[Any]:
        """Run the per-shard thunks concurrently; propagate the first error."""
        if len(thunks) == 1:
            return [thunks[0]()]
        pool = shared_pool(
            CLUSTER_POOL, self._scatter_workers, thread_name_prefix="cluster"
        )
        futures = [pool.submit(thunk) for thunk in thunks]
        try:
            return [future.result() for future in futures]
        finally:
            for future in futures:
                future.cancel()

    # ------------------------------------------------------------------
    # Reads: scatter the plan, gather the padded unions
    # ------------------------------------------------------------------
    def execute_select(self, plan) -> ServerResult:
        targets = self._read_targets(plan.table)
        results = self._scatter(
            [
                (lambda group=group: group.call("execute_select", plan))
                for _span, group in targets
            ]
        )
        if len(targets) == 1 and targets[0][0] is None:
            return results[0]
        return self._merge_results(
            plan.table, [span for span, _group in targets], results
        )

    def _merge_results(
        self, table_name: str, spans: list, results: list[ServerResult]
    ) -> ServerResult:
        """Union per-shard results exactly as a single node unions its
        per-partition results: concatenate in (shard =) partition order and
        rebase shard-local RecordIDs by the span's ``row_base``."""
        record_ids: list[np.ndarray] = []
        columns: dict[str, ResultColumn] = {}
        for span, result in zip(spans, results):
            rebased = np.asarray(result.record_ids, dtype=np.int64)
            record_ids.append(rebased + span.row_base)
            for name, column in result.columns.items():
                merged = columns.get(name)
                if merged is None:
                    columns[name] = ResultColumn(
                        column.table_name,
                        column.column_name,
                        column.encrypted,
                        list(column.data),
                    )
                else:
                    merged.data.extend(column.data)
        merged_ids = (
            np.concatenate(record_ids)
            if record_ids
            else np.empty(0, dtype=np.int64)
        )
        return ServerResult(table_name, merged_ids, columns)

    def execute_join_select(self, plan, salt: bytes) -> ServerResult:
        """Joins pass through only when both tables live on one shard.

        Cross-shard joins would need the proxy to match enclave-issued join
        tokens across shard results; that is future work and refused loudly
        rather than answered wrong.
        """
        shard_ids = set()
        for table_name in (plan.left_table, plan.right_table):
            for _span, group in self._read_targets(table_name):
                shard_ids.add(group.shard.shard_id)
        if len(shard_ids) > 1:
            raise QueryError(
                f"join of {plan.left_table!r} and {plan.right_table!r} "
                f"spans shards {sorted(shard_ids)}; cross-shard joins are "
                "not supported"
            )
        return self.group(shard_ids.pop()).call(
            "execute_join_select", plan, salt
        )

    # ------------------------------------------------------------------
    # Writes: route to the owning shard group, broadcast to its replicas
    # ------------------------------------------------------------------
    def _tail_group(self, table_name: str) -> ShardGroup:
        assignment = self._assignment(table_name)
        if assignment is None:
            return self.groups[0]
        return self.groups[assignment.last_span().shard_id]

    def execute_insert(self, table_name: str, prepared_rows: list[dict]) -> int:
        return self._tail_group(table_name).broadcast(
            "execute_insert", table_name, prepared_rows
        )

    def execute_delete(self, plan) -> int:
        counts = self._scatter(
            [
                (lambda group=group: group.broadcast("execute_delete", plan))
                for _span, group in self._read_targets(plan.table)
            ]
        )
        return sum(counts)

    def delete_record_ids(self, table_name: str, record_ids) -> int:
        assignment = self._assignment(table_name)
        if assignment is None:
            return self.groups[0].broadcast(
                "delete_record_ids", table_name, record_ids
            )
        by_shard: dict[int, list[int]] = {}
        for global_id in np.asarray(record_ids, dtype=np.int64):
            span = assignment.span_for_row(int(global_id))
            by_shard.setdefault(span.shard_id, []).append(
                int(global_id) - span.row_base
            )
        deleted = 0
        for shard_id, local_ids in by_shard.items():
            deleted += self.groups[shard_id].broadcast(
                "delete_record_ids", table_name, local_ids
            )
        return deleted

    def execute_merge(self, plan) -> int:
        counts = self._scatter(
            [
                (lambda group=group: group.broadcast("execute_merge", plan))
                for _span, group in self._read_targets(plan.table)
            ]
        )
        return sum(counts)

    # ------------------------------------------------------------------
    # DDL and bulk import
    # ------------------------------------------------------------------
    def create_table(self, plan) -> None:
        for group in self.groups:
            group.broadcast("create_table", plan)

    def bulk_load_stream(self, table_name: str, partitions: Iterable) -> int:
        """Deploy a partition stream according to the table's assignment.

        Consumes :class:`~repro.encdict.pipeline.PartitionBuild` items in
        partition order, buffering only the current shard's span; when a
        span completes, its builds are shipped to every endpoint of that
        shard as one ``bulk_load`` (replicas receive byte-identical
        ciphertext — the build is deterministic and already done). Peak
        client memory is O(largest span), not O(table).
        """
        assignment = self._assignment(table_name)
        if assignment is None:
            raise ClusterError(
                f"table {table_name!r} has no shard assignment; "
                "assign it on the shard map before deploying"
            )
        spans = list(assignment.populated_spans())
        span_index = 0
        builds: dict[str, list] = {}
        plains: dict[str, list] = {}
        total_rows = 0
        next_partition = 0
        for partition in partitions:
            if span_index >= len(spans):
                raise ClusterError(
                    f"table {table_name!r}: more partitions streamed than "
                    "assigned"
                )
            for name, build in partition.builds.items():
                builds.setdefault(name, []).append(build)
            for name, values in partition.plain_values.items():
                plains.setdefault(name, []).extend(values)
            next_partition += 1
            if next_partition == spans[span_index].partition_hi:
                total_rows += self._flush_span(
                    table_name, spans[span_index], builds, plains
                )
                builds, plains = {}, {}
                span_index += 1
        if span_index != len(spans) or builds or plains:
            raise ClusterError(
                f"table {table_name!r}: partition stream ended before the "
                "assigned layout was covered"
            )
        return total_rows

    def _flush_span(
        self,
        table_name: str,
        span,
        builds: dict[str, list],
        plains: dict[str, list],
    ) -> int:
        group = self.groups[span.shard_id]
        return group.broadcast(
            "bulk_load",
            table_name,
            plain_columns=plains or None,
            encrypted_builds=builds or None,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def table_names(self) -> list[str]:
        return self.group(0).call("table_names")

    def table_specs(self, table_name: str) -> tuple:
        return tuple(self.group(0).call("table_specs", table_name))

    def cost_snapshot(self) -> dict:
        """Aggregate enclave cost counters over every shard primary."""
        shard_snapshots = [
            group.call("cost_snapshot") for group in self.groups
        ]
        merged: dict[str, Any] = {}
        for snapshot in shard_snapshots:
            for key, value in snapshot.items():
                if isinstance(value, (int, float)):
                    merged[key] = merged.get(key, 0) + value
                elif isinstance(value, dict):
                    bucket = merged.setdefault(key, {})
                    for name, count in value.items():
                        bucket[name] = bucket.get(name, 0) + count
        merged["shards"] = shard_snapshots
        return merged

    def save(self, path) -> None:
        raise ClusterError(
            "cluster-wide save is not supported; persist each shard through "
            "its own server"
        )

    # ------------------------------------------------------------------
    # EXPLAIN support (consumed by Proxy.explain via duck typing)
    # ------------------------------------------------------------------
    def explain_routing(self, plan) -> list[str]:
        from repro.sql.printer import cluster_routing_lines

        return cluster_routing_lines(plan, self.shard_map)

    def close(self) -> None:
        for group in self.groups:
            group.close()

"""Concurrent load generation against a cluster (or any query callable).

Drives ``clients`` worker threads against one ``issue(client_id, seq)``
callable — typically a closure over a shared :class:`~repro.client.proxy.
Proxy`, whose SELECT path is thread-safe — and reports latency percentiles
and throughput. Two forms of flow control:

- **Admission control**: at most ``max_inflight`` requests are issued at
  once; a client past the limit *blocks* before issuing (client-side
  backpressure, complementing the server's admission semaphore and the
  router's bounded connection pools).
- **Bounded work**: each client issues exactly ``requests_per_client``
  requests, so a run is deterministic in the amount of work performed and
  comparable across topologies.

Latency is recorded per request (monotonic clock, milliseconds); the merged
distribution yields p50/p99. Failures are counted, never swallowed silently
— the stats carry the first error message so a misconfigured topology shows
up in benchmark output instead of as a silently empty run.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class LoadStats:
    """The outcome of one load-generation run."""

    clients: int
    requests_per_client: int
    completed: int
    errors: int
    duration_s: float
    throughput_qps: float
    p50_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    max_inflight: int
    first_error: str | None = None
    latencies_ms: list[float] = field(default_factory=list, repr=False)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready summary (drops the raw latency list)."""
        return {
            "clients": self.clients,
            "requests_per_client": self.requests_per_client,
            "completed": self.completed,
            "errors": self.errors,
            "duration_s": round(self.duration_s, 4),
            "throughput_qps": round(self.throughput_qps, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "mean_ms": round(self.mean_ms, 3),
            "max_ms": round(self.max_ms, 3),
            "max_inflight": self.max_inflight,
            "first_error": self.first_error,
        }


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 for empty input)."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile fraction {q} outside [0, 1]")
    rank = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


class LoadGenerator:
    """Fixed-fleet closed-loop load driver with admission control."""

    def __init__(
        self,
        issue: Callable[[int, int], Any],
        *,
        clients: int = 64,
        requests_per_client: int = 4,
        max_inflight: int | None = None,
        check: Callable[[int, int, Any], None] | None = None,
    ) -> None:
        if clients <= 0 or requests_per_client <= 0:
            raise ValueError("clients and requests_per_client must be positive")
        self.issue = issue
        self.clients = clients
        self.requests_per_client = requests_per_client
        self.max_inflight = (
            max_inflight if max_inflight is not None else clients
        )
        #: Optional per-response validation hook ``check(client, seq,
        #: response)`` — raising marks the request failed.
        self.check = check
        self._admission = threading.BoundedSemaphore(self.max_inflight)
        self._lock = threading.Lock()
        self._latencies: list[float] = []  # guarded-by: self._lock
        self._errors = 0  # guarded-by: self._lock
        self._first_error: str | None = None  # guarded-by: self._lock

    def _client_main(self, client_id: int, start_barrier: threading.Barrier):
        start_barrier.wait()
        for seq in range(self.requests_per_client):
            with self._admission:
                begin = time.perf_counter()
                try:
                    response = self.issue(client_id, seq)
                    if self.check is not None:
                        self.check(client_id, seq, response)
                except Exception as exc:  # noqa: BLE001 — counted, reported
                    with self._lock:
                        self._errors += 1
                        if self._first_error is None:
                            self._first_error = f"{type(exc).__name__}: {exc}"
                    continue
                elapsed_ms = (time.perf_counter() - begin) * 1000.0
            with self._lock:
                self._latencies.append(elapsed_ms)

    def run(self) -> LoadStats:
        """Execute the full fleet; returns merged statistics."""
        barrier = threading.Barrier(self.clients + 1)
        threads = [
            threading.Thread(
                target=self._client_main,
                args=(client_id, barrier),
                name=f"loadgen-{client_id}",
                daemon=True,
            )
            for client_id in range(self.clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()  # all clients ready: start the clock together
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        duration = max(time.perf_counter() - start, 1e-9)
        with self._lock:
            latencies = sorted(self._latencies)
            errors = self._errors
            first_error = self._first_error
        completed = len(latencies)
        return LoadStats(
            clients=self.clients,
            requests_per_client=self.requests_per_client,
            completed=completed,
            errors=errors,
            duration_s=duration,
            throughput_qps=completed / duration,
            p50_ms=percentile(latencies, 0.50),
            p99_ms=percentile(latencies, 0.99),
            mean_ms=(sum(latencies) / completed) if completed else 0.0,
            max_ms=latencies[-1] if latencies else 0.0,
            max_inflight=self.max_inflight,
            first_error=first_error,
            latencies_ms=latencies,
        )

"""Cluster deployment: attested provisioning, key replication, data fan-out.

The coordinator runs in the **data owner's realm**. It owns the one
attestation + provisioning round the paper specifies (§4.2 step 2) — against
the primary enclave of shard 0 — and then *replicates* ``SKDB`` to every
other enclave without ever holding it on the wire in the clear:

1. the target enclave publishes a fresh channel offer (DH public + quote),
2. the coordinator relays the offer to the already-provisioned primary,
   whose ``replicate_master_key`` ecall verifies the quote against its own
   measurement (same enclave binary ⇒ same expected identity) and wraps
   ``SKDB`` under the derived channel key,
3. the coordinator relays the resulting DH public and PAE blob back to the
   target's ``channel_accept`` / ``provision_master_key``.

The coordinator — and any network between the servers — sees two DH publics,
one quote, and one PAE ciphertext. Key material crosses only enclave to
enclave (DESIGN.md §12).

Data deployment reuses the owner's streaming build pipeline (PR 4)
unchanged: the coordinator records the table's span assignment on the shard
map, then lets :meth:`DataOwner.deploy_table` stream partitions through the
:class:`~repro.cluster.router.ClusterRouter`, which ships each completed
span to its shard (replicas receive byte-identical ciphertext).
"""

from __future__ import annotations

from repro.client.owner import DataOwner
from repro.client.proxy import Proxy
from repro.cluster.router import ClusterRouter
from repro.cluster.shardmap import ShardMap, TableAssignment
from repro.crypto.drbg import HmacDrbg
from repro.crypto.pae import default_pae
from repro.exceptions import ClusterError
from repro.net.client import NetConnection, RemoteServer, RetryPolicy


class ClusterCoordinator:
    """Provisions and populates a replicated EncDBDB cluster."""

    def __init__(
        self,
        shard_map: ShardMap,
        owner: DataOwner,
        *,
        router: ClusterRouter | None = None,
        **router_options,
    ) -> None:
        self.shard_map = shard_map
        self.owner = owner
        self.router = (
            router
            if router is not None
            else ClusterRouter(shard_map, **router_options)
        )
        self._provisioned = False

    # ------------------------------------------------------------------
    # Key distribution
    # ------------------------------------------------------------------
    def provision(self, *, expected_measurement: bytes | None = None) -> int:
        """Attest + provision the whole cluster; returns enclaves keyed.

        The owner performs exactly one full attestation round (against the
        shard-0 primary); every other enclave receives ``SKDB`` through the
        primary-to-replica hand-off above. The primary connection is leased
        for the whole sequence — provisioning and replication are
        session-bound on the server.
        """
        primary_pool = self.router.group(0).pools[0]
        keyed = 0
        with primary_pool.lease() as primary:
            self.owner.attest_and_provision(
                primary, expected_measurement=expected_measurement
            )
            keyed += 1
            for group in self.router.groups:
                for pool in group.pools:
                    if pool is primary_pool:
                        continue
                    with pool.lease() as node:
                        replicate_key(primary, node)
                    keyed += 1
        self._provisioned = True
        return keyed

    # ------------------------------------------------------------------
    # Schema + data deployment
    # ------------------------------------------------------------------
    def create_table(self, plan) -> None:
        self.router.create_table(plan)

    def deploy_table(
        self,
        table_name: str,
        columns: dict[str, list],
        *,
        partition_rows: int,
        max_workers: int | None = None,
        executor: str = "thread",
    ) -> TableAssignment:
        """Assign spans, then stream the table out through the router.

        Column values must be sized (the assignment needs the row count up
        front); the build itself still streams partition by partition.
        """
        if not self._provisioned:
            raise ClusterError("provision() the cluster before deploying data")
        sized = {name: _sized(values) for name, values in columns.items()}
        row_counts = {len(values) for values in sized.values()}
        if len(row_counts) != 1:
            raise ClusterError(
                f"columns of {table_name!r} have inconsistent lengths"
            )
        (total_rows,) = row_counts
        assignment = self.shard_map.assign(table_name, total_rows, partition_rows)
        try:
            self.owner.deploy_table(
                self.router,
                table_name,
                sized,
                partition_rows=partition_rows,
                max_workers=max_workers,
                executor=executor,
            )
        except BaseException:
            self.shard_map.drop(table_name)
            raise
        return assignment

    def close(self) -> None:
        self.router.close()


def replicate_key(primary: RemoteServer, target) -> None:
    """One enclave-to-enclave key hand-off, relayed by untrusted code.

    ``primary`` must already hold ``SKDB``; ``target`` is any object with
    the enclave channel surface (a :class:`RemoteServer` or an in-process
    :class:`~repro.server.dbms.EncDBDBServer`). The relay forwards opaque
    values only.
    """
    offer = target.enclave_channel_offer()
    client_public, wire_blob = primary.enclave_replicate_key(offer)
    target.enclave_channel_accept(client_public)
    target.enclave_provision(wire_blob)


def pull_master_key_from(
    dbms,
    host: str,
    port: int,
    *,
    retry: RetryPolicy | None = None,
    timeout: float = 60.0,
) -> None:
    """Boot-time replica provisioning (``serve --replica-of``).

    The local enclave makes the channel offer; the already-provisioned
    primary at ``host:port`` wraps ``SKDB`` for it. With a patient
    :class:`RetryPolicy` a replica may be started before its primary and
    will keep knocking until the primary is up and provisioned.
    """
    offer = dbms.enclave_channel_offer()
    connection = NetConnection(host, port, timeout=timeout, retry=retry)
    try:
        client_public, wire_blob = RemoteServer(connection).enclave_replicate_key(
            offer
        )
    finally:
        connection.close()
    dbms.enclave_channel_accept(client_public)
    dbms.enclave_provision(wire_blob)


def _sized(values) -> list:
    """Materialize a column source when its length is not known."""
    try:
        len(values)
    except TypeError:
        return list(values)
    return values


class ClusterSystem:
    """Application-facing cluster session: coordinator + router + proxy.

    The cluster twin of :class:`~repro.client.session.EncDBDBSystem` — same
    ``execute``/``query``/``bulk_load`` surface, with the server side being
    the scatter-gather router.
    """

    def __init__(
        self, coordinator: ClusterCoordinator, proxy: Proxy
    ) -> None:
        self.coordinator = coordinator
        self.router = coordinator.router
        self.owner = coordinator.owner
        self.proxy = proxy

    @property
    def server(self):
        """The router, presenting the server surface (shell compatibility)."""
        return self.router

    @classmethod
    def connect(
        cls,
        shard_map: ShardMap,
        *,
        seed: int | bytes | str = 0,
        expected_measurement: bytes | None = None,
        **router_options,
    ) -> "ClusterSystem":
        """Stand up a fully keyed cluster deployment.

        The owner-side DRBG forking mirrors :meth:`EncDBDBSystem.create`
        (``owner`` then ``proxy`` off one root), so the same seed yields the
        same ``SKDB``, the same per-column build randomness, and therefore
        ciphertext partitions identical to a single-node deployment.
        """
        rng = HmacDrbg(seed if isinstance(seed, (bytes, str)) else int(seed))
        owner = DataOwner(rng=rng.fork("owner"))
        coordinator = ClusterCoordinator(shard_map, owner, **router_options)
        try:
            coordinator.provision(expected_measurement=expected_measurement)
            proxy = Proxy(
                coordinator.router,
                owner.master_key,
                default_pae(rng=rng.fork("proxy")),
            )
            for name in coordinator.router.table_names():
                proxy.register_schema(
                    name, list(coordinator.router.table_specs(name))
                )
        except BaseException:
            coordinator.close()
            raise
        return cls(coordinator, proxy)

    # ------------------------------------------------------------------
    def execute(self, sql: str):
        return self.proxy.execute(sql)

    def query(self, sql: str):
        from repro.sql.result import QueryResult

        result = self.proxy.execute(sql)
        if not isinstance(result, QueryResult):
            raise TypeError("query() is only for SELECT statements")
        return result

    def explain(self, sql: str) -> str:
        return self.proxy.explain(sql)

    def bulk_load(
        self,
        table_name: str,
        columns: dict[str, list],
        *,
        partition_rows: int,
        max_workers: int | None = None,
        executor: str = "thread",
    ) -> TableAssignment:
        return self.coordinator.deploy_table(
            table_name,
            columns,
            partition_rows=partition_rows,
            max_workers=max_workers,
            executor=executor,
        )

    def save(self, path) -> None:
        self.router.save(path)  # raises ClusterError: persist per shard

    def close(self) -> None:
        self.coordinator.close()

    def __enter__(self) -> "ClusterSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

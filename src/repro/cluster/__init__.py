"""Replicated enclave cluster: sharding, key replication, scatter-gather.

EncDBDB's paper evaluates one server; this package scales the same trust
architecture out to many (ROADMAP: "millions of users"). A cluster is a set
of **shards** — each a replica group of ``repro.net`` servers holding a
contiguous range of every table's partitions — plus:

- :mod:`repro.cluster.shardmap` — pure topology data: endpoints per shard,
  contiguous partition spans per table, RecordID row bases.
- :mod:`repro.cluster.coordinator` — owner-side deployment: one attested
  provisioning round against the shard-0 primary, enclave-to-enclave
  ``SKDB`` replication to every other enclave (the relay sees only DH
  publics, a quote, and a PAE blob), and span-wise data fan-out through the
  streaming build pipeline.
- :mod:`repro.cluster.router` — the scatter-gather client: encrypted plans
  fan out to one healthy endpoint per shard, padded per-partition result
  unions concatenate in partition order with per-shard RecordID rebasing,
  failed endpoints retry on their replicas.
- :mod:`repro.cluster.loadgen` — a concurrent closed-loop load harness with
  admission control, emitting p50/p99 latency and throughput.

See DESIGN.md §12 for the failure model and the leakage argument.
"""

from repro.cluster.coordinator import (
    ClusterCoordinator,
    ClusterSystem,
    pull_master_key_from,
    replicate_key,
)
from repro.cluster.loadgen import LoadGenerator, LoadStats, percentile
from repro.cluster.router import ClusterRouter, EndpointPool, ShardGroup
from repro.cluster.shardmap import (
    Endpoint,
    Shard,
    ShardMap,
    ShardSpan,
    TableAssignment,
    assign_spans,
)

__all__ = [
    "ClusterCoordinator",
    "ClusterRouter",
    "ClusterSystem",
    "Endpoint",
    "EndpointPool",
    "LoadGenerator",
    "LoadStats",
    "Shard",
    "ShardGroup",
    "ShardMap",
    "ShardSpan",
    "TableAssignment",
    "assign_spans",
    "percentile",
    "pull_master_key_from",
    "replicate_key",
]

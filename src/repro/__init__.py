"""EncDBDB reproduction: searchable encrypted, compressed, in-memory database.

This package reimplements, in pure Python, the complete system described in
*EncDBDB: Searchable Encrypted, Fast, Compressed, In-Memory Database using
Enclaves* (Fuhry, Jayanth Jain H A, Kerschbaum; DSN 2021), together with every
substrate the paper depends on:

- :mod:`repro.crypto` -- probabilistic authenticated encryption (AES-128-GCM,
  both a from-scratch reference implementation and a fast library backend),
  key derivation and deterministic randomness.
- :mod:`repro.sgx` -- a simulated Intel SGX enclave runtime (isolation,
  ecall/ocall boundary, EPC memory model, attestation, sealing, cost model).
- :mod:`repro.columnstore` -- a column-oriented, dictionary-encoding based,
  in-memory DBMS substrate with persistence and a delta store.
- :mod:`repro.sql` -- a SQL subset front end (lexer, parser, planner,
  executor).
- :mod:`repro.encdict` -- the paper's core contribution: the nine encrypted
  dictionaries ED1..ED9 with their EncDB / EnclDictSearch / AttrVectSearch
  operations.
- :mod:`repro.server` / :mod:`repro.client` -- the DBaaS server (EncDBDB and
  the PlainDBDB baseline) and the trusted proxy / data-owner tooling.
- :mod:`repro.security` -- leakage quantification and attack simulations.
- :mod:`repro.workloads` -- synthetic business-warehouse data and query
  workloads reproducing the published column statistics (C1 / C2).
- :mod:`repro.bench` -- measurement harness used by the ``benchmarks/`` tree.

Quickstart::

    from repro import EncDBDBSystem

    system = EncDBDBSystem.create(seed=7)
    system.execute("CREATE TABLE people (name ED5 VARCHAR(30), age ED1 INTEGER)")
    system.execute("INSERT INTO people VALUES ('Jessica', 31), ('Archie', 24)")
    rows = system.query("SELECT name FROM people WHERE age >= 25")
"""

from repro.exceptions import (
    AuthenticationError,
    EncDBDBError,
    EnclaveSecurityError,
    QueryError,
    StorageError,
)

__version__ = "1.0.0"

# Heavier subsystems are exposed lazily so that importing `repro` stays cheap
# and subpackages remain importable in isolation.
_LAZY_EXPORTS = {
    "EncDBDBSystem": ("repro.client.session", "EncDBDBSystem"),
    "EncryptedDictionaryKind": ("repro.encdict.options", "EncryptedDictionaryKind"),
    "RepetitionOption": ("repro.encdict.options", "RepetitionOption"),
    "OrderOption": ("repro.encdict.options", "OrderOption"),
    **{f"ED{i}": ("repro.encdict.options", f"ED{i}") for i in range(1, 10)},
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)

__all__ = [
    "EncDBDBSystem",
    "EncryptedDictionaryKind",
    "RepetitionOption",
    "OrderOption",
    "ED1",
    "ED2",
    "ED3",
    "ED4",
    "ED5",
    "ED6",
    "ED7",
    "ED8",
    "ED9",
    "EncDBDBError",
    "AuthenticationError",
    "EnclaveSecurityError",
    "QueryError",
    "StorageError",
    "__version__",
]

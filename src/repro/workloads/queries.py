"""The paper's range-query workload (§6.3).

A query is parameterized by the *range size* ``RS``: with
``sorted(un(C)) = (v_0, ..., v_{|un(C)|-1})`` a query picks a start index
``i`` uniformly from ``[0, |un(C)| - RS]`` and searches the closed range
``[v_i, v_{i+RS-1}]`` — i.e. ``RS`` consecutive unique values. The number of
*rows* returned exceeds ``RS`` whenever values repeat (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.crypto.drbg import HmacDrbg


@dataclass(frozen=True)
class RangeQuery:
    """One closed range query ``[low, high]`` over a column's value domain."""

    low: Any
    high: Any


def random_range_queries(
    values: Sequence[Any],
    range_size: int,
    count: int,
    rng: HmacDrbg,
) -> list[RangeQuery]:
    """``count`` random queries of ``range_size`` consecutive unique values."""
    if range_size < 1:
        raise ValueError("range size must be >= 1")
    unique_sorted = sorted(set(values))
    if range_size > len(unique_sorted):
        raise ValueError(
            f"range size {range_size} exceeds the {len(unique_sorted)} unique values"
        )
    last_start = len(unique_sorted) - range_size
    queries = []
    for _ in range(count):
        start = rng.randint(0, last_start)
        queries.append(
            RangeQuery(unique_sorted[start], unique_sorted[start + range_size - 1])
        )
    return queries


def expected_result_rows(values: Sequence[Any], query: RangeQuery) -> int:
    """Ground-truth result size of one query (used by Figure 7)."""
    return sum(1 for value in values if query.low <= value <= query.high)

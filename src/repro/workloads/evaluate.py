"""Evaluation harness for the analytics-pushdown workload (PR 9).

Runs a query mix twice — once through an engine's proxy-side reference
path and once through its pushdown path — and reports, per query, whether
the results agree, the best-of timings, and the routing the engine chose.
The engine is *injected* as plain callables: this module is benchmark
infrastructure on the untrusted side and therefore never imports the
trusted client, holds no keys, and works equally against an in-process
system, a TCP deployment, or a cluster.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.workloads.tpch import WorkloadQuery


@dataclass(frozen=True)
class QueryEvaluation:
    """Outcome of one mix query under both execution paths."""

    query: WorkloadQuery
    equivalent: bool
    reference_seconds: float
    pushdown_seconds: float
    routing: tuple[str, ...]

    @property
    def speedup(self) -> float:
        if self.pushdown_seconds <= 0.0:
            return float("inf")
        return self.reference_seconds / self.pushdown_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.query.name,
            "sql": self.query.sql,
            "equivalent": self.equivalent,
            "reference_seconds": self.reference_seconds,
            "pushdown_seconds": self.pushdown_seconds,
            "speedup": self.speedup,
            "routing": list(self.routing),
        }


def _best_of(run: Callable[[], Any], repeats: int) -> tuple[float, Any]:
    """Minimum wall time over ``repeats`` runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def evaluate_mix(
    queries: Sequence[WorkloadQuery],
    *,
    reference: Callable[[str], list],
    pushdown: Callable[[str], list],
    routing: Callable[[str], Sequence[str]] | None = None,
    repeats: int = 3,
    comparator: Callable[[list, list], bool] | None = None,
) -> list[QueryEvaluation]:
    """Run ``queries`` through both paths and compare.

    ``reference`` and ``pushdown`` each take SQL text and return the
    query's result rows; ``routing`` (optional) returns the engine's
    routing-decision lines for the query after the pushdown run.
    ``comparator`` overrides strict row-list equality — e.g. a semantic
    comparator for ORDER BY/LIMIT queries whose tie-breaks may legitimately
    differ (DESIGN.md §14).
    """
    compare = comparator if comparator is not None else (lambda a, b: a == b)
    evaluations = []
    for query in queries:
        ref_seconds, ref_rows = _best_of(lambda: reference(query.sql), repeats)
        push_seconds, push_rows = _best_of(lambda: pushdown(query.sql), repeats)
        lines = tuple(routing(query.sql)) if routing is not None else ()
        evaluations.append(
            QueryEvaluation(
                query=query,
                equivalent=compare(ref_rows, push_rows),
                reference_seconds=ref_seconds,
                pushdown_seconds=push_seconds,
                routing=lines,
            )
        )
    return evaluations

"""A TPC-H-lite analytics workload for the pushdown evaluation (PR 9).

TPC-H proper needs eight tables and decimal arithmetic; the pushdown
pipeline only needs its *shape* — a wide fact table whose queries are
dominated by GROUP BY/aggregate scans (Q1's pricing summary) and top-N
orderings. This module generates a single ``lineitem``-like fact table at
any row count, deterministic in the seed, with the cardinality profile the
routing layer cares about:

- ``returnflag`` — the classic low-cardinality group column (Q1 groups by
  return flag / line status). ED1: one dictionary entry per distinct value,
  so a pushed-down GROUP BY decrypts ~3 entries instead of ~N rows.
- ``price`` — the aggregated measure, also ED1 (every occurrence of a value
  shares one entry; the decrypt-once-per-distinct win).
- ``quantity`` — ED7 (sorted, duplicated entries): frequency-hiding makes
  per-row entries, so aggregating it is deliberately *unattractive* to the
  cost model, while ORDER BY/LIMIT still pushes (ordinal order is public).
- ``shipday`` — an integer "date" used for range predicates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: The fact-table DDL the workload runs against. Kinds are chosen per the
#: cardinality profile above (module docstring).
LINEITEM_DDL = (
    "CREATE TABLE lineitem ("
    "returnflag ED1 VARCHAR(2), "
    "quantity ED7 INTEGER, "
    "price ED1 INTEGER, "
    "shipday ED1 INTEGER)"
)

RETURN_FLAGS = ("A", "N", "R")


def generate_lineitem(
    rows: int,
    *,
    seed: int = 2026,
    distinct_prices: int = 400,
    max_quantity: int = 50,
    days: int = 2500,
) -> dict[str, list]:
    """Column data for ``rows`` lineitem rows, deterministic in ``seed``."""
    if rows < 1:
        raise ValueError("rows must be >= 1")
    rng = np.random.default_rng(seed)
    flags = rng.integers(0, len(RETURN_FLAGS), rows)
    return {
        "returnflag": [RETURN_FLAGS[i] for i in flags],
        "quantity": rng.integers(1, max_quantity + 1, rows).tolist(),
        "price": (rng.integers(0, distinct_prices, rows) * 25 + 100).tolist(),
        "shipday": rng.integers(1, days + 1, rows).tolist(),
    }


@dataclass(frozen=True)
class WorkloadQuery:
    """One named query of the analytics mix."""

    name: str
    sql: str


def tpch_lite_mix() -> tuple[WorkloadQuery, ...]:
    """The TPC-H-lite query mix: every routing outcome is represented.

    ``pricing-summary`` and ``shipped-revenue`` are enclave-pushable
    aggregations; ``flag-volume`` adds a filter; ``top-quantities`` is an
    ordinal-order ORDER BY/LIMIT; ``quantity-stats`` aggregates the
    frequency-hiding ED7 column (the cost gate should refuse);
    ``detail-scan`` is a plain row select (nothing to push).
    """
    return (
        WorkloadQuery(
            "pricing-summary",
            "SELECT returnflag, COUNT(*), SUM(price), AVG(price), "
            "MIN(price), MAX(price) FROM lineitem GROUP BY returnflag",
        ),
        WorkloadQuery(
            "shipped-revenue",
            "SELECT COUNT(*), SUM(price), MIN(price), MAX(price) "
            "FROM lineitem WHERE shipday >= 2000",
        ),
        WorkloadQuery(
            "flag-volume",
            "SELECT returnflag, COUNT(*), SUM(price) FROM lineitem "
            "WHERE price BETWEEN 1000 AND 5000 GROUP BY returnflag",
        ),
        WorkloadQuery(
            "top-quantities",
            "SELECT quantity FROM lineitem ORDER BY quantity DESC LIMIT 10",
        ),
        WorkloadQuery(
            "quantity-stats",
            "SELECT returnflag, SUM(quantity) FROM lineitem GROUP BY returnflag",
        ),
        WorkloadQuery(
            "detail-scan",
            "SELECT returnflag, price FROM lineitem WHERE shipday <= 25",
        ),
    )

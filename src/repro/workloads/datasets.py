"""Dataset scaling: the paper's sampling procedure (§6.3).

"Besides the original columns, which we call full datasets, we sample
datasets from 1 to 10 million records using the distribution and values of
the original columns." ``sample_like`` reproduces that: it draws rows from
an existing column's empirical value distribution.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Sequence

import numpy as np

from repro.crypto.drbg import HmacDrbg


def sample_like(values: Sequence[Any], rows: int, rng: HmacDrbg) -> list[Any]:
    """Sample a ``rows``-sized dataset from ``values``' distribution."""
    if rows < 1:
        raise ValueError("rows must be positive")
    if not len(values):
        raise ValueError("cannot sample from an empty column")
    counts = Counter(values)
    uniques = np.asarray(list(counts.keys()), dtype=object)
    weights = np.asarray(list(counts.values()), dtype=np.float64)
    weights /= weights.sum()
    seed = int.from_bytes(rng.random_bytes(8), "big")
    generator = np.random.Generator(np.random.PCG64(seed))
    drawn = generator.choice(uniques, size=rows, p=weights)
    return drawn.tolist()


def dataset_sizes(full_rows: int, steps: int = 5, minimum: int = 1000) -> list[int]:
    """Evenly spaced dataset sizes up to ``full_rows`` (Figure 8's x-axis)."""
    if steps < 1:
        raise ValueError("steps must be >= 1")
    sizes = np.linspace(minimum, full_rows, steps)
    return sorted({max(minimum, int(size)) for size in sizes})

"""Synthetic business-warehouse workloads.

The paper evaluates on a snapshot of a real SAP customer business warehouse
(§6.2/§6.3) that is not publicly available. This package generates synthetic
columns that reproduce the *published statistics* of the two columns the
paper reports — C1 (10.9 M values, 6.96 M unique, 12-character strings,
near-uniform) and C2 (10.9 M values, 13 361 unique, 10-character strings,
skewed) — at any scale, plus the paper's query workload: random range
queries parameterized by the range size ``RS`` over consecutive unique
values.
"""

from repro.workloads.generator import (
    C1_SPEC,
    C2_SPEC,
    BwColumnSpec,
    generate_bw_column,
)
from repro.workloads.queries import RangeQuery, random_range_queries
from repro.workloads.datasets import sample_like
from repro.workloads.tpch import (
    LINEITEM_DDL,
    WorkloadQuery,
    generate_lineitem,
    tpch_lite_mix,
)
from repro.workloads.evaluate import QueryEvaluation, evaluate_mix

__all__ = [
    "BwColumnSpec",
    "C1_SPEC",
    "C2_SPEC",
    "generate_bw_column",
    "RangeQuery",
    "random_range_queries",
    "sample_like",
    "LINEITEM_DDL",
    "WorkloadQuery",
    "generate_lineitem",
    "tpch_lite_mix",
    "QueryEvaluation",
    "evaluate_mix",
]

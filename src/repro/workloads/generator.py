"""Generator for BW-style string columns matching the paper's statistics.

Two published column profiles (paper §6.2):

- **C1**: 10.9 M values, 6.96 M unique, strings of 12 characters. With
  ~1.57 values per unique the frequency distribution is necessarily
  near-uniform; we draw per-unique multiplicities accordingly.
- **C2**: 10.9 M values, 13 361 unique, strings of 10 characters. With
  ~816 occurrences per unique on average and the paper reporting tens of
  thousands of rows returned for RS = 100 queries, C2 is modelled with a
  Zipf-like frequency skew typical of warehouse dimension columns [65, 58].

Both profiles scale: ``generate_bw_column(spec, rows, rng)`` keeps the
unique/total ratio of the full-size column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.drbg import HmacDrbg

_ALPHABET = np.frombuffer(b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789", dtype="S1")


@dataclass(frozen=True)
class BwColumnSpec:
    """Statistical profile of one warehouse column."""

    name: str
    full_rows: int
    full_unique: int
    string_length: int
    zipf_exponent: float  # 0 = uniform frequencies

    def unique_for(self, rows: int) -> int:
        """Unique-value count for a scaled-down dataset.

        Preserves the full column's unique/total ratio, with a floor of 500
        uniques (capped by ``rows`` and ``full_unique``): the paper's query
        workload draws ranges of up to RS = 100 *consecutive unique values*,
        which requires a minimum dictionary size even at small scales. The
        floor keeps low-cardinality columns like C2 queryable while
        retaining their many-repetitions character.
        """
        if rows >= self.full_rows:
            return self.full_unique
        scaled = round(self.full_unique * rows / self.full_rows)
        floor = min(self.full_unique, rows, 500)
        return max(1, floor, min(rows, scaled))


#: The two columns of the paper's evaluation (§6.2).
C1_SPEC = BwColumnSpec(
    name="C1", full_rows=10_900_000, full_unique=6_960_000,
    string_length=12, zipf_exponent=0.0,
)
C2_SPEC = BwColumnSpec(
    name="C2", full_rows=10_900_000, full_unique=13_361,
    string_length=10, zipf_exponent=0.8,
)


def _random_strings(count: int, length: int, rng: HmacDrbg) -> list[str]:
    """``count`` distinct fixed-length strings over A-Z0-9.

    Values embed a distinct counter suffix, so uniqueness is guaranteed
    without rejection sampling; the random prefix spreads them over the
    lexicographic domain like real master-data keys.
    """
    suffix_length = max(1, len(str(count - 1)))
    prefix_length = max(0, length - suffix_length)
    seed = int.from_bytes(rng.random_bytes(8), "big")
    generator = np.random.Generator(np.random.PCG64(seed))
    prefixes = generator.integers(
        0, len(_ALPHABET), size=(count, prefix_length), dtype=np.int64
    )
    prefix_strings = (
        _ALPHABET[prefixes].view(f"S{prefix_length}").ravel()
        if prefix_length
        else np.array([b""] * count)
    )
    return [
        (prefix_strings[i].decode("ascii") + format(i, f"0{suffix_length}d"))[:length]
        for i in range(count)
    ]


def _multiplicities(
    rows: int, unique: int, zipf_exponent: float, rng: HmacDrbg
) -> np.ndarray:
    """How often each unique value occurs; sums exactly to ``rows``."""
    if zipf_exponent <= 0:
        weights = np.ones(unique)
    else:
        ranks = np.arange(1, unique + 1, dtype=np.float64)
        weights = ranks ** (-zipf_exponent)
    weights /= weights.sum()
    counts = np.maximum(1, np.floor(weights * rows).astype(np.int64))
    # Adjust to hit the exact row count while keeping every count >= 1.
    deficit = rows - int(counts.sum())
    if deficit > 0:
        seed = int.from_bytes(rng.random_bytes(8), "big")
        generator = np.random.Generator(np.random.PCG64(seed))
        extra = generator.choice(unique, size=deficit, p=weights)
        np.add.at(counts, extra, 1)
    elif deficit < 0:
        for index in np.argsort(counts)[::-1]:
            if deficit == 0:
                break
            removable = min(counts[index] - 1, -deficit)
            counts[index] -= removable
            deficit += removable
        if deficit != 0:  # pragma: no cover - only if rows < unique
            raise ValueError("cannot fit unique values into the row budget")
    return counts


def generate_bw_column(
    spec: BwColumnSpec, rows: int, rng: HmacDrbg
) -> list[str]:
    """Generate a ``rows``-sized column following ``spec``'s profile."""
    if rows < 1:
        raise ValueError("rows must be positive")
    unique = spec.unique_for(rows)
    values = _random_strings(unique, spec.string_length, rng)
    counts = _multiplicities(rows, unique, spec.zipf_exponent, rng.fork("mult"))
    column = np.repeat(np.asarray(values, dtype=object), counts)
    seed = int.from_bytes(rng.fork("shuffle").random_bytes(8), "big")
    np.random.Generator(np.random.PCG64(seed)).shuffle(column)
    return column.tolist()

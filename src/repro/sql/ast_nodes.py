"""AST node definitions for the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class ColumnDef:
    """One column in a CREATE TABLE: name, type text, protection, bsmax."""

    name: str
    type_sql: str
    protection: str | None = None  # "ED1".."ED9" or None for plaintext
    bsmax: int | None = None


@dataclass(frozen=True)
class CreateTable:
    table: str
    columns: tuple[ColumnDef, ...]


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...] | None  # None = schema order
    rows: tuple[tuple[Any, ...], ...]


@dataclass(frozen=True)
class Comparison:
    """``column op literal`` or ``column BETWEEN low AND high``."""

    column: str
    operator: str  # one of =, !=, <, <=, >, >=, BETWEEN
    value: Any
    high_value: Any = None  # only for BETWEEN


@dataclass(frozen=True)
class Logical:
    """AND/OR combination of predicate subtrees."""

    operator: str  # AND | OR
    operands: tuple[Any, ...]  # Comparison | Logical


@dataclass(frozen=True)
class Aggregate:
    """``FUNC(column)`` or ``COUNT(*)`` in a select list."""

    function: str  # COUNT, SUM, AVG, MIN, MAX
    column: str | None  # None = '*' (COUNT only)

    @property
    def label(self) -> str:
        return f"{self.function}({self.column or '*'})"


@dataclass(frozen=True)
class OrderItem:
    column: str
    descending: bool = False


@dataclass(frozen=True)
class Join:
    """``JOIN right_table ON left_column = right_column`` (inner equi-join).

    The column references are qualified (``table.column``).
    """

    right_table: str
    left_column: str
    right_column: str


@dataclass(frozen=True)
class Select:
    table: str
    items: tuple[Any, ...]  # str column names and/or Aggregate; ("*",) = all
    where: Comparison | Logical | None = None
    group_by: tuple[str, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    join: Join | None = None
    distinct: bool = False

    @property
    def is_star(self) -> bool:
        return self.items == ("*",)


@dataclass(frozen=True)
class Delete:
    table: str
    where: Comparison | Logical | None = None


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Any], ...]
    where: Comparison | Logical | None = None


@dataclass(frozen=True)
class MergeTable:
    """Trigger the delta-store merge of paper §4.3 for one table."""

    table: str

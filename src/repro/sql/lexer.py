"""Tokenizer for the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SqlSyntaxError

KEYWORDS = {
    "CREATE", "TABLE", "INSERT", "INTO", "VALUES", "SELECT", "FROM", "WHERE",
    "AND", "OR", "BETWEEN", "ORDER", "GROUP", "BY", "ASC", "DESC", "LIMIT",
    "DELETE", "UPDATE", "SET", "MERGE", "COUNT", "SUM", "AVG", "MIN", "MAX",
    "BSMAX", "NOT", "JOIN", "ON", "INNER", "IN", "LIKE", "DISTINCT",
}

_SYMBOLS = ("<=", ">=", "!=", "<>", "(", ")", ",", "*", "=", "<", ">", ".")


@dataclass(frozen=True)
class Token:
    """One lexical token: kind is KEYWORD, IDENT, INT, STRING, or SYMBOL."""

    kind: str
    value: str
    position: int

    def matches(self, kind: str, value: str | None = None) -> bool:
        return self.kind == kind and (value is None or self.value == value)


def tokenize(sql: str) -> list[Token]:
    """Lex ``sql`` into tokens; raises :class:`SqlSyntaxError` on junk."""
    tokens: list[Token] = []
    position = 0
    length = len(sql)
    while position < length:
        char = sql[position]
        if char.isspace():
            position += 1
            continue
        if sql.startswith("--", position):
            newline = sql.find("\n", position)
            position = len(sql) if newline == -1 else newline + 1
            continue
        if char == "'":
            end = sql.find("'", position + 1)
            # Support '' escaping inside string literals.
            pieces = []
            start = position + 1
            while True:
                if end == -1:
                    raise SqlSyntaxError(f"unterminated string at offset {position}")
                pieces.append(sql[start:end])
                if end + 1 < length and sql[end + 1] == "'":
                    pieces.append("'")
                    start = end + 2
                    end = sql.find("'", start)
                    continue
                break
            tokens.append(Token("STRING", "".join(pieces), position))
            position = end + 1
            continue
        if char.isdigit() or (
            char == "-" and position + 1 < length and sql[position + 1].isdigit()
        ):
            end = position + 1
            while end < length and sql[end].isdigit():
                end += 1
            tokens.append(Token("INT", sql[position:end], position))
            position = end
            continue
        if char.isalpha() or char == "_":
            end = position + 1
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[position:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, position))
            else:
                tokens.append(Token("IDENT", word, position))
            position = end
            continue
        for symbol in _SYMBOLS:
            if sql.startswith(symbol, position):
                tokens.append(Token("SYMBOL", symbol, position))
                position += len(symbol)
                break
        else:
            raise SqlSyntaxError(f"unexpected character {char!r} at offset {position}")
    tokens.append(Token("EOF", "", length))
    return tokens

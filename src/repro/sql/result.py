"""Result rendering (paper §4.2 steps 12-13).

The server's result renderer undoes the dictionary split for every matching
RecordID — ``eC = (eD[AV[i]] for i in rid)`` — and attaches the table and
column metadata the proxy needs to derive each column's key and decrypt.
Encrypted columns come back as PAE blobs, plaintext columns as values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass
class ResultColumn:
    """One rendered column of a result set."""

    table_name: str
    column_name: str
    encrypted: bool
    #: PAE blobs when ``encrypted`` else plaintext values, one per result row.
    data: list
    #: Storage-key epoch the blobs are sealed under (0 until a key rotation
    #: has finalized); the proxy derives the matching column key from it.
    key_epoch: int = 0

    def __len__(self) -> int:
        return len(self.data)


@dataclass
class ServerResult:
    """What the DBaaS provider returns for one SELECT/DELETE/UPDATE read."""

    table_name: str
    record_ids: np.ndarray
    columns: dict[str, ResultColumn] = field(default_factory=dict)

    @property
    def row_count(self) -> int:
        return len(self.record_ids)


@dataclass(frozen=True)
class RoutingDecision:
    """One cost-based pushdown routing decision (analytics pushdown, PR 9).

    The server records, per post-processing clause, whether the clause was
    pushed into the enclave and why (or why not) — decisions travel back
    with the result and render in EXPLAIN. Reasons are structural/cost facts
    only (kinds, partition counts, estimated cycles), never values.
    """

    clause: str
    pushed: bool
    reason: str


@dataclass(frozen=True)
class AggregateFrames:
    """Pushed-down aggregation output: padded, PAE-encrypted group frames.

    Each frame seals one group's key and aggregate states (AVG as a
    sum+count pair) under the table's aggregate transit key. All frames of
    one response share a single byte length and the frame *count* is padded
    to the next power of two with indistinguishable dummy frames, so the
    wire reveals only an upper bound on the group cardinality — never row
    sets (DESIGN.md §14).
    """

    table_name: str
    #: ``None`` for a global (ungrouped) aggregate.
    group_column: str | None
    #: Aggregate output labels, in per-frame state order.
    labels: tuple[str, ...]
    frames: tuple[bytes, ...]


@dataclass(frozen=True)
class PushdownSelectResult:
    """What ``execute_select_pushdown`` returns: decisions + one payload.

    Exactly one of ``aggregate`` / ``rows`` is set. ``ordered`` marks a row
    payload that was already ordinal-ordered and LIMIT-truncated server-side
    (the proxy still re-sorts and re-limits the survivors — both are
    idempotent on an already-ordered prefix).
    """

    decisions: tuple[RoutingDecision, ...]
    aggregate: AggregateFrames | None = None
    rows: ServerResult | None = None
    ordered: bool = False


@dataclass
class QueryResult:
    """What the application finally receives from the proxy."""

    column_names: list[str]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalar(self) -> Any:
        """Convenience for single-cell results (e.g. ``COUNT(*)``)."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ValueError("result is not a single scalar")
        return self.rows[0][0]

    def column(self, name: str) -> list:
        index = self.column_names.index(name)
        return [row[index] for row in self.rows]

"""Result rendering (paper §4.2 steps 12-13).

The server's result renderer undoes the dictionary split for every matching
RecordID — ``eC = (eD[AV[i]] for i in rid)`` — and attaches the table and
column metadata the proxy needs to derive each column's key and decrypt.
Encrypted columns come back as PAE blobs, plaintext columns as values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass
class ResultColumn:
    """One rendered column of a result set."""

    table_name: str
    column_name: str
    encrypted: bool
    #: PAE blobs when ``encrypted`` else plaintext values, one per result row.
    data: list
    #: Storage-key epoch the blobs are sealed under (0 until a key rotation
    #: has finalized); the proxy derives the matching column key from it.
    key_epoch: int = 0

    def __len__(self) -> int:
        return len(self.data)


@dataclass
class ServerResult:
    """What the DBaaS provider returns for one SELECT/DELETE/UPDATE read."""

    table_name: str
    record_ids: np.ndarray
    columns: dict[str, ResultColumn] = field(default_factory=dict)

    @property
    def row_count(self) -> int:
        return len(self.record_ids)


@dataclass
class QueryResult:
    """What the application finally receives from the proxy."""

    column_names: list[str]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalar(self) -> Any:
        """Convenience for single-cell results (e.g. ``COUNT(*)``)."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ValueError("result is not a single scalar")
        return self.rows[0][0]

    def column(self, name: str) -> list:
        index = self.column_names.index(name)
        return [row[index] for row in self.rows]

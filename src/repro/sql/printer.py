"""Render AST nodes back to SQL text.

Used by EXPLAIN output, error messages, and the parser round-trip property
tests (``parse(to_sql(ast)) == ast``), which pin the grammar and the
printer against each other.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import QueryError
from repro.sql.ast_nodes import (
    Aggregate,
    Comparison,
    CreateTable,
    Delete,
    Insert,
    Logical,
    MergeTable,
    Select,
    Update,
)


def _literal(value: Any) -> str:
    if isinstance(value, bool):
        raise QueryError("boolean literals are not part of the SQL subset")
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    # DATE values and other coerced types print as their ISO string form.
    return "'" + str(value) + "'"


def _predicate(node) -> str:
    if isinstance(node, Comparison):
        if node.operator == "BETWEEN":
            return (
                f"{node.column} BETWEEN {_literal(node.value)} "
                f"AND {_literal(node.high_value)}"
            )
        if node.operator == "IN":
            members = ", ".join(_literal(member) for member in node.value)
            return f"{node.column} IN ({members})"
        if node.operator == "LIKE":
            return f"{node.column} LIKE {_literal(node.value)}"
        return f"{node.column} {node.operator} {_literal(node.value)}"
    if isinstance(node, Logical):
        if node.operator == "NOT":
            return f"NOT ({_predicate(node.operands[0])})"
        joined = f" {node.operator} ".join(
            f"({_predicate(operand)})" for operand in node.operands
        )
        return joined
    raise QueryError(f"cannot print predicate {type(node).__name__}")


def _select_item(item) -> str:
    if isinstance(item, Aggregate):
        return item.label
    return str(item)


def to_sql(node) -> str:
    """SQL text for any statement AST node."""
    if isinstance(node, CreateTable):
        columns = []
        for column in node.columns:
            parts = [column.name]
            if column.protection:
                parts.append(column.protection)
            parts.append(column.type_sql)
            if column.bsmax is not None:
                parts.append(f"BSMAX {column.bsmax}")
            columns.append(" ".join(parts))
        return f"CREATE TABLE {node.table} ({', '.join(columns)})"

    if isinstance(node, Insert):
        columns = f" ({', '.join(node.columns)})" if node.columns else ""
        rows = ", ".join(
            "(" + ", ".join(_literal(value) for value in row) + ")"
            for row in node.rows
        )
        return f"INSERT INTO {node.table}{columns} VALUES {rows}"

    if isinstance(node, Select):
        parts = ["SELECT"]
        if node.distinct:
            parts.append("DISTINCT")
        if node.is_star:
            parts.append("*")
        else:
            parts.append(", ".join(_select_item(item) for item in node.items))
        parts.append(f"FROM {node.table}")
        if node.join is not None:
            parts.append(
                f"JOIN {node.join.right_table} ON "
                f"{node.join.left_column} = {node.join.right_column}"
            )
        if node.where is not None:
            parts.append(f"WHERE {_predicate(node.where)}")
        if node.group_by:
            parts.append("GROUP BY " + ", ".join(node.group_by))
        if node.order_by:
            rendered = [
                f"{item.column} DESC" if item.descending else f"{item.column} ASC"
                for item in node.order_by
            ]
            parts.append("ORDER BY " + ", ".join(rendered))
        if node.limit is not None:
            parts.append(f"LIMIT {node.limit}")
        return " ".join(parts)

    if isinstance(node, Delete):
        where = f" WHERE {_predicate(node.where)}" if node.where is not None else ""
        return f"DELETE FROM {node.table}{where}"

    if isinstance(node, Update):
        assignments = ", ".join(
            f"{column} = {_literal(value)}" for column, value in node.assignments
        )
        where = f" WHERE {_predicate(node.where)}" if node.where is not None else ""
        return f"UPDATE {node.table} SET {assignments}{where}"

    if isinstance(node, MergeTable):
        return f"MERGE TABLE {node.table}"

    raise QueryError(f"cannot print statement {type(node).__name__}")


# ----------------------------------------------------------------------
# EXPLAIN rendering (plan + partition fan-out)
# ----------------------------------------------------------------------
def _filter_columns(filter_plan, found: list[str]) -> None:
    """Column names referenced by a filter tree, in traversal order."""
    from repro.sql.planner import FilterNode

    if filter_plan is None:
        return
    if isinstance(filter_plan, FilterNode):
        for child in filter_plan.children:
            _filter_columns(child, found)
        return
    column = getattr(filter_plan, "column", None)
    if column is not None and column not in found:
        found.append(column)


def partition_fanout_lines(plan, catalog) -> list[str]:
    """EXPLAIN annotation: how each filtered column fans out per partition.

    ``catalog`` is the server's *data* catalog (tables with live column
    stores). A remote deployment exposes only the schema mirror — partition
    layout is then unknown here and the annotation is omitted, which is the
    point: partition metadata does not cross the wire.
    """
    from repro.columnstore.partition import PartitionMap
    from repro.sql.planner import (
        DeletePlan,
        JoinSelectPlan,
        MergePlan,
        SelectPlan,
    )

    if catalog is None:
        return []
    targets: list[tuple[str, list[str]]] = []
    if isinstance(plan, (SelectPlan, DeletePlan)):
        columns: list[str] = []
        _filter_columns(plan.filter, columns)
        targets.append((plan.table, columns))
    elif isinstance(plan, JoinSelectPlan):
        for table_name, filter_plan in (
            (plan.left_table, plan.left_filter),
            (plan.right_table, plan.right_filter),
        ):
            columns = []
            _filter_columns(filter_plan, columns)
            targets.append((table_name, columns))
    elif isinstance(plan, MergePlan):
        lines = []
        try:
            table = catalog.table(plan.table)
            lengths = (
                table.columns[table.column_names[0]].partition_lengths
                if table.column_names
                else []
            )
            dirty = PartitionMap(lengths).dirty_partitions(
                table.validity[: sum(lengths)]
            )
            delta_rows = table.row_count - sum(lengths)
            lines.append(
                f"merge {plan.table}: {len(dirty)} of {len(lengths)} "
                f"partition(s) dirty, {delta_rows} delta row(s) pending"
            )
        except (AttributeError, KeyError, TypeError):
            pass  # schema-only catalog: no layout to report
        return lines

    lines = []
    for table_name, columns in targets:
        for column_name in columns:
            try:
                table = catalog.table(table_name)
                column = table.columns[column_name]
                partitions = len(
                    getattr(column, "partition_builds", None)
                    or getattr(column, "partitions", ())
                )
                delta_rows = len(
                    getattr(column, "delta_blobs", None)
                    or getattr(column, "delta_values", ())
                )
            except (AttributeError, KeyError, TypeError):
                continue  # schema-only catalog: no layout to report
            stores = partitions + (1 if delta_rows else 0)
            lines.append(
                f"{table_name}.{column_name}: {partitions} main partition(s)"
                + (f" + delta ({delta_rows} rows)" if delta_rows else "")
                + f" -> {max(stores, 1)} dictionary search(es) per filter"
            )
    if lines:
        lines.insert(0, "partition fan-out:")
    return lines


def cluster_routing_lines(plan, shard_map) -> list[str]:
    """EXPLAIN annotation: how a plan routes across a sharded cluster.

    ``shard_map`` is a :class:`repro.cluster.shardmap.ShardMap` (topology
    data only — endpoints and partition spans). The annotation reports what
    the routing tier knows: which shards a statement visits and why. It
    never mentions filter values — those are ciphertext by the time a plan
    exists.
    """
    from repro.sql.planner import (
        DeletePlan,
        JoinSelectPlan,
        MergePlan,
        SelectPlan,
    )

    if shard_map is None:
        return []
    tables: list[str] = []
    if isinstance(plan, (SelectPlan, DeletePlan, MergePlan)):
        tables = [plan.table]
    elif isinstance(plan, JoinSelectPlan):
        tables = [plan.left_table, plan.right_table]
    if not tables:
        return []
    lines = [f"cluster routing ({shard_map.shard_count} shard(s)):"]
    for table_name in tables:
        assignment = shard_map.assignment(table_name)
        if assignment is None:
            shard = shard_map.shards[0]
            lines.append(
                f"  {table_name}: unassigned -> shard 0 "
                f"({shard.primary.address}"
                + (
                    f", {len(shard.replicas)} replica(s))"
                    if shard.replicas
                    else ")"
                )
            )
            continue
        spans = assignment.populated_spans()
        lines.append(
            f"  {table_name}: scatter over {len(spans)} shard(s), "
            f"{assignment.partition_count} partition(s); delta on shard "
            f"{assignment.last_span().shard_id}"
        )
        for span in spans:
            shard = shard_map.shards[span.shard_id]
            lines.append(
                f"    shard {span.shard_id}: partitions "
                f"[{span.partition_lo},{span.partition_hi}) rows "
                f"[{span.row_base},{span.row_base + span.row_count}) via "
                f"{shard.primary.address}"
                + (
                    f" (+{len(shard.replicas)} replica(s))"
                    if shard.replicas
                    else ""
                )
            )
    if isinstance(plan, SelectPlan):
        lines.append(
            "  gather: per-shard padded unions concatenate in partition "
            "order; RecordIDs rebase by span row base"
        )
    return lines


def pushdown_lines(decisions) -> list[str]:
    """EXPLAIN annotation: per-clause analytics-pushdown routing (PR 9).

    ``decisions`` is the :class:`~repro.sql.result.RoutingDecision` tuple an
    ``explain_pushdown`` hook returned. Each line names the clause, where it
    runs (enclave or proxy), and why — including the cost-model estimate or
    the structural reason a clause fell back to proxy-side evaluation.
    """
    lines: list[str] = []
    for decision in decisions or ():
        where = "enclave" if decision.pushed else "proxy"
        lines.append(f"  {decision.clause} -> {where}: {decision.reason}")
    if lines:
        lines.insert(0, "pushdown:")
    return lines


def migration_lines(statuses) -> list[str]:
    """EXPLAIN annotation: online rotations in flight on the plan's tables.

    ``statuses`` is the :class:`~repro.migrate.plan.MigrationStatus` list an
    ``explain_migrations`` hook returned. Reports progress metadata only —
    phase, step counts, and which version each partition currently serves —
    all of which the provider observes anyway (§4.1 layout leakage).
    """
    lines: list[str] = []
    for status in statuses or ():
        target = (
            f"{status.old_kind}->{status.new_kind}"
            if status.new_kind != status.old_kind
            else status.new_kind
        )
        if status.new_key_epoch != status.old_key_epoch:
            target += (
                f" key epoch {status.old_key_epoch}->{status.new_key_epoch}"
            )
        lines.append(
            f"migration: {status.table}.{status.column} {target} "
            f"phase={status.phase} [{status.steps_done}/{status.steps_total} "
            f"steps] ({status.state})"
        )
        if status.partition_versions:
            serving = ",".join(status.partition_versions)
            lines.append(f"  partitions serve: {serving}")
    return lines


def render_explain(plan, schema_catalog=None, data_catalog=None) -> str:
    """EXPLAIN-style rendering of one query plan.

    Combines the planner's one-line description with the per-partition
    fan-out of every filtered column (when a data catalog with live column
    stores is available — i.e. in-process or server-side) and the runtime's
    current serial/parallel dispatch state. The dispatch line reports only
    host facts (core count, past decisions) — nothing query-secret.
    """
    from repro.runtime import dispatch_summary
    from repro.sql.planner import describe_plan

    description = describe_plan(plan, schema_catalog)
    lines = partition_fanout_lines(plan, data_catalog)
    if data_catalog is not None:
        lines.append(f"dispatch: {dispatch_summary()}")
    if lines:
        description = description + "\n" + "\n".join(lines)
    return description

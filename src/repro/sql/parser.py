"""Recursive-descent parser for the supported SQL subset."""

from __future__ import annotations

from typing import Any

from repro.exceptions import SqlSyntaxError
from repro.sql.ast_nodes import (
    Aggregate,
    Join,
    ColumnDef,
    Comparison,
    CreateTable,
    Delete,
    Insert,
    Logical,
    MergeTable,
    OrderItem,
    Select,
    Update,
)
from repro.sql.lexer import Token, tokenize

_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}
_ED_NAMES = {f"ED{i}" for i in range(1, 10)}


class _Parser:
    def __init__(self, sql: str) -> None:
        self._tokens = tokenize(sql)
        self._index = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _error(self, expected: str) -> SqlSyntaxError:
        token = self._peek()
        shown = token.value or "end of input"
        return SqlSyntaxError(
            f"expected {expected}, found {shown!r} at offset {token.position}"
        )

    def _expect_keyword(self, word: str) -> None:
        if not self._peek().matches("KEYWORD", word):
            raise self._error(word)
        self._advance()

    def _expect_symbol(self, symbol: str) -> None:
        if not self._peek().matches("SYMBOL", symbol):
            raise self._error(f"{symbol!r}")
        self._advance()

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().matches("KEYWORD", word):
            self._advance()
            return True
        return False

    def _accept_symbol(self, symbol: str) -> bool:
        if self._peek().matches("SYMBOL", symbol):
            self._advance()
            return True
        return False

    def _identifier(self) -> str:
        token = self._peek()
        if token.kind != "IDENT":
            raise self._error("an identifier")
        self._advance()
        return token.value

    def _column_reference(self) -> str:
        """A column name, optionally qualified: ``col`` or ``table.col``."""
        name = self._identifier()
        if self._accept_symbol("."):
            return f"{name}.{self._identifier()}"
        return name

    def _integer(self) -> int:
        token = self._peek()
        if token.kind != "INT":
            raise self._error("an integer")
        self._advance()
        return int(token.value)

    def _literal(self) -> Any:
        token = self._peek()
        if token.kind == "INT":
            self._advance()
            return int(token.value)
        if token.kind == "STRING":
            self._advance()
            return token.value
        raise self._error("a literal")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse(self):
        token = self._peek()
        if token.matches("KEYWORD", "CREATE"):
            statement = self._create()
        elif token.matches("KEYWORD", "INSERT"):
            statement = self._insert()
        elif token.matches("KEYWORD", "SELECT"):
            statement = self._select()
        elif token.matches("KEYWORD", "DELETE"):
            statement = self._delete()
        elif token.matches("KEYWORD", "UPDATE"):
            statement = self._update()
        elif token.matches("KEYWORD", "MERGE"):
            statement = self._merge()
        else:
            raise self._error("a statement keyword")
        if not self._peek().matches("EOF"):
            raise self._error("end of statement")
        return statement

    def _create(self) -> CreateTable:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        table = self._identifier()
        self._expect_symbol("(")
        columns = [self._column_def()]
        while self._accept_symbol(","):
            columns.append(self._column_def())
        self._expect_symbol(")")
        return CreateTable(table, tuple(columns))

    def _column_def(self) -> ColumnDef:
        name = self._identifier()
        protection: str | None = None
        # Both orders are accepted: `c ED5 VARCHAR(30)` and `c VARCHAR(30) ED5`.
        if self._peek().kind == "IDENT" and self._peek().value.upper() in _ED_NAMES:
            protection = self._advance().value.upper()
        type_sql = self._type_sql()
        if (
            protection is None
            and self._peek().kind == "IDENT"
            and self._peek().value.upper() in _ED_NAMES
        ):
            protection = self._advance().value.upper()
        bsmax = None
        if self._accept_keyword("BSMAX"):
            bsmax = self._integer()
        return ColumnDef(name, type_sql, protection, bsmax)

    def _type_sql(self) -> str:
        token = self._peek()
        if token.kind != "IDENT":
            raise self._error("a column type")
        type_name = self._advance().value.upper()
        if type_name in ("INTEGER", "INT"):
            return "INTEGER"
        if type_name == "DATE":
            return "DATE"
        if type_name == "VARCHAR":
            self._expect_symbol("(")
            length = self._integer()
            self._expect_symbol(")")
            return f"VARCHAR({length})"
        raise SqlSyntaxError(f"unsupported column type {type_name!r}")

    def _insert(self) -> Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._identifier()
        columns = None
        if self._accept_symbol("("):
            names = [self._identifier()]
            while self._accept_symbol(","):
                names.append(self._identifier())
            self._expect_symbol(")")
            columns = tuple(names)
        self._expect_keyword("VALUES")
        rows = [self._value_tuple()]
        while self._accept_symbol(","):
            rows.append(self._value_tuple())
        return Insert(table, columns, tuple(rows))

    def _value_tuple(self) -> tuple:
        self._expect_symbol("(")
        values = [self._literal()]
        while self._accept_symbol(","):
            values.append(self._literal())
        self._expect_symbol(")")
        return tuple(values)

    def _select(self) -> Select:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        if self._accept_symbol("*"):
            items: tuple = ("*",)
        else:
            parsed = [self._select_item()]
            while self._accept_symbol(","):
                parsed.append(self._select_item())
            items = tuple(parsed)
        self._expect_keyword("FROM")
        table = self._identifier()
        join = None
        if self._accept_keyword("INNER"):
            self._expect_keyword("JOIN")
            join = self._join_clause()
        elif self._accept_keyword("JOIN"):
            join = self._join_clause()
        where = self._where_clause()
        group_by: tuple[str, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            names = [self._column_reference()]
            while self._accept_symbol(","):
                names.append(self._column_reference())
            group_by = tuple(names)
        order_by: list[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self._accept_symbol(","):
                order_by.append(self._order_item())
        limit = None
        if self._accept_keyword("LIMIT"):
            limit = self._integer()
            if limit < 0:
                raise SqlSyntaxError("LIMIT must be non-negative")
        return Select(
            table, items, where, group_by, tuple(order_by), limit, join, distinct
        )

    def _join_clause(self) -> Join:
        right_table = self._identifier()
        self._expect_keyword("ON")
        left_column = self._column_reference()
        self._expect_symbol("=")
        right_column = self._column_reference()
        if "." not in left_column or "." not in right_column:
            raise SqlSyntaxError("JOIN ... ON requires qualified column names")
        return Join(right_table, left_column, right_column)

    def _select_item(self):
        token = self._peek()
        if token.kind == "KEYWORD" and token.value in _AGGREGATES:
            function = self._advance().value
            self._expect_symbol("(")
            if self._accept_symbol("*"):
                if function != "COUNT":
                    raise SqlSyntaxError(f"{function}(*) is not supported")
                column = None
            else:
                column = self._column_reference()
            self._expect_symbol(")")
            return Aggregate(function, column)
        return self._column_reference()

    def _order_item(self) -> OrderItem:
        column = self._column_reference()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return OrderItem(column, descending)

    def _where_clause(self):
        if self._accept_keyword("WHERE"):
            return self._or_expression()
        return None

    def _or_expression(self):
        operands = [self._and_expression()]
        while self._accept_keyword("OR"):
            operands.append(self._and_expression())
        if len(operands) == 1:
            return operands[0]
        return Logical("OR", tuple(operands))

    def _and_expression(self):
        operands = [self._predicate()]
        while self._accept_keyword("AND"):
            operands.append(self._predicate())
        if len(operands) == 1:
            return operands[0]
        return Logical("AND", tuple(operands))

    def _predicate(self):
        if self._accept_keyword("NOT"):
            return Logical("NOT", (self._predicate(),))
        if self._accept_symbol("("):
            inner = self._or_expression()
            self._expect_symbol(")")
            return inner
        column = self._column_reference()
        if self._accept_keyword("BETWEEN"):
            low = self._literal()
            self._expect_keyword("AND")
            high = self._literal()
            return Comparison(column, "BETWEEN", low, high)
        if self._accept_keyword("IN"):
            self._expect_symbol("(")
            members = [self._literal()]
            while self._accept_symbol(","):
                members.append(self._literal())
            self._expect_symbol(")")
            return Comparison(column, "IN", tuple(members))
        if self._accept_keyword("LIKE"):
            token = self._peek()
            if token.kind != "STRING":
                raise self._error("a string pattern")
            self._advance()
            return Comparison(column, "LIKE", token.value)
        token = self._peek()
        if token.kind != "SYMBOL" or token.value not in (
            "=", "!=", "<>", "<", "<=", ">", ">=",
        ):
            raise self._error("a comparison operator")
        operator = self._advance().value
        if operator == "<>":
            operator = "!="
        return Comparison(column, operator, self._literal())

    def _delete(self) -> Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._identifier()
        return Delete(table, self._where_clause())

    def _update(self) -> Update:
        self._expect_keyword("UPDATE")
        table = self._identifier()
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._accept_symbol(","):
            assignments.append(self._assignment())
        return Update(table, tuple(assignments), self._where_clause())

    def _assignment(self) -> tuple[str, Any]:
        column = self._identifier()
        self._expect_symbol("=")
        return column, self._literal()

    def _merge(self) -> MergeTable:
        self._expect_keyword("MERGE")
        self._expect_keyword("TABLE")
        return MergeTable(self._identifier())


def parse(sql: str):
    """Parse one SQL statement into its AST node."""
    return _Parser(sql).parse()

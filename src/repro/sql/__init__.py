"""SQL subset front end.

EncDBDB keeps MonetDB's SQL front end (paper §5); this package provides the
reproduction's equivalent: a lexer, a recursive-descent parser producing a
small AST, a planner that decomposes WHERE clauses into per-column range
filters (the ``(eD, AV, τ)`` tuples of §4.2 step 6), and an executor that
evaluates plans against the column store, going through the enclave for
encrypted columns.

Supported statements::

    CREATE TABLE t (name ED5 VARCHAR(30) BSMAX 8, age INTEGER, ...)
    INSERT INTO t [(cols)] VALUES (...), (...)
    SELECT cols | aggregates FROM t [WHERE ...] [GROUP BY ...]
        [ORDER BY col [ASC|DESC], ...] [LIMIT n]
    UPDATE t SET col = value, ... [WHERE ...]
    DELETE FROM t [WHERE ...]
    MERGE TABLE t            -- delta-store merge (paper §4.3)

WHERE supports =, !=, <, <=, >, >=, BETWEEN, AND, OR, and parentheses; the
proxy converts every predicate into (encrypted) closed range filters, so the
DBaaS provider cannot distinguish query types (§4.2 step 5).
"""

from repro.sql.ast_nodes import (
    Aggregate,
    ColumnDef,
    Comparison,
    CreateTable,
    Delete,
    Insert,
    Logical,
    MergeTable,
    Select,
    Update,
)
from repro.sql.lexer import Token, tokenize
from repro.sql.parser import parse

__all__ = [
    "tokenize",
    "Token",
    "parse",
    "CreateTable",
    "ColumnDef",
    "Insert",
    "Select",
    "Aggregate",
    "Delete",
    "Update",
    "MergeTable",
    "Comparison",
    "Logical",
]
